"""Kill-recovery equivalence for the supervised sharded runtime (PR 5).

The acceptance invariant: SIGKILL-ing (or crashing, or hanging) a
seeded-random shard worker at a seeded-random CYCLE boundary — clean and
under the PR-1 data-chaos layer — must yield a merged prediction log
byte-identical to the unfaulted single-process batched run.  Recovery is
checkpoint + replay (:mod:`repro.core.checkpoint`,
:class:`repro.core.sharding.Supervisor`); the digest is the same
``(seq, key)``-canonical SHA-256 the shard-equivalence suite uses.

Also here: the loud-degradation contract — a crash that outruns the
bounded replay buffer must surface a FAILED health alert and a
``lossy_recoveries`` counter and still complete (never deadlock, never
silently diverge) — and the heartbeat path that catches alive-but-hung
workers.
"""

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.chaos import ChaosSchedule
from repro.resilience.process_chaos import KILL_MODES, ProcessChaos

from .test_batch_equivalence import synthetic_records

POLL_EVERY = 37
CYCLE_BUDGET = 256

CHAOS = ChaosSchedule(
    drop_rate=0.05, burst_p=0.02, burst_r=0.3, burst_loss=0.8,
    duplicate_rate=0.03, reorder_rate=0.04, reorder_depth=3,
    corrupt_rate=0.02,
)


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=6, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(7).permutation(len(records))]


def n_cycles_of(stream):
    return stream.shape[0] // POLL_EVERY


def run_mode(bundle, stream, chaos=None, shards=None, **kw):
    det = AutomatedDDoSDetector(
        bundle, batched=True, chaos=chaos, chaos_seed=123
    )
    db = det.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
        shards=shards, **kw
    )
    return det, db


@pytest.fixture(scope="module")
def reference(bundle, stream):
    """Unfaulted single-process digests, clean and under data chaos."""
    _, db_clean = run_mode(bundle, stream)
    _, db_chaos = run_mode(bundle, stream, chaos=CHAOS)
    return {
        None: prediction_log_digest(db_clean),
        CHAOS: prediction_log_digest(db_chaos),
    }


# ---------------------------------------------------------------------------
# the kill-recovery invariant
# ---------------------------------------------------------------------------
class TestKillRecoveryEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    @pytest.mark.parametrize("mode", ["sigkill", "raise"])
    def test_seeded_kill_digest_identical(
        self, bundle, stream, reference, n_shards, chaos, mode
    ):
        plan = ProcessChaos.seeded(
            seed=20_000 + n_shards, n_cycles=n_cycles_of(stream),
            n_shards=n_shards, modes=(mode,),
        )
        assert not plan.is_noop
        det, db = run_mode(
            bundle, stream, chaos=chaos, shards=n_shards,
            process_chaos=plan, checkpoint_every=3,
        )
        assert prediction_log_digest(db) == reference[chaos]
        sup = det.supervision_stats
        assert sup["workers_died"] >= 1
        assert sup["workers_respawned"] >= 1
        assert sup["lossy_recoveries"] == 0
        assert len(sup["restore_latencies_s"]) == sup["workers_respawned"]

    def test_kill_before_first_checkpoint_replays_everything(
        self, bundle, stream, reference
    ):
        """A worker murdered before it ever checkpointed respawns fresh
        and the coordinator replays its entire stream so far."""
        plan = ProcessChaos(kills=((2, 1, "sigkill"),))
        det, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=1000,  # never checkpoints within the run
        )
        assert prediction_log_digest(db) == reference[None]
        assert det.supervision_stats["checkpoints_taken"] == 0
        assert det.supervision_stats["workers_respawned"] >= 1

    def test_multi_kill_across_shards(self, bundle, stream, reference):
        plan = ProcessChaos.seeded(
            seed=9, n_cycles=n_cycles_of(stream), n_shards=4, n_kills=2,
            modes=KILL_MODES[:2],  # sigkill + raise
        )
        assert len(plan.kills) == 2
        det, db = run_mode(
            bundle, stream, shards=4, process_chaos=plan, checkpoint_every=3
        )
        assert prediction_log_digest(db) == reference[None]
        assert det.supervision_stats["workers_died"] >= 2

    def test_hung_worker_recovered_via_heartbeat_deadline(
        self, bundle, stream, reference
    ):
        """A worker that stops consuming without dying is declared hung
        after ``heartbeat_timeout_s`` and recovered the same way."""
        plan = ProcessChaos(kills=((4, 0, "hang"),))
        det, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=3, heartbeat_timeout_s=2.0,
        )
        assert prediction_log_digest(db) == reference[None]
        assert det.supervision_stats["workers_died"] == 1
        assert det.supervision_stats["workers_respawned"] == 1


# ---------------------------------------------------------------------------
# lifecycle observability
# ---------------------------------------------------------------------------
class TestLifecycleAlerts:
    def test_death_and_recovery_emit_health_alerts(self, bundle, stream):
        plan = ProcessChaos(kills=((3, 1, "sigkill"),))
        det, _ = run_mode(
            bundle, stream, shards=2, process_chaos=plan, checkpoint_every=2
        )
        shard_alerts = [
            a for a in det.watchdog.alerts if a.module == "shard-1"
        ]
        assert [a.state.name for a in shard_alerts] == ["DEGRADED", "HEALTHY"]
        assert "died" in shard_alerts[0].reason
        # the recovery alert names the checkpoint it restored from
        assert "checkpoint cycle" in shard_alerts[1].reason
        assert "seq" in shard_alerts[1].reason

    def test_supervision_counters_in_mechanism_stats(self, bundle, stream):
        plan = ProcessChaos(kills=((3, 0, "sigkill"),))
        det, _ = run_mode(
            bundle, stream, shards=2, process_chaos=plan, checkpoint_every=2
        )
        stats = det.stats()
        sup = stats["supervision"]
        assert sup["workers_died"] == 1 and sup["workers_respawned"] == 1
        assert stats["health"].get("shard-0") == "HEALTHY"

    def test_clean_run_has_quiet_supervision(self, bundle, stream):
        det, _ = run_mode(bundle, stream, shards=2)
        sup = det.supervision_stats
        assert sup["workers_died"] == 0
        assert sup["workers_respawned"] == 0
        assert sup["lossy_recoveries"] == 0
        assert not any(
            a.module.startswith("shard-") for a in det.watchdog.alerts
        )


# ---------------------------------------------------------------------------
# loud degradation: crash outruns the replay buffer
# ---------------------------------------------------------------------------
class TestLossyRecovery:
    def test_outrun_buffer_degrades_loudly_and_completes(
        self, bundle, stream, reference
    ):
        """Tiny replay buffer + a kill far past the last checkpoint: the
        run must complete (no deadlock), count a lossy recovery, and mark
        the shard FAILED — silent divergence is the one forbidden
        outcome."""
        plan = ProcessChaos(kills=((8, 0, "sigkill"),))
        det, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=1000, replay_buffer_records=40,
        )
        sup = det.supervision_stats
        assert sup["lossy_recoveries"] == 1
        assert sup["replay_dropped_records"] > 0
        failed = [
            a for a in det.watchdog.alerts
            if a.module == "shard-0" and a.state.name == "FAILED"
        ]
        assert failed and "outran the replay buffer" in failed[0].reason
        assert det.stats()["health"]["shard-0"] == "FAILED"
        # loud, not silent: the divergence is visible in the digest AND
        # in the counters; predictions still flowed for the healthy shard
        assert len(db.predictions) > 0
        assert prediction_log_digest(db) != reference[None]

    def test_ample_buffer_never_goes_lossy(self, bundle, stream, reference):
        plan = ProcessChaos(kills=((8, 0, "sigkill"),))
        det, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=1000,  # no checkpoint: full replay needed
            replay_buffer_records=100_000,
        )
        assert det.supervision_stats["lossy_recoveries"] == 0
        assert prediction_log_digest(db) == reference[None]
