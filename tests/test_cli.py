"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"
        assert args.numbers == []
        assert args.profile == "small"

    def test_tables_numbers(self):
        args = build_parser().parse_args(["tables", "3", "4", "--profile", "tiny"])
        assert args.numbers == [3, 4]
        assert args.profile == "tiny"

    def test_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--profile", "bogus"])


class TestCommands:
    def test_schedule(self, capsys):
        assert main(["schedule"]) == 0
        out = capsys.readouterr().out
        assert "SYN Flood" in out and "13:24:02" in out

    def test_static_tables(self, capsys):
        assert main(["tables", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_static_figures(self, capsys):
        assert main(["figures", "1", "6"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "Fig 6" in out

    def test_invalid_table_number(self, capsys):
        assert main(["tables", "9"]) == 2
        assert "no Table 9" in capsys.readouterr().err

    def test_invalid_figure_number(self, capsys):
        assert main(["figures", "0"]) == 2
        assert "no Fig 0" in capsys.readouterr().err

    @pytest.mark.slow
    def test_dataset_tiny(self, capsys):
        assert main(["dataset", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "INT reports" in out
        assert "SYN Flood" in out

    @pytest.mark.slow
    def test_report_writes_artifacts(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path / "r"),
                     "--profile", "tiny"]) == 0
        names = {p.name for p in (tmp_path / "r").iterdir()}
        assert {"table3.txt", "table6.txt", "fig5.txt", "fig7.txt"} <= names
        assert "Table III" in (tmp_path / "r" / "table3.txt").read_text()
