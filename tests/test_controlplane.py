"""Tests for episode-level alerting (control-plane integration)."""

import pytest

from repro.controlplane import Alert, AlertManager, AlertSeverity, LogSink
from repro.core.database import PredictionEntry

SEC = 1_000_000_000
SERVER = 0x0A0A0050


def entry(key, ts, decision=1):
    return PredictionEntry(key=key, ts_registered_ns=ts, wall_registered_ns=0,
                           wall_predicted_ns=1, label=decision,
                           votes=(decision,), final_decision=decision)


def flow_key(i, server=SERVER, port=80):
    # canonical ordering: low (ip, port) endpoint first
    attacker = 0xC0000000 + i
    if (server, port) <= (attacker, 40000 + i):
        return (server, attacker, port, 40000 + i, 6)
    return (attacker, server, 40000 + i, port, 6)


class TestAlertLifecycle:
    def make(self, **kw):
        sink = LogSink()
        mgr = AlertManager(server_ips={SERVER}, open_threshold=3,
                           window_ns=SEC, quiet_ns=2 * SEC, sinks=[sink], **kw)
        return mgr, sink

    def test_opens_after_threshold(self):
        mgr, sink = self.make()
        assert mgr.on_decision(entry(flow_key(1), 0)) is None
        assert mgr.on_decision(entry(flow_key(2), 100)) is None
        alert = mgr.on_decision(entry(flow_key(3), 200))
        assert alert is not None and alert.is_open
        assert alert.service == (SERVER, 80, 6)
        assert [e for e, _ in sink.events] == ["open"]

    def test_window_forgetting(self):
        mgr, _ = self.make()
        mgr.on_decision(entry(flow_key(1), 0))
        mgr.on_decision(entry(flow_key(2), 100))
        # third flow arrives after the window: first two expired
        assert mgr.on_decision(entry(flow_key(3), 3 * SEC)) is None

    def test_updates_accumulate_flows(self):
        mgr, sink = self.make()
        for i in range(12):
            mgr.on_decision(entry(flow_key(i), i * 1000))
        (alert,) = mgr.open_alerts
        assert alert.n_flows == 12
        assert alert.severity == AlertSeverity.MEDIUM
        assert ("update", alert) in sink.events  # severity LOW -> MEDIUM

    def test_closes_after_quiet(self):
        mgr, sink = self.make()
        for i in range(3):
            mgr.on_decision(entry(flow_key(i), i * 1000))
        closed = mgr.expire(now_ns=10 * SEC)
        assert len(closed) == 1
        assert not closed[0].is_open
        assert closed[0].closed_ns == closed[0].last_evidence_ns
        assert [e for e, _ in sink.events] == ["open", "close"]

    def test_duration_measures_episode(self):
        mgr, _ = self.make()
        mgr.on_decision(entry(flow_key(0), 0))
        mgr.on_decision(entry(flow_key(1), 0))
        mgr.on_decision(entry(flow_key(2), 0))
        mgr.on_decision(entry(flow_key(3), int(0.5 * SEC)))
        mgr.expire(10 * SEC)
        assert mgr.alerts[0].duration_ns == int(0.5 * SEC)

    def test_benign_decisions_ignored(self):
        mgr, _ = self.make()
        for i in range(10):
            assert mgr.on_decision(entry(flow_key(i), i, decision=0)) is None
        assert mgr.open_alerts == []

    def test_distinct_services_distinct_alerts(self):
        mgr, _ = self.make()
        for i in range(3):
            mgr.on_decision(entry(flow_key(i, port=80), i))
        for i in range(3):
            mgr.on_decision(entry(flow_key(i + 50, port=443), i + 10))
        assert len(mgr.open_alerts) == 2
        services = {a.service for a in mgr.open_alerts}
        assert (SERVER, 80, 6) in services and (SERVER, 443, 6) in services

    def test_close_all(self):
        mgr, _ = self.make()
        for i in range(3):
            mgr.on_decision(entry(flow_key(i), i))
        mgr.close_all(now_ns=5 * SEC)
        assert mgr.open_alerts == []
        assert mgr.alerts[0].closed_ns == 5 * SEC

    def test_service_orientation_without_server_hint(self):
        mgr = AlertManager(open_threshold=1)
        alert = mgr.on_decision(entry(flow_key(1), 0))
        assert alert.service[1] == 80  # lower port = service side

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AlertManager(open_threshold=0)
        with pytest.raises(ValueError):
            AlertManager(window_ns=0)


class TestDetectorIntegration:
    def test_attach_to_detector_stream(self):
        import numpy as np
        from repro.core import AutomatedDDoSDetector, pretrain
        from repro.features import extract_features, feature_names
        from repro.int_telemetry import REPORT_DTYPE
        from repro.ml import GaussianNB, RandomForestClassifier

        # trivially separable data: attack = tiny fast packets
        def records(attack, t0=0, n_flows=8, pkts=4):
            rows = []
            t = t0
            for f in range(n_flows):
                for p in range(pkts):
                    t += 30_000 if attack else 2_000_000
                    src = 0x01000000 + f if attack else 0xAC100000 + f
                    rows.append((t, src, SERVER, 1000 + f, 80, 6, 2,
                                 60 if attack else 1200,
                                 t % 2**32, t % 2**32, 0, 500, 3))
            rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
            for i, r in enumerate(rows):
                rec[i] = r
            return rec

        ben, atk = records(False), records(True, t0=10**9)
        both = np.concatenate([ben, atk])
        fm = extract_features(both, source="int")
        y = np.array([0] * len(ben) + [1] * len(atk))
        bundle = pretrain(fm.X, y, fm.names, panel={
            "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=0),
            "gnb": lambda: GaussianNB(),
        })
        det = AutomatedDDoSDetector(bundle)
        sink = LogSink()
        mgr = AlertManager(server_ips={SERVER}, open_threshold=3,
                           window_ns=10 * SEC, quiet_ns=10 * SEC, sinks=[sink])
        mgr.attach_to(det)
        det.run_stream(records(True, t0=50 * SEC))
        mgr.close_all(100 * SEC)
        assert len(mgr.alerts) == 1
        assert mgr.alerts[0].service == (SERVER, 80, 6)
        assert mgr.alerts[0].n_flows >= 3


class TestSweepAlerts:
    def test_port_sweep_opens_host_alert(self):
        mgr = AlertManager(server_ips={SERVER}, open_threshold=3,
                           window_ns=SEC, quiet_ns=2 * SEC, sweep_threshold=10)
        # one flagged flow per distinct destination port — a scan
        for port in range(1, 15):
            key = (SERVER, 0xC0000001, port, 41000 + port, 6)
            mgr.on_decision(entry(key, port * 1000))
        sweeps = [a for a in mgr.alerts if a.service[1] == 0]
        assert len(sweeps) == 1
        assert sweeps[0].n_flows >= 10
        assert sweeps[0].service == (SERVER, 0, 6)

    def test_sweep_below_threshold_silent(self):
        mgr = AlertManager(server_ips={SERVER}, sweep_threshold=50)
        for port in range(1, 10):
            key = (SERVER, 0xC0000001, port, 41000 + port, 6)
            mgr.on_decision(entry(key, port))
        assert mgr.alerts == []

    def test_sweep_alert_absorbs_further_probes(self):
        mgr = AlertManager(server_ips={SERVER}, sweep_threshold=5)
        for port in range(1, 30):
            key = (SERVER, 0xC0000001, port, 41000 + port, 6)
            mgr.on_decision(entry(key, port * 1000))
        sweeps = [a for a in mgr.alerts if a.service[1] == 0]
        assert len(sweeps) == 1  # one sweep alert, not many
        assert sweeps[0].n_flows >= 25

    def test_invalid_sweep_threshold(self):
        with pytest.raises(ValueError):
            AlertManager(sweep_threshold=1)


class TestEpisodeBridge:
    """Episode → action bridge: alerts escalate into the controller."""

    def make(self, min_severity=1, **alert_kw):
        from repro.controlplane import EpisodeBridge
        from repro.mitigation import MitigationController

        ctrl = MitigationController()
        kw = dict(server_ips={SERVER}, open_threshold=3,
                  window_ns=SEC, quiet_ns=2 * SEC)
        kw.update(alert_kw)
        bridge = EpisodeBridge(
            ctrl, alerts=AlertManager(**kw), min_severity=min_severity
        )
        return ctrl, bridge

    def test_flood_escalates_to_service_rate_limit_once(self):
        ctrl, bridge = self.make()
        bridge.consume([entry(flow_key(i), i * 1000) for i in range(8)])
        episode = [a for a in ctrl.action_log if a.tier == "episode"]
        assert len(episode) == 1
        (a,) = episode
        assert a.rule == "episode-service-limit"
        assert a.action == "rate_limit" and a.scope == "service"
        assert a.target == ("service", SERVER, 80, 6)
        assert ctrl.counters["episode_escalations"] == 1
        assert bridge.stats()["services_escalated"] == 1

    def test_port_sweep_escalates_to_source_block(self):
        ctrl, bridge = self.make(sweep_threshold=5)
        attacker = 0xC0000001
        bridge.consume([
            entry((SERVER, attacker, port, 41000 + port, 6), port * 1000)
            for port in range(1, 10)
        ])
        sweeps = [
            a for a in ctrl.action_log if a.rule == "episode-sweep-block"
        ]
        assert len(sweeps) == 1
        assert sweeps[0].action == "block" and sweeps[0].scope == "source"
        assert sweeps[0].target == ("source", attacker)

    def test_min_severity_gates_escalation(self):
        ctrl, bridge = self.make(min_severity=int(AlertSeverity.MEDIUM))
        # 3 distinct flows opens the alert at LOW: tracked, not enforced
        bridge.consume([entry(flow_key(i), i * 1000) for i in range(3)])
        assert bridge.stats()["alerts_total"] == 1
        assert bridge.stats()["services_escalated"] == 0
        # the flow ladder reaches MEDIUM -> now it escalates (once)
        bridge.consume([entry(flow_key(i), i * 1000) for i in range(3, 15)])
        assert bridge.stats()["services_escalated"] == 1
        assert ctrl.counters["episode_escalations"] == 1

    def test_benign_stream_never_escalates(self):
        ctrl, bridge = self.make()
        bridge.consume(
            [entry(flow_key(i), i * 1000, decision=0) for i in range(20)]
        )
        assert ctrl.action_log == []
        assert bridge.stats()["alerts_total"] == 0

    def test_close_episodes_flushes_open_alerts(self):
        _, bridge = self.make()
        bridge.consume([entry(flow_key(i), i * 1000) for i in range(4)])
        assert bridge.stats()["alerts_open"] == 1
        bridge.close_episodes(10 * SEC)
        assert bridge.stats()["alerts_open"] == 0
        assert bridge.open_alerts == []

    def test_attach_inline_escalates_at_store_time(self):
        ctrl, bridge = self.make()

        class _DB:
            def __init__(self):
                self.predictions = []

            def store_prediction(self, e):
                self.predictions.append(e)

        class _Det:
            def __init__(self):
                self.db = _DB()

        det = _Det()
        assert bridge.attach_inline(det) is bridge
        for i in range(5):
            det.db.store_prediction(entry(flow_key(i), i * 1000))
        assert bridge.stats()["inline"] is True
        assert ctrl.counters["episode_escalations"] == 1
        assert len(det.db.predictions) == 5  # stores still land


class TestHTTPAPI:
    """The thin stdlib HTTP transport over the command API."""

    @pytest.fixture()
    def api(self):
        from repro.controlplane import MitigationHTTPServer
        from repro.mitigation import MitigationController

        ctrl = MitigationController()
        server = MitigationHTTPServer(ctrl, port=0).start()
        try:
            yield ctrl, server
        finally:
            server.close()

    @staticmethod
    def _call(port, path, payload=None):
        import json
        import urllib.error
        import urllib.request

        url = f"http://127.0.0.1:{port}{path}"
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=5) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_get_routes_map_to_command_ops(self, api):
        ctrl, server = api
        for path in ("/stats", "/config", "/blocked", "/activity"):
            status, body = self._call(server.port, path)
            assert status == 200 and body["ok"] is True, path
        _, stats = self._call(server.port, "/stats")
        assert stats["result"] == ctrl.command({"op": "stats"})["result"]

    def test_post_command_round_trip(self, api):
        ctrl, server = api
        _, cfg = self._call(server.port, "/config")
        new_cfg = cfg["result"]
        new_cfg["burst"] = 7.0
        status, body = self._call(
            server.port, "/command", {"op": "set_config", "config": new_cfg}
        )
        assert status == 200 and body["ok"] is True
        assert ctrl.config.burst == 7.0
        assert ctrl.counters["config_updates"] == 1

    def test_errors_are_http_errors(self, api):
        _, server = api
        status, body = self._call(server.port, "/nope")
        assert status == 404 and body["ok"] is False
        status, body = self._call(server.port, "/command", {"op": "bogus"})
        assert status == 400 and body["ok"] is False
        assert "bogus" in body["error"]
