"""Tests for ROC/PR curves and cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    GaussianNB,
    average_precision,
    cross_val_score,
    kfold_indices,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)


class TestRocCurve:
    def test_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, thr = roc_curve(y, s)
        assert roc_auc_score(y, s) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[-1] == 1.0
        assert thr[0] == np.inf

    def test_inverted_classifier(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        s = rng.random(5000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 300)
        s = rng.random(300)
        fpr, tpr, _ = roc_curve(y, s)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_tied_scores_handled(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(y, s) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve([0, 0], [0.1, 0.2])  # one class
        with pytest.raises(ValueError):
            roc_curve([0, 1], [0.1])  # length mismatch
        with pytest.raises(ValueError):
            roc_curve([0, 2], [0.1, 0.2])  # non-binary


class TestPrCurve:
    def test_perfect(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert average_precision(y, s) == pytest.approx(1.0)

    def test_precision_at_full_recall(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.9, 0.8, 0.7, 0.6])
        precision, recall, _ = precision_recall_curve(y, s)
        assert recall[-1] == 1.0
        assert precision[-1] == pytest.approx(0.5)

    @given(st.integers(10, 200), st.integers(0, 2**16))
    @settings(max_examples=60)
    def test_ap_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        s = rng.random(n)
        ap = average_precision(y, s)
        assert 0.0 <= ap <= 1.0


class TestKFold:
    def test_partition(self):
        seen = np.zeros(100, dtype=int)
        for train, test in kfold_indices(100, k=5, seed=0):
            seen[test] += 1
            assert set(train) | set(test) == set(range(100))
            assert not set(train) & set(test)
        assert (seen == 1).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, k=1))
        with pytest.raises(ValueError):
            list(kfold_indices(3, k=5))


class TestCrossVal:
    def test_separable_scores_high(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (200, 3)), rng.normal(4, 1, (200, 3))])
        y = np.array([0] * 200 + [1] * 200)
        scores = cross_val_score(GaussianNB, X, y, k=5, seed=0)
        assert scores.shape == (5,)
        assert scores.mean() > 0.97
        assert scores.std() < 0.05

    def test_fresh_model_per_fold(self):
        calls = []

        class Probe(GaussianNB):
            def __init__(self):
                super().__init__()
                calls.append(1)

        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        cross_val_score(Probe, X, y, k=3, seed=0)
        assert len(calls) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cross_val_score(GaussianNB, np.zeros((5, 2)), np.zeros(4))
