"""Tests for the analysis layer: table rendering, figures, experiments.

The heavyweight studies run on the ``tiny`` profile here; the benchmark
harness exercises the ``small`` profile.
"""

import numpy as np
import pytest

from repro.analysis import (
    confusion_matrix_figure,
    prediction_scatter_figure,
    render_table,
    run_offline_study,
    run_testbed_study,
    timeline_figure,
)
from repro.analysis.report import exp_fig1, exp_fig6, exp_table1, exp_table2


class TestRenderTable:
    def test_basic(self):
        out = render_table("T", ("a", "bb"), [(1, 2.5), (10, 0.123456)])
        assert "T" in out
        assert "0.1235" in out  # 4-digit float formatting
        assert "| bb" in out or "bb" in out.splitlines()[2]

    def test_note(self):
        out = render_table("T", ("a",), [(1,)], note="hello")
        assert out.endswith("Note: hello")

    def test_empty_rows(self):
        out = render_table("T", ("a", "b"), [])
        assert "a" in out


class TestFigures:
    def test_confusion_matrix_percentages(self):
        out = confusion_matrix_figure(np.array([[90, 10], [0, 100]]), "cm")
        assert "45.0%" in out  # 90/200
        assert "pred Attack" in out

    def test_confusion_matrix_shape_check(self):
        with pytest.raises(ValueError):
            confusion_matrix_figure(np.zeros((3, 3)), "cm")

    def test_timeline_marks_episodes_and_gaps(self):
        ts = np.array([100, 200, 800])
        vals = np.array([0, 1, 0])
        out = timeline_figure(
            "fig", 0, 1000, [("s", ts, vals)], episodes=[("e", 150, 260)],
            width=10,
        )
        assert "episodes" in out
        line = [l for l in out.splitlines() if l.strip().startswith("s |")][0]
        assert "#" in line and " " in line

    def test_timeline_threshold_suppresses_rare_fps(self):
        ts = np.arange(1000)
        vals = np.zeros(1000)
        vals[5] = 1  # a single FP among 1000 rows in one bin
        out = timeline_figure("fig", 0, 1000, [("s", ts, vals)], width=1)
        line = [l for l in out.splitlines() if l.strip().startswith("s |")][0]
        assert "#" not in line

    def test_scatter_marks_errors(self):
        decisions = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        out = prediction_scatter_figure("f", decisions, true_label=0, rows=1)
        assert "x" in out
        assert "2/8" in out

    def test_scatter_empty(self):
        out = prediction_scatter_figure("f", np.array([]), 0)
        assert "no decisions" in out


class TestStaticReports:
    def test_table1_lists_all_episodes(self):
        out = exp_table1()
        assert out.count("SYN Flood") == 5
        assert out.count("SlowLoris") == 2
        assert "13:24:02" in out

    def test_table2_feature_counts(self):
        out = exp_table2()
        assert "queue_occupancy" in out
        assert "hop_latency" in out

    def test_fig1_walkthrough(self):
        out = exp_fig1()
        assert "switch 1" in out and "switch 2" in out and "switch 3" in out
        assert "sink report" in out

    def test_fig6_ports(self):
        out = exp_fig6()
        for p in ("port 1", "port 2", "port 3", "port 4", "port 5"):
            assert p in out


@pytest.mark.slow
class TestStudiesOnTinyProfile:
    def test_offline_study(self):
        study = run_offline_study("tiny", seed=0)
        # all four models reported for both protocols, both sources
        for res in (study.int_res, study.sflow_res):
            assert set(res.table3) == {"RF", "GNB", "KNN", "NN"}
            for rep in res.table3.values():
                assert 0.0 <= rep["accuracy"] <= 1.0
        # INT separates well even on the tiny profile
        assert study.int_res.table3["RF"]["accuracy"] > 0.95
        assert study.int_res.cm_rf_split.sum() > 0
        assert study.int_res.rf_full_predictions.shape[0] == len(study.int_res.fm)
        # importances exist for every model
        assert set(study.int_res.importances) == {"RF", "GNB", "KNN", "NN"}

    def test_offline_study_cached(self):
        a = run_offline_study("tiny", seed=0)
        b = run_offline_study("tiny", seed=0)
        assert a is b

    def test_testbed_study(self):
        study = run_testbed_study("tiny", seed=0, n_packets=400)
        assert set(study.table6) == {"Benign", "SYN Scan", "UDP Scan",
                                     "SYN Flood", "SlowLoris"}
        for name, row in study.table6.items():
            assert 0.0 <= row["accuracy"] <= 1.0, name
            assert row["predicted"] > 0
            assert row["avg_time_s"] >= 0
        # trained attacks should be detected well even on tiny data
        assert study.table6["SYN Flood"]["accuracy"] > 0.9
        assert study.bundle_models == ["mlp", "rf", "gnb"]
