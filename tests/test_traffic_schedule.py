"""Tests for the Table I schedule and its simulation-time mapping."""

from datetime import datetime

import numpy as np
import pytest

from repro.traffic import AttackType, CampaignSchedule, Episode, table1_schedule
from repro.traffic.schedule import CAMPAIGN_ORIGIN


class TestTable1:
    def test_eleven_episodes(self):
        assert len(table1_schedule()) == 11

    def test_type_counts_match_paper(self):
        eps = table1_schedule()
        counts = {}
        for ep in eps:
            counts[ep.attack_type] = counts.get(ep.attack_type, 0) + 1
        assert counts[AttackType.SYN_SCAN] == 2
        assert counts[AttackType.UDP_SCAN] == 2
        assert counts[AttackType.SYN_FLOOD] == 5
        assert counts[AttackType.SLOWLORIS] == 2

    def test_first_episode_is_33_minute_scan(self):
        ep = table1_schedule()[0]
        assert ep.attack_type == AttackType.SYN_SCAN
        assert ep.start == datetime(2024, 6, 10, 13, 24, 2)
        assert 1900 < ep.duration_s < 2100  # "approximately 33 minutes"

    def test_slowloris_on_june_11_only(self):
        for ep in table1_schedule():
            if ep.attack_type == AttackType.SLOWLORIS:
                assert ep.start.day == 11

    def test_episodes_ordered_and_nonoverlapping(self):
        eps = table1_schedule()
        for a, b in zip(eps, eps[1:]):
            assert a.end <= b.start

    def test_invalid_episode_rejected(self):
        with pytest.raises(ValueError):
            Episode(AttackType.SYN_SCAN, datetime(2024, 6, 10, 12), datetime(2024, 6, 10, 11))


class TestCampaignSchedule:
    def test_origin_maps_to_zero(self):
        s = CampaignSchedule()
        assert s.to_sim_ns(CAMPAIGN_ORIGIN) == 0

    def test_compression_factor(self):
        s = CampaignSchedule(time_scale=1 / 600)
        one_hour_later = datetime(2024, 6, 6, 1, 0, 0)
        assert s.to_sim_ns(one_hour_later) == 6 * 10**9  # 3600 s / 600

    def test_identity_scale(self):
        s = CampaignSchedule(time_scale=1.0)
        t = datetime(2024, 6, 6, 0, 0, 10)
        assert s.to_sim_ns(t) == 10 * 10**9

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CampaignSchedule(time_scale=0)

    def test_windows_preserve_duration_ratios(self):
        s = CampaignSchedule(time_scale=1 / 600)
        windows = s.sim_windows()
        for ep, (_t, start, end) in zip(s.episodes, windows):
            sim_dur = (end - start) / 1e9
            assert sim_dur == pytest.approx(ep.duration_s / 600, rel=1e-6)

    def test_campaign_end_after_last_episode(self):
        s = CampaignSchedule()
        last_end = max(e for _, _, e in s.sim_windows())
        assert s.campaign_end_ns() > last_end

    def test_label_timestamps(self):
        s = CampaignSchedule()
        atype, start, end = s.sim_windows()[0]
        ts = np.array([start - 1, start, (start + end) // 2, end - 1, end])
        labels = s.label_timestamps(ts)
        assert labels.tolist() == [0, int(atype), int(atype), int(atype), 0]

    def test_label_outside_everything(self):
        s = CampaignSchedule()
        labels = s.label_timestamps(np.array([0, 10**9]))
        assert (labels == 0).all()

    def test_episodes_of_type(self):
        s = CampaignSchedule()
        floods = s.episodes_of_type(AttackType.SYN_FLOOD)
        assert len(floods) == 5
