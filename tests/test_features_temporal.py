"""Tests for sliding-window temporal features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import extract_features
from repro.features.temporal import (
    TEMPORAL_FEATURES,
    add_temporal_features,
    temporal_feature_names,
)
from repro.int_telemetry import REPORT_DTYPE


def records_for(flows):
    """flows: list of (src_ip, [(ts, length), ...])."""
    rows = []
    for src, pkts in flows:
        for ts, length in pkts:
            rows.append((ts, src, 2, 1000, 80, 6, 0, length,
                         ts % 2**32, ts % 2**32, 0, 0, 1))
    rows.sort(key=lambda r: r[0])
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, r in enumerate(rows):
        rec[i] = r
    return rec


def augment(rec, window_ns):
    fm = extract_features(rec, source="int")
    return add_temporal_features(fm, rec["ts_report"], rec["length"], window_ns)


class TestTemporalFeatures:
    def test_names_and_shape(self):
        rec = records_for([(1, [(0, 100), (10, 100)])])
        out = augment(rec, 1000)
        assert out.X.shape[1] == 15 + len(TEMPORAL_FEATURES)
        assert out.names[-5:] == temporal_feature_names(1e-6)

    def test_window_counts(self):
        # packets at t=0, 100, 250; window of 200 ns
        rec = records_for([(1, [(0, 10), (100, 20), (250, 30)])])
        out = augment(rec, 200)
        c = out.names.index("win_packets_2e-07s")
        b = out.names.index("win_bytes_2e-07s")
        # t=0: itself; t=100: both; t=250: itself + t=100 (t=0 is out)
        assert out.X[:, c].tolist() == [1, 2, 2]
        assert out.X[:, b].tolist() == [10, 30, 50]

    def test_flows_isolated(self):
        rec = records_for([
            (1, [(0, 10), (50, 10)]),
            (9, [(25, 99)]),
        ])
        out = augment(rec, 1000)
        c = out.names.index("win_packets_1e-06s")
        # the flow-9 packet must not count flow-1 packets
        row9 = np.flatnonzero(rec["src_ip"] == 9)[0]
        assert out.X[row9, c] == 1

    def test_window_longer_than_flow_equals_cumulative(self):
        rec = records_for([(1, [(0, 10), (100, 20), (200, 30)])])
        out = augment(rec, 10**9)
        c = out.names.index("win_packets_1s")
        n_idx = out.names.index("n_packets")
        assert np.array_equal(out.X[:, c], out.X[:, n_idx])

    def test_rate_features(self):
        rec = records_for([(1, [(0, 100), (500, 100)])])
        out = augment(rec, 1000)  # 1 µs window
        pps = out.names.index("win_pps_1e-06s")
        assert out.X[1, pps] == pytest.approx(2 / 1e-6)

    def test_invalid_window(self):
        rec = records_for([(1, [(0, 10)])])
        fm = extract_features(rec, source="int")
        with pytest.raises(ValueError):
            add_temporal_features(fm, rec["ts_report"], rec["length"], 0)

    def test_misaligned_inputs(self):
        rec = records_for([(1, [(0, 10)])])
        fm = extract_features(rec, source="int")
        with pytest.raises(ValueError):
            add_temporal_features(fm, rec["ts_report"][:0], rec["length"], 10)

    def test_empty(self):
        rec = records_for([])
        out = augment(rec, 100)
        assert out.X.shape == (0, 20)


@given(
    n_flows=st.integers(1, 4),
    n_pkts=st.integers(1, 40),
    window=st.integers(1, 500),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_matches_naive_reference(n_flows, n_pkts, window, seed):
    """Vectorized windowed counts equal a per-packet reference loop."""
    rng = np.random.default_rng(seed)
    flows = []
    for f in range(n_flows):
        ts = np.sort(rng.integers(0, 1000, size=n_pkts))
        flows.append((f + 1, [(int(t), int(rng.integers(10, 200))) for t in ts]))
    rec = records_for(flows)
    out = augment(rec, window)
    c = [i for i, n in enumerate(out.names) if n.startswith("win_packets")][0]
    b = [i for i, n in enumerate(out.names) if n.startswith("win_bytes")][0]
    for i in range(rec.shape[0]):
        same_flow = rec["src_ip"] == rec["src_ip"][i]
        in_window = (
            (rec["ts_report"] > rec["ts_report"][i] - window)
            & (rec["ts_report"] <= rec["ts_report"][i])
        )
        # respect arrival-order ties: only rows at or before i count
        eligible = same_flow & in_window & (np.arange(rec.shape[0]) <= i)
        assert out.X[i, c] == eligible.sum()
        assert out.X[i, b] == pytest.approx(rec["length"][eligible].sum())
