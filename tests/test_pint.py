"""Tests for probabilistic/sampled INT (PINT-style roles)."""

import numpy as np
import pytest

from repro.dataplane import Packet, Protocol, int_path_topology
from repro.int_telemetry import (
    IntCollector,
    IntSink,
    PintSource,
    PintTransit,
    overhead_report,
)


def build_path(packet_fraction=1.0, hop_probability=1.0, seed=0):
    topo = int_path_topology()
    col = IntCollector(keep_stacks=True)
    src = PintSource(packet_fraction=packet_fraction, seed=seed)
    src.attach(topo.switches["source_sw"])
    transits = []
    # distinct seeds per hop — identical streams would correlate the
    # hop decisions into all-or-nothing stacks
    for k, name in enumerate(("source_sw", "transit_sw", "sink_sw")):
        tr = PintTransit(hop_probability=hop_probability, seed=seed + 1 + k)
        tr.attach(topo.switches[name])
        transits.append(tr)
    IntSink(col).attach(topo.switches["sink_sw"])
    return topo, col, src, transits


def drive(topo, n=400):
    client, server = topo.hosts["client"], topo.hosts["server"]
    for i in range(n):
        client.send_at(i * 10_000, Packet(
            src_ip=client.ip, dst_ip=server.ip, src_port=40000, dst_port=80,
            protocol=int(Protocol.TCP), length=200, flow_seq=i,
        ))
    topo.run()


class TestPintSource:
    def test_full_fraction_is_classic_int(self):
        topo, col, src, _ = build_path(packet_fraction=1.0)
        drive(topo, 100)
        assert len(col) == 100
        assert src.initiated == 100

    def test_fraction_subsamples(self):
        topo, col, src, _ = build_path(packet_fraction=0.25, seed=3)
        drive(topo, 2000)
        assert len(col) == pytest.approx(500, rel=0.2)
        assert src.observed == 2000

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PintSource(packet_fraction=0.0)
        with pytest.raises(ValueError):
            PintSource(packet_fraction=1.5)


class TestPintTransit:
    def test_full_probability_records_every_hop(self):
        topo, col, _, _ = build_path(hop_probability=1.0)
        drive(topo, 50)
        rec = col.to_records()
        assert (rec["hops"] == 3).all()

    def test_probabilistic_hops(self):
        topo, col, _, _ = build_path(hop_probability=0.5, seed=5)
        drive(topo, 1000)
        rec = col.to_records()
        # mean recorded hops ≈ 3 × 0.5 (packets whose stack ends empty
        # produce no report and bias slightly upward)
        assert 1.2 < rec["hops"].mean() < 2.2
        assert rec["hops"].max() <= 3

    def test_empty_stack_produces_no_report(self):
        topo, col, _, transits = build_path(hop_probability=0.01, seed=9)
        drive(topo, 200)
        # nearly all packets record zero hops → no reports for them
        assert len(col) < 50
        for rec in col.to_records():
            assert rec["hops"] >= 1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            PintTransit(hop_probability=0.0)


class TestOverheadReport:
    def test_full_int_overhead(self):
        topo, col, _, _ = build_path()
        drive(topo, 100)
        rep = overhead_report(col.to_records(), total_packets=100)
        assert rep["monitored_fraction"] == 1.0
        assert rep["mean_hops_recorded"] == 3.0
        # 3 hops × 16 B + 12 B shim/header per packet
        assert rep["mean_bytes_per_packet"] == pytest.approx(3 * 16 + 12)

    def test_sampling_reduces_overhead(self):
        topo_f, col_f, _, _ = build_path(packet_fraction=1.0)
        drive(topo_f, 1000)
        topo_s, col_s, _, _ = build_path(packet_fraction=0.1, seed=2)
        drive(topo_s, 1000)
        full = overhead_report(col_f.to_records(), 1000)
        samp = overhead_report(col_s.to_records(), 1000)
        assert samp["mean_bytes_per_packet"] < 0.25 * full["mean_bytes_per_packet"]

    def test_empty_capture(self):
        from repro.int_telemetry import REPORT_DTYPE
        rep = overhead_report(np.empty(0, dtype=REPORT_DTYPE), 10)
        assert rep["metadata_bytes"] == 0
        assert rep["monitored_fraction"] == 0.0

    def test_invalid_total(self):
        from repro.int_telemetry import REPORT_DTYPE
        with pytest.raises(ValueError):
            overhead_report(np.empty(0, dtype=REPORT_DTYPE), 0)
