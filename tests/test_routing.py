"""Tests for LPM routing and its integration into the switch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import Packet, Protocol, Topology, ip
from repro.dataplane.routing import LpmTable


class TestLpmTable:
    def test_empty_lookup(self):
        assert LpmTable().lookup(ip("1.2.3.4")) is None

    def test_exact_slash32(self):
        t = LpmTable()
        t.add(ip("10.0.0.1"), 32, "a")
        assert t.lookup(ip("10.0.0.1")) == "a"
        assert t.lookup(ip("10.0.0.2")) is None

    def test_longest_prefix_wins(self):
        t = LpmTable()
        t.add(ip("10.0.0.0"), 8, "coarse")
        t.add(ip("10.1.0.0"), 16, "finer")
        t.add(ip("10.1.2.0"), 24, "finest")
        assert t.lookup(ip("10.9.9.9")) == "coarse"
        assert t.lookup(ip("10.1.9.9")) == "finer"
        assert t.lookup(ip("10.1.2.9")) == "finest"

    def test_default_route_zero(self):
        t = LpmTable()
        t.add(0, 0, "default")
        assert t.lookup(ip("203.0.113.5")) == "default"

    def test_replace(self):
        t = LpmTable()
        t.add(ip("10.0.0.0"), 8, "old")
        t.add(ip("10.0.0.0"), 8, "new")
        assert len(t) == 1
        assert t.lookup(ip("10.5.5.5")) == "new"

    def test_remove(self):
        t = LpmTable()
        t.add(ip("10.0.0.0"), 8, "x")
        assert t.remove(ip("10.0.0.0"), 8) is True
        assert t.remove(ip("10.0.0.0"), 8) is False
        assert t.lookup(ip("10.5.5.5")) is None
        assert len(t) == 0

    def test_base_masked_on_insert(self):
        t = LpmTable()
        t.add(ip("10.1.2.3"), 8, "net10")  # host bits ignored
        assert t.lookup(ip("10.200.0.1")) == "net10"

    def test_lookup_prefix(self):
        t = LpmTable()
        t.add(ip("10.1.0.0"), 16, "v")
        base, bits, val = t.lookup_prefix(ip("10.1.2.3"))
        assert (base, bits, val) == (ip("10.1.0.0"), 16, "v")

    def test_invalid_prefix_len(self):
        with pytest.raises(ValueError):
            LpmTable().add(0, 33, "x")

    @given(st.lists(
        st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 32)),
        min_size=1, max_size=40,
    ), st.integers(0, 2**32 - 1))
    @settings(max_examples=80)
    def test_matches_linear_reference(self, routes, query):
        t = LpmTable()
        for i, (base, bits) in enumerate(routes):
            t.add(base, bits, i)
        # linear reference: best (longest) prefix with latest-wins per key
        best = None
        best_bits = -1
        seen = {}
        for i, (base, bits) in enumerate(routes):
            mask = 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            seen[(base & mask, bits)] = i
        for (base, bits), i in seen.items():
            mask = 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            if (query & mask) == base and bits > best_bits:
                best, best_bits = i, bits
        assert t.lookup(query) == best


class TestSwitchIntegration:
    def test_prefix_forwarding(self):
        topo = Topology()
        client = topo.add_host("c", "172.16.0.9")
        server = topo.add_host("s", "10.1.2.3")
        sw = topo.add_switch("sw", 1)
        topo.connect_host_to_switch(client, sw, 1, 1e9)
        topo.connect_host_to_switch(server, sw, 2, 1e9)
        sw.add_prefix_route(ip("10.0.0.0"), 8, 2)
        sw.add_prefix_route(ip("172.16.0.0"), 16, 1)
        pkt = Packet(src_ip=client.ip, dst_ip=server.ip, src_port=1,
                     dst_port=2, protocol=int(Protocol.UDP), length=100)
        client.send_at(0, pkt)
        topo.run()
        assert server.received == 1

    def test_exact_beats_prefix(self):
        topo = Topology()
        a = topo.add_host("a", "10.1.2.3")
        b = topo.add_host("b", "10.9.9.9")
        src = topo.add_host("src", "172.16.0.1")
        sw = topo.add_switch("sw", 1)
        topo.connect_host_to_switch(src, sw, 1, 1e9)
        topo.connect_host_to_switch(a, sw, 2, 1e9)
        topo.connect_host_to_switch(b, sw, 3, 1e9)
        sw.add_prefix_route(ip("10.0.0.0"), 8, 3)  # all of net10 -> b
        sw.add_route(a.ip, 2)  # except this exact host
        src.send_at(0, Packet(src_ip=src.ip, dst_ip=a.ip, src_port=1,
                              dst_port=2, protocol=17, length=100))
        src.send_at(10, Packet(src_ip=src.ip, dst_ip=b.ip, src_port=1,
                               dst_port=2, protocol=17, length=100))
        topo.run()
        assert a.received == 1 and b.received == 1

    def test_prefix_route_unknown_port(self):
        topo = Topology()
        sw = topo.add_switch("sw", 1)
        with pytest.raises(ValueError):
            sw.add_prefix_route(0, 0, 5)
