"""Property tests: Welford streaming moments vs two-pass NumPy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import Welford


class TestWelfordBasics:
    def test_empty(self):
        w = Welford()
        assert w.n == 0
        assert w.mean == 0.0
        assert w.std == 0.0

    def test_single_value(self):
        w = Welford()
        w.push(5.0)
        assert w.mean == 5.0
        assert w.variance == 0.0

    def test_two_values(self):
        w = Welford()
        w.push(2.0)
        w.push(4.0)
        assert w.mean == pytest.approx(3.0)
        assert w.variance == pytest.approx(1.0)  # population variance

    def test_constant_stream(self):
        w = Welford()
        for _ in range(100):
            w.push(7.5)
        assert w.mean == pytest.approx(7.5)
        assert w.std == pytest.approx(0.0, abs=1e-12)


values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=300,
)


@given(values_strategy)
@settings(max_examples=200)
def test_matches_two_pass(values):
    w = Welford()
    for v in values:
        w.push(v)
    arr = np.array(values)
    assert w.n == len(values)
    assert w.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-9)
    assert w.variance == pytest.approx(arr.var(), rel=1e-7, abs=1e-6)


@given(values_strategy, values_strategy)
@settings(max_examples=100)
def test_merge_equals_concatenation(a, b):
    wa = Welford()
    for v in a:
        wa.push(v)
    wb = Welford()
    for v in b:
        wb.push(v)
    wa.merge(wb)
    arr = np.array(a + b)
    assert wa.n == arr.size
    assert wa.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-9)
    assert wa.variance == pytest.approx(arr.var(), rel=1e-7, abs=1e-6)


def test_merge_with_empty_is_identity():
    w = Welford()
    for v in (1.0, 2.0, 3.0):
        w.push(v)
    before = (w.n, w.mean, w.variance)
    w.merge(Welford())
    assert (w.n, w.mean, w.variance) == before

    empty = Welford()
    empty.merge(w)
    assert empty.n == 3
    assert empty.mean == pytest.approx(2.0)


def test_numerical_stability_large_offset():
    """The catastrophic-cancellation case that breaks sum-of-squares."""
    w = Welford()
    offset = 1e9
    for v in (offset + 1, offset + 2, offset + 3):
        w.push(v)
    assert w.variance == pytest.approx(2.0 / 3.0, rel=1e-6)
