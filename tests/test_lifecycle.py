"""Unit tests for the online model lifecycle (repro.lifecycle).

These exercise the :class:`LifecycleManager` state machine directly by
feeding hand-built telemetry windows through :meth:`on_slice` — no
stream loop, no sharding — so every branch is pinned in isolation:
reference freeze, warn/alarm ladders, the retrain-skip paths, both
rollback paths (exception and holdout regression, each LOUD: event +
Watchdog FAILED), the successful swap, cooldown, forced swaps, and the
checkpoint/restore reinstall including its hash gate.  The satellite
fix to :meth:`PredictionModule.reinstate` (KeyError symmetry + the
HEALTHY transition) is covered here too.

Cross-process equivalence of the same machinery lives in
``test_lifecycle_recovery.py``.
"""

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.checkpoint import CheckpointError, panel_content_hash
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.lifecycle import (
    LifecycleConfig,
    LifecycleError,
    LifecycleManager,
    SwapCommand,
)
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.degradation import ModuleHealth

from .test_batch_equivalence import synthetic_records


# ---------------------------------------------------------------------------
# fixtures and helpers
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=0),
            "gnb": lambda: GaussianNB(),
        },
    )


def window(lengths, t0=0):
    """Telemetry window with a chosen length distribution (the drift
    feature under test); everything else held benign and constant."""
    lengths = np.asarray(lengths)
    n = lengths.shape[0]
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    rec["ts_report"] = t0 + np.arange(n) * 1_000_000
    rec["src_ip"] = 0xAC100000 + np.arange(n) % 30
    rec["dst_ip"] = 0x0A0A0050
    rec["src_port"] = 1000 + np.arange(n) % 30
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = np.clip(lengths, 60, 1500).astype(np.int64)
    rec["hop_latency"] = 500
    rec["hops"] = 3
    return rec


def ref_window(n=256, seed=0, t0=0):
    return window(np.random.default_rng(seed).normal(1200, 50, n), t0=t0)


def shifted_window(frac, n=256, seed=1, t0=0):
    """``frac`` of the rows jump to length 1500: frac=0.15 lands in the
    PSI warn band (0.1, 0.25], frac>=0.3 is a clear alarm."""
    k = int(n * frac)
    lengths = np.concatenate([
        np.random.default_rng(seed).normal(1200, 50, n - k),
        np.full(k, 1500.0),
    ])
    return window(lengths, t0=t0)


class ConstantModel:
    """Fit-anything classifier that always votes ``value``."""

    def __init__(self, value):
        self.value = int(value)

    def fit(self, X, y):
        return self

    def predict(self, X):
        return np.full(np.asarray(X).shape[0], self.value, dtype=np.int64)


def constant_panel(value):
    return lambda seed: {"const": lambda: ConstantModel(value)}


def make_manager(bundle, **overrides):
    defaults = dict(
        check_every=1,
        min_window_records=32,
        bins=10,
        drift_fields=["length"],
        reservoir_windows=4,
        min_retrain_records=64,
        holdout_every=4,
        cooldown_checks=0,
    )
    defaults.update(overrides)
    det = AutomatedDDoSDetector(bundle, batched=True)
    mgr = LifecycleManager(LifecycleConfig(**defaults)).attach_to(det)
    return det, mgr


def kinds(mgr):
    return [e.kind for e in mgr.events]


def alerts_for(det, module):
    return [a for a in det.watchdog.alerts if a.module == module]


# ---------------------------------------------------------------------------
# configuration and attachment
# ---------------------------------------------------------------------------
class TestConfig:
    @pytest.mark.parametrize("bad", [
        dict(check_every=0),
        dict(reservoir_windows=0),
        dict(holdout_every=1),
        dict(cooldown_checks=-1),
        dict(regression_tolerance=-0.1),
    ])
    def test_invalid_config_rejected(self, bad):
        with pytest.raises(ValueError):
            LifecycleConfig(**bad)

    def test_on_slice_requires_attachment(self):
        mgr = LifecycleManager()
        with pytest.raises(LifecycleError, match="not attached"):
            mgr.on_slice(ref_window())

    def test_attach_binds_detector_surfaces(self, bundle):
        det, mgr = make_manager(bundle)
        assert det.lifecycle is mgr
        assert mgr.watchdog is det.watchdog
        assert mgr.incumbent is det.bundle
        assert mgr.source == "int"

    def test_unknown_drift_field_is_loud(self, bundle):
        det, mgr = make_manager(bundle, drift_fields=["no_such_field"])
        with pytest.raises(LifecycleError, match="no_such_field"):
            mgr.on_slice(ref_window())

    def test_default_fields_intersect_dtype(self, bundle):
        det, mgr = make_manager(bundle, drift_fields=None)
        mgr.on_slice(ref_window())
        assert mgr.drift_fields == [
            "length", "hop_latency", "queue_occupancy", "protocol",
        ]


# ---------------------------------------------------------------------------
# monitoring ladder
# ---------------------------------------------------------------------------
class TestDriftLadder:
    def test_first_check_freezes_reference(self, bundle):
        det, mgr = make_manager(bundle)
        assert mgr.on_slice(ref_window()) is None
        assert kinds(mgr) == ["reference_frozen"]
        assert mgr.checks_done == 1
        assert mgr.monitor is not None and mgr.monitor.fitted

    def test_stable_traffic_stays_silent(self, bundle):
        det, mgr = make_manager(bundle)
        mgr.on_slice(ref_window(seed=0))
        mgr.on_slice(ref_window(seed=7, t0=10**9))
        assert kinds(mgr) == ["reference_frozen"]
        assert alerts_for(det, "lifecycle") == []

    def test_thin_slices_accumulate_until_min_window(self, bundle):
        det, mgr = make_manager(bundle, min_window_records=64)
        for i in range(3):
            mgr.on_slice(ref_window(n=20, seed=i))
            assert mgr.checks_done == 0  # 20, 40, 60 rows: below floor
        mgr.on_slice(ref_window(n=20, seed=3))
        assert mgr.checks_done == 1  # 80 rows crossed the floor
        assert mgr.slices_seen == 4

    def test_warn_band_emits_event_and_degraded(self, bundle):
        det, mgr = make_manager(bundle)
        mgr.on_slice(ref_window())
        cmd = mgr.on_slice(shifted_window(0.15, t0=10**9))
        assert cmd is None
        assert kinds(mgr) == ["reference_frozen", "drift_warn"]
        ev = mgr.events[-1]
        assert ev.detail["worst_feature"] == "length"
        assert 0.1 < ev.detail["worst_psi"] <= 0.25
        alert = alerts_for(det, "lifecycle")[-1]
        assert alert.state is ModuleHealth.DEGRADED
        assert "WARN" in alert.reason
        assert mgr.retrains == 0

    def test_alarm_without_label_fn_skips_loudly(self, bundle):
        det, mgr = make_manager(bundle)  # label_fn defaults to None
        mgr.on_slice(ref_window())
        cmd = mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert cmd is None
        assert kinds(mgr) == [
            "reference_frozen", "drift_alarm", "retrain_skipped",
        ]
        assert mgr.events[-1].detail["reason"] == "no label_fn configured"
        assert mgr.swaps == 0
        # the watchdog saw the degradation (one transition alert; the
        # follow-up same-state report is deduplicated by design)
        assert alerts_for(det, "lifecycle")[-1].state is ModuleHealth.DEGRADED

    def test_alarm_with_thin_reservoir_defers(self, bundle):
        det, mgr = make_manager(
            bundle,
            min_retrain_records=100_000,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
        )
        mgr.on_slice(ref_window())
        mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert kinds(mgr)[-1] == "retrain_skipped"
        assert mgr.events[-1].detail["reason"] == "reservoir too small"
        assert mgr.retrains == 0 and mgr.swaps == 0


# ---------------------------------------------------------------------------
# retraining: rollbacks and the swap
# ---------------------------------------------------------------------------
class TestRetrain:
    def test_label_fn_exception_rolls_back_loudly(self, bundle):
        def broken(records):
            raise RuntimeError("label store offline")

        det, mgr = make_manager(bundle, label_fn=broken)
        mgr.on_slice(ref_window())
        cmd = mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert cmd is None
        assert kinds(mgr)[-1] == "rollback"
        assert "label store offline" in mgr.events[-1].detail["reason"]
        assert mgr.rollbacks == 1 and mgr.swaps == 0
        assert mgr.epoch == 0
        assert det.prediction.panel_epoch == 0  # incumbent untouched
        alert = alerts_for(det, "lifecycle")[-1]
        assert alert.state is ModuleHealth.FAILED
        assert "incumbent panel kept" in alert.reason

    def test_label_count_mismatch_rolls_back(self, bundle):
        det, mgr = make_manager(
            bundle, label_fn=lambda r: np.zeros(3, dtype=np.int64)
        )
        mgr.on_slice(ref_window())
        mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert kinds(mgr)[-1] == "rollback"
        assert mgr.epoch == 0

    def test_holdout_regression_rolls_back_loudly(self, bundle):
        # Labels say everything is benign; the incumbent (trained to
        # call 1200-byte flows benign) aces that, the candidate is a
        # constant-1 model and scores 0.0 — a certain regression.
        det, mgr = make_manager(
            bundle,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
            panel=constant_panel(1),
            regression_tolerance=0.02,
        )
        mgr.on_slice(ref_window())
        cmd = mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert cmd is None
        assert kinds(mgr)[-1] == "rollback"
        detail = mgr.events[-1].detail
        assert detail["reason"] == "holdout regression"
        assert detail["holdout_candidate"] == 0.0
        assert detail["holdout_candidate"] < detail["holdout_incumbent"]
        assert detail["top_features"]  # operator triage payload present
        assert mgr.rollbacks == 1 and mgr.swaps == 0 and mgr.retrains == 1
        assert det.prediction.panel_epoch == 0
        alert = alerts_for(det, "lifecycle")[-1]
        assert alert.state is ModuleHealth.FAILED
        assert "regressed on holdout" in alert.reason

    def test_successful_swap_installs_and_archives(self, bundle):
        det, mgr = make_manager(
            bundle,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
            panel=constant_panel(0),
            regression_tolerance=0.02,
        )
        mgr.on_slice(ref_window())
        cmd = mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert isinstance(cmd, SwapCommand)
        assert cmd.epoch == 1
        assert cmd.panel_hash == panel_content_hash(cmd.blob)
        assert mgr.epoch == 1 and mgr.swaps == 1 and mgr.rollbacks == 0
        assert mgr.panels[1] == cmd.blob
        # the serving module switched generations in place
        assert det.prediction.panel_epoch == 1
        assert det.prediction.panel_hash == cmd.panel_hash
        assert list(det.prediction.models) == ["const"]
        ev = mgr.events[-1]
        assert ev.kind == "swap"
        assert ev.detail["panel_hash"] == cmd.panel_hash
        assert len(ev.detail["top_features"]) <= mgr.config.top_k
        alert = alerts_for(det, "lifecycle")[-1]
        assert alert.state is ModuleHealth.HEALTHY
        assert "epoch 1 installed" in alert.reason
        # incumbent now the new generation: a second alarm trains epoch 2
        assert mgr.incumbent is not det.bundle

    def test_swap_resets_quarantine_state(self, bundle):
        det, mgr = make_manager(
            bundle,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
            panel=constant_panel(0),
        )
        det.prediction.quarantine("rf", "poisoned")
        mgr.on_slice(ref_window())
        assert mgr.on_slice(shifted_window(0.5, t0=10**9)) is not None
        assert det.prediction.quarantined == {}
        assert all(v == 0 for v in det.prediction.model_failures.values())

    def test_cooldown_blocks_back_to_back_retrains(self, bundle):
        det, mgr = make_manager(
            bundle,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
            panel=constant_panel(0),
            cooldown_checks=2,
        )
        mgr.on_slice(ref_window())
        assert mgr.on_slice(shifted_window(0.5, t0=10**9)) is not None
        assert mgr.retrains == 1
        # next alarm is still within the cooldown: observed, not acted on
        assert mgr.on_slice(shifted_window(0.5, seed=2, t0=2 * 10**9)) is None
        assert kinds(mgr)[-1] == "drift_alarm"
        assert mgr.retrains == 1
        # cooldown has drained: the following alarm retrains epoch 2
        cmd = mgr.on_slice(shifted_window(0.5, seed=3, t0=3 * 10**9))
        assert cmd is not None and cmd.epoch == 2
        assert mgr.retrains == 2

    def test_forced_swap_fires_on_stable_traffic(self, bundle):
        det, mgr = make_manager(
            bundle,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
            panel=constant_panel(0),
            force_swap_at_check=2,
        )
        mgr.on_slice(ref_window(seed=0))
        cmd = mgr.on_slice(ref_window(seed=7, t0=10**9))  # no real drift
        assert isinstance(cmd, SwapCommand) and cmd.epoch == 1
        alarm = [e for e in mgr.events if e.kind == "drift_alarm"][-1]
        assert alarm.detail["forced"] is True

    def test_swap_panel_requires_increasing_epoch(self, bundle):
        det, _ = make_manager(bundle)
        with pytest.raises(ValueError, match="epoch must increase"):
            det.prediction.swap_panel(
                det.bundle.scaler, det.bundle.models, 0, "x",
            )


# ---------------------------------------------------------------------------
# checkpoint/restore
# ---------------------------------------------------------------------------
class TestSnapshotRestore:
    # the restore contract: configuration is not part of the snapshot,
    # the restored manager is constructed with the same recipe
    RECIPE = dict(
        label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
        panel=constant_panel(0),
    )

    def _swapped(self, bundle):
        det, mgr = make_manager(bundle, **self.RECIPE)
        mgr.on_slice(ref_window())
        cmd = mgr.on_slice(shifted_window(0.5, t0=10**9))
        assert cmd is not None
        return det, mgr, cmd

    def test_roundtrip_reinstalls_serving_panel(self, bundle):
        det, mgr, cmd = self._swapped(bundle)
        mgr_snap = mgr.state_snapshot()
        pred_snap = det.prediction.state_snapshot()

        det2, mgr2 = make_manager(bundle, **self.RECIPE)
        det2.prediction.state_restore(pred_snap)  # names epoch 1, no models
        mgr2.state_restore(mgr_snap)
        assert mgr2.epoch == 1
        assert list(det2.prediction.models) == ["const"]  # reinstalled
        assert det2.prediction.panel_hash == cmd.panel_hash
        assert mgr2.events == mgr.events
        # restored drift reference scores bit-identically
        probe = self._probe_matrix(mgr)
        assert mgr2.monitor.score(probe) == mgr.monitor.score(probe)
        # and the restored manager keeps running: same next decision
        follow = shifted_window(0.5, seed=9, t0=2 * 10**9)
        cmd_a = mgr.on_slice(follow)
        cmd_b = mgr2.on_slice(follow)
        assert (cmd_a is None) == (cmd_b is None)
        if cmd_a is not None:
            assert cmd_a.panel_hash == cmd_b.panel_hash

    @staticmethod
    def _probe_matrix(mgr):
        probe = shifted_window(0.3, seed=11, t0=5 * 10**9)
        return np.column_stack([
            np.asarray(probe[f], dtype=np.float64) for f in mgr.drift_fields
        ])

    def test_restore_missing_archive_blob_is_loud(self, bundle):
        det, mgr, _ = self._swapped(bundle)
        snap = mgr.state_snapshot()
        snap["panels"] = {}  # archive lost
        pred_snap = det.prediction.state_snapshot()
        det2, mgr2 = make_manager(bundle, **self.RECIPE)
        det2.prediction.state_restore(pred_snap)
        with pytest.raises(CheckpointError, match="no .*archived blob"):
            mgr2.state_restore(snap)

    def test_restore_hash_mismatch_is_loud(self, bundle):
        det, mgr, _ = self._swapped(bundle)
        snap = mgr.state_snapshot()
        pred_snap = det.prediction.state_snapshot()
        pred_snap["panel_hash"] = "0" * 64  # wrong generation claimed
        det2, mgr2 = make_manager(bundle, **self.RECIPE)
        det2.prediction.state_restore(pred_snap)
        with pytest.raises(CheckpointError, match="hash"):
            mgr2.state_restore(snap)

    def test_detector_checkpoint_carries_lifecycle(self, bundle):
        # snapshot_detector/restore_detector duck-type det.lifecycle
        from repro.core.checkpoint import restore_detector, snapshot_detector

        det, mgr, cmd = self._swapped(bundle)
        blob = snapshot_detector(det, cycles_done=2, last_seq=0)
        det2, mgr2 = make_manager(bundle, **self.RECIPE)
        restore_detector(det2, blob)
        assert mgr2.epoch == 1
        assert det2.prediction.panel_epoch == 1
        assert list(det2.prediction.models) == ["const"]
        assert mgr2.events == mgr.events


# ---------------------------------------------------------------------------
# satellite: reinstate symmetry + HEALTHY transition
# ---------------------------------------------------------------------------
class TestReinstate:
    def test_unknown_name_raises_keyerror(self, bundle):
        det, _ = make_manager(bundle)
        with pytest.raises(KeyError, match="no_such_model"):
            det.prediction.reinstate("no_such_model")

    def test_reinstate_fires_healthy_transition(self, bundle):
        det = AutomatedDDoSDetector(bundle, batched=True)
        det.prediction.quarantine("rf", "operator test")
        assert alerts_for(det, "prediction")[-1].state is ModuleHealth.DEGRADED
        det.prediction.reinstate("rf")
        alert = alerts_for(det, "prediction")[-1]
        assert alert.state is ModuleHealth.HEALTHY
        assert "full panel restored" in alert.reason
        assert det.prediction.model_failures["rf"] == 0

    def test_partial_reinstate_stays_degraded(self, bundle):
        det = AutomatedDDoSDetector(bundle, batched=True)
        det.prediction.quarantine("rf", "a")
        det.prediction.quarantine("gnb", "b")
        det.prediction.reinstate("rf")
        alert = alerts_for(det, "prediction")[-1]
        assert alert.state is ModuleHealth.DEGRADED
        assert "still quarantined" in alert.reason

    def test_reinstate_not_quarantined_is_silent_noop(self, bundle):
        det = AutomatedDDoSDetector(bundle, batched=True)
        n = len(alerts_for(det, "prediction"))
        det.prediction.reinstate("rf")  # never quarantined
        assert len(alerts_for(det, "prediction")) == n


# ---------------------------------------------------------------------------
# mechanism integration
# ---------------------------------------------------------------------------
class TestMechanism:
    def test_scalar_mode_with_lifecycle_is_rejected(self, bundle):
        det = AutomatedDDoSDetector(bundle, batched=False)
        LifecycleManager(LifecycleConfig()).attach_to(det)
        with pytest.raises(ValueError, match="batched"):
            det.run_stream(ref_window(), poll_every=37)

    def test_stats_surface_lifecycle(self, bundle):
        det, mgr = make_manager(
            bundle,
            label_fn=lambda r: np.zeros(r.shape[0], dtype=np.int64),
            panel=constant_panel(0),
        )
        mgr.on_slice(ref_window())
        mgr.on_slice(shifted_window(0.5, t0=10**9))
        stats = det.stats()
        assert stats["panel_epoch"] == 1
        life = stats["lifecycle"]
        assert life["epoch"] == 1 and life["swaps"] == 1
        assert [e["kind"] for e in life["events"]][-1] == "swap"
