"""Cross-cutting property tests on the ML substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    MLPClassifier,
    RandomForestClassifier,
    StandardScaler,
)


def blob_data(seed, n=150, d=4, gap=2.0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, d)), rng.normal(gap, 1, (n, d))])
    y = np.array([0] * n + [1] * n)
    perm = rng.permutation(2 * n)
    return X[perm], y[perm]


@given(seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_forest_proba_is_mean_of_trees(seed):
    X, y = blob_data(seed)
    rf = RandomForestClassifier(n_estimators=7, max_depth=6, seed=seed).fit(X, y)
    Xq = X[:40]
    manual = np.mean([t.predict_proba(Xq) for t in rf.estimators_], axis=0)
    np.testing.assert_allclose(rf.predict_proba(Xq), manual, atol=1e-12)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_fully_grown_tree_memorizes_consistent_data(seed):
    rng = np.random.default_rng(seed)
    # distinct rows guarantee consistency (no conflicting labels)
    X = rng.permutation(200).reshape(100, 2).astype(float)
    y = rng.integers(0, 2, 100)
    if y.min() == y.max():
        y[0] = 1 - y[0]
    t = DecisionTreeClassifier(seed=seed).fit(X, y)
    assert t.score(X, y) == 1.0


@given(seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_models_invariant_to_training_row_order(seed):
    """GNB and KNN are permutation-invariant learners; shuffling the
    training rows must not change any prediction."""
    X, y = blob_data(seed, n=80)
    rng = np.random.default_rng(seed + 1)
    perm = rng.permutation(X.shape[0])
    Xq = rng.normal(0.5, 1.5, size=(30, X.shape[1]))
    for factory in (lambda: GaussianNB(), lambda: KNeighborsClassifier(3)):
        a = factory().fit(X, y).predict(Xq)
        b = factory().fit(X[perm], y[perm]).predict(Xq)
        assert np.array_equal(a, b)


@given(seed=st.integers(0, 2**16), scale=st.floats(0.1, 100.0))
@settings(max_examples=15, deadline=None)
def test_tree_invariant_to_feature_scaling(seed, scale):
    """Threshold learners are scale-equivariant: multiplying one feature
    by a positive constant must not change predictions."""
    X, y = blob_data(seed, n=60)
    X2 = X.copy()
    X2[:, 0] *= scale
    t1 = DecisionTreeClassifier(max_depth=5, seed=0).fit(X, y)
    t2 = DecisionTreeClassifier(max_depth=5, seed=0).fit(X2, y)
    Xq = X[:50].copy()
    Xq2 = Xq.copy()
    Xq2[:, 0] *= scale
    assert np.array_equal(t1.predict(Xq), t2.predict(Xq2))


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_mlp_proba_normalized(seed):
    X, y = blob_data(seed, n=60)
    m = MLPClassifier((8,), max_epochs=5, seed=seed).fit(X, y)
    p = m.predict_proba(np.random.default_rng(seed).normal(size=(25, 4)) * 10)
    assert np.allclose(p.sum(axis=1), 1.0)
    assert (p >= 0).all() and (p <= 1).all()


@given(
    seed=st.integers(0, 2**16),
    shift=st.floats(-50, 50),
    scale=st.floats(0.01, 50),
)
@settings(max_examples=30, deadline=None)
def test_scaler_affine_composition(seed, shift, scale):
    """Scaling an affinely transformed matrix yields the same
    standardized output (per-feature affine invariance)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(50, 3))
    A = X * scale + shift
    sa = StandardScaler().fit_transform(X)
    sb = StandardScaler().fit_transform(A)
    np.testing.assert_allclose(sa, sb, atol=1e-8)
