"""Tests for the discrete-event engine and simulation clock."""

import pytest

from repro.dataplane.events import EventQueue
from repro.dataplane.simclock import SimClock, ms, ns, seconds, us


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        c = SimClock()
        c.advance_to(100)
        assert c.now == 100

    def test_rejects_backwards(self):
        c = SimClock(50)
        with pytest.raises(ValueError):
            c.advance_to(49)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_unit_helpers(self):
        assert ns(5) == 5
        assert us(1) == 1_000
        assert ms(1) == 1_000_000
        assert seconds(1.5) == 1_500_000_000


class TestEventQueue:
    def test_fifo_order_at_same_time(self):
        eq = EventQueue()
        seen = []
        eq.schedule(10, seen.append, "a")
        eq.schedule(10, seen.append, "b")
        eq.schedule(10, seen.append, "c")
        eq.run()
        assert seen == ["a", "b", "c"]

    def test_time_order(self):
        eq = EventQueue()
        seen = []
        eq.schedule(30, seen.append, 3)
        eq.schedule(10, seen.append, 1)
        eq.schedule(20, seen.append, 2)
        eq.run()
        assert seen == [1, 2, 3]
        assert eq.clock.now == 30

    def test_schedule_into_past_rejected(self):
        eq = EventQueue()
        eq.schedule(10, lambda _: None)
        eq.run()
        with pytest.raises(ValueError):
            eq.schedule(5, lambda _: None)

    def test_schedule_in_negative_rejected(self):
        eq = EventQueue()
        with pytest.raises(ValueError):
            eq.schedule_in(-1, lambda _: None)

    def test_cancellation(self):
        eq = EventQueue()
        seen = []
        ev = eq.schedule(10, seen.append, "dead")
        eq.schedule(20, seen.append, "live")
        ev.cancel()
        eq.run()
        assert seen == ["live"]

    def test_run_until_horizon(self):
        eq = EventQueue()
        seen = []
        eq.schedule(10, seen.append, 1)
        eq.schedule(20, seen.append, 2)
        eq.schedule(30, seen.append, 3)
        executed = eq.run(until_ns=20)
        assert executed == 2
        assert seen == [1, 2]
        # remaining event still runnable
        eq.run()
        assert seen == [1, 2, 3]

    def test_max_events_cap(self):
        eq = EventQueue()
        seen = []
        for t in range(1, 6):
            eq.schedule(t, seen.append, t)
        executed = eq.run(max_events=3)
        assert executed == 3
        assert seen == [1, 2, 3]

    def test_events_can_schedule_events(self):
        eq = EventQueue()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                eq.schedule_in(10, chain, n + 1)

        eq.schedule(0, chain, 1)
        eq.run()
        assert seen == [1, 2, 3, 4, 5]
        assert eq.clock.now == 40

    def test_processed_counter_excludes_cancelled(self):
        eq = EventQueue()
        ev = eq.schedule(10, lambda _: None)
        eq.schedule(20, lambda _: None)
        ev.cancel()
        eq.run()
        assert eq.processed == 1

    def test_peek_time_skips_cancelled(self):
        eq = EventQueue()
        ev = eq.schedule(10, lambda _: None)
        eq.schedule(20, lambda _: None)
        ev.cancel()
        assert eq.peek_time() == 20

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False
