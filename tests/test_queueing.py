"""Tests for the egress queue model (service rate, occupancy, tail drop)."""

import pytest

from repro.dataplane.events import EventQueue
from repro.dataplane.packet import Packet, Protocol, ip
from repro.dataplane.queueing import EgressQueue


def pkt(length=1000, seq=0):
    return Packet(
        src_ip=ip("10.0.0.1"),
        dst_ip=ip("10.0.0.2"),
        src_port=1,
        dst_port=2,
        protocol=int(Protocol.UDP),
        length=length,
        flow_seq=seq,
    )


class TestEgressQueue:
    def test_serialization_time(self):
        eq = EventQueue()
        q = EgressQueue(eq, rate_bps=1e9)  # 1 Gbps
        # 1000 bytes * 8 bits / 1e9 bps = 8 microseconds
        assert q.serialization_ns(pkt(1000)) == 8000

    def test_single_packet_transit(self):
        eq = EventQueue()
        out = []
        q = EgressQueue(eq, rate_bps=1e9, on_transmit=lambda p, t, d: out.append((t, d)))
        q.enqueue(pkt(1000))
        eq.run()
        assert out == [(8000, 0)]
        assert q.stats.transmitted == 1

    def test_back_to_back_departures_spaced_by_service(self):
        eq = EventQueue()
        out = []
        q = EgressQueue(eq, rate_bps=1e9, on_transmit=lambda p, t, d: out.append(t))
        for i in range(3):
            q.enqueue(pkt(1000, i))
        eq.run()
        assert out == [8000, 16000, 24000]

    def test_occupancy_seen_at_dequeue(self):
        """With 3 packets enqueued at t=0, the first departs seeing 2
        behind it, the second 1, the last 0 — the INT queue occupancy."""
        eq = EventQueue()
        depths = []
        q = EgressQueue(eq, rate_bps=1e9, on_transmit=lambda p, t, d: depths.append(d))
        for i in range(3):
            q.enqueue(pkt(1000, i))
        eq.run()
        assert depths == [2, 1, 0]

    def test_tail_drop_at_capacity(self):
        eq = EventQueue()
        q = EgressQueue(eq, rate_bps=1e9, capacity_pkts=2)
        assert q.enqueue(pkt()) is True
        assert q.enqueue(pkt()) is True
        assert q.enqueue(pkt()) is False
        assert q.stats.dropped == 1
        eq.run()
        assert q.stats.transmitted == 2

    def test_queue_idles_and_resumes(self):
        eq = EventQueue()
        out = []
        q = EgressQueue(eq, rate_bps=1e9, on_transmit=lambda p, t, d: out.append(t))
        q.enqueue(pkt(1000))
        eq.run()
        # queue drained; arrive again later via a scheduled event
        eq.schedule(100_000, lambda _: q.enqueue(pkt(1000)))
        eq.run()
        assert out == [8000, 108_000]

    def test_max_depth_highwater(self):
        eq = EventQueue()
        q = EgressQueue(eq, rate_bps=1e9)
        for i in range(5):
            q.enqueue(pkt())
        assert q.stats.max_depth == 5

    def test_fifo_order(self):
        eq = EventQueue()
        seqs = []
        q = EgressQueue(eq, rate_bps=1e9, on_transmit=lambda p, t, d: seqs.append(p.flow_seq))
        for i in range(10):
            q.enqueue(pkt(seq=i))
        eq.run()
        assert seqs == list(range(10))

    def test_bytes_counter_uses_wire_length(self):
        eq = EventQueue()
        q = EgressQueue(eq, rate_bps=1e9)
        q.enqueue(pkt(40))  # padded to 64-byte min frame
        eq.run()
        assert q.stats.bytes_transmitted == 64

    def test_invalid_parameters(self):
        eq = EventQueue()
        with pytest.raises(ValueError):
            EgressQueue(eq, rate_bps=0)
        with pytest.raises(ValueError):
            EgressQueue(eq, rate_bps=1e9, capacity_pkts=0)

    def test_flood_builds_occupancy(self):
        """A burst arriving faster than the drain rate must raise the
        occupancy the INT metadata reports — the core signal behind the
        paper's queue-occupancy feature."""
        eq = EventQueue()
        depths = []
        q = EgressQueue(
            eq, rate_bps=1e8, capacity_pkts=10_000,
            on_transmit=lambda p, t, d: depths.append(d),
        )
        for i in range(200):
            q.enqueue(pkt(1500, i))
        eq.run()
        assert max(depths) == 199  # first dequeue sees the whole burst behind it
