"""Unit and property tests for 32-bit INT timestamp handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.int_telemetry.timestamps import (
    WRAP_PERIOD_NS,
    WRAP_PERIOD_S,
    delta32,
    naive_delta32,
    unwrap32,
    wrap32,
)


class TestWrap32:
    def test_identity_below_wrap(self):
        assert wrap32(12345) == 12345

    def test_folds_at_wrap(self):
        assert wrap32(WRAP_PERIOD_NS) == 0
        assert wrap32(WRAP_PERIOD_NS + 7) == 7

    def test_wrap_period_is_4_29_seconds(self):
        # The paper quotes "restarts every 4.3 seconds".
        assert WRAP_PERIOD_S == pytest.approx(4.294967296)

    def test_vectorized(self):
        t = np.array([0, 1, WRAP_PERIOD_NS, WRAP_PERIOD_NS + 1])
        out = wrap32(t)
        assert out.dtype == np.uint32
        assert out.tolist() == [0, 1, 0, 1]


class TestDelta32:
    def test_no_wrap(self):
        assert delta32(100, 40) == 60

    def test_across_wrap(self):
        later = wrap32(WRAP_PERIOD_NS + 50)
        earlier = wrap32(WRAP_PERIOD_NS - 30)
        assert delta32(later, earlier) == 80

    def test_naive_delta_is_wrong_across_wrap(self):
        # This is exactly the failure mode of paper Section V.
        later = int(wrap32(WRAP_PERIOD_NS + 50))
        earlier = int(wrap32(WRAP_PERIOD_NS - 30))
        assert naive_delta32(later, earlier) == 80 - WRAP_PERIOD_NS
        assert naive_delta32(later, earlier) < 0

    def test_vectorized(self):
        a = np.array([10, 5])
        b = np.array([5, 10])
        out = delta32(a, b)
        assert out.tolist() == [5, WRAP_PERIOD_NS - 5]


class TestUnwrap32:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            unwrap32([])

    def test_single(self):
        assert unwrap32([42]).tolist() == [42]

    def test_monotone_reconstruction(self):
        truth = np.array([0, 10**9, 3 * 10**9, 5 * 10**9, 9 * 10**9], dtype=np.int64)
        wrapped = wrap32(truth)
        rec = unwrap32(wrapped)
        assert np.array_equal(np.diff(rec), np.diff(truth))


@given(
    start=st.integers(min_value=0, max_value=2**40),
    gaps=st.lists(st.integers(min_value=0, max_value=WRAP_PERIOD_NS - 1), min_size=1, max_size=50),
)
@settings(max_examples=200)
def test_unwrap_recovers_gaps(start, gaps):
    """unwrap32 recovers the exact inter-arrival gaps as long as every gap
    is below one wrap period — the invariant the paper's fix would rely on."""
    truth = np.cumsum([start] + gaps)
    rec = unwrap32(wrap32(truth))
    assert np.array_equal(np.diff(rec), np.array(gaps, dtype=np.int64))


@given(
    earlier=st.integers(min_value=0, max_value=2**45),
    gap=st.integers(min_value=0, max_value=WRAP_PERIOD_NS - 1),
)
@settings(max_examples=200)
def test_delta32_recovers_gap(earlier, gap):
    later = earlier + gap
    assert int(delta32(wrap32(later), wrap32(earlier))) == gap
