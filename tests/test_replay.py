"""Tests for the tcpreplay-style replayer."""

import numpy as np
import pytest

from repro.dataplane import int_path_topology
from repro.traffic import Replayer, Trace, replay_counts
from repro.traffic.flows import packet_block
from repro.traffic.trace import AttackType


def trace_toward(server_ip, n=10, spacing=1000):
    ts = np.arange(n) * spacing
    return Trace(packet_block(ts, 0xAC100001, server_ip, 40000, 80, 6, 0, 100))


class TestReplayer:
    def make(self):
        topo = int_path_topology()
        server = topo.hosts["server"]
        rep = Replayer(topo, {"in": (topo.switches["source_sw"], 1)})
        return topo, server, rep

    def test_replays_all_packets(self):
        topo, server, rep = self.make()
        n = rep.replay(trace_toward(server.ip, 25))
        assert n == 25
        assert server.received == 25

    def test_limit(self):
        topo, server, rep = self.make()
        rep.replay(trace_toward(server.ip, 25), limit=10)
        assert server.received == 10

    def test_empty_trace(self):
        topo, server, rep = self.make()
        assert rep.replay(Trace.empty()) == 0

    def test_speedup_compresses_time(self):
        topo, server, rep = self.make()
        rep10 = Replayer(topo, {"in": (topo.switches["source_sw"], 1)}, speedup=10.0)
        rep10.replay(trace_toward(server.ip, 10, spacing=10_000))
        # last packet sent at (9*10_000)/10 = 9_000 ns after base
        assert topo.clock.now < 20_000 + 10_000  # generous bound

    def test_start_at_shifts_timeline(self):
        topo, server, rep = self.make()
        rep.schedule(trace_toward(server.ip, 3), start_at_ns=50_000)
        assert topo.events.peek_time() == 50_000
        topo.run()
        assert server.received == 3

    def test_classify_routes_by_direction(self):
        topo = int_path_topology()
        server = topo.hosts["server"]
        client = topo.hosts["client"]
        fwd = trace_toward(server.ip, 5)
        rev = Trace(packet_block(np.arange(5) * 1000 + 37, server.ip,
                                 client.ip, 80, 40000, 6, 0, 100))
        from repro.traffic import merge_traces
        rep = Replayer(
            topo,
            {"fwd": (topo.switches["source_sw"], 1),
             "rev": (topo.switches["sink_sw"], 2)},
            classify=lambda row: "fwd" if row["dst_ip"] == server.ip else "rev",
        )
        rep.replay(merge_traces([fwd, rev]))
        assert server.received == 5
        assert client.received == 5

    def test_multiple_ingress_requires_classifier(self):
        topo = int_path_topology()
        with pytest.raises(ValueError):
            Replayer(topo, {"a": (topo.switches["source_sw"], 1),
                            "b": (topo.switches["sink_sw"], 2)})

    def test_invalid_speedup(self):
        topo = int_path_topology()
        with pytest.raises(ValueError):
            Replayer(topo, {"in": (topo.switches["source_sw"], 1)}, speedup=0)

    def test_empty_ingress_map(self):
        topo = int_path_topology()
        with pytest.raises(ValueError):
            Replayer(topo, {})


def test_replay_counts():
    t = Trace(packet_block(np.array([1, 2]), 1, 2, 3, 4, 6, 0, 64,
                           label=1, attack_type=AttackType.SYN_FLOOD))
    assert replay_counts(t) == {"SYN Flood": 2}
