"""Integration tests for the AmLight campaign dataset builder.

Uses the ``tiny`` profile (seconds to build) and module-scoped fixtures
so the campaign is replayed once for the whole file.
"""

import numpy as np
import pytest

from repro.datasets import (
    SERVER_IP,
    CampaignConfig,
    build_campaign_trace,
    build_dataset,
    capture_testbed,
    monitored_topology,
)
from repro.datasets import testbed_flow_traces as make_testbed_flow_traces
from repro.datasets.amlight import label_records
from repro.features.keys import canonical_flow_key
from repro.traffic import AttackType


@pytest.fixture(scope="module")
def tiny():
    return build_dataset(CampaignConfig.tiny())


class TestCampaignTrace:
    def test_contains_all_attack_types(self, tiny):
        counts = tiny.trace.counts_by_type()
        for t in (AttackType.BENIGN, AttackType.SYN_SCAN, AttackType.UDP_SCAN,
                  AttackType.SYN_FLOOD, AttackType.SLOWLORIS):
            assert counts.get(t, 0) > 0, f"missing {t.display}"

    def test_attacks_inside_their_episodes(self, tiny):
        rec = tiny.trace.records
        windows = tiny.schedule.sim_windows()
        for attack_type, start, end in windows:
            mask = rec["attack_type"] == int(attack_type)
            ts = rec["ts"][mask]
            in_any = np.zeros(ts.shape, dtype=bool)
            for t2, s2, e2 in windows:
                if t2 == attack_type:
                    # responses may trail an episode slightly
                    in_any |= (ts >= s2) & (ts < e2 + 50_000_000)
            assert in_any.mean() > 0.99

    def test_deterministic(self):
        cfg = CampaignConfig.tiny()
        a, _ = build_campaign_trace(cfg)
        b, _ = build_campaign_trace(cfg)
        assert np.array_equal(a.records, b.records)


class TestCapture:
    def test_int_sees_every_packet(self, tiny):
        assert len(tiny.int_records) == len(tiny.trace)

    def test_sflow_sampling_ratio(self, tiny):
        expected = len(tiny.trace) / tiny.config.sflow_rate
        assert len(tiny.sflow_records) == pytest.approx(expected, rel=0.5)

    def test_labels_cover_attacks(self, tiny):
        assert tiny.int_labels.sum() > 0
        # attack fraction of capture matches the trace ground truth
        assert tiny.int_labels.mean() == pytest.approx(
            tiny.trace.attack_fraction(), abs=0.02
        )

    def test_truth_oracle_benign_default(self, tiny):
        assert tiny.truth((1, 2, 3, 4, 6)) == (0, int(AttackType.BENIGN))

    def test_truth_oracle_is_canonical(self, tiny):
        rec = tiny.trace.records
        atk = rec[rec["label"] == 1][0]
        key = canonical_flow_key(
            int(atk["src_ip"]), int(atk["dst_ip"]),
            int(atk["src_port"]), int(atk["dst_port"]), int(atk["protocol"]),
        )
        label, _ = tiny.truth(key)
        assert label == 1

    def test_queue_occupancy_present(self, tiny):
        # the 1 Gbps bottleneck must generate at least some queueing
        assert tiny.int_records["queue_occupancy"].max() >= 1

    def test_focus_windows_start_inside_campaign(self, tiny):
        # the second window (Jun 11 19-21h) may extend slightly past the
        # campaign end (last episode + 1 min); its start must be inside
        end = tiny.schedule.campaign_end_ns()
        for s, e in tiny.focus_windows_ns():
            assert 0 < s < e
            assert s < end

    def test_day_boundary_ordering(self, tiny):
        assert tiny.day_start_ns(10) < tiny.day_start_ns(11)

    def test_time_masks(self, tiny):
        windows = [(0, tiny.schedule.campaign_end_ns())]
        assert tiny.int_time_mask(windows).all()
        assert tiny.sflow_time_mask(windows).all()


class TestLabelRecords:
    def test_empty(self):
        from repro.int_telemetry import REPORT_DTYPE
        labels, types = label_records(np.empty(0, dtype=REPORT_DTYPE), {})
        assert labels.shape == (0,)


class TestTestbed:
    def test_flow_traces_have_all_types(self):
        cfg = CampaignConfig.tiny()
        traces = make_testbed_flow_traces(cfg, n_packets=300, seed=1)
        assert set(traces) == {"Benign", "SYN Scan", "UDP Scan", "SYN Flood",
                               "SlowLoris"}
        for name, tr in traces.items():
            assert 0 < len(tr) <= 300, name

    def test_capture_testbed_pairs_directions(self):
        """Bidirectional flows must survive the server→target rewrite."""
        cfg = CampaignConfig.tiny()
        traces = make_testbed_flow_traces(cfg, n_packets=200, seed=1)
        records, truth = capture_testbed(traces["SYN Scan"], cfg)
        assert records.shape[0] > 0
        from repro.features import extract_features
        fm = extract_features(records, source="int")
        # responses join their probes: some flows exceed one packet
        assert fm.packet_index.max() >= 1
        labels, _ = label_records(records, truth)
        assert labels.mean() == 1.0  # pure attack replay


class TestMonitoredTopology:
    def test_both_directions_reported(self):
        cfg = CampaignConfig.tiny()
        topo, int_col, _, _ = monitored_topology(cfg)
        from repro.dataplane.packet import Packet, Protocol
        client = topo.hosts["client_side"]
        server = topo.hosts["webserver"]
        fwd = Packet(src_ip=0xAC100005, dst_ip=SERVER_IP, src_port=1234,
                     dst_port=80, protocol=int(Protocol.TCP), length=100)
        rev = Packet(src_ip=SERVER_IP, dst_ip=0xAC100005, src_port=80,
                     dst_port=1234, protocol=int(Protocol.TCP), length=100)
        topo.switches["edge_client"].receive(fwd, 1)
        topo.run()
        topo.switches["edge_server"].receive(rev, 2)
        topo.run()
        assert len(int_col) == 2
        rec = int_col.to_records()
        assert rec["hops"].tolist() == [3, 3]
