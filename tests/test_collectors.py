"""Unit tests for the INT and sFlow collectors' bookkeeping."""

import numpy as np
import pytest

from repro.int_telemetry import IntCollector, TelemetryReport
from repro.int_telemetry.metadata import HopMetadata
from repro.sflow import FlowSample, SFlowCollector, SFlowDatagram


def make_report(ts=100, src=1, length=64, hops=2):
    stack = tuple(
        HopMetadata(switch_id=k + 1, ingress_ts=ts + k * 10,
                    egress_ts=ts + k * 10 + 5, queue_occupancy=k)
        for k in range(hops)
    )
    return TelemetryReport(
        ts_report=ts, src_ip=src, dst_ip=2, src_port=3, dst_port=4,
        protocol=6, tcp_flags=2, length=length, hop_stack=stack,
    )


class TestTelemetryReport:
    def test_summary_properties(self):
        r = make_report(ts=100, hops=3)
        assert r.hops == 3
        assert r.ingress_ts == 100            # first hop
        assert r.egress_ts == 100 + 20 + 5    # last hop egress
        assert r.queue_occupancy == 2         # max along the path
        assert r.hop_latency_ns == 15         # 3 hops x 5 ns

    def test_wrap_aware_hop_latency(self):
        h = HopMetadata(1, 2**32 - 3, 2, 0)  # egress wrapped past zero
        r = make_report()
        r = TelemetryReport(
            ts_report=0, src_ip=1, dst_ip=2, src_port=3, dst_port=4,
            protocol=6, tcp_flags=0, length=64, hop_stack=(h,),
        )
        assert r.hop_latency_ns == 5


class TestIntCollector:
    def test_ingest_and_export(self):
        col = IntCollector()
        for i in range(10):
            col.ingest(make_report(ts=i * 100, src=i))
        rec = col.to_records()
        assert rec.shape == (10,)
        assert rec["src_ip"].tolist() == list(range(10))
        assert col.reports_ingested == 10

    def test_clear(self):
        col = IntCollector(keep_stacks=True)
        col.ingest(make_report())
        col.clear()
        assert len(col) == 0
        assert col.stacks == []
        assert col.reports_ingested == 0

    def test_keep_stacks(self):
        col = IntCollector(keep_stacks=True)
        col.ingest(make_report(hops=3))
        assert len(col.stacks[0]) == 3

    def test_subscriber_called_synchronously(self):
        got = []
        col = IntCollector(subscriber=got.append)
        r = make_report()
        col.ingest(r)
        assert got == [r]

    def test_view_is_zero_copy_until_growth(self):
        col = IntCollector()
        col.ingest(make_report(src=42))
        v = col.view()
        assert v["src_ip"][0] == 42
        snap = col.to_records()
        snap["src_ip"][0] = 7  # owning copy: must not affect the buffer
        assert col.view()["src_ip"][0] == 42


class TestSFlowCollectorMore:
    def sample(self, i=0, agent=1):
        return FlowSample(ts_sample=i, src_ip=i, dst_ip=2, src_port=3,
                          dst_port=4, protocol=6, tcp_flags=0, length=100,
                          sampling_rate=512, sample_pool=i, agent_id=agent)

    def test_multi_agent_datagrams(self):
        col = SFlowCollector()
        col.ingest_datagram(SFlowDatagram(1, 0, [self.sample(0, agent=1)]), 10)
        col.ingest_datagram(
            SFlowDatagram(2, 0, [self.sample(1, agent=2), self.sample(2, agent=2)]),
            20,
        )
        rec = col.to_records()
        assert col.datagrams_received == 2
        assert rec["agent_id"].tolist() == [1, 2, 2]
        assert rec["ts_collector"].tolist() == [10, 20, 20]

    def test_clear(self):
        col = SFlowCollector()
        col.ingest_datagram(SFlowDatagram(1, 0, [self.sample()]), 0)
        col.clear()
        assert len(col) == 0
        assert col.samples_received == 0
