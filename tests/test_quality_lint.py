"""reprolint test suite: per-rule true/false-positive fixtures, the
suppression & baseline machinery, and the repo-lints-clean gate.

Every rule gets at least one flagged snippet and one clean snippet;
fixtures lint through the real engine (all rules + suppression pass) and
assert on the specific rule id so an unrelated rule firing on a fixture
is caught too.
"""

from __future__ import annotations

import re
import textwrap
from pathlib import Path

from repro.quality.engine import (
    all_rules,
    lint_paths,
    load_baseline,
    module_name_for,
)
from repro.quality.lint import DEFAULT_BASELINE, main as lint_main
from repro.quality.rules_layering import LAYERS, layer_of

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def run(src: str, module: str = "repro.core.fixture", rule: str | None = None,
        is_package: bool = False):
    """Lint a dedented snippet as ``module``; optionally filter one rule."""
    from repro.quality.engine import lint_module_info, _apply_suppressions

    info = lint_module_info(
        textwrap.dedent(src), module=module, path="fixture.py",
        is_package=is_package,
    )
    raw = []
    for r in all_rules():
        raw.extend(r.check(info))
    kept, _ = _apply_suppressions(info, sorted(raw, key=lambda f: (f.line, f.rule)))
    if rule is not None:
        kept = [f for f in kept if f.rule == rule]
    return kept


def rules_hit(src: str, **kw):
    return {f.rule for f in run(src, **kw)}


# ---------------------------------------------------------------------------
# DET001 — wall clock
# ---------------------------------------------------------------------------
def test_det001_flags_time_time_in_scope():
    out = run("import time\nstamp = time.time()\n", rule="DET001")
    assert len(out) == 1 and out[0].line == 2


def test_det001_flags_datetime_now_and_from_import():
    assert run(
        "from datetime import datetime\nx = datetime.now()\n", rule="DET001"
    )
    assert run(
        "import datetime\nx = datetime.datetime.utcnow()\n", rule="DET001"
    )
    # bare reference (stored as a default) is flagged too, not just calls
    assert run("from time import time\nclock = time\n", rule="DET001")


def test_det001_clean_outside_scope_and_for_injected_clock():
    assert not run(
        "import time\nstamp = time.time()\n",
        module="repro.traffic.fixture", rule="DET001",
    )
    assert not run(
        "def fold(clock):\n    return clock()\n", rule="DET001"
    )


# ---------------------------------------------------------------------------
# DET002 — time-dependent primitives must be injectable + suppressed
# ---------------------------------------------------------------------------
def test_det002_flags_bare_perf_counter_reference():
    out = run(
        "import time\n"
        "def f(clock=None):\n"
        "    return clock or time.perf_counter_ns\n",
        rule="DET002",
    )
    assert len(out) == 1 and out[0].line == 3


def test_det002_clean_when_suppressed_with_reason():
    src = (
        "import time\n"
        "def f(clock=None):\n"
        "    # repro: allow[DET002] injectable default for wall stamps\n"
        "    return clock or time.perf_counter_ns\n"
    )
    assert not run(src, rule="DET002")
    assert not run(src, rule="QUAL001")
    assert not run(src, rule="QUAL002")


# ---------------------------------------------------------------------------
# DET003 — stdlib random
# ---------------------------------------------------------------------------
def test_det003_flags_import_random_forms():
    assert run("import random\n", rule="DET003")
    assert run("from random import choice\n", rule="DET003")


def test_det003_clean_for_as_generator_and_out_of_scope():
    assert not run(
        "from repro.common.rng import as_generator\n", rule="DET003"
    )
    assert not run("import random\n", module="repro.cli", rule="DET003")


# ---------------------------------------------------------------------------
# DET004 — unseeded / global-state numpy RNG
# ---------------------------------------------------------------------------
def test_det004_flags_unseeded_default_rng_and_global_stream():
    assert run(
        "import numpy as np\nrng = np.random.default_rng()\n", rule="DET004"
    )
    assert run(
        "import numpy as np\nnp.random.shuffle(x)\n", rule="DET004"
    )
    assert run(
        "import numpy as np\nnp.random.seed(0)\n", rule="DET004"
    )


def test_det004_clean_for_seeded_rng():
    assert not run(
        "import numpy as np\nrng = np.random.default_rng(1234)\n",
        rule="DET004",
    )
    assert not run(
        "import numpy as np\nrng = np.random.default_rng(seed)\n",
        rule="DET004",
    )


# ---------------------------------------------------------------------------
# DET005 — OS entropy
# ---------------------------------------------------------------------------
def test_det005_flags_urandom_and_uuid4():
    assert run("import os\nsalt = os.urandom(8)\n", rule="DET005")
    assert run("import uuid\nrun_id = uuid.uuid4()\n", rule="DET005")


def test_det005_clean_for_os_path():
    assert not run("import os\np = os.path.join('a', 'b')\n", rule="DET005")


# ---------------------------------------------------------------------------
# DET006 — id()
# ---------------------------------------------------------------------------
def test_det006_flags_id_call():
    out = run("def k(sw, seen):\n    seen.add(id(sw))\n", rule="DET006")
    assert len(out) == 1 and out[0].line == 2


def test_det006_clean_for_similar_names_and_out_of_scope():
    assert not run("def k(x):\n    return flow_id(x)\n", rule="DET006")
    assert not run(
        "seen.add(id(sw))\n", module="repro.analysis.fixture", rule="DET006"
    )


def test_det_scope_covers_mitigation_and_controlplane():
    """The closed-loop control plane carries the bit-identity contract:
    determinism rules apply beneath repro.mitigation and
    repro.controlplane (PR 6)."""
    for pkg in ("repro.mitigation", "repro.controlplane"):
        assert run(
            "seen.add(id(sw))\n", module=f"{pkg}.fixture", rule="DET006"
        ), pkg


# ---------------------------------------------------------------------------
# DET007 — set order feeding reductions (applies everywhere)
# ---------------------------------------------------------------------------
def test_det007_flags_sum_and_list_over_sets():
    assert run("total = sum({a, b, c})\n", rule="DET007")
    assert run("total = sum(x * 2 for x in set(xs))\n", rule="DET007")
    assert run("order = list(set(xs))\n", rule="DET007")
    assert run(
        "label = ','.join(set(names))\n",
        module="repro.cli", rule="DET007",  # unscoped rule: fires anywhere
    )


def test_det007_clean_when_sorted_or_plain_sequence():
    assert not run("total = sum(sorted(set(xs)))\n", rule="DET007")
    assert not run("total = sum(xs)\n", rule="DET007")
    assert not run("unique = set(xs)\n", rule="DET007")


# ---------------------------------------------------------------------------
# DET008 — bare float equality (applies everywhere)
# ---------------------------------------------------------------------------
def test_det008_flags_nonzero_float_literal_equality():
    out = run("if ratio == 0.5:\n    pass\n", rule="DET008")
    assert len(out) == 1 and out[0].line == 1
    assert run("ok = x != -1.5\n", module="repro.cli", rule="DET008")


def test_det008_clean_for_zero_sentinel_ints_and_tolerance():
    assert not run("mask = std == 0.0\n", rule="DET008")
    assert not run("if n == 1:\n    pass\n", rule="DET008")
    assert not run("close = abs(x - 0.5) < 1e-9\n", rule="DET008")


# ---------------------------------------------------------------------------
# CONC001 — ring publish ordering
# ---------------------------------------------------------------------------
RING_BAD_PUSH = """
class Ring:
    def push(self, rec):
        tail = int(self._tail[0])
        self._tail[0] = tail + 1
        self._slots[tail % self.capacity] = rec
"""

RING_GOOD_PUSH = """
class Ring:
    def push(self, rec):
        tail = int(self._tail[0])
        self._slots[tail % self.capacity] = rec
        self._tail[0] = tail + 1
"""

RING_BAD_POP = """
class Ring:
    def pop(self):
        head = int(self._head[0])
        self._head[0] = head + 1
        return self._slots[head % self.capacity].copy()
"""


def test_conc001_flags_publish_before_write_and_read_after_release():
    out = run(RING_BAD_PUSH, rule="CONC001")
    assert len(out) == 1 and "written after" in out[0].message
    out = run(RING_BAD_POP, rule="CONC001")
    assert len(out) == 1 and "read after" in out[0].message


def test_conc001_clean_for_correct_protocol_and_real_sharedring():
    assert not run(RING_GOOD_PUSH, rule="CONC001")
    real = lint_paths([SRC_REPRO / "common" / "buffers.py"])
    assert not [f for f in real.findings if f.rule == "CONC001"]


# ---------------------------------------------------------------------------
# CONC002 — cursor monotonicity
# ---------------------------------------------------------------------------
def test_conc002_flags_reset_and_subtraction_outside_init():
    assert run(
        "class Ring:\n    def rewind(self):\n        self._tail[0] = 0\n",
        rule="CONC002",
    )
    assert run(
        "class Ring:\n"
        "    def undo(self, n):\n"
        "        self._tail[0] = int(self._tail[0]) - n\n",
        rule="CONC002",
    )


def test_conc002_clean_for_advance_and_init_zero():
    assert not run(
        "class Ring:\n"
        "    def __init__(self):\n"
        "        self._head[0] = 0\n"
        "    def push(self, take):\n"
        "        self._tail[0] = int(self._tail[0]) + take\n",
        rule="CONC002",
    )


# ---------------------------------------------------------------------------
# CONC003 — mutable module globals next to multiprocessing
# ---------------------------------------------------------------------------
def test_conc003_flags_mutable_global_in_mp_module():
    out = run(
        "import multiprocessing as mp\n_results = {}\n", rule="CONC003"
    )
    assert len(out) == 1 and out[0].line == 2


def test_conc003_clean_without_mp_or_with_immutable_global():
    assert not run("_results = {}\n", rule="CONC003")
    assert not run(
        "import multiprocessing as mp\nKINDS = (0, 1, 2)\n", rule="CONC003"
    )
    assert not run(
        "import multiprocessing as mp\n__all__ = ['run']\n", rule="CONC003"
    )


# ---------------------------------------------------------------------------
# CONC004 — closures across the spawn boundary
# ---------------------------------------------------------------------------
def test_conc004_flags_lambda_and_nested_def_targets():
    assert run(
        "import multiprocessing as mp\n"
        "def launch(ctx):\n"
        "    p = ctx.Process(target=lambda: None)\n",
        rule="CONC004",
    )
    assert run(
        "import multiprocessing as mp\n"
        "def launch(ctx):\n"
        "    def worker():\n"
        "        pass\n"
        "    p = ctx.Process(target=worker)\n",
        rule="CONC004",
    )


def test_conc004_clean_for_module_level_target():
    assert not run(
        "import multiprocessing as mp\n"
        "def worker(spec):\n"
        "    pass\n"
        "def launch(ctx, spec):\n"
        "    p = ctx.Process(target=worker, args=(spec,))\n",
        rule="CONC004",
    )


# ---------------------------------------------------------------------------
# CONC005 — unbounded ring waits
# ---------------------------------------------------------------------------
def test_conc005_flags_guardless_ring_push_and_pop():
    out = run(
        "def drive(ring, slots):\n"
        "    ring.push(slots)\n"
        "    return ring.pop()\n",
        rule="CONC005",
    )
    assert [f.line for f in out] == [2, 3]
    # receiver resolved through attribute + subscript chains too
    assert run(
        "def drive(self, shard, slots):\n"
        "    self.rings[shard].push(slots)\n",
        rule="CONC005",
    )


def test_conc005_clean_with_timeout_or_liveness_guard():
    assert not run(
        "def drive(ring, slots, alive):\n"
        "    ring.push(slots, timeout=30.0)\n"
        "    return ring.pop(timeout=5.0, peer_alive=alive)\n",
        rule="CONC005",
    )
    # non-ring receivers (list.pop etc.) are out of scope
    assert not run(
        "def drain(buf):\n"
        "    return buf.pop(0)\n",
        rule="CONC005",
    )


def test_conc005_covers_frame_protocol_pop_exact():
    # the frame protocol's exact-length read needs the same guard
    out = run(
        "def read_frame(ring, n):\n"
        "    return ring.pop_exact(n)\n",
        rule="CONC005",
    )
    assert [f.line for f in out] == [2]
    # a positional deadline (second parameter) counts as a guard, as
    # does the keyword form with a liveness probe
    assert not run(
        "def read_frame(ring, n, alive):\n"
        "    header = ring.pop_exact(n, 30.0)\n"
        "    return ring.pop_exact(n, timeout=30.0, peer_alive=alive)\n",
        rule="CONC005",
    )


# ---------------------------------------------------------------------------
# CONC006 — sanitizer-visible ring mutation
# ---------------------------------------------------------------------------
def test_conc006_flags_cursor_and_slot_stores_outside_buffers():
    out = run(
        "def poke(self):\n"
        "    self._tail[0] = 5\n"
        "    self._head[0] += 1\n",
        rule="CONC006",
    )
    assert [f.line for f in out] == [2, 3]
    assert "REPRO_SANITIZE" in out[0].message
    # the slot array is protected storage too
    assert run(
        "def scribble(self, i, frame):\n"
        "    self._slots[i] = frame\n",
        rule="CONC006",
    )


def test_conc006_clean_inside_ring_home_and_for_plain_subscripts():
    # repro.common.buffers itself is the one module allowed to store
    # the cursors (its methods notify the observers when they do)
    assert not run(
        "def push(self, tail, take):\n"
        "    self._tail[0] = tail + take\n",
        module="repro.common.buffers", rule="CONC006",
    )
    # ordinary subscript stores on unrelated attributes stay clean
    assert not run(
        "def cache(self, k, v):\n"
        "    self._table[k] = v\n"
        "    self.counts[k] += 1\n",
        rule="CONC006",
    )


# ---------------------------------------------------------------------------
# LAY001 — import contract
# ---------------------------------------------------------------------------
def test_lay001_flags_back_edge_and_lateral_peer():
    out = run(
        "from repro.core.mechanism import AutomatedDDoSDetector\n",
        module="repro.features.fixture", rule="LAY001",
    )
    assert len(out) == 1 and "back-edge" in out[0].message
    out = run(
        "from repro.traffic.flows import FlowGenerator\n",
        module="repro.sflow.fixture", rule="LAY001",
    )
    assert len(out) == 1 and "lateral peer" in out[0].message


def test_lay001_resolves_relative_imports():
    # `from ..core import mechanism` inside repro.features.* is the same
    # back-edge as the absolute spelling.
    out = run(
        "from ..core import mechanism\n",
        module="repro.features.fixture", rule="LAY001",
    )
    assert len(out) == 1 and "back-edge" in out[0].message
    # A package __init__ importing its own submodules is intra-package.
    assert not run(
        "from . import chaos\n",
        module="repro.resilience", rule="LAY001", is_package=True,
    )


def test_lay001_clean_for_downward_and_intra_package_imports():
    assert not run(
        "from repro.features.batch import group_by_flow\n"
        "from .database import FlowDatabase\n",
        module="repro.core.fixture", rule="LAY001",
    )
    # resilience.harness is explicitly overridden above core/analysis
    assert not run(
        "from repro.core.mechanism import AutomatedDDoSDetector\n"
        "from repro.analysis.tables import render_table\n",
        module="repro.resilience.harness", rule="LAY001",
    )


def test_lay001_flags_unknown_package():
    out = run("x = 1\n", module="repro.newpkg.fixture", rule="LAY001")
    assert len(out) == 1 and "layer map" in out[0].message


def test_lay001_quality_must_stay_independent():
    out = run(
        "from repro.common.rng import as_generator\n",
        module="repro.quality.fixture", rule="LAY001",
    )
    assert len(out) == 1 and "independent" in out[0].message


def test_layer_map_is_total_over_the_repo():
    for path in sorted(SRC_REPRO.rglob("*.py")):
        mod = module_name_for(path)
        assert layer_of(mod) is not None, f"{mod} missing from LAYERS"
    assert LAYERS["repro.common"] == 0 and layer_of("repro.cli") > layer_of(
        "repro.core"
    )


# ---------------------------------------------------------------------------
# LAY002 — private cross-package imports
# ---------------------------------------------------------------------------
def test_lay002_flags_private_name_across_packages():
    out = run(
        "from repro.features.batch import _pack_keys\n",
        module="repro.core.fixture", rule="LAY002",
    )
    assert len(out) == 1


def test_lay002_clean_for_public_and_intra_package_private():
    assert not run(
        "from repro.features.batch import group_by_flow\n",
        module="repro.core.fixture", rule="LAY002",
    )
    assert not run(
        "from .database import _rebuild_index\n",
        module="repro.core.fixture", rule="LAY002",
    )


# ---------------------------------------------------------------------------
# suppression machinery
# ---------------------------------------------------------------------------
def test_suppression_requires_reason():
    out = run(
        "import time\n"
        "stamp = time.time()  # repro: allow[DET001]\n",
    )
    assert {f.rule for f in out} == {"DET001", "QUAL001"}


def test_unused_suppression_is_flagged():
    out = run("x = 1  # repro: allow[DET001] no clock here really\n")
    assert [f.rule for f in out] == ["QUAL002"]


def test_suppression_inside_string_literal_is_not_a_directive():
    out = run('DOC = "# repro: allow[DET001] not a comment"\n')
    assert not out


def test_multi_rule_suppression_and_trailing_form():
    src = (
        "import time\n"
        "stamp = time.time()  # repro: allow[DET001,DET002] replay stamp only\n"
    )
    assert not run(src)


# ---------------------------------------------------------------------------
# baseline machinery
# ---------------------------------------------------------------------------
def _write_fixture_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "hot.py").write_text(
        "import time\nSTAMP = time.time()\n", encoding="utf-8"
    )
    return tmp_path / "repro"


def test_baseline_grandfathers_matching_findings(tmp_path):
    root = _write_fixture_tree(tmp_path)
    entry = {
        "path": "repro/core/hot.py",
        "rule": "DET001",
        "content": "STAMP = time.time()",
    }
    dirty = lint_paths([root])
    assert [f.rule for f in dirty.findings] == ["DET001"]
    clean = lint_paths([root], baseline=[entry])
    assert clean.ok and [f.rule for f in clean.baselined] == ["DET001"]
    assert not clean.stale_baseline


def test_stale_baseline_entries_are_reported(tmp_path):
    root = _write_fixture_tree(tmp_path)
    stale = {
        "path": "repro/core/gone.py",
        "rule": "DET004",
        "content": "rng = np.random.default_rng()",
    }
    result = lint_paths([root], baseline=[stale])
    assert result.stale_baseline == [stale]


def test_stale_baseline_entry_is_a_qual003_finding(tmp_path):
    """A stale entry is an actionable finding (QUAL003), not a side
    note: the gate goes red until the baseline is cleaned up."""
    root = _write_fixture_tree(tmp_path)
    stale = {
        "path": "repro/core/gone.py",
        "rule": "DET001",
        "content": "STAMP = time.time()",
    }
    # the fixture's real finding is grandfathered; only QUAL003 remains
    live = {
        "path": "repro/core/hot.py",
        "rule": "DET001",
        "content": "STAMP = time.time()",
    }
    result = lint_paths([root], baseline=[live, stale])
    assert not result.ok
    assert [f.rule for f in result.findings] == ["QUAL003"]
    assert "repro/core/gone.py" in result.findings[0].path
    assert "--write-baseline" in result.findings[0].message


def test_out_of_scope_baseline_entries_are_not_stale(tmp_path):
    root = _write_fixture_tree(tmp_path)
    elsewhere = {
        "path": "other/pkg.py",  # not under the linted tree
        "rule": "DET001",
        "content": "t = time.time()",
    }
    result = lint_paths([root], baseline=[elsewhere])
    assert result.covers("repro/core/hot.py")
    assert not result.covers("other/pkg.py")
    assert not result.stale_baseline
    assert [f.rule for f in result.findings] == ["DET001"]


def test_rule_filtered_run_cannot_judge_other_rules_stale(tmp_path):
    """`--rule DET004` produces no DET001 findings by construction —
    that must not mark DET001 baseline entries stale."""
    from repro.quality.engine import all_rules as _rules

    root = _write_fixture_tree(tmp_path)
    live = {
        "path": "repro/core/hot.py",
        "rule": "DET001",
        "content": "STAMP = time.time()",
    }
    only_det004 = [r for r in _rules() if r.id == "DET004"]
    result = lint_paths([root], baseline=[live], rules=only_det004)
    assert result.ok and not result.stale_baseline


def test_write_baseline_drops_stale_and_keeps_out_of_scope(tmp_path, capsys):
    import json

    root = _write_fixture_tree(tmp_path)
    baseline_file = tmp_path / "baseline.json"
    stale = {
        "path": "repro/core/gone.py",
        "rule": "DET001",
        "content": "STAMP = time.time()",
    }
    elsewhere = {
        "path": "other/pkg.py",
        "rule": "DET001",
        "content": "t = time.time()",
    }
    baseline_file.write_text(
        json.dumps({"version": 1, "entries": [stale, elsewhere]}),
        encoding="utf-8",
    )
    status = lint_main([
        "--write-baseline", "--baseline", str(baseline_file), str(root),
    ])
    assert status == 0
    assert "1 out-of-scope carried over" in capsys.readouterr().out
    rewritten = load_baseline(baseline_file)
    keys = {(e["path"], e["rule"]) for e in rewritten}
    assert ("repro/core/hot.py", "DET001") in keys  # current finding
    assert ("other/pkg.py", "DET001") in keys       # carried over
    assert ("repro/core/gone.py", "DET001") not in keys  # stale, dropped
    # and the rewritten baseline makes the same tree lint clean
    assert lint_main(["--baseline", str(baseline_file), str(root)]) == 0


# ---------------------------------------------------------------------------
# the repo itself + the CI gate behavior
# ---------------------------------------------------------------------------
def test_repo_lints_clean_against_checked_in_baseline():
    result = lint_paths(
        [SRC_REPRO], baseline=load_baseline(DEFAULT_BASELINE)
    )
    assert result.ok, "\n".join(f.render() for f in result.findings)
    assert not result.stale_baseline


def test_seeded_violation_fails_with_rule_and_line(tmp_path, capsys):
    """Acceptance gate: a time.time() planted in core/processor.py must
    turn the exit status non-zero and name DET001 at the right line."""
    dest = tmp_path / "repro" / "core"
    dest.mkdir(parents=True)
    original = (SRC_REPRO / "core" / "processor.py").read_text()
    needle = "self.packets_processed = 0"
    assert needle in original
    seeded = original.replace(
        needle, needle + "\n        self.started_at = time.time()", 1
    )
    target = dest / "processor.py"
    target.write_text(seeded, encoding="utf-8")
    expected_line = (
        seeded[: seeded.index("self.started_at")].count("\n") + 1
    )

    status = lint_main([str(target)])
    out = capsys.readouterr().out
    assert status == 1
    assert f"processor.py:{expected_line}: DET001" in out


def test_cli_list_rules_and_clean_exit(tmp_path, capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("DET001", "CONC001", "CONC006", "LAY001", "QUAL001",
                "QUAL003"):
        assert rid in out
    # shape: every line is "RULEID  summary", ids unique
    lines = [ln for ln in out.splitlines() if ln.strip()]
    ids = []
    for line in lines:
        rule_id, sep, summary = line.partition("  ")
        assert sep and summary.strip(), f"malformed catalogue line: {line!r}"
        assert re.fullmatch(r"[A-Z]{3,4}\d{3}", rule_id), line
        ids.append(rule_id)
    assert len(ids) == len(set(ids))

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(clean)]) == 0


def test_cli_unknown_rule_is_usage_error(capsys):
    assert lint_main(["--rule", "NOPE999", "."]) == 2


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "does-not-exist")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_rule_filter_scopes_findings_and_exit_code(tmp_path, capsys):
    """--rule runs only the named rule(s): a DET001 fixture exits 1
    under --rule DET001 but 0 under --rule DET004."""
    root = _write_fixture_tree(tmp_path)
    assert lint_main(["--no-baseline", "--rule", "DET001", str(root)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET004" not in out
    assert lint_main(["--no-baseline", "--rule", "DET004", str(root)]) == 0


def test_every_rule_has_a_fixture_here():
    """Keep this suite honest: adding a rule without fixtures fails."""
    covered = set()
    text = Path(__file__).read_text(encoding="utf-8")
    for rule in all_rules():
        assert text.count(rule.id) >= 2, f"no fixtures for {rule.id}"
        covered.add(rule.id)
    assert covered == {r.id for r in all_rules()}
