"""Tests for the vote aggregation and sliding decision window (§IV-C4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble import SlidingDecision, aggregate_votes


class TestAggregateVotes:
    def test_two_of_three_rule(self):
        assert aggregate_votes(np.array([1, 1, 0])) == 1
        assert aggregate_votes(np.array([1, 0, 0])) == 0
        assert aggregate_votes(np.array([1, 1, 1])) == 1
        assert aggregate_votes(np.array([0, 0, 0])) == 0


class TestSlidingDecision:
    def test_waits_for_three(self):
        """Paper: 'we wait for three predictions'."""
        d = SlidingDecision(window=3)
        assert d.push(("f",), 1) is None
        assert d.push(("f",), 1) is None
        assert d.push(("f",), 1) == 1

    def test_paper_example_101(self):
        """'if the last three predictions were [1, 0, 1], the final
        decision would be 1'."""
        d = SlidingDecision(window=3)
        d.push(("f",), 1)
        d.push(("f",), 0)
        assert d.push(("f",), 1) == 1

    def test_majority_zero(self):
        d = SlidingDecision(window=3)
        d.push(("f",), 0)
        d.push(("f",), 1)
        assert d.push(("f",), 0) == 0

    def test_window_slides(self):
        d = SlidingDecision(window=3)
        for v in (1, 1, 1):
            d.push(("f",), v)
        # three 0s push the 1s out
        assert d.push(("f",), 0) == 1  # [1,1,0]
        assert d.push(("f",), 0) == 0  # [1,0,0]
        assert d.push(("f",), 0) == 0  # [0,0,0]

    def test_flows_independent(self):
        d = SlidingDecision(window=3)
        for _ in range(3):
            d.push(("a",), 1)
        assert d.push(("b",), 0) is None  # b's window still filling

    def test_emit_partial(self):
        d = SlidingDecision(window=3, emit_partial=True)
        assert d.push(("f",), 1) == 1
        assert d.push(("f",), 0) == 1  # [1,0] ties to attack
        assert d.push(("f",), 0) == 0  # [1,0,0]

    def test_forget(self):
        d = SlidingDecision(window=3)
        for _ in range(3):
            d.push(("f",), 1)
        d.forget(("f",))
        assert d.push(("f",), 1) is None  # history gone

    def test_counters(self):
        d = SlidingDecision(window=3)
        d.push(("f",), 1)
        d.push(("f",), 1)
        d.push(("f",), 1)
        assert d.waiting == 2
        assert d.decisions_emitted == 1

    def test_window_one_is_passthrough(self):
        d = SlidingDecision(window=1)
        assert d.push(("f",), 1) == 1
        assert d.push(("f",), 0) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingDecision(window=0)


@given(st.lists(st.integers(0, 1), min_size=3, max_size=60))
@settings(max_examples=100)
def test_window_matches_reference(labels):
    """Sliding decision equals majority over the trailing 3 labels."""
    d = SlidingDecision(window=3)
    for i, v in enumerate(labels):
        out = d.push(("f",), v)
        if i < 2:
            assert out is None
        else:
            last3 = labels[i - 2 : i + 1]
            expected = 1 if sum(last3) >= 2 else 0
            assert out == expected
