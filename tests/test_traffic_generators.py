"""Tests for benign and attack traffic generators."""

import numpy as np
import pytest

from repro.dataplane.packet import Protocol, TCPFlags, ip
from repro.traffic import (
    AttackType,
    BenignConfig,
    generate_benign,
    slowloris,
    syn_flood,
    syn_scan,
    udp_scan,
)

SERVER = ip("10.0.0.80")
ATTACKER = ip("203.0.113.1")
SEC = 1_000_000_000


class TestBenign:
    def test_all_labeled_benign(self):
        t = generate_benign(SERVER, 80, 0, 2 * SEC, seed=0)
        assert len(t) > 0
        assert t.attack_fraction() == 0.0

    def test_bidirectional(self):
        t = generate_benign(SERVER, 80, 0, 2 * SEC, seed=0)
        fwd = (t.records["dst_ip"] == SERVER).sum()
        rev = (t.records["src_ip"] == SERVER).sum()
        assert fwd > 0 and rev > 0

    def test_handshake_flags_present(self):
        t = generate_benign(SERVER, 80, 0, 2 * SEC, seed=0)
        flags = t.records["tcp_flags"]
        assert (flags == int(TCPFlags.SYN)).any()
        assert (flags == int(TCPFlags.SYNACK)).any()

    def test_deterministic(self):
        a = generate_benign(SERVER, 80, 0, SEC, seed=7)
        b = generate_benign(SERVER, 80, 0, SEC, seed=7)
        assert np.array_equal(a.records, b.records)

    def test_udp_mix(self):
        cfg = BenignConfig(udp_session_fraction=0.5, sessions_per_s=20)
        t = generate_benign(SERVER, 80, 0, 2 * SEC, cfg, seed=1)
        assert (t.records["protocol"] == int(Protocol.UDP)).any()

    def test_asymmetric_sessions_lack_reverse(self):
        cfg = BenignConfig(asymmetric_fraction=1.0, udp_session_fraction=0.0,
                           sessions_per_s=5)
        t = generate_benign(SERVER, 80, 0, 2 * SEC, cfg, seed=1)
        assert (t.records["src_ip"] == SERVER).sum() == 0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            generate_benign(SERVER, 80, 100, 100)

    def test_timestamps_within_window(self):
        t = generate_benign(SERVER, 80, SEC, 3 * SEC, seed=0)
        assert t.ts[0] >= SEC


class TestSynScan:
    def test_probes_are_minimal_syns(self):
        t = syn_scan(ATTACKER, SERVER, 0, SEC, rate_pps=200, seed=0)
        probes = t.records[t.records["src_ip"] == ATTACKER]
        syns = probes[probes["tcp_flags"] == int(TCPFlags.SYN)]
        assert (syns["length"] == 40).all()

    def test_ports_swept_sequentially(self):
        t = syn_scan(ATTACKER, SERVER, 0, SEC, rate_pps=100,
                     filtered_fraction=0.0, seed=0)
        probes = t.records[
            (t.records["src_ip"] == ATTACKER)
            & (t.records["tcp_flags"] == int(TCPFlags.SYN))
        ]
        dports = np.sort(np.unique(probes["dst_port"]))
        assert dports[0] == 1
        assert dports.size > 50

    def test_closed_ports_answered_with_rst(self):
        t = syn_scan(ATTACKER, SERVER, 0, SEC, rate_pps=100,
                     filtered_fraction=0.0, seed=0)
        resp = t.records[t.records["src_ip"] == SERVER]
        assert (resp["tcp_flags"] == int(TCPFlags.RST | TCPFlags.ACK)).any()

    def test_filtered_ports_retransmitted(self):
        t = syn_scan(ATTACKER, SERVER, 0, SEC, rate_pps=100,
                     filtered_fraction=1.0, retx_gap_ns=10_000_000, seed=0)
        # every flow should have up to 3 identical SYNs, no responses
        assert (t.records["src_ip"] == SERVER).sum() == 0
        key = t.records["src_port"].astype(np.int64) * 70000 + t.records["dst_port"]
        _, counts = np.unique(key, return_counts=True)
        assert counts.max() == 3

    def test_all_labeled(self):
        t = syn_scan(ATTACKER, SERVER, 0, SEC, rate_pps=50, seed=0)
        assert (t.records["label"] == 1).all()
        assert (t.records["attack_type"] == int(AttackType.SYN_SCAN)).all()

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            syn_scan(ATTACKER, SERVER, SEC, SEC, seed=0)


class TestUdpScan:
    def test_probe_sizes_tiny(self):
        t = udp_scan(ATTACKER, SERVER, 0, SEC, rate_pps=100, seed=0)
        probes = t.records[t.records["src_ip"] == ATTACKER]
        assert probes["length"].max() < 48

    def test_icmp_backscatter(self):
        t = udp_scan(ATTACKER, SERVER, 0, SEC, rate_pps=200,
                     icmp_response_fraction=1.0, seed=0)
        icmp = t.records[t.records["protocol"] == int(Protocol.ICMP)]
        assert len(icmp) > 0
        assert (icmp["length"] == 70).all()

    def test_unanswered_probes_retransmitted(self):
        t = udp_scan(ATTACKER, SERVER, 0, SEC, rate_pps=100,
                     icmp_response_fraction=0.0, retx_gap_ns=10_000_000, seed=0)
        key = t.records["src_port"].astype(np.int64) * 70000 + t.records["dst_port"]
        _, counts = np.unique(key, return_counts=True)
        assert counts.max() == 2


class TestSynFlood:
    def test_spoofed_sources_diverse(self):
        t = syn_flood(SERVER, 80, 0, SEC, rate_pps=5000, seed=0)
        syns = t.records[t.records["tcp_flags"] == int(TCPFlags.SYN)]
        assert np.unique(syns["src_ip"]).size > 0.95 * syns.shape[0]

    def test_fixed_target(self):
        t = syn_flood(SERVER, 80, 0, SEC, rate_pps=1000, seed=0)
        syns = t.records[t.records["tcp_flags"] == int(TCPFlags.SYN)]
        assert (syns["dst_ip"] == SERVER).all()
        assert (syns["dst_port"] == 80).all()

    def test_backscatter_fraction(self):
        t = syn_flood(SERVER, 80, 0, SEC, rate_pps=5000,
                      backscatter_fraction=0.2, seed=0)
        synacks = t.records[t.records["tcp_flags"] == int(TCPFlags.SYNACK)]
        syns = t.records[t.records["tcp_flags"] == int(TCPFlags.SYN)]
        ratio = len(synacks) / len(syns)
        assert 0.15 < ratio < 0.25

    def test_backscatter_carries_options(self):
        """Victim SYN-ACKs come from a real stack: 66-74 bytes."""
        t = syn_flood(SERVER, 80, 0, SEC, rate_pps=2000,
                      backscatter_fraction=0.5, seed=0)
        synacks = t.records[t.records["tcp_flags"] == int(TCPFlags.SYNACK)]
        assert synacks["length"].min() >= 66
        assert synacks["length"].max() <= 74

    def test_no_backscatter_option(self):
        t = syn_flood(SERVER, 80, 0, SEC, rate_pps=1000,
                      backscatter_fraction=0.0, seed=0)
        assert (t.records["tcp_flags"] == int(TCPFlags.SYNACK)).sum() == 0


class TestSlowloris:
    def test_low_volume(self):
        t = slowloris(ATTACKER, SERVER, 80, 0, 2 * SEC,
                      connections=8, keepalive_ns=100_000_000, seed=0)
        flood = syn_flood(SERVER, 80, 0, 2 * SEC, rate_pps=5000, seed=0)
        assert len(t) < len(flood) / 10

    def test_connection_count(self):
        t = slowloris(ATTACKER, SERVER, 80, 0, 2 * SEC,
                      connections=5, keepalive_ns=100_000_000, seed=0)
        sports = np.unique(
            t.records[t.records["src_ip"] == ATTACKER]["src_port"]
        )
        assert sports.size == 5

    def test_keepalive_pacing(self):
        keep = 50_000_000
        t = slowloris(ATTACKER, SERVER, 80, 0, 2 * SEC,
                      connections=1, keepalive_ns=keep, seed=0)
        frags = t.records[
            (t.records["src_ip"] == ATTACKER)
            & (t.records["tcp_flags"] == int(TCPFlags.PSHACK))
        ]
        gaps = np.diff(np.sort(frags["ts"]))
        assert gaps.min() > 0.7 * keep
        assert gaps.max() < 1.4 * keep

    def test_fragments_are_small(self):
        t = slowloris(ATTACKER, SERVER, 80, 0, SEC,
                      connections=4, keepalive_ns=50_000_000, seed=0)
        frags = t.records[t.records["tcp_flags"] == int(TCPFlags.PSHACK)]
        assert frags["length"].max() < 120

    def test_invalid_connections(self):
        with pytest.raises(ValueError):
            slowloris(ATTACKER, SERVER, 80, 0, SEC, connections=0, seed=0)
