"""Conservation and consistency invariants of the simulated data plane.

These integration properties catch whole classes of wiring bugs: packets
can only be delivered or dropped (never duplicated or lost untracked),
INT must report exactly the monitored deliveries, and queue counters
must balance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import Packet, Protocol, int_path_topology
from repro.int_telemetry import IntCollector, attach_int_path
from repro.sflow import PacketCountSampler, SFlowAgent, SFlowCollector


def run_traffic(topo, n, seed, spacing=5_000):
    rng = np.random.default_rng(seed)
    client, server = topo.hosts["client"], topo.hosts["server"]
    t = 0
    for i in range(n):
        t += int(rng.integers(1, spacing))
        pkt = Packet(
            src_ip=client.ip, dst_ip=server.ip,
            src_port=int(rng.integers(1024, 65535)), dst_port=80,
            protocol=int(Protocol.TCP), length=int(rng.integers(60, 1500)),
            flow_seq=i,
        )
        client.send_at(t, pkt)
    topo.run()


@given(n=st.integers(1, 300), seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_packet_conservation(n, seed):
    """injected == delivered + dropped, at every switch and end to end."""
    topo = int_path_topology()
    run_traffic(topo, n, seed)
    server = topo.hosts["server"]
    total_drops = sum(
        sw.dropped_no_route + sw.dropped_acl
        + sum(p.queue.stats.dropped for p in sw.ports.values())
        for sw in topo.switches.values()
    )
    assert server.received + total_drops == n
    for sw in topo.switches.values():
        for port in sw.ports.values():
            s = port.queue.stats
            assert s.enqueued == s.transmitted  # queue fully drained
        assert sw.received == sw.forwarded + sw.dropped_no_route + sw.dropped_acl


@given(n=st.integers(1, 200), seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_int_reports_exactly_deliveries(n, seed):
    """One telemetry report per delivered monitored packet — no dupes,
    no silent losses."""
    topo = int_path_topology()
    col = IntCollector()
    attach_int_path(
        topo.switches["source_sw"], [topo.switches["transit_sw"]],
        topo.switches["sink_sw"], col,
    )
    run_traffic(topo, n, seed)
    assert len(col) == topo.hosts["server"].received == n
    rec = col.to_records()
    assert (rec["hops"] == 3).all()
    assert np.all(np.diff(rec["ts_report"]) >= 0)  # reports in time order


@given(n=st.integers(50, 400), rate=st.integers(2, 16), seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_sflow_sample_accounting(n, rate, seed):
    """Samples received + pending == samples taken; pool counts all."""
    topo = int_path_topology()
    col = SFlowCollector()
    agent = SFlowAgent(
        1, col, sampler=PacketCountSampler(rate, seed=seed),
        samples_per_datagram=8,
    )
    agent.attach(topo.switches["source_sw"])
    run_traffic(topo, n, seed)
    agent.flush(topo.clock.now)
    assert col.samples_received == agent.sampler.sampled
    assert agent.sampler.observed == n


def test_queue_byte_accounting():
    topo = int_path_topology()
    run_traffic(topo, 100, seed=0)
    for sw in topo.switches.values():
        for port in sw.ports.values():
            s = port.queue.stats
            if s.transmitted:
                # minimum Ethernet frame floor applies per packet
                assert s.bytes_transmitted >= 64 * s.transmitted
