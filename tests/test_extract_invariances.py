"""Invariance properties of the bulk feature extractor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE


def random_capture(rng, n_flows, n_packets):
    flows = [(int(rng.integers(1, 200)), 2, int(rng.integers(1, 2000)), 80, 6)
             for _ in range(n_flows)]
    rec = np.zeros(n_packets, dtype=REPORT_DTYPE)
    t = 0
    for i in range(n_packets):
        t += int(rng.integers(1, 10**7))
        src, dst, sport, dport, proto = flows[int(rng.integers(0, n_flows))]
        rec[i] = (t, src, dst, sport, dport, proto, 0,
                  int(rng.integers(40, 1500)), t % 2**32, t % 2**32,
                  int(rng.integers(0, 5)), 100, 3)
    return rec


def final_rows_by_flow(fm):
    """Map flow id -> that flow's last (fully accumulated) feature row."""
    out = {}
    for i in range(len(fm)):
        out[fm.flow_index[i]] = fm.X[i]  # arrival order: last write wins
    return out


@given(n_flows=st.integers(1, 5), n_packets=st.integers(2, 80),
       seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_interleaving_other_flows_does_not_change_a_flow(n_flows, n_packets, seed):
    """A flow's final feature row depends only on its own packets: the
    row computed from the mixed capture equals the row computed from
    the flow's packets alone."""
    rng = np.random.default_rng(seed)
    rec = random_capture(rng, n_flows, n_packets)
    fm = extract_features(rec, source="int")

    for flow_id in np.unique(fm.flow_index):
        mask = fm.flow_index == flow_id
        alone = extract_features(rec[mask], source="int")
        np.testing.assert_allclose(
            fm.X[mask], alone.X, rtol=1e-9, atol=1e-12,
            err_msg=f"flow {flow_id} changed under interleaving",
        )


@given(n_flows=st.integers(1, 5), n_packets=st.integers(2, 60),
       seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_row_count_and_flow_count_conserved(n_flows, n_packets, seed):
    rng = np.random.default_rng(seed)
    rec = random_capture(rng, n_flows, n_packets)
    fm = extract_features(rec, source="int")
    assert len(fm) == n_packets
    assert fm.n_flows == np.unique(fm.flow_index).size
    assert fm.is_first.sum() == fm.n_flows
    # packet_index is a per-flow 0..k-1 ramp
    for flow_id in np.unique(fm.flow_index):
        idx = fm.packet_index[fm.flow_index == flow_id]
        assert sorted(idx.tolist()) == list(range(idx.size))


@given(n_packets=st.integers(2, 60), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_directional_refines_bidirectional(n_packets, seed):
    """Every directional flow sits inside exactly one bidirectional flow
    (direction merging is a coarsening of the partition)."""
    rng = np.random.default_rng(seed)
    rec = random_capture(rng, 4, n_packets)
    # mirror some packets to create reverse-direction records
    flip = rng.random(n_packets) < 0.4
    rec["src_ip"][flip], rec["dst_ip"][flip] = (
        rec["dst_ip"][flip].copy(), rec["src_ip"][flip].copy())
    rec["src_port"][flip], rec["dst_port"][flip] = (
        rec["dst_port"][flip].copy(), rec["src_port"][flip].copy())
    bidi = extract_features(rec, source="int", directional=False)
    dire = extract_features(rec, source="int", directional=True)
    assert dire.n_flows >= bidi.n_flows
    mapping = {}
    for d, b in zip(dire.flow_index, bidi.flow_index):
        assert mapping.setdefault(int(d), int(b)) == int(b)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_n_packets_monotone_within_flow(seed):
    rng = np.random.default_rng(seed)
    rec = random_capture(rng, 3, 50)
    fm = extract_features(rec, source="int")
    col = fm.names.index("n_packets")
    for flow_id in np.unique(fm.flow_index):
        vals = fm.X[fm.flow_index == flow_id, col]
        # arrival order within the capture is flow order
        assert np.array_equal(np.sort(vals), vals)
