"""Parallel forest training and the batched-inference fast paths.

The contract: ``n_jobs`` moves work, never randomness.  A forest fitted
with any worker count is bit-identical to the serial fit — same trees,
same importances, same probabilities — because every tree draws from its
own spawned generator stream keyed only by (seed, tree index).
"""

import time

import numpy as np
import pytest

from repro.core.database import PredictionEntry
from repro.ml import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, _LEAF


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 8))
    y = (X[:, 0] + 0.5 * X[:, 3] > 0).astype(int)
    return X, y


def assert_forests_identical(a, b, X):
    assert len(a.estimators_) == len(b.estimators_)
    for ta, tb in zip(a.estimators_, b.estimators_):
        assert np.array_equal(ta.feature_, tb.feature_)
        assert np.array_equal(ta.threshold_, tb.threshold_)
        assert np.array_equal(ta.children_left_, tb.children_left_)
        assert np.array_equal(ta.children_right_, tb.children_right_)
        assert np.array_equal(ta.value_, tb.value_)
    assert np.array_equal(a.feature_importances_, b.feature_importances_)
    assert np.array_equal(a.predict_proba(X), b.predict_proba(X))
    assert np.array_equal(a.predict(X), b.predict(X))


class TestParallelTraining:
    @pytest.mark.parametrize("jobs", [2, 4, -1])
    def test_n_jobs_is_bit_identical(self, data, jobs):
        X, y = data
        serial = RandomForestClassifier(
            n_estimators=7, max_depth=6, seed=0).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=7, max_depth=6, seed=0, n_jobs=jobs).fit(X, y)
        assert_forests_identical(serial, parallel, X)

    def test_more_jobs_than_trees(self, data):
        X, y = data
        serial = RandomForestClassifier(n_estimators=2, seed=3).fit(X, y)
        wide = RandomForestClassifier(n_estimators=2, seed=3, n_jobs=8).fit(X, y)
        assert_forests_identical(serial, wide, X)

    def test_refit_is_deterministic(self, data):
        X, y = data
        clf = RandomForestClassifier(n_estimators=4, seed=1, n_jobs=2)
        first = clf.fit(X, y).predict_proba(X)
        second = clf.fit(X, y).predict_proba(X)
        assert np.array_equal(first, second)

    def test_n_jobs_zero_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_jobs=0)


class TestBootstrapRedraw:
    def test_class_incomplete_bootstrap_raises(self, data):
        X, _ = data
        # 39:1 imbalance with 2-sample bootstraps: a class-complete draw
        # is nearly impossible, so the 8 redraws exhaust and fail loudly.
        y = np.array([0] * 39 + [1])
        with pytest.raises(ValueError, match="missed a class"):
            RandomForestClassifier(
                n_estimators=3, max_samples=2, seed=0).fit(X[:40], y)

    def test_raises_from_worker_too(self, data):
        X, _ = data
        y = np.array([0] * 39 + [1])
        with pytest.raises(ValueError, match="missed a class"):
            RandomForestClassifier(
                n_estimators=4, max_samples=2, seed=0, n_jobs=2).fit(X[:40], y)


class TestTreeFastPaths:
    def test_depth_matches_per_node_reference(self, data):
        X, y = data
        for seed in range(4):
            tree = DecisionTreeClassifier(max_depth=5, seed=seed).fit(X, y)
            depths = np.zeros(tree.node_count, dtype=np.int64)
            expect = 0
            for nid in range(tree.node_count):
                if tree.feature_[nid] != _LEAF:
                    depths[tree.children_left_[nid]] = depths[nid] + 1
                    depths[tree.children_right_[nid]] = depths[nid] + 1
                else:
                    expect = max(expect, int(depths[nid]))
            assert tree.depth == expect

    def test_depth_of_stump_is_zero(self, data):
        X, y = data
        tree = DecisionTreeClassifier(min_samples_split=10**6, seed=0).fit(X, y)
        assert tree.node_count == 1
        assert tree.depth == 0

    def test_apply_equals_validated_apply(self, data):
        X, y = data
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        Xq = np.ascontiguousarray(X[:50], dtype=np.float64)
        assert np.array_equal(tree.apply(Xq), tree._apply(Xq))

    def test_forest_proba_matches_column_scatter(self, data):
        X, y = data
        clf = RandomForestClassifier(n_estimators=6, max_depth=5, seed=2).fit(X, y)
        ref = np.zeros((X.shape[0], clf.classes_.size))
        for tree in clf.estimators_:
            ref[:, tree.classes_.astype(np.int64)] += tree.predict_proba(X)
        ref /= len(clf.estimators_)
        assert np.array_equal(clf.predict_proba(X), ref)


class _NoCacheTree(DecisionTreeClassifier):
    """Reference tree: split search without the fit-time sort caches
    (re-argsorts every candidate feature at every node, the pre-presort
    behaviour)."""

    def _best_split(self, X, y_onehot, idx, features, presort=None, ranks=None):
        return super()._best_split(X, y_onehot, idx, features, None, None)


class TestPresortSplitSearch:
    def test_presorted_fit_is_bit_identical(self, data):
        """The sort caches change where permutations come from, never
        what they are: same splits, same thresholds, same leaves."""
        X, y = data
        for seed in range(4):
            cached = DecisionTreeClassifier(
                max_depth=6, max_features="sqrt", seed=seed).fit(X, y)
            plain = _NoCacheTree(
                max_depth=6, max_features="sqrt", seed=seed).fit(X, y)
            assert np.array_equal(cached.feature_, plain.feature_)
            assert np.array_equal(cached.threshold_, plain.threshold_)
            assert np.array_equal(cached.children_left_, plain.children_left_)
            assert np.array_equal(cached.children_right_, plain.children_right_)
            assert np.array_equal(cached.value_, plain.value_)
            assert np.array_equal(
                cached.feature_importances_, plain.feature_importances_
            )

    def test_fit_time_delta_recorded(self):
        """Timing-tolerant presort check: the cached split search must
        not regress fit time.  The delta is printed for the record; the
        assertion only guards against a blow-up (shared CI boxes make a
        strict speedup assertion flaky)."""
        rng = np.random.default_rng(42)
        X = rng.normal(size=(4000, 10))
        y = (X[:, 0] + 0.3 * X[:, 2] - 0.5 * X[:, 7] > 0).astype(int)

        def fit_time(cls):
            best = np.inf
            for _ in range(3):
                t0 = time.perf_counter()
                cls(max_depth=8, seed=0).fit(X, y)
                best = min(best, time.perf_counter() - t0)
            return best

        t_plain = fit_time(_NoCacheTree)
        t_cached = fit_time(DecisionTreeClassifier)
        print(
            f"\ntree fit 4000x10 depth-8: re-argsort {t_plain * 1e3:.1f} ms, "
            f"presorted {t_cached * 1e3:.1f} ms "
            f"({t_plain / t_cached:.2f}x)"
        )
        assert t_cached <= t_plain * 1.5 + 0.05


class TestPredictionEntryFast:
    def test_fast_equals_init(self):
        args = dict(
            key=(1, 2, 3, 4, 6), ts_registered_ns=10, wall_registered_ns=20,
            wall_predicted_ns=35, label=1, votes=(1, 0), final_decision=1,
        )
        normal = PredictionEntry(**args)
        fast = PredictionEntry.fast(
            args["key"], args["ts_registered_ns"], args["wall_registered_ns"],
            args["wall_predicted_ns"], args["label"], args["votes"],
            args["final_decision"],
        )
        assert fast == normal
        assert fast.latency_ns == normal.latency_ns == 15
        assert isinstance(fast, PredictionEntry)

    def test_fast_still_frozen(self):
        entry = PredictionEntry.fast((1,), 0, 0, 1, 0, (0,), None)
        with pytest.raises(Exception):
            entry.label = 1
