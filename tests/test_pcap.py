"""Tests for real pcap serialization round trips."""

import struct

import numpy as np
import pytest

from repro.dataplane.packet import Protocol, TCPFlags, ip
from repro.traffic import Trace, generate_benign, syn_flood
from repro.traffic.flows import packet_block
from repro.traffic.pcap import ipv4_checksum, read_pcap, write_pcap

SERVER = ip("10.0.0.80")


class TestChecksum:
    def test_known_vector(self):
        # classic RFC 1071 example header
        hdr = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        assert ipv4_checksum(hdr) == 0xB861

    def test_checksum_of_valid_header_is_zero(self):
        hdr = bytearray(bytes.fromhex("450000730000400040110000c0a80001c0a800c7"))
        ck = ipv4_checksum(bytes(hdr))
        struct.pack_into("!H", hdr, 10, ck)
        assert ipv4_checksum(bytes(hdr)) == 0

    def test_odd_length_padded(self):
        assert isinstance(ipv4_checksum(b"\x01\x02\x03"), int)


class TestRoundTrip:
    def make_trace(self):
        blocks = [
            packet_block(np.array([1_000_000, 2_000_000]), ip("1.2.3.4"),
                         SERVER, 1234, 80, Protocol.TCP,
                         int(TCPFlags.SYN), 60),
            packet_block(np.array([3_000_000]), ip("5.6.7.8"), SERVER,
                         53, 53, Protocol.UDP, 0, 80),
            packet_block(np.array([4_000_000]), SERVER, ip("1.2.3.4"),
                         0, 0, Protocol.ICMP, 0, 70, label=1, attack_type=2),
        ]
        return Trace(np.concatenate(blocks))

    def test_header_fields_survive(self, tmp_path):
        trace = self.make_trace()
        path = write_pcap(trace, tmp_path / "t.pcap")
        back = read_pcap(path)
        assert len(back) == len(trace)
        for col in ("src_ip", "dst_ip", "src_port", "dst_port", "protocol",
                    "tcp_flags", "length"):
            assert np.array_equal(back.records[col], trace.records[col]), col

    def test_timestamps_microsecond_truncated(self, tmp_path):
        trace = self.make_trace()
        back = read_pcap(write_pcap(trace, tmp_path / "t.pcap"))
        assert np.array_equal(back.ts, (trace.ts // 1000) * 1000)

    def test_labels_sidecar(self, tmp_path):
        trace = self.make_trace()
        back = read_pcap(write_pcap(trace, tmp_path / "t.pcap"))
        assert np.array_equal(back.records["label"], trace.records["label"])
        assert np.array_equal(back.records["attack_type"],
                              trace.records["attack_type"])

    def test_without_labels(self, tmp_path):
        trace = self.make_trace()
        path = write_pcap(trace, tmp_path / "t.pcap", with_labels=False)
        back = read_pcap(path)
        assert back.records["label"].sum() == 0

    def test_generated_traffic_roundtrip(self, tmp_path):
        trace = Trace(
            np.concatenate([
                generate_benign(SERVER, 80, 0, 10**9, seed=0).records,
                syn_flood(SERVER, 80, 0, 10**8, rate_pps=2000, seed=1).records,
            ])
        )
        back = read_pcap(write_pcap(trace, tmp_path / "big.pcap"))
        assert len(back) == len(trace)
        assert np.array_equal(back.records["src_ip"], trace.records["src_ip"])
        assert np.array_equal(back.records["tcp_flags"],
                              trace.records["tcp_flags"])

    def test_ip_checksums_valid_on_wire(self, tmp_path):
        trace = self.make_trace()
        path = write_pcap(trace, tmp_path / "t.pcap")
        data = path.read_bytes()
        off = 24  # global header
        while off < len(data):
            _sec, _usec, incl, _orig = struct.unpack_from("<IIII", data, off)
            off += 16
            ip_header = data[off + 14 : off + 34]
            assert ipv4_checksum(ip_header) == 0  # valid checksum sums to 0
            off += incl

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "bogus.pcap"
        p.write_bytes(b"\x00" * 64)
        with pytest.raises(ValueError):
            read_pcap(p)
