"""Tests for the entropy-based baseline detector."""

import numpy as np
import pytest

from repro.baselines import EntropyDetector, entropy_series, shannon_entropy
from repro.datasets import SERVER_IP
from repro.traffic import Trace, generate_benign, merge_traces, slowloris, syn_flood
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000


class TestShannonEntropy:
    def test_empty(self):
        assert shannon_entropy(np.array([])) == 0.0

    def test_single_value(self):
        assert shannon_entropy(np.array([5, 5, 5])) == 0.0

    def test_uniform_two_values(self):
        assert shannon_entropy(np.array([1, 2]), normalize=False) == pytest.approx(1.0)
        assert shannon_entropy(np.array([1, 2])) == pytest.approx(1.0)

    def test_normalized_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            vals = rng.integers(0, 50, size=rng.integers(2, 200))
            assert 0.0 <= shannon_entropy(vals) <= 1.0 + 1e-12

    def test_skew_lowers_entropy(self):
        skewed = np.array([1] * 98 + [2, 3])
        uniform = np.array([1, 2, 3] * 33)
        assert shannon_entropy(skewed) < shannon_entropy(uniform)


class TestEntropySeries:
    def test_windows_and_counts(self):
        ts = np.array([0, 10, 20, 110, 120])
        starts, ent, counts = entropy_series(
            ts, {"x": np.array([1, 2, 3, 4, 4])}, window_ns=100
        )
        assert starts.tolist() == [0, 100]
        assert counts.tolist() == [3, 2]
        assert ent["x"][0] == pytest.approx(1.0)  # 3 distinct of 3
        assert ent["x"][1] == 0.0  # both equal

    def test_empty(self):
        starts, ent, counts = entropy_series(np.array([]), {"x": np.array([])}, 10)
        assert starts.size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            entropy_series(np.array([1]), {"x": np.array([1])}, 0)


def campaign_like():
    """Benign baseline with a flood and a slowloris episode injected."""
    benign = generate_benign(
        SERVER_IP, 80, 0, 30 * SEC,
        BenignConfig(sessions_per_s=6, mean_think_ns=3_000_000, rtt_ns=100_000),
        seed=4,
    )
    flood = syn_flood(SERVER_IP, 80, 10 * SEC, 13 * SEC, rate_pps=5000, seed=5)
    slow = slowloris(0xC6336409, SERVER_IP, 80, 20 * SEC, 25 * SEC,
                     connections=8, keepalive_ns=100_000_000, seed=6)
    return merge_traces([benign, flood, slow])


class TestEntropyDetector:
    @pytest.fixture(scope="class")
    def result(self):
        trace = campaign_like()
        det = EntropyDetector(window_ns=500_000_000, z_threshold=4.0)
        return det, det.detect(trace.records), trace

    def test_flood_alarmed(self, result):
        det, res, _ = result
        assert det.episode_coverage(res, [(10 * SEC, 13 * SEC)]) == [True]

    def test_slowloris_missed(self, result):
        """The structural blind spot: low-and-slow never shifts a
        distribution, so the classic baseline cannot see it."""
        det, res, _ = result
        assert det.episode_coverage(res, [(20 * SEC, 25 * SEC)]) == [False]

    def test_low_false_alarm_rate_on_benign(self, result):
        det, res, _ = result
        starts = res["window_starts"]
        benign_mask = (
            ((starts > 2 * SEC) & (starts < 9 * SEC))
            | ((starts > 26 * SEC) & (starts < 29 * SEC))
        )
        far = res["alarms"][benign_mask].mean()
        assert far < 0.1

    def test_attack_windows_have_extreme_z(self, result):
        """The flood concentrates traffic onto one destination port, so
        the dst-port entropy collapses with an extreme z-score."""
        det, res, _ = result
        starts = res["window_starts"]
        flood_mask = (starts >= 10 * SEC) & (starts < 13 * SEC)
        worst = max(
            np.abs(res["z"][f][flood_mask]).max() for f in det.fields
        )
        assert worst > det.z_threshold
        assert np.abs(res["z"]["dst_port"][flood_mask]).max() > det.z_threshold

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EntropyDetector(window_ns=0)
        with pytest.raises(ValueError):
            EntropyDetector(alpha=0)
        with pytest.raises(ValueError):
            EntropyDetector(z_threshold=0)

    def test_thin_windows_skipped(self):
        trace = campaign_like()
        det = EntropyDetector(window_ns=500_000_000, min_packets=10**9)
        res = det.detect(trace.records)
        assert not res["alarms"].any()
