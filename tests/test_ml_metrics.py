"""Tests for the §IV-A metric suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)


class TestConfusionMatrix:
    def test_perfect(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 0, 1, 1])
        assert cm.tolist() == [[2, 0], [0, 2]]

    def test_quadrants(self):
        # true 0 pred 1 = FP at cm[0,1]; true 1 pred 0 = FN at cm[1,0]
        cm = confusion_matrix([0, 1], [1, 0])
        assert cm.tolist() == [[0, 1], [1, 0]]

    def test_marginals_sum_to_n(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, 100)
        y_pred = rng.integers(0, 2, 100)
        assert confusion_matrix(y_true, y_pred).sum() == 100

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 2], [0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestScores:
    def test_paper_formulas(self):
        # hand-computable case: TP=2, TN=1, FP=1, FN=1
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert accuracy_score(y_true, y_pred) == pytest.approx(3 / 5)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        assert precision_score([1, 1], [0, 0]) == 0.0
        assert recall_score([1, 1], [0, 0]) == 0.0
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_all_negative_predictor_table4_shape(self):
        """The sFlow NN row of Table IV: recall 0, precision 0, macro-F1 0.5."""
        y_true = np.array([0] * 990 + [1] * 10)
        y_pred = np.zeros(1000, dtype=int)
        rep = classification_report(y_true, y_pred)
        assert rep["recall"] == 0.0
        assert rep["precision"] == 0.0
        assert rep["f1"] == 0.0
        assert rep["f1_macro"] == pytest.approx(0.5, abs=0.01)

    def test_report_counts(self):
        rep = classification_report([1, 1, 0, 0], [1, 0, 1, 0])
        assert (rep["tp"], rep["tn"], rep["fp"], rep["fn"]) == (1, 1, 1, 1)


@given(
    labels=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=200
    )
)
@settings(max_examples=100)
def test_metric_identities(labels):
    """F1 is the harmonic mean; accuracy matches confusion-matrix trace."""
    y_true = np.array([a for a, _ in labels])
    y_pred = np.array([b for _, b in labels])
    cm = confusion_matrix(y_true, y_pred)
    assert accuracy_score(y_true, y_pred) == pytest.approx(np.trace(cm) / cm.sum())
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    f1 = f1_score(y_true, y_pred)
    if p + r > 0:
        assert f1 == pytest.approx(2 * p * r / (p + r))
    else:
        assert f1 == 0.0
    assert 0.0 <= f1 <= 1.0
