"""Tests for the mitigation package (rules, traceback, enforcement, engine)."""

import numpy as np
import pytest

from repro.core.database import PredictionEntry
from repro.dataplane import EventQueue, Packet, Protocol, Switch, int_path_topology
from repro.mitigation import (
    AclTable,
    AttackSource,
    FlowRule,
    MitigationEngine,
    MitigationPolicy,
    RuleAction,
    RuleGenerator,
    SourceTracker,
    attach_acl,
)


def pkt(src=0x01020304, dst=0x0A0A0050, sport=1234, dport=80, proto=6):
    return Packet(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                  protocol=proto, length=64)


class TestFlowRule:
    def test_exact_match(self):
        r = FlowRule(src_ip=0x01020304, dst_ip=0x0A0A0050, src_port=1234,
                     dst_port=80, protocol=6)
        assert r.matches(pkt())
        assert not r.matches(pkt(sport=9999))

    def test_wildcards(self):
        r = FlowRule(dst_port=80)
        assert r.matches(pkt())
        assert r.matches(pkt(src=7, sport=5))
        assert not r.matches(pkt(dport=443))

    def test_prefix_match(self):
        r = FlowRule(src_ip=0x01000000, src_prefix_len=8)
        assert r.matches(pkt(src=0x01FFFFFF))
        assert not r.matches(pkt(src=0x02000000))

    def test_zero_prefix_matches_everything(self):
        r = FlowRule(src_ip=0, src_prefix_len=0)
        assert r.matches(pkt(src=0xDEADBEEF))

    def test_expiry(self):
        r = FlowRule(dst_port=80, expires_ns=1000)
        assert not r.expired(999)
        assert r.expired(1000)
        assert not FlowRule(dst_port=80).expired(10**18)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FlowRule(src_prefix_len=33)
        with pytest.raises(ValueError):
            FlowRule(action=RuleAction.RATE_LIMIT, rate_pps=0)


class TestRuleGenerator:
    def test_flow_rule_is_exact(self):
        g = RuleGenerator()
        r = g.flow_rule((1, 2, 3, 4, 6), now_ns=100)
        assert (r.src_ip, r.dst_ip, r.src_port, r.dst_port, r.protocol) == (1, 2, 3, 4, 6)
        assert r.action is RuleAction.DROP
        assert r.expires_ns == 100 + g.rule_ttl_ns

    def test_flood_rule_rate_limits(self):
        g = RuleGenerator(flood_rate_pps=50)
        r = g.flood_rule(2, 80, 6, (0x01000000, 8), now_ns=0, n_sources=99)
        assert r.action is RuleAction.RATE_LIMIT
        assert r.rate_pps == 50
        assert r.src_prefix_len == 8

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            RuleGenerator(host_flow_threshold=0)


class TestSourceTracker:
    def test_heavy_source_detection(self):
        t = SourceTracker()
        for port in range(10):
            t.flag((7, 2, 40000 + port, 80, 6), now_ns=port)
        heavy = t.heavy_sources(min_flows=5)
        assert len(heavy) == 1
        assert heavy[0].src_ip == 7
        assert heavy[0].n_flows == 10

    def test_duplicate_flags_counted_once(self):
        t = SourceTracker()
        t.flag((7, 2, 1, 80, 6), 0)
        t.flag((7, 2, 1, 80, 6), 5)
        assert t.sources[7].n_flows == 1
        assert t.sources[7].last_seen_ns == 5

    def test_flooded_service_detection(self):
        t = SourceTracker(prefix_len=8)
        for i in range(60):
            t.flag((0x01000000 + i, 2, 1000 + i, 80, 6), now_ns=i)
        flooded = t.flooded_services(min_sources=50)
        assert len(flooded) == 1
        (service, prefix, n) = flooded[0]
        assert service == (2, 80, 6)
        assert prefix == (0x01000000, 8)
        assert n == 60

    def test_below_threshold_not_flooded(self):
        t = SourceTracker()
        for i in range(10):
            t.flag((100 + i, 2, 1, 80, 6), 0)
        assert t.flooded_services(min_sources=50) == []

    def test_forget_service(self):
        t = SourceTracker()
        for i in range(60):
            t.flag((i, 2, 1, 80, 6), 0)
        t.forget_service((2, 80, 6))
        assert t.flooded_services(1) == []


class TestAclTable:
    def test_drop(self):
        acl = AclTable()
        acl.install(FlowRule(dst_port=80))
        assert acl.check(pkt(), now_ns=0) is False
        assert acl.check(pkt(dport=443), now_ns=0) is True
        assert acl.dropped == 1 and acl.passed == 1

    def test_expired_rule_pruned(self):
        acl = AclTable()
        acl.install(FlowRule(dst_port=80, expires_ns=1000))
        assert acl.check(pkt(), now_ns=500) is False
        assert acl.check(pkt(), now_ns=2000) is True
        assert len(acl.rules) == 0

    def test_rate_limit_sheds_sustained_rate(self):
        acl = AclTable(burst=5)
        acl.install(FlowRule(dst_port=80, action=RuleAction.RATE_LIMIT,
                             rate_pps=10))
        # 100 packets in 1 ms: only the burst passes
        allowed = sum(acl.check(pkt(), now_ns=i * 10_000) for i in range(100))
        assert allowed <= 6

    def test_rate_limit_allows_conforming_rate(self):
        acl = AclTable(burst=5)
        acl.install(FlowRule(dst_port=80, action=RuleAction.RATE_LIMIT,
                             rate_pps=10))
        # 5 packets/second for 3 seconds — under the limit
        allowed = sum(
            acl.check(pkt(), now_ns=i * 200_000_000) for i in range(15)
        )
        assert allowed == 15

    def test_first_match_wins(self):
        acl = AclTable()
        acl.install(FlowRule(dst_port=80, action=RuleAction.RATE_LIMIT,
                             rate_pps=1000))
        acl.install(FlowRule(dst_port=80))  # drop, but second
        assert acl.check(pkt(), now_ns=0) is True

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            AclTable(burst=0)


class TestAttachAcl:
    def test_acl_runs_before_other_hooks(self):
        topo = int_path_topology()
        sw = topo.switches["source_sw"]
        seen = []
        sw.add_ingress_hook(lambda s, p, port: (seen.append(p), True)[1])
        acl = attach_acl(sw)
        acl.install(FlowRule(dst_port=80))
        blocked = pkt(dst=topo.hosts["server"].ip)
        sw.receive(blocked, 1)
        topo.run()
        assert seen == []  # dropped before the later hook saw it
        assert sw.dropped_acl == 1
        assert topo.hosts["server"].received == 0


def entry(key, decision=1, ts=0):
    return PredictionEntry(key=key, ts_registered_ns=ts, wall_registered_ns=0,
                           wall_predicted_ns=1, label=decision,
                           votes=(decision,), final_decision=decision)


class TestMitigationEngine:
    def test_per_flow_rule_on_flag(self):
        acl = AclTable()
        eng = MitigationEngine([acl])
        rules = eng.on_decision(entry((1, 2, 3, 4, 6)))
        assert len(rules) == 1
        assert acl.installed == 1

    def test_benign_decisions_ignored(self):
        eng = MitigationEngine([AclTable()])
        assert eng.on_decision(entry((1, 2, 3, 4, 6), decision=0)) == []
        undecided = PredictionEntry((1, 2, 3, 4, 6), 0, 0, 1, 1, (1,), None)
        assert eng.on_decision(undecided) == []

    def test_host_escalation(self):
        eng = MitigationEngine(
            [AclTable()], MitigationPolicy(host_flow_threshold=3)
        )
        for port in range(3):
            eng.on_decision(entry((7, 2, 1000 + port, 80, 6), ts=port))
        host_rules = [r for r in eng.rules_emitted if r.src_prefix_len == 32
                      and r.dst_ip is None]
        assert len(host_rules) == 1
        assert host_rules[0].src_ip == 7
        # no duplicate host rule on further flags
        eng.on_decision(entry((7, 2, 2000, 80, 6), ts=9))
        assert eng.stats()["hosts_blocked"] == 1

    def test_flood_escalation(self):
        eng = MitigationEngine(
            [AclTable()],
            MitigationPolicy(spoof_source_threshold=20, per_flow_rules=False),
        )
        for i in range(25):
            eng.on_decision(entry((0x01000000 + i, 2, 1000 + i, 80, 6), ts=i))
        limits = [r for r in eng.rules_emitted
                  if r.action is RuleAction.RATE_LIMIT]
        assert len(limits) == 1
        assert limits[0].dst_port == 80
        assert eng.stats()["services_rate_limited"] == 1

    def test_rules_fan_out_to_all_tables(self):
        a, b = AclTable(), AclTable()
        eng = MitigationEngine([a, b])
        eng.on_decision(entry((1, 2, 3, 4, 6)))
        assert a.installed == b.installed == 1

    def test_needs_tables(self):
        with pytest.raises(ValueError):
            MitigationEngine([])
