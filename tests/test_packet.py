"""Tests for the packet model and address helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataplane.packet import (
    MIN_FRAME_BYTES,
    Packet,
    Protocol,
    TCPFlags,
    ip,
    ip_str,
)


class TestAddressConversion:
    def test_roundtrip_known(self):
        assert ip("10.0.0.1") == 0x0A000001
        assert ip_str(0x0A000001) == "10.0.0.1"

    def test_extremes(self):
        assert ip("0.0.0.0") == 0
        assert ip("255.255.255.255") == 0xFFFFFFFF

    def test_bad_formats(self):
        with pytest.raises(ValueError):
            ip("10.0.0")
        with pytest.raises(ValueError):
            ip("10.0.0.256")
        with pytest.raises(ValueError):
            ip_str(2**32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, addr):
        assert ip(ip_str(addr)) == addr


def make_pkt(**kw):
    base = dict(
        src_ip=ip("10.0.0.1"),
        dst_ip=ip("10.0.0.2"),
        src_port=1234,
        dst_port=80,
        protocol=int(Protocol.TCP),
        length=100,
    )
    base.update(kw)
    return Packet(**base)


class TestPacket:
    def test_five_tuple(self):
        pkt = make_pkt()
        assert pkt.five_tuple == (ip("10.0.0.1"), ip("10.0.0.2"), 1234, 80, 6)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            make_pkt(length=0)

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError):
            make_pkt(src_port=70000)

    def test_wire_length_padded_to_min_frame(self):
        pkt = make_pkt(length=40)
        assert pkt.wire_length == MIN_FRAME_BYTES

    def test_wire_length_without_int(self):
        pkt = make_pkt(length=1000)
        assert pkt.wire_length == 1000

    def test_wire_length_grows_with_int_stack(self):
        pkt = make_pkt(length=1000)
        pkt.int_stack = []
        assert pkt.wire_length == 1000 + 12
        pkt.int_stack = [object(), object()]
        assert pkt.wire_length == 1000 + 12 + 32

    def test_carries_int(self):
        pkt = make_pkt()
        assert not pkt.carries_int
        pkt.int_stack = []
        assert pkt.carries_int

    def test_clone_headers_drops_int_state(self):
        pkt = make_pkt(tcp_flags=int(TCPFlags.SYN))
        pkt.int_stack = [object()]
        clone = pkt.clone_headers()
        assert clone.int_stack is None
        assert clone.tcp_flags == int(TCPFlags.SYN)
        assert clone.five_tuple == pkt.five_tuple

    def test_synack_flag_composition(self):
        assert TCPFlags.SYNACK == TCPFlags.SYN | TCPFlags.ACK
        assert TCPFlags.PSHACK == TCPFlags.PSH | TCPFlags.ACK
