"""Failure-injection tests: lossy/jittery links and detector robustness."""

import numpy as np
import pytest

from repro.dataplane import EventQueue, Packet, Protocol
from repro.dataplane.link import Link


def make_pkt(seq=0):
    return Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                  protocol=int(Protocol.UDP), length=100, flow_seq=seq)


class TestLossyLink:
    def test_no_loss_by_default(self):
        eq = EventQueue()
        got = []
        link = Link(eq, 1000, got.append)
        for i in range(100):
            link.send(make_pkt(i))
        eq.run()
        assert len(got) == 100
        assert link.packets_lost == 0

    def test_loss_rate_respected(self):
        eq = EventQueue()
        got = []
        link = Link(eq, 1000, got.append, loss_rate=0.3, seed=1)
        for i in range(5000):
            link.send(make_pkt(i))
        eq.run()
        assert len(got) == pytest.approx(3500, rel=0.05)
        assert link.packets_lost + len(got) == 5000

    def test_full_loss_rejected(self):
        eq = EventQueue()
        with pytest.raises(ValueError):
            Link(eq, 0, lambda p: None, loss_rate=1.0)
        with pytest.raises(ValueError):
            Link(eq, 0, lambda p: None, loss_rate=-0.1)

    def test_jitter_can_reorder(self):
        eq = EventQueue()
        got = []
        link = Link(eq, 1000, lambda p: got.append(p.flow_seq),
                    jitter_ns=50_000, seed=2)
        for i in range(200):
            eq.schedule(i * 100, lambda _, k=i: link.send(make_pkt(k)))
        eq.run()
        assert len(got) == 200
        assert got != sorted(got)  # reordering observed
        assert sorted(got) == list(range(200))

    def test_negative_jitter_rejected(self):
        eq = EventQueue()
        with pytest.raises(ValueError):
            Link(eq, 0, lambda p: None, jitter_ns=-1)

    def test_deterministic_given_seed(self):
        outs = []
        for _ in range(2):
            eq = EventQueue()
            got = []
            link = Link(eq, 10, got.append, loss_rate=0.5, seed=99)
            for i in range(100):
                link.send(make_pkt(i))
            eq.run()
            outs.append([p.flow_seq for p in got])
        assert outs[0] == outs[1]


class TestDetectionUnderTelemetryLoss:
    """Telemetry loss thins the capture but must not corrupt features:
    each flow record just sees a subsample of its packets."""

    def test_features_survive_partial_capture(self):
        from repro.features import extract_features
        from repro.int_telemetry import REPORT_DTYPE

        rng = np.random.default_rng(0)
        n = 3000
        rec = np.zeros(n, dtype=REPORT_DTYPE)
        ts = np.sort(rng.integers(0, 10**9, n))
        rec["ts_report"] = ts
        rec["ingress_ts"] = ts % 2**32
        rec["src_ip"] = rng.integers(1, 50, n)
        rec["dst_ip"] = 99
        rec["dst_port"] = 80
        rec["protocol"] = 6
        rec["length"] = rng.integers(60, 1500, n)

        full = extract_features(rec, source="int")
        keep = rng.random(n) > 0.3  # 30% telemetry loss
        thinned = extract_features(rec[keep], source="int")

        assert np.isfinite(thinned.X).all()
        # cumulative counters shrink but never invert
        col = full.names.index("packet_size_cum")
        assert thinned.X[:, col].max() <= full.X[:, col].max()
