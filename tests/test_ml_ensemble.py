"""Tests for permutation importance and ensemble voting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import (
    GaussianNB,
    KNeighborsClassifier,
    RandomForestClassifier,
    VotingClassifier,
    majority_vote,
    permutation_importance,
    top_k_features,
)


class TestPermutationImportance:
    def test_informative_feature_ranks_first(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(600, 4))
        y = (X[:, 1] > 0).astype(int)
        model = GaussianNB().fit(X, y)
        imp = permutation_importance(model, X, y, n_repeats=3, seed=0)
        assert np.argmax(imp) == 1
        assert imp[1] > 0.2

    def test_irrelevant_features_near_zero(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(600, 4))
        y = (X[:, 0] > 0).astype(int)
        model = GaussianNB().fit(X, y)
        imp = permutation_importance(model, X, y, n_repeats=5, seed=0)
        assert np.abs(imp[1:]).max() < 0.05

    def test_does_not_mutate_input(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        X_orig = X.copy()
        permutation_importance(GaussianNB().fit(X, y), X, y, n_repeats=2, seed=0)
        assert np.array_equal(X, X_orig)

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            permutation_importance(None, np.zeros((2, 2)), [0, 1], n_repeats=0)

    def test_top_k(self):
        imp = np.array([0.1, 0.5, 0.3])
        top = top_k_features(imp, ["a", "b", "c"], k=2)
        assert [name for name, _ in top] == ["b", "c"]

    def test_top_k_length_mismatch(self):
        with pytest.raises(ValueError):
            top_k_features(np.array([0.1]), ["a", "b"])


class TestMajorityVote:
    def test_two_of_three(self):
        preds = np.array([[1, 1, 0], [0, 0, 1], [1, 1, 1], [0, 0, 0]])
        assert majority_vote(preds).tolist() == [1, 0, 1, 0]

    def test_tie_breaks_to_attack(self):
        preds = np.array([[1, 0], [0, 1]])
        assert majority_vote(preds).tolist() == [1, 1]

    def test_single_model_passthrough(self):
        preds = np.array([[1], [0], [1]])
        assert majority_vote(preds).tolist() == [1, 0, 1]

    @given(
        hnp.arrays(
            np.int64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=30),
            elements=st.integers(0, 1),
        )
    )
    @settings(max_examples=80)
    def test_vote_bounds_and_unanimity(self, preds):
        out = majority_vote(preds)
        assert set(np.unique(out)) <= {0, 1}
        unanimous_1 = preds.all(axis=1)
        unanimous_0 = (preds == 0).all(axis=1)
        assert (out[unanimous_1] == 1).all()
        assert (out[unanimous_0] == 0).all()


class TestVotingClassifier:
    def test_2of3_panel(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (200, 3)), rng.normal(3, 1, (200, 3))])
        y = np.array([0] * 200 + [1] * 200)
        panel = VotingClassifier(
            [
                RandomForestClassifier(n_estimators=5, seed=0).fit(X, y),
                GaussianNB().fit(X, y),
                KNeighborsClassifier(3).fit(X, y),
            ]
        )
        preds = panel.predict(X)
        assert (preds == y).mean() > 0.97
        each = panel.predict_each(X)
        assert each.shape == (400, 3)
        assert np.array_equal(majority_vote(each), preds)

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError):
            VotingClassifier([])
