"""Tests for the DNS/NTP amplification generators (extension attacks)."""

import numpy as np
import pytest

from repro.dataplane.packet import Protocol, ip
from repro.traffic import AttackType
from repro.traffic.amplification import dns_amplification, ntp_amplification

VICTIM = ip("10.0.0.80")
SEC = 1_000_000_000


class TestDnsAmplification:
    def test_sources_are_many_reflectors(self):
        t = dns_amplification(VICTIM, 0, SEC, rate_pps=500, n_reflectors=200,
                              seed=0)
        srcs = np.unique(t.records["src_ip"])
        assert srcs.size > 50

    def test_all_from_port_53_udp(self):
        t = dns_amplification(VICTIM, 0, SEC, rate_pps=200, seed=0)
        assert (t.records["src_port"] == 53).all()
        assert (t.records["protocol"] == int(Protocol.UDP)).all()
        assert (t.records["dst_ip"] == VICTIM).all()

    def test_large_packets(self):
        t = dns_amplification(VICTIM, 0, SEC, rate_pps=200, seed=0)
        assert t.records["length"].mean() > 800
        assert t.records["length"].max() == 1500

    def test_labels(self):
        t = dns_amplification(VICTIM, 0, SEC, rate_pps=100, seed=0)
        assert (t.records["label"] == 1).all()
        assert (t.records["attack_type"]
                == int(AttackType.DNS_AMPLIFICATION)).all()

    def test_burst_structure(self):
        """Each trigger yields 2-4 response packets per reflector flow."""
        t = dns_amplification(VICTIM, 0, SEC, rate_pps=100,
                              n_reflectors=10**6, seed=0)
        key = (t.records["src_ip"].astype(np.int64) << 16) + t.records["dst_port"]
        _, counts = np.unique(key, return_counts=True)
        assert counts.min() >= 2 and counts.max() <= 4

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            dns_amplification(VICTIM, SEC, SEC, seed=0)

    def test_invalid_reflectors(self):
        with pytest.raises(ValueError):
            dns_amplification(VICTIM, 0, SEC, n_reflectors=0, seed=0)


class TestNtpAmplification:
    def test_monlist_signature(self):
        t = ntp_amplification(VICTIM, 0, SEC, rate_pps=50, seed=0)
        assert (t.records["src_port"] == 123).all()
        assert (t.records["length"] == 468).all()

    def test_heavier_bursts_than_dns(self):
        dns = dns_amplification(VICTIM, 0, SEC, rate_pps=100, seed=0)
        ntp = ntp_amplification(VICTIM, 0, SEC, rate_pps=100, seed=0)
        assert len(ntp) > 2 * len(dns)

    def test_deterministic(self):
        a = ntp_amplification(VICTIM, 0, SEC, rate_pps=50, seed=9)
        b = ntp_amplification(VICTIM, 0, SEC, rate_pps=50, seed=9)
        assert np.array_equal(a.records, b.records)


class TestDetectorComplementarity:
    def test_flow_ml_blind_but_entropy_catches_amplification(self):
        """A deliberate negative result worth pinning down: per-flow
        header features cannot tell one reflector's MTU burst from a CDN
        download (each flow is individually plausible), so a supervised
        flow detector trained on Table I classifies amplification as
        benign.  The victim-aggregate view — the entropy baseline — sees
        the source-address distribution explode and alarms.  The two
        detector families are complementary, not redundant."""
        from repro.baselines import EntropyDetector
        from repro.datasets import SERVER_IP, CampaignConfig, monitored_topology
        from repro.datasets.amlight import _build_truth_map, label_records
        from repro.features import extract_features
        from repro.ml import RandomForestClassifier, StandardScaler
        from repro.traffic import Replayer, generate_benign, merge_traces, syn_flood
        from repro.traffic.benign import BenignConfig

        def capture(trace):
            cfg = CampaignConfig.tiny()
            topo, col, _s, _a = monitored_topology(cfg)
            Replayer(
                topo,
                {"fwd": (topo.switches["edge_client"], 1),
                 "rev": (topo.switches["edge_server"], 2)},
                classify=lambda r: "fwd" if r["dst_ip"] == SERVER_IP else "rev",
            ).replay(trace)
            return col.to_records()

        benign_cfg = BenignConfig(sessions_per_s=3, mean_think_ns=3_000_000,
                                  rtt_ns=100_000)
        train_trace = merge_traces([
            generate_benign(SERVER_IP, 80, 0, 10 * SEC, benign_cfg, seed=1),
            syn_flood(SERVER_IP, 80, 3 * SEC, 6 * SEC, rate_pps=2000, seed=2),
        ])
        train = capture(train_trace)
        ytr, _ = label_records(train, _build_truth_map(train_trace))
        fm_tr = extract_features(train, source="int")
        sc = StandardScaler().fit(fm_tr.X)
        rf = RandomForestClassifier(n_estimators=15, max_depth=12, seed=0)
        rf.fit(sc.transform(fm_tr.X), ytr)

        amp = capture(dns_amplification(SERVER_IP, 0, 2 * SEC,
                                        rate_pps=500, seed=3))
        fm_amp = extract_features(amp, source="int")
        flow_ml_recall = rf.predict(sc.transform(fm_amp.X)).mean()
        assert flow_ml_recall < 0.2  # structurally blind

        # the aggregate view: benign baseline, then amplification arrives
        mixed = merge_traces([
            generate_benign(SERVER_IP, 80, 0, 20 * SEC, benign_cfg, seed=5),
            dns_amplification(SERVER_IP, 12 * SEC, 16 * SEC,
                              rate_pps=1500, seed=6),
        ])
        # pure header-entropy view stays blind too (distributions don't
        # move) ...
        blind = EntropyDetector(window_ns=500_000_000, z_threshold=4.0)
        res_blind = blind.detect(mixed.records)
        assert blind.episode_coverage(
            res_blind, [(12 * SEC, 16 * SEC)]
        ) == [False]
        # ... the volume channel is what sees a reflection attack
        det = EntropyDetector(window_ns=500_000_000, z_threshold=4.0,
                              monitor_volume=True)
        res = det.detect(mixed.records)
        assert det.episode_coverage(res, [(12 * SEC, 16 * SEC)]) == [True]
