"""Tests for StandardScaler and train_test_split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import StandardScaler, train_test_split


class TestStandardScaler:
    def test_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(500, 4))
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-12)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-12)

    def test_constant_column_passthrough(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        sc = StandardScaler().fit(X)
        Xs = sc.transform(X)
        assert np.allclose(Xs[:, 0], 0)  # centered, not divided by 0
        assert np.isfinite(Xs).all()

    def test_single_row_transform(self):
        X = np.random.default_rng(1).normal(size=(100, 3))
        sc = StandardScaler().fit(X)
        row = sc.transform(X[0])
        assert row.shape == (3,)
        assert np.allclose(row, sc.transform(X)[0])

    def test_roundtrip(self):
        X = np.random.default_rng(2).normal(size=(50, 5)) * 7 + 3
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_coefficients_export_import(self):
        X = np.random.default_rng(3).normal(size=(50, 2))
        sc = StandardScaler().fit(X)
        sc2 = StandardScaler.from_coefficients(sc.coefficients())
        assert np.allclose(sc2.transform(X), sc.transform(X))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_mismatch_raises(self):
        sc = StandardScaler().fit(np.zeros((5, 3)) + np.arange(3))
        with pytest.raises(ValueError):
            sc.transform(np.zeros((2, 4)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=40),
            elements=st.floats(-1e6, 1e6),
        )
    )
    @settings(max_examples=60)
    def test_transform_inverse_is_identity(self, X):
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X, atol=1e-6)


class TestTrainTestSplit:
    def setup_method(self):
        self.X = np.arange(200).reshape(100, 2)
        self.y = np.array([0] * 90 + [1] * 10)

    def test_sizes(self):
        Xtr, Xte, ytr, yte = train_test_split(self.X, self.y, test_size=0.1, seed=0)
        assert len(Xte) == 10
        assert len(Xtr) == 90

    def test_partition_is_exact(self):
        Xtr, Xte, _, _ = train_test_split(self.X, self.y, test_size=0.3, seed=0)
        all_rows = np.vstack([Xtr, Xte])
        assert np.array_equal(
            np.sort(all_rows[:, 0]), np.sort(self.X[:, 0])
        )

    def test_rows_stay_paired(self):
        """X rows and y labels must travel together through the shuffle."""
        y = self.X[:, 0] * 10  # label derivable from the row
        Xtr, Xte, ytr, yte = train_test_split(self.X, y, test_size=0.2, seed=3)
        assert np.array_equal(Xtr[:, 0] * 10, ytr)
        assert np.array_equal(Xte[:, 0] * 10, yte)

    def test_deterministic_with_seed(self):
        a = train_test_split(self.X, self.y, seed=42)
        b = train_test_split(self.X, self.y, seed=42)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[3], b[3])

    def test_stratified_preserves_balance(self):
        _, _, ytr, yte = train_test_split(
            self.X, self.y, test_size=0.1, stratify=True, seed=0
        )
        assert yte.sum() == 1  # 10% of the 10 positives
        assert ytr.sum() == 9

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(self.X, self.y, test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(self.X, self.y, test_size=1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(self.X, self.y[:-1])
