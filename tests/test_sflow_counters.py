"""Tests for sFlow interface-counter polling."""

import numpy as np
import pytest

from repro.dataplane import Packet, Protocol, int_path_topology
from repro.sflow.counters import COUNTER_DTYPE, CounterPoller

MS = 1_000_000


def drive(topo, n=200, spacing=50_000):
    client, server = topo.hosts["client"], topo.hosts["server"]
    for i in range(n):
        client.send_at(i * spacing, Packet(
            src_ip=client.ip, dst_ip=server.ip, src_port=1234, dst_port=80,
            protocol=int(Protocol.TCP), length=1000, flow_seq=i,
        ))


class TestCounterPoller:
    def test_snapshots_all_ports(self):
        topo = int_path_topology()
        poller = CounterPoller(1, topo.switches["source_sw"], interval_ns=MS)
        drive(topo, 100)
        poller.start(until_ns=10 * MS)
        topo.run()
        rec = poller.to_records()
        assert rec.dtype == COUNTER_DTYPE
        assert set(np.unique(rec["port"])) == {1, 2}
        assert poller.polls >= 9

    def test_counters_monotone(self):
        topo = int_path_topology()
        poller = CounterPoller(1, topo.switches["source_sw"], interval_ns=MS)
        drive(topo, 200)
        poller.start(until_ns=12 * MS)
        topo.run()
        rec = poller.to_records()
        for port in (1, 2):
            mine = rec[rec["port"] == port]
            assert np.all(np.diff(mine["out_packets"].astype(np.int64)) >= 0)
            assert np.all(np.diff(mine["out_bytes"].astype(np.int64)) >= 0)

    def test_final_totals_match_queue_stats(self):
        topo = int_path_topology()
        sw = topo.switches["source_sw"]
        poller = CounterPoller(1, sw, interval_ns=MS)
        drive(topo, 150)
        poller.start(until_ns=20 * MS)
        topo.run()
        rec = poller.to_records()
        last_p2 = rec[rec["port"] == 2][-1]
        assert last_p2["out_packets"] == sw.ports[2].queue.stats.transmitted
        assert last_p2["out_bytes"] == sw.ports[2].queue.stats.bytes_transmitted

    def test_rates(self):
        topo = int_path_topology()
        poller = CounterPoller(1, topo.switches["source_sw"], interval_ns=MS)
        drive(topo, 200, spacing=50_000)  # 20k pps for 10ms
        poller.start(until_ns=10 * MS)
        topo.run()
        rates = poller.rates(port=2)
        assert rates.shape[0] >= 5
        mid = rates[1:-1]  # ignore edge intervals
        assert np.median(mid["pps"]) == pytest.approx(20_000, rel=0.2)
        assert (mid["dps"] == 0).all()

    def test_rates_with_too_few_polls(self):
        topo = int_path_topology()
        poller = CounterPoller(1, topo.switches["source_sw"], interval_ns=MS)
        assert poller.rates(2).shape == (0,)

    def test_invalid_interval(self):
        topo = int_path_topology()
        with pytest.raises(ValueError):
            CounterPoller(1, topo.switches["source_sw"], interval_ns=0)
