"""Resilience layer: fault injection + graceful degradation.

Covers the chaos injector's fault models (drop, burst, duplication,
bounded reordering, corruption, outages) and their bookkeeping, the
property that duplicated/reordered telemetry keeps flow features sane
through DataProcessor/FlowTable (no double-registered records, IAT and
counts finite and non-negative), and the degradation machinery:
per-model quarantine with adjusted quorum, CentralServer deadline
shedding and poll retry/backoff, and watchdog health transitions.
"""

import numpy as np
import pytest

from repro.core.central import CentralServer
from repro.core.collection import IntDataCollection
from repro.core.database import FlowDatabase
from repro.core.mechanism import AutomatedDDoSDetector
from repro.core.prediction import PredictionModule, PredictionUnavailableError
from repro.core.processor import DataProcessor
from repro.core.training import TrainedBundle
from repro.features.flow_table import FlowTable
from repro.int_telemetry.report import REPORT_DTYPE
from repro.ml.scaler import StandardScaler
from repro.resilience import (
    ChaosSchedule,
    FaultInjector,
    HealthLogSink,
    ModuleHealth,
    Watchdog,
    retry_with_backoff,
)

# ----------------------------------------------------------------------
# fixtures and helpers
# ----------------------------------------------------------------------

FEATURES = (
    "protocol",
    "packet_size",
    "inter_arrival",
    "inter_arrival_avg",
    "inter_arrival_std",
    "n_packets",
    "packets_per_second",
)


def make_records(n=400, n_flows=5, seed=0, gap_ns=1_000_000):
    """Synthetic REPORT_DTYPE rows: round-robin flows, increasing ts."""
    rng = np.random.default_rng(seed)
    a = np.zeros(n, dtype=REPORT_DTYPE)
    a["ts_report"] = np.arange(n, dtype=np.int64) * gap_ns
    a["src_ip"] = 0x0A00_0001 + (np.arange(n) % n_flows)
    a["dst_ip"] = 0x0A00_00FF
    a["src_port"] = 40_000 + (np.arange(n) % n_flows)
    a["dst_port"] = 80
    a["protocol"] = 6
    a["length"] = rng.integers(60, 1500, n)
    a["ingress_ts"] = a["ts_report"] % (2**32)
    return a


class _RecordingSink:
    """Inner collection stub that records what the injector forwards."""

    def __init__(self):
        self.rows = []

    def feed_record(self, row):
        self.rows.append(row.copy())


class _ConstModel:
    def __init__(self, value):
        self.value = value

    def predict(self, X):
        return np.full(np.asarray(X).shape[0], self.value)


class _RaisingModel:
    def predict(self, X):
        raise RuntimeError("boom")


class _NaNModel:
    def predict(self, X):
        return np.full(np.asarray(X).shape[0], np.nan)


def make_prediction_module(models, n_features=len(FEATURES), **kw):
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(size=(50, n_features)))
    return PredictionModule(scaler, models, FEATURES[:n_features], **kw)


def make_pipeline(clock=None, **central_kw):
    db = FlowDatabase(FlowTable())
    processor = DataProcessor(db, FEATURES, emit_partial=True, clock=clock)
    prediction = make_prediction_module({"a": _ConstModel(1), "b": _ConstModel(0),
                                         "c": _ConstModel(1)})
    central = CentralServer(db, processor, prediction, clock=clock, **central_kw)
    return db, processor, prediction, central


# ----------------------------------------------------------------------
# ChaosSchedule
# ----------------------------------------------------------------------

def test_schedule_validation():
    with pytest.raises(ValueError):
        ChaosSchedule(drop_rate=1.5)
    with pytest.raises(ValueError):
        ChaosSchedule(reorder_depth=0)
    with pytest.raises(ValueError):
        ChaosSchedule(burst_p=0.1)  # absorbing bad state
    with pytest.raises(ValueError):
        ChaosSchedule(outages_ns=((5, 5),))
    assert ChaosSchedule().is_noop
    assert not ChaosSchedule(drop_rate=0.1).is_noop
    # hashable (used as an experiment cache key)
    assert hash(ChaosSchedule(drop_rate=0.1)) == hash(ChaosSchedule(drop_rate=0.1))


def test_schedule_expected_loss_combines_processes():
    s = ChaosSchedule(drop_rate=0.1, burst_p=0.1, burst_r=0.4, burst_loss=1.0)
    burst = 0.1 / 0.5
    assert s.expected_loss == pytest.approx(1 - 0.9 * (1 - burst))
    assert "drop" in s.describe() and "burst" in s.describe()
    assert ChaosSchedule().describe() == "clean"


# ----------------------------------------------------------------------
# FaultInjector: fault models and bookkeeping
# ----------------------------------------------------------------------

def test_noop_schedule_is_identity():
    rec = make_records(100)
    out, idx = FaultInjector(ChaosSchedule(), seed=1).apply(rec)
    assert out.shape[0] == 100
    assert (idx == np.arange(100)).all()
    assert (out == rec).all()


def test_uniform_drop_bookkeeping_and_determinism():
    rec = make_records(1000)
    inj1 = FaultInjector(ChaosSchedule(drop_rate=0.3), seed=42)
    out1, idx1 = inj1.apply(rec)
    assert inj1.stats.offered == 1000
    assert inj1.stats.delivered == out1.shape[0]
    assert inj1.stats.dropped_uniform == 1000 - out1.shape[0]
    assert 0.2 < inj1.stats.loss_fraction < 0.4

    # same seed, same outcome — chaos runs are reproducible
    out2, idx2 = FaultInjector(ChaosSchedule(drop_rate=0.3), seed=42).apply(rec)
    assert (idx1 == idx2).all()
    # the vectorized fast path and the generic path agree on counts
    inj3 = FaultInjector(ChaosSchedule(drop_rate=0.3), seed=42)
    out3, _ = inj3.apply(rec, vectorized=False)
    assert abs(out3.shape[0] - out1.shape[0]) < 100


def test_burst_loss_is_bursty_and_counted():
    rec = make_records(3000)
    inj = FaultInjector(
        ChaosSchedule(burst_p=0.02, burst_r=0.2, burst_loss=1.0), seed=3
    )
    out, idx = inj.apply(rec)
    s = inj.stats
    assert s.dropped_burst > 0
    assert s.delivered + s.dropped == s.offered == 3000
    # burstiness: losses cluster — there is at least one run of >= 3
    # consecutive lost reports, which iid loss at this rate rarely gives
    lost = np.setdiff1d(np.arange(3000), idx)
    runs = np.split(lost, np.flatnonzero(np.diff(lost) != 1) + 1)
    assert max(len(r) for r in runs) >= 3


def test_outage_window_drops_by_timestamp():
    rec = make_records(300, gap_ns=1_000_000)  # ts 0 .. 299e6
    window = (100_000_000, 200_000_000)
    inj = FaultInjector(ChaosSchedule(outages_ns=(window,)), seed=0)
    out, idx = inj.apply(rec)
    assert inj.stats.dropped_outage == 100
    ts = out["ts_report"]
    assert not ((ts >= window[0]) & (ts < window[1])).any()


def test_corruption_touches_payload_not_flow_id():
    rec = make_records(200)
    inj = FaultInjector(
        ChaosSchedule(corrupt_rate=1.0, corrupt_fields=("length",)), seed=5
    )
    out, idx = inj.apply(rec)
    assert inj.stats.corrupted == 200
    for f in ("src_ip", "dst_ip", "src_port", "dst_port", "protocol"):
        assert (out[f] == rec[idx][f]).all(), f
    # scrambled lengths differ from the originals for most rows
    assert (out["length"] != rec[idx]["length"]).mean() > 0.5


def test_reordering_is_bounded_and_lossless():
    rec = make_records(500)
    depth = 4
    inj = FaultInjector(
        ChaosSchedule(reorder_rate=0.5, reorder_depth=depth), seed=9
    )
    out, idx = inj.apply(rec)
    # lossless permutation of the input...
    assert sorted(idx.tolist()) == list(range(500))
    # ...with bounded displacement
    displacement = np.abs(idx - np.arange(500))
    assert displacement.max() <= depth
    assert inj.stats.reordered > 0


def test_streaming_matches_batch_generic_path():
    rec = make_records(600)
    sched = ChaosSchedule(
        drop_rate=0.1, duplicate_rate=0.2, reorder_rate=0.3, reorder_depth=5,
        corrupt_rate=0.1,
    )
    sink = _RecordingSink()
    streaming = FaultInjector(sched, inner=sink, seed=7)
    for i in range(rec.shape[0]):
        streaming.feed_record(rec[i])
    streaming.flush()
    batch = FaultInjector(sched, seed=7)
    out, _ = batch.apply(rec, vectorized=False)
    assert len(sink.rows) == out.shape[0]
    assert all(sink.rows[i] == out[i] for i in range(out.shape[0]))
    assert streaming.stats.as_dict() == batch.stats.as_dict()


def test_streaming_requires_inner():
    inj = FaultInjector(ChaosSchedule(), seed=0)
    with pytest.raises(RuntimeError):
        inj.feed_record(make_records(1)[0])


# ----------------------------------------------------------------------
# duplicated / reordered telemetry through DataProcessor + FlowTable
# ----------------------------------------------------------------------

def _feed_through_processor(records, schedule, seed=0):
    db = FlowDatabase(FlowTable())
    processor = DataProcessor(db, FEATURES, emit_partial=True)
    collection = IntDataCollection(processor)
    inj = FaultInjector(schedule, inner=collection, seed=seed)
    for i in range(records.shape[0]):
        inj.feed_record(records[i])
    inj.flush()
    return db, processor, inj


def test_duplicates_do_not_double_register_flows():
    n_flows = 5
    rec = make_records(300, n_flows=n_flows)
    db, processor, inj = _feed_through_processor(
        rec, ChaosSchedule(duplicate_rate=1.0)
    )
    # every report delivered twice...
    assert inj.stats.duplicated == 300
    assert processor.packets_processed == 600
    # ...but the flow table still holds exactly one record per Flow ID
    assert len(db.flows) == n_flows
    for _key, flow in db.flows.items():
        # duplicate reports carry identical timestamps: IAT must clamp
        # to zero, never go negative, and counts must match deliveries
        assert flow.iat_stats.mean >= 0.0
        assert np.isfinite(flow.iat_stats.std)
        assert flow.n_packets == 600 // n_flows
        vec = flow.feature_vector(FEATURES)
        assert np.isfinite(vec).all()


def test_reordered_reports_keep_features_sane():
    n_flows = 4
    rec = make_records(400, n_flows=n_flows)
    db, processor, inj = _feed_through_processor(
        rec, ChaosSchedule(reorder_rate=0.6, reorder_depth=6), seed=11
    )
    assert inj.stats.reordered > 0
    assert processor.packets_processed == 400
    assert len(db.flows) == n_flows
    for _key, flow in db.flows.items():
        # wrap-aware signed differencing clamps out-of-order gaps at 0
        assert flow.inter_arrival_s >= 0.0
        assert flow.iat_stats.mean >= 0.0
        assert flow.duration_s >= 0.0
        vec = flow.feature_vector(FEATURES)
        assert np.isfinite(vec).all()
        assert flow.n_packets == 400 // n_flows


def test_chaos_mix_property(subtests=None):
    """Property-style sweep: across seeds and schedules, the invariants
    hold — conservation of reports, one record per flow, finite sane
    features."""
    rec = make_records(250, n_flows=3)
    schedules = [
        ChaosSchedule(drop_rate=0.2),
        ChaosSchedule(duplicate_rate=0.3, reorder_rate=0.3),
        ChaosSchedule(drop_rate=0.1, burst_p=0.05, burst_r=0.3,
                      duplicate_rate=0.1, reorder_rate=0.2, corrupt_rate=0.1),
    ]
    for seed in (1, 2, 3):
        for sched in schedules:
            db, processor, inj = _feed_through_processor(rec, sched, seed=seed)
            s = inj.stats
            assert s.offered == 250
            assert s.delivered == 250 - s.dropped + s.duplicated
            assert processor.packets_processed == s.delivered
            assert len(db.flows) <= 3
            for _key, flow in db.flows.items():
                assert np.isfinite(flow.feature_vector(FEATURES)).all()
                assert flow.iat_stats.mean >= 0.0


# ----------------------------------------------------------------------
# PredictionModule quarantine
# ----------------------------------------------------------------------

def test_quarantine_after_consecutive_failures():
    events = []
    pm = make_prediction_module(
        {"good": _ConstModel(1), "bad": _RaisingModel()},
        failure_threshold=3,
        on_quarantine=lambda name, reason, left: events.append((name, left)),
    )
    x = np.zeros(len(FEATURES))
    for _ in range(3):
        votes = pm.predict_one(x)
        # the misbehaving member is excluded from this update's quorum
        assert votes.tolist() == [1]
    assert pm.quarantined.keys() == {"bad"}
    assert events == [("bad", 1)]
    assert pm.active_model_names == ["good"]
    # quarantined member stays out of later votes without new strikes
    assert pm.predict_one(x).tolist() == [1]


def test_success_resets_strike_count():
    flaky_calls = {"n": 0}

    class _Flaky:
        def predict(self, X):
            flaky_calls["n"] += 1
            if flaky_calls["n"] % 2 == 1:
                raise RuntimeError("transient")
            return np.ones(np.asarray(X).shape[0])

    pm = make_prediction_module(
        {"flaky": _Flaky(), "good": _ConstModel(0)}, failure_threshold=3
    )
    x = np.zeros(len(FEATURES))
    for _ in range(10):  # alternating fail/succeed never quarantines
        pm.predict_one(x)
    assert not pm.quarantined


def test_non_binary_votes_count_as_failures():
    pm = make_prediction_module(
        {"nan": _NaNModel(), "good": _ConstModel(1)}, failure_threshold=2
    )
    x = np.zeros(len(FEATURES))
    pm.predict_one(x)
    pm.predict_one(x)
    assert "nan" in pm.quarantined
    assert "non-binary" in pm.quarantined["nan"]


def test_all_models_quarantined_raises_unavailable():
    pm = make_prediction_module({"bad": _RaisingModel()}, failure_threshold=1)
    x = np.zeros(len(FEATURES))
    with pytest.raises(PredictionUnavailableError):
        pm.predict_one(x)  # strike -> quarantine -> nobody voted
    with pytest.raises(PredictionUnavailableError):
        pm.predict_one(x)  # empty quorum from the start
    pm.reinstate("bad")
    assert pm.active_model_names == ["bad"]


def test_predict_batch_drops_failed_member_column():
    pm = make_prediction_module({"good": _ConstModel(1), "bad": _RaisingModel()})
    X = np.zeros((4, len(FEATURES)))
    votes = pm.predict_batch(X)
    assert votes.shape == (4, 1)
    assert "bad" in pm.quarantined


# ----------------------------------------------------------------------
# CentralServer: counters, deadline shedding, poll retry
# ----------------------------------------------------------------------

def _ingest(processor, n=6, n_flows=2):
    rec = make_records(n, n_flows=n_flows)
    for i in range(n):
        row = rec[i]
        processor.ingest_packet(
            (int(row["src_ip"]), int(row["dst_ip"]), int(row["src_port"]),
             int(row["dst_port"]), int(row["protocol"])),
            ts_sim_ns=int(row["ts_report"]),
            ingress_ts32=int(row["ingress_ts"]),
            length=float(row["length"]),
            protocol=int(row["protocol"]),
        )


def test_skipped_evicted_counter_surfaces_shedding():
    db, processor, prediction, central = make_pipeline()
    _ingest(processor, n=4)
    # simulate flows evicted between poll and dispatch
    processor.features_for = lambda key: None
    central.cycle()
    assert central.skipped_evicted == 4
    assert central.updates_dispatched == 0
    assert central.stats()["skipped_evicted"] == 4


def test_deadline_budget_sheds_backlog():
    ticker = {"now": 0}

    def clock():
        ticker["now"] += 1_000_000  # 1 ms per observation
        return ticker["now"]

    watchdog = Watchdog(clock=lambda: 0)
    db, processor, prediction, central = make_pipeline(
        clock=clock, deadline_ns=2_500_000, watchdog=watchdog
    )
    _ingest(processor, n=20, n_flows=4)
    central.cycle()
    assert central.updates_shed > 0
    assert central.deadline_hits == 1
    assert central.updates_dispatched + central.updates_shed <= 20
    assert watchdog.state("central") == ModuleHealth.DEGRADED
    # drain still terminates under a permanently tight deadline
    central.drain(batch=8)
    assert db.pending_updates == 0


def test_poll_retry_with_backoff_recovers():
    db, processor, prediction, central = make_pipeline()
    watchdog = Watchdog(clock=lambda: 0)
    central.watchdog = watchdog
    sleeps = []
    central.sleep = sleeps.append
    _ingest(processor, n=2)

    real_poll = db.poll_updates
    state = {"fails": 2}

    def flaky_poll(limit=None):
        if state["fails"] > 0:
            state["fails"] -= 1
            raise ConnectionError("transient store hiccup")
        return real_poll(limit=limit)

    db.poll_updates = flaky_poll
    central.cycle()
    assert central.poll_retries == 2
    assert sleeps == [0.005, 0.01]  # exponential backoff
    assert central.updates_dispatched == 2
    # recovered: degradation was reported, then cleared
    states = [(a.module, a.state) for a in watchdog.alerts]
    assert ("database", ModuleHealth.DEGRADED) in states
    assert watchdog.state("database") == ModuleHealth.HEALTHY


def test_poll_failure_exhausts_retries_and_raises():
    db, processor, prediction, central = make_pipeline(poll_attempts=2)
    watchdog = Watchdog(clock=lambda: 0)
    central.watchdog = watchdog
    central.sleep = lambda s: None

    def dead_poll(limit=None):
        raise ConnectionError("store down")

    db.poll_updates = dead_poll
    with pytest.raises(ConnectionError):
        central.cycle()
    assert central.poll_failures == 1
    assert watchdog.state("database") == ModuleHealth.FAILED


def test_prediction_unavailable_sheds_not_crashes():
    db = FlowDatabase(FlowTable())
    processor = DataProcessor(db, FEATURES, emit_partial=True)
    prediction = make_prediction_module(
        {"bad": _RaisingModel()}, failure_threshold=1
    )
    watchdog = Watchdog(clock=lambda: 0)
    central = CentralServer(db, processor, prediction, watchdog=watchdog)
    _ingest(processor, n=3)
    central.cycle()  # must not raise
    assert central.updates_shed == 3
    assert watchdog.state("prediction") == ModuleHealth.FAILED
    central.drain()  # terminates
    assert db.pending_updates == 0


def test_retry_with_backoff_propagates_unlisted_exceptions():
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        raise KeyError("not retryable")

    with pytest.raises(KeyError):
        retry_with_backoff(fn, attempts=5, retry_on=(ValueError,),
                           sleep=lambda s: None)
    assert calls["n"] == 1


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------

def test_watchdog_emits_only_on_transition():
    sink = HealthLogSink()
    wd = Watchdog(sinks=[sink], clock=lambda: 123)
    assert wd.state("x") == ModuleHealth.HEALTHY
    assert wd.degraded("x", "first") is not None
    assert wd.degraded("x", "again") is None  # coalesced
    assert wd.failed("x") is not None
    assert wd.healthy("x").is_recovery
    assert [a.state for a in sink.alerts] == [
        ModuleHealth.DEGRADED, ModuleHealth.FAILED, ModuleHealth.HEALTHY
    ]
    assert wd.transitions == 3
    assert sink.alerts[0].ts_ns == 123


def test_watchdog_worst_and_snapshot():
    wd = Watchdog()
    assert wd.worst == ModuleHealth.HEALTHY
    wd.degraded("a")
    wd.failed("b")
    assert wd.worst == ModuleHealth.FAILED
    assert wd.snapshot() == {"a": "DEGRADED", "b": "FAILED"}


# ----------------------------------------------------------------------
# end-to-end: the assembled mechanism under chaos
# ----------------------------------------------------------------------

def make_stub_bundle(models=None):
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(size=(60, len(FEATURES))))
    if models is None:
        models = {"a": _ConstModel(1), "b": _ConstModel(1), "c": _ConstModel(0)}
    return TrainedBundle(scaler=scaler, models=models,
                         feature_names=list(FEATURES))


def test_detector_runs_under_chaos_and_reports_stats():
    rec = make_records(500, n_flows=6)
    sched = ChaosSchedule(drop_rate=0.1, duplicate_rate=0.1,
                          reorder_rate=0.2, reorder_depth=6)
    det = AutomatedDDoSDetector(make_stub_bundle(), chaos=sched, chaos_seed=3)
    db = det.run_stream(rec, poll_every=32, cycle_budget=64)
    assert len(db.predictions) > 0
    stats = det.stats()
    assert stats["faults"]["offered"] == 500
    assert stats["faults"]["delivered"] == stats["packets_processed"]
    assert stats["overall_health"] == "HEALTHY"
    assert stats["skipped_evicted"] == 0
    # identical seed → identical chaos outcome
    det2 = AutomatedDDoSDetector(make_stub_bundle(), chaos=sched, chaos_seed=3)
    det2.run_stream(rec, poll_every=32, cycle_budget=64)
    assert det2.stats()["faults"] == stats["faults"]


def test_detector_noop_chaos_is_not_wrapped():
    det = AutomatedDDoSDetector(make_stub_bundle(), chaos=ChaosSchedule())
    assert det.fault_injector is None
    assert "faults" not in det.stats()


def test_detector_quarantines_poisoned_member_and_survives():
    calls = {"n": 0}

    class _Poisoned:
        def predict(self, X):
            calls["n"] += 1
            if calls["n"] > 10:
                raise RuntimeError("poisoned")
            return np.ones(np.asarray(X).shape[0])

    bundle = make_stub_bundle(
        {"a": _ConstModel(1), "b": _ConstModel(1), "p": _Poisoned()}
    )
    rec = make_records(300, n_flows=4)
    det = AutomatedDDoSDetector(bundle)
    db = det.run_stream(rec)  # must not crash
    stats = det.stats()
    assert "p" in stats["quarantined_models"]
    assert stats["health"]["prediction"] == "DEGRADED"
    assert len(db.predictions) > 0
    # votes narrowed from 3 members to 2 after quarantine
    assert any(len(e.votes) == 2 for e in db.predictions)


def test_detector_live_attach_rejected_under_chaos():
    det = AutomatedDDoSDetector(
        make_stub_bundle(), chaos=ChaosSchedule(drop_rate=0.5)
    )
    with pytest.raises(RuntimeError):
        det.attach_live(object())
