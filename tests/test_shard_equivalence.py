"""Shard-parallel vs single-process equivalence.

The sharded execution mode exists purely for horizontal throughput: for
any worker count, the merged prediction log must be *result-identical*
to the single-process batched run — same entries, same votes, same
windowed decisions, same sequence numbers — clean and under chaos.
Identity is asserted through :func:`prediction_log_digest`, a SHA-256
over the deterministic entry fields in canonical ``(seq, key)`` order
(wall stamps come from per-process clocks and are excluded by design).

Also here: the shard-stability property suite — partitioning runs on the
*canonical* five-tuple, so both directions of a conversation must land
on the same shard, and the scalar and vectorized hash must agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import (
    pack_predictions,
    prediction_log_digest,
    unpack_predictions,
)
from repro.features import extract_features
from repro.features.keys import (
    canonical_flow_key,
    canonical_key_arrays,
    shard_arrays,
    shard_of_key,
)
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.chaos import ChaosSchedule
from repro.resilience.process_chaos import ProcessChaos
from repro.sketch import SketchConfig

from .test_batch_equivalence import synthetic_records

POLL_EVERY = 37
# Generous budget: equivalence is defined in the no-backlog regime
# (every cycle clears everything a slice registered, in both modes).
CYCLE_BUDGET = 256

CHAOS = ChaosSchedule(
    drop_rate=0.05, burst_p=0.02, burst_r=0.3, burst_loss=0.8,
    duplicate_rate=0.03, reorder_rate=0.04, reorder_depth=3,
    corrupt_rate=0.02,
)


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=0),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(7).permutation(len(records))]


def run_mode(bundle, stream, chaos=None, shards=None):
    det = AutomatedDDoSDetector(
        bundle, batched=True, chaos=chaos, chaos_seed=123
    )
    db = det.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
        shards=shards,
    )
    return det, db


# ---------------------------------------------------------------------------
# merged-log identity
# ---------------------------------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    def test_digest_identical_to_single_process(
        self, bundle, stream, chaos, n_shards
    ):
        _, db_ref = run_mode(bundle, stream, chaos=chaos)
        _, db_sh = run_mode(bundle, stream, chaos=chaos, shards=n_shards)
        assert len(db_ref.predictions) > 0
        assert len(db_sh.predictions) == len(db_ref.predictions)
        assert prediction_log_digest(db_sh) == prediction_log_digest(db_ref)

    def test_merge_order_is_by_seq_then_shard(self, bundle, stream):
        _, db = run_mode(bundle, stream, shards=2)
        seqs = [e.seq for e in db.predictions]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)  # one update per delivered packet

    def test_every_entry_keeps_full_votes(self, bundle, stream):
        _, db = run_mode(bundle, stream, shards=2)
        assert all(len(e.votes) == 2 for e in db.predictions)  # rf + gnb
        assert all(e.final_decision in (0, 1, None) for e in db.predictions)

    def test_shard_stats_aggregated(self, bundle, stream):
        det, db = run_mode(bundle, stream, shards=2)
        assert det.shard_stats is not None and len(det.shard_stats) == 2
        served = sum(s["predictions_served"] for s in det.shard_stats)
        assert served == len(db.predictions)
        stats = det.stats()
        assert len(stats["shards"]) == 2

    def test_chaos_replay_independent_of_worker_count(self, bundle, stream):
        _, db2 = run_mode(bundle, stream, chaos=CHAOS, shards=2)
        _, db4 = run_mode(bundle, stream, chaos=CHAOS, shards=4)
        assert prediction_log_digest(db2) == prediction_log_digest(db4)


# ---------------------------------------------------------------------------
# sketch-gated merged-log identity
# ---------------------------------------------------------------------------

#: Small sketch so collisions actually happen at test scale, promotion
#: low enough that some flows are admitted, decay on to exercise the
#: window cadence across execution modes.
SKETCH = SketchConfig(
    width=256, depth=3, partitions=16, promote_packets=3, decay_every=4
)


def run_gated(bundle, stream, chaos=None, shards=None, process_chaos=None):
    det = AutomatedDDoSDetector(
        bundle, batched=True, chaos=chaos, chaos_seed=123, sketch=SKETCH
    )
    kwargs = {}
    if process_chaos is not None:
        kwargs.update(process_chaos=process_chaos, checkpoint_every=3)
    db = det.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
        shards=shards, **kwargs,
    )
    return det, db


class TestSketchGatedEquivalence:
    """The admission gate must not break shard-count-independence: the
    sketch's virtual partitions ride the same splitmix64 hash as shard
    assignment, so collision patterns — hence promotions, hence the
    merged prediction log — are identical for any worker count dividing
    the partition count."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    def test_gated_digest_identical_to_single_process(
        self, bundle, stream, chaos, n_shards
    ):
        _, db_ref = run_gated(bundle, stream, chaos=chaos)
        _, db_sh = run_gated(bundle, stream, chaos=chaos, shards=n_shards)
        assert len(db_ref.predictions) > 0
        assert prediction_log_digest(db_sh) == prediction_log_digest(db_ref)

    def test_gate_actually_rejects(self, bundle, stream):
        """The gated run predicts strictly fewer updates than the exact
        path — otherwise these digests test nothing."""
        _, db_exact = run_mode(bundle, stream)
        det, db_gated = run_gated(bundle, stream)
        assert 0 < len(db_gated.predictions) < len(db_exact.predictions)
        sk = det.stats()["sketch"]
        assert sk["rejected_packets"] > 0
        assert sk["promotions"] > 0
        assert sk["residual_packets"] == sk["rejected_packets"]

    def test_gated_digest_survives_worker_kill(self, bundle, stream):
        """Sketch state rides RPRCKPT1: a SIGKILLed worker restores its
        counters and window tally from the checkpoint and replays, so
        post-recovery admission — and the merged log — are unchanged."""
        _, db_ref = run_gated(bundle, stream)
        n_cycles = stream.shape[0] // POLL_EVERY
        plan = ProcessChaos(kills=((max(2, n_cycles // 2), 1, "sigkill"),))
        det, db = run_gated(bundle, stream, shards=2, process_chaos=plan)
        assert prediction_log_digest(db) == prediction_log_digest(db_ref)
        sup = det.supervision_stats
        assert sup is not None and sup["workers_respawned"] >= 1
        assert sup["lossy_recoveries"] == 0

    def test_indivisible_partition_count_rejected(self, bundle, stream):
        cfg = SketchConfig(width=64, depth=2, partitions=9, promote_packets=3)
        det = AutomatedDDoSDetector(bundle, batched=True, sketch=cfg)
        with pytest.raises(ValueError, match="multiple of n_shards"):
            det.run_stream(
                stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
                shards=2,
            )


class TestResultPacking:
    def test_pack_unpack_roundtrip(self, bundle, stream):
        _, db = run_mode(bundle, stream)
        entries = db.predictions
        assert unpack_predictions(pack_predictions(entries)) == entries


# ---------------------------------------------------------------------------
# shard-assignment stability (hypothesis)
# ---------------------------------------------------------------------------

ips = st.integers(0, 2**32 - 1)
ports = st.integers(0, 2**16 - 1)
protos = st.sampled_from([1, 6, 17])
shard_counts = st.integers(1, 16)


@given(src_ip=ips, dst_ip=ips, src_port=ports, dst_port=ports,
       proto=protos, n_shards=shard_counts)
@settings(max_examples=300, deadline=None)
def test_both_directions_same_shard(src_ip, dst_ip, src_port, dst_port,
                                    proto, n_shards):
    """A conversation's two packet directions share one worker."""
    fwd = shard_of_key(
        canonical_flow_key(src_ip, dst_ip, src_port, dst_port, proto),
        n_shards,
    )
    rev = shard_of_key(
        canonical_flow_key(dst_ip, src_ip, dst_port, src_port, proto),
        n_shards,
    )
    assert fwd == rev
    assert 0 <= fwd < n_shards


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 100),
       n_shards=shard_counts)
@settings(max_examples=60, deadline=None)
def test_vectorized_hash_matches_scalar(seed, n, n_shards):
    rng = np.random.default_rng(seed)
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    rec["src_ip"] = rng.integers(0, 2**32, n)
    rec["dst_ip"] = rng.integers(0, 2**32, n)
    rec["src_port"] = rng.integers(0, 2**16, n)
    rec["dst_port"] = rng.integers(0, 2**16, n)
    rec["protocol"] = rng.choice([6, 17], n)
    cols = canonical_key_arrays(rec)
    vec = shard_arrays(*cols, n_shards)
    for i in range(n):
        key = canonical_flow_key(
            int(rec["src_ip"][i]), int(rec["dst_ip"][i]),
            int(rec["src_port"][i]), int(rec["dst_port"][i]),
            int(rec["protocol"][i]),
        )
        assert shard_of_key(key, n_shards) == int(vec[i])


def test_partition_covers_stream_disjointly():
    """Every record lands on exactly one shard; shard ids are in range."""
    rec = synthetic_records(n_flows=40, pkts_per_flow=3)
    shards = shard_arrays(*canonical_key_arrays(rec), 4)
    assert shards.shape == (rec.shape[0],)
    assert set(np.unique(shards)).issubset({0, 1, 2, 3})
    sizes = [int((shards == s).sum()) for s in range(4)]
    assert sum(sizes) == rec.shape[0]
