"""Tests for the Trace container and merge semantics."""

import numpy as np
import pytest

from repro.traffic import PACKET_DTYPE, AttackType, Trace, merge_traces
from repro.traffic.flows import TraceBuilder, packet_block


def block(ts, label=0, attack=AttackType.BENIGN):
    return packet_block(
        np.asarray(ts), 1, 2, 3, 4, 6, 0, 100, label=label, attack_type=attack
    )


class TestTrace:
    def test_empty(self):
        t = Trace.empty()
        assert len(t) == 0
        assert t.duration_ns == 0
        assert t.attack_fraction() == 0.0

    def test_sorts_on_construction(self):
        t = Trace(block([30, 10, 20]))
        assert t.ts.tolist() == [10, 20, 30]

    def test_stable_sort_preserves_ties(self):
        rec = np.concatenate([block([5]), block([5], label=1, attack=AttackType.SYN_SCAN)])
        t = Trace(rec)
        assert t.records["label"].tolist() == [0, 1]

    def test_time_slice(self):
        t = Trace(block([0, 10, 20, 30]))
        s = t.time_slice(10, 30)
        assert s.ts.tolist() == [10, 20]

    def test_time_slice_empty_range(self):
        t = Trace(block([0, 10]))
        assert len(t.time_slice(100, 200)) == 0

    def test_counts_by_type(self):
        rec = np.concatenate(
            [block([1, 2]), block([3], label=1, attack=AttackType.SYN_FLOOD)]
        )
        counts = Trace(rec).counts_by_type()
        assert counts[AttackType.BENIGN] == 2
        assert counts[AttackType.SYN_FLOOD] == 1

    def test_attack_fraction(self):
        rec = np.concatenate(
            [block([1, 2, 3]), block([4], label=1, attack=AttackType.UDP_SCAN)]
        )
        assert Trace(rec).attack_fraction() == pytest.approx(0.25)

    def test_getitem_slice(self):
        t = Trace(block([0, 10, 20]))
        assert len(t[:2]) == 2

    def test_save_load_roundtrip(self, tmp_path):
        t = Trace(block([5, 15], label=1, attack=AttackType.SLOWLORIS))
        path = tmp_path / "trace.npz"
        t.save(path)
        t2 = Trace.load(path)
        assert np.array_equal(t.records, t2.records)

    def test_from_columns(self):
        t = Trace.from_columns(
            ts=[1, 2], src_ip=[10, 11], dst_ip=7, src_port=1, dst_port=2,
            protocol=6, length=64,
        )
        assert len(t) == 2
        assert t.records["dst_ip"].tolist() == [7, 7]

    def test_from_columns_unknown_rejected(self):
        with pytest.raises(KeyError):
            Trace.from_columns(ts=[1], bogus=[2])


class TestMerge:
    def test_merge_sorts_globally(self):
        a = Trace(block([10, 30]))
        b = Trace(block([20, 40], label=1, attack=AttackType.SYN_SCAN))
        m = merge_traces([a, b])
        assert m.ts.tolist() == [10, 20, 30, 40]

    def test_merge_skips_empty(self):
        m = merge_traces([Trace.empty(), Trace(block([1]))])
        assert len(m) == 1

    def test_merge_all_empty(self):
        assert len(merge_traces([Trace.empty()])) == 0


class TestTraceBuilder:
    def test_accumulates(self):
        b = TraceBuilder()
        b.add(block([2]))
        b.add(block([1]))
        assert len(b) == 2
        assert b.build().ts.tolist() == [1, 2]

    def test_rejects_wrong_dtype(self):
        b = TraceBuilder()
        with pytest.raises(TypeError):
            b.add(np.zeros(3))

    def test_empty_build(self):
        assert len(TraceBuilder().build()) == 0
