"""Tests for sFlow sampling, agent batching, and collector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import Packet, Protocol, int_path_topology
from repro.sflow import (
    PacketCountSampler,
    SFlowAgent,
    SFlowCollector,
    TimeBasedSampler,
)


class TestPacketCountSampler:
    def test_deterministic_every_nth(self):
        s = PacketCountSampler(4, deterministic=True)
        hits = [s.offer() for _ in range(12)]
        assert hits == [False, False, False, True] * 3

    def test_rate_one_samples_everything(self):
        s = PacketCountSampler(1)
        assert all(s.offer() for _ in range(10))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PacketCountSampler(0)

    def test_random_mode_mean_rate(self):
        s = PacketCountSampler(64, seed=7)
        n = 200_000
        sampled = sum(s.offer() for _ in range(n))
        # mean gap is `rate`; expect n/rate samples within 10%
        assert sampled == pytest.approx(n / 64, rel=0.10)

    def test_sample_pool_counts_all_observed(self):
        s = PacketCountSampler(10, deterministic=True)
        for _ in range(25):
            s.offer()
        assert s.sample_pool == 25

    @given(rate=st.integers(min_value=1, max_value=512), seed=st.integers(0, 2**16))
    @settings(max_examples=50)
    def test_gaps_bounded(self, rate, seed):
        """Random skip gaps never exceed 2*rate-1 packets."""
        s = PacketCountSampler(rate, seed=seed)
        gap = 0
        max_gap = 0
        for _ in range(5000):
            if s.offer():
                max_gap = max(max_gap, gap)
                gap = 0
            else:
                gap += 1
        assert max_gap <= 2 * rate - 1


class TestTimeBasedSampler:
    def test_first_packet_sampled(self):
        s = TimeBasedSampler(1000)
        assert s.offer(500) is True

    def test_one_sample_per_interval(self):
        s = TimeBasedSampler(1000)
        hits = [s.offer(t) for t in range(0, 3000, 100)]
        assert sum(hits) == 3

    def test_burst_after_idle_yields_single_sample(self):
        s = TimeBasedSampler(1000)
        assert s.offer(0) is True
        # long idle gap, then a burst in one interval
        results = [s.offer(50_000 + i) for i in range(5)]
        assert results == [True, False, False, False, False]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimeBasedSampler(0)


def drive_traffic(topo, n_packets, spacing_ns=1_000):
    client, server = topo.hosts["client"], topo.hosts["server"]
    for i in range(n_packets):
        pkt = Packet(
            src_ip=client.ip,
            dst_ip=server.ip,
            src_port=40000,
            dst_port=80,
            protocol=int(Protocol.TCP),
            length=500,
            flow_seq=i,
        )
        client.send_at(i * spacing_ns, pkt)
    topo.run()


class TestSFlowAgentIntegration:
    def test_sampling_on_switch(self):
        topo = int_path_topology()
        collector = SFlowCollector()
        agent = SFlowAgent(
            1, collector, sampler=PacketCountSampler(10, deterministic=True),
            samples_per_datagram=4,
        )
        agent.attach(topo.switches["source_sw"])
        drive_traffic(topo, 100)
        agent.flush(topo.clock.now)
        assert len(collector) == 10
        rec = collector.to_records()
        assert (rec["sampling_rate"] == 10).all()
        assert rec["agent_id"].tolist() == [1] * 10

    def test_datagram_batching(self):
        topo = int_path_topology()
        collector = SFlowCollector()
        agent = SFlowAgent(
            1, collector, sampler=PacketCountSampler(1),
            samples_per_datagram=8,
        )
        agent.attach(topo.switches["source_sw"])
        drive_traffic(topo, 16)
        assert collector.datagrams_received == 2
        assert len(collector) == 16

    def test_final_flush_recovers_partial_datagram(self):
        topo = int_path_topology()
        collector = SFlowCollector()
        agent = SFlowAgent(
            1, collector, sampler=PacketCountSampler(1), samples_per_datagram=100,
        )
        agent.attach(topo.switches["source_sw"])
        drive_traffic(topo, 5)
        assert len(collector) == 0  # still pending
        agent.flush(topo.clock.now)
        assert len(collector) == 5

    def test_sample_timestamps_monotone(self):
        topo = int_path_topology()
        collector = SFlowCollector()
        agent = SFlowAgent(1, collector, sampler=PacketCountSampler(1))
        agent.attach(topo.switches["source_sw"])
        drive_traffic(topo, 50)
        agent.flush(topo.clock.now)
        rec = collector.to_records()
        assert np.all(np.diff(rec["ts_sample"].astype(np.int64)) >= 0)
        assert np.all(rec["ts_collector"] >= rec["ts_sample"])

    def test_subscriber_tap(self):
        topo = int_path_topology()
        taps = []
        collector = SFlowCollector(subscriber=lambda s, t: taps.append((s, t)))
        agent = SFlowAgent(1, collector, sampler=PacketCountSampler(1),
                           samples_per_datagram=1)
        agent.attach(topo.switches["source_sw"])
        drive_traffic(topo, 3)
        assert len(taps) == 3
