"""Unit tests for small analysis helpers (fmt, top_k, model zoo)."""

import numpy as np
import pytest

from repro.analysis.experiments import MODEL_ORDER, _knn_subsample, model_zoo
from repro.analysis.report import top_k
from repro.analysis.tables import fmt


class TestFmt:
    def test_float_digits(self):
        assert fmt(0.123456) == "0.1235"
        assert fmt(1.0) == "1.0000"

    def test_non_floats(self):
        assert fmt(42) == "42"
        assert fmt("x") == "x"


class TestTopK:
    def test_ranked(self):
        imp = np.array([0.1, 0.9, 0.5])
        out = top_k(imp, ["a", "b", "c"], 2)
        assert out == [("b", pytest.approx(0.9)), ("c", pytest.approx(0.5))]

    def test_k_larger_than_features(self):
        out = top_k(np.array([0.2]), ["only"], 5)
        assert len(out) == 1


class TestModelZoo:
    def test_contains_the_four_paper_models(self):
        zoo = model_zoo(seed=0)
        assert set(zoo) == set(MODEL_ORDER) == {"RF", "GNB", "KNN", "NN"}

    def test_factories_produce_fresh_instances(self):
        zoo = model_zoo(seed=0)
        assert zoo["RF"]() is not zoo["RF"]()

    def test_models_fit_and_predict(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (60, 3)), rng.normal(3, 1, (60, 3))])
        y = np.array([0] * 60 + [1] * 60)
        for name, factory in model_zoo(seed=0).items():
            model = factory().fit(X, y)
            assert model.score(X, y) > 0.9, name


class TestKnnSubsample:
    def test_keeps_both_classes(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(5000, 2))
        y = np.zeros(5000, dtype=int)
        y[:3] = 1  # rare positives
        Xs, ys = _knn_subsample(X, y, fraction=0.05, seed=0)
        assert np.unique(ys).size == 2

    def test_small_input_passthrough(self):
        X = np.zeros((50, 2))
        y = np.array([0, 1] * 25)
        Xs, ys = _knn_subsample(X, y, fraction=0.01, seed=0)
        assert Xs.shape[0] >= 50  # never shrinks below the floor
