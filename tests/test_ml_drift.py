"""Unit + property tests for the PSI drift layer (repro.ml.drift).

The lifecycle manager (PR 10) turns :class:`DriftMonitor` scores into
retrain/swap decisions, so the score itself must be boringly solid:
degenerate inputs (empty samples, constant features) resolve loudly or
to exact zeros, non-finite telemetry can never poison the histograms
silently, and a snapshot/restore cycle is bit-identical — the monitor
state rides coordinator checkpoints and a restored run must score every
subsequent window exactly like the uninterrupted one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.drift import DriftMonitor, population_stability_index


# ---------------------------------------------------------------------------
# population_stability_index
# ---------------------------------------------------------------------------
class TestPSI:
    def test_identical_samples_score_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        assert population_stability_index(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_sample_scores_high(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(0.0, 1.0, size=2000)
        moved = rng.normal(3.0, 1.0, size=2000)
        assert population_stability_index(ref, moved) > 0.25

    def test_empty_samples_raise(self):
        x = np.arange(10.0)
        with pytest.raises(ValueError, match="non-empty"):
            population_stability_index(np.array([]), x)
        with pytest.raises(ValueError, match="non-empty"):
            population_stability_index(x, np.array([]))

    def test_too_few_bins_raise(self):
        x = np.arange(10.0)
        with pytest.raises(ValueError, match="bins"):
            population_stability_index(x, x, bins=1)

    def test_constant_reference_is_finite(self):
        # All decile edges coincide; the ±inf endcaps keep two bins
        # alive, so a constant reference scores 0 against itself and a
        # large finite value (no NaN, no divide-by-zero) against data
        # that left the constant — which *is* drift.
        ref = np.full(100, 7.0)
        assert population_stability_index(ref, np.full(60, 7.0)) == \
            pytest.approx(0.0, abs=1e-9)
        moved = population_stability_index(ref, np.linspace(-5, 5, 100))
        assert np.isfinite(moved) and moved > 0.25

    def test_nan_in_either_sample_raises(self):
        x = np.arange(20.0)
        bad = x.copy()
        bad[3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            population_stability_index(bad, x)
        with pytest.raises(ValueError, match="finite"):
            population_stability_index(x, bad)

    def test_inf_raises(self):
        x = np.arange(20.0)
        bad = x.copy()
        bad[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            population_stability_index(x, bad)

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=10, max_size=200,
        ),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_psi_nonnegative_and_symmetric_zero(self, data, seed):
        ref = np.asarray(data)
        obs = np.asarray(data)[np.random.default_rng(seed).permutation(len(data))]
        # Same multiset in any order: identical histograms, PSI exactly 0.
        score = population_stability_index(ref, obs)
        assert score == pytest.approx(0.0, abs=1e-12)
        assert score >= -1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        ref=st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=20, max_size=200,
        ),
        obs=st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=20, max_size=200,
        ),
    )
    def test_psi_finite_nonnegative(self, ref, obs):
        score = population_stability_index(np.asarray(ref), np.asarray(obs))
        assert np.isfinite(score)
        # PSI is an f-divergence estimate over clipped frequencies:
        # never meaningfully negative.
        assert score >= -1e-9


# ---------------------------------------------------------------------------
# DriftMonitor
# ---------------------------------------------------------------------------
def _ref_matrix(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack([
        rng.normal(1200, 50, size=n),
        rng.integers(0, 1000, size=n).astype(np.float64),
    ])


class TestDriftMonitor:
    def test_requires_features_and_sane_thresholds(self):
        with pytest.raises(ValueError, match="at least one feature"):
            DriftMonitor([])
        with pytest.raises(ValueError, match="warn_at"):
            DriftMonitor(["a"], warn_at=0.3, alarm_at=0.1)
        with pytest.raises(ValueError, match="warn_at"):
            DriftMonitor(["a"], warn_at=0.0)

    def test_fitted_property_and_unfitted_score_raises(self):
        mon = DriftMonitor(["length", "latency"])
        assert not mon.fitted
        with pytest.raises(RuntimeError, match="not fitted"):
            mon.score(_ref_matrix())
        mon.fit(_ref_matrix())
        assert mon.fitted

    def test_fit_rejects_wrong_shape_and_thin_reference(self):
        mon = DriftMonitor(["a", "b"], bins=10)
        with pytest.raises(ValueError, match="n_features"):
            mon.fit(np.zeros((50, 3)))
        with pytest.raises(ValueError, match="smaller than the bin count"):
            mon.fit(np.zeros((5, 2)))

    def test_fit_rejects_nonfinite_reference(self):
        mon = DriftMonitor(["a", "b"])
        X = _ref_matrix()
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            mon.fit(X)

    def test_score_drops_and_counts_nonfinite_rows(self):
        mon = DriftMonitor(["a", "b"]).fit(_ref_matrix())
        live = _ref_matrix(seed=1)
        live[0, 0] = np.nan
        live[5, 1] = np.inf
        scores = mon.score(live)
        assert mon.nonfinite_dropped == 2
        assert all(np.isfinite(v) for v in scores.values())
        # and the counter accumulates across batches
        mon.score(live)
        assert mon.nonfinite_dropped == 4

    def test_score_raises_when_every_row_nonfinite(self):
        mon = DriftMonitor(["a", "b"]).fit(_ref_matrix())
        live = np.full((8, 2), np.nan)
        with pytest.raises(ValueError, match="non-finite"):
            mon.score(live)

    def test_report_status_ladder(self):
        rng = np.random.default_rng(2)
        ref = rng.normal(0, 1, size=(2000, 1))
        mon = DriftMonitor(["x"]).fit(ref)
        stable = mon.report(rng.normal(0, 1, size=(2000, 1)))
        assert stable["status"] == "stable"
        assert stable["drifted"] == []
        alarm = mon.report(rng.normal(4, 1, size=(2000, 1)))
        assert alarm["status"] == "alarm"
        assert alarm["worst_feature"] == "x"
        assert alarm["drifted"] == ["x"]
        assert alarm["worst_psi"] > 0.25

    def test_constant_feature_column_scores_zero(self):
        ref = np.column_stack([np.full(100, 5.0), np.arange(100.0)])
        mon = DriftMonitor(["const", "ramp"]).fit(ref)
        live = np.column_stack([np.full(60, 5.0), np.arange(60.0) * 2])
        scores = mon.score(live)
        assert scores["const"] == 0.0

    # ------------------------------------------------------------------
    # checkpoint/restore bit-identity
    # ------------------------------------------------------------------
    def test_snapshot_restore_scores_bit_identical(self):
        mon = DriftMonitor(["a", "b"], bins=10).fit(_ref_matrix())
        live = _ref_matrix(seed=3)
        live[2, 0] = np.inf  # exercise the drop counter too
        before = mon.score(live)
        snap = mon.state_snapshot()

        clone = DriftMonitor(["a", "b"], bins=10)
        clone.state_restore(snap)
        assert clone.fitted
        assert clone.nonfinite_dropped == mon.nonfinite_dropped
        after = clone.score(live)
        assert before.keys() == after.keys()
        for name in before:
            # bit-identical, not approximately equal
            assert before[name] == after[name]

    def test_snapshot_does_not_alias_reference(self):
        mon = DriftMonitor(["a", "b"]).fit(_ref_matrix(seed=4))
        snap = mon.state_snapshot()
        mon.fit(_ref_matrix(seed=5) + 100.0)  # refit mutates the monitor
        clone = DriftMonitor(["a", "b"])
        clone.state_restore(snap)
        live = _ref_matrix(seed=6)
        fresh = DriftMonitor(["a", "b"]).fit(_ref_matrix(seed=4))
        assert clone.score(live) == fresh.score(live)

    def test_unfitted_snapshot_roundtrip(self):
        mon = DriftMonitor(["a"])
        clone = DriftMonitor(["a"])
        clone.state_restore(mon.state_snapshot())
        assert not clone.fitted
