"""Closed-loop mitigation equivalence under chaos and worker-kill (PR 6).

The acceptance invariant for the mitigation control plane: the canonical
action-log digest (:meth:`repro.mitigation.MitigationController.
action_log_digest`) must be byte-identical across the single-process
batched run and sharded runs with 1, 2 and 4 workers — clean, under the
PR-1 data-chaos layer, and with seeded SIGKILL / crash worker-kill
recovery in play.  Mitigation state rides the same RPRCKPT1 checkpoints
and replay-buffer recovery as the prediction log, so a kill mid-run must
leave no trace in what got blocked, when, or why.

The prediction-log digest is asserted alongside throughout: mitigation
determinism is only meaningful on top of detection determinism.
"""

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.ml import GaussianNB, RandomForestClassifier
from repro.mitigation import MitigationController
from repro.resilience.chaos import ChaosSchedule
from repro.resilience.process_chaos import ProcessChaos

from .test_batch_equivalence import synthetic_records

POLL_EVERY = 37
CYCLE_BUDGET = 256

CHAOS = ChaosSchedule(
    drop_rate=0.05, burst_p=0.02, burst_r=0.3, burst_loss=0.8,
    duplicate_rate=0.03, reorder_rate=0.04, reorder_depth=3,
    corrupt_rate=0.02,
)


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=6, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(7).permutation(len(records))]


def n_cycles_of(stream):
    return stream.shape[0] // POLL_EVERY


def run_mode(bundle, stream, chaos=None, shards=None, **kw):
    det = AutomatedDDoSDetector(
        bundle, batched=True, chaos=chaos, chaos_seed=123
    )
    ctrl = MitigationController().attach_to(det)
    db = det.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
        shards=shards, **kw
    )
    return det, ctrl, db


@pytest.fixture(scope="module")
def reference(bundle, stream):
    """Unfaulted single-process digests, clean and under data chaos."""
    out = {}
    for chaos in (None, CHAOS):
        _, ctrl, db = run_mode(bundle, stream, chaos=chaos)
        assert ctrl.action_log, "reference run produced no actions"
        out[chaos] = {
            "actions": ctrl.action_log_digest(),
            "predictions": prediction_log_digest(db),
            "counters": dict(ctrl.counters),
        }
    return out


# ---------------------------------------------------------------------------
# shard-count invariance, clean and under data chaos
# ---------------------------------------------------------------------------
class TestShardInvariance:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    def test_action_digest_identical_across_shards(
        self, bundle, stream, reference, n_shards, chaos
    ):
        _, ctrl, db = run_mode(
            bundle, stream, chaos=chaos, shards=n_shards
        )
        assert ctrl.action_log_digest() == reference[chaos]["actions"]
        assert prediction_log_digest(db) == reference[chaos]["predictions"]

    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    def test_counters_identical_across_shards(
        self, bundle, stream, reference, chaos
    ):
        """The operator-visible enforcement counters are part of the
        contract too, not just the log."""
        _, ctrl, _ = run_mode(bundle, stream, chaos=chaos, shards=2)
        want = reference[chaos]["counters"]
        got = dict(ctrl.counters)
        for k in ("rules_installed", "rules_refreshed", "whitelist_hits"):
            assert got[k] == want[k], (k, got[k], want[k])


# ---------------------------------------------------------------------------
# the kill-recovery invariant: blocks survive worker murder
# ---------------------------------------------------------------------------
class TestMitigationKillRecovery:
    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    @pytest.mark.parametrize("mode", ["sigkill", "raise"])
    def test_seeded_kill_action_digest_identical(
        self, bundle, stream, reference, n_shards, chaos, mode
    ):
        plan = ProcessChaos.seeded(
            seed=20_000 + n_shards, n_cycles=n_cycles_of(stream),
            n_shards=n_shards, modes=(mode,),
        )
        assert not plan.is_noop
        det, ctrl, db = run_mode(
            bundle, stream, chaos=chaos, shards=n_shards,
            process_chaos=plan, checkpoint_every=3,
        )
        assert ctrl.action_log_digest() == reference[chaos]["actions"]
        assert prediction_log_digest(db) == reference[chaos]["predictions"]
        sup = det.supervision_stats
        assert sup["workers_died"] >= 1
        assert sup["workers_respawned"] >= 1
        assert sup["lossy_recoveries"] == 0

    def test_kill_before_first_checkpoint_replays_mitigation_state(
        self, bundle, stream, reference
    ):
        """A worker murdered before it ever checkpointed respawns with a
        fresh controller and the full-stream replay rebuilds the exact
        same block history."""
        plan = ProcessChaos(kills=((2, 1, "sigkill"),))
        det, ctrl, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=1000,  # never checkpoints within the run
        )
        assert ctrl.action_log_digest() == reference[None]["actions"]
        assert det.supervision_stats["checkpoints_taken"] == 0
        assert det.supervision_stats["workers_respawned"] >= 1

    def test_kill_after_checkpoint_restores_mitigation_state(
        self, bundle, stream, reference
    ):
        """The complementary path: the respawned worker restores flow
        cursor, emit history and block table from the checkpoint blob,
        then replays only the suffix."""
        plan = ProcessChaos(kills=((8, 0, "sigkill"),))
        det, ctrl, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=2,
        )
        assert ctrl.action_log_digest() == reference[None]["actions"]
        assert prediction_log_digest(db) == reference[None]["predictions"]
        assert det.supervision_stats["checkpoints_taken"] > 0
        assert det.supervision_stats["workers_respawned"] >= 1

    def test_hung_worker_recovery_preserves_actions(
        self, bundle, stream, reference
    ):
        plan = ProcessChaos(kills=((4, 0, "hang"),))
        det, ctrl, _ = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=3, heartbeat_timeout_s=2.0,
        )
        assert ctrl.action_log_digest() == reference[None]["actions"]
        assert det.supervision_stats["workers_respawned"] == 1


# ---------------------------------------------------------------------------
# loud degradation: lossy recovery must not silently fake the log
# ---------------------------------------------------------------------------
class TestLossyMitigation:
    def test_lossy_recovery_is_loud_in_mitigation_stats(
        self, bundle, stream, reference
    ):
        """When a crash outruns the replay buffer the run still
        completes, but the controller flags the action log as lossy
        rather than presenting a silently-diverged history as canonical."""
        plan = ProcessChaos(kills=((8, 0, "sigkill"),))
        det, ctrl, db = run_mode(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=1000, replay_buffer_records=40,
        )
        assert det.supervision_stats["lossy_recoveries"] == 1
        assert ctrl.stats()["lossy_recoveries"] >= 1
        assert ctrl.stats()["state_authoritative"] is False
        # loud, not silent: divergence shows up in the digest
        assert prediction_log_digest(db) != reference[None]["predictions"]
