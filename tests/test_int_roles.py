"""Integration tests: INT source/transit/sink roles over real topologies."""

import numpy as np
import pytest

from repro.dataplane import Packet, Protocol, TCPFlags, int_path_topology
from repro.dataplane import testbed_topology as make_testbed_topology
from repro.int_telemetry import (
    AMLIGHT_INSTRUCTION,
    IntCollector,
    IntSink,
    IntSource,
    IntTransit,
    attach_int_path,
)


def make_pkt(src, dst, seq=0, length=1200, proto=Protocol.TCP, flags=TCPFlags.PSHACK):
    return Packet(
        src_ip=src.ip,
        dst_ip=dst.ip,
        src_port=40000,
        dst_port=80,
        protocol=int(proto),
        length=length,
        tcp_flags=int(flags),
        flow_seq=seq,
    )


@pytest.fixture
def int_path():
    topo = int_path_topology()
    collector = IntCollector(keep_stacks=True)
    roles = attach_int_path(
        topo.switches["source_sw"],
        [topo.switches["transit_sw"]],
        topo.switches["sink_sw"],
        collector,
    )
    return topo, collector, roles


class TestIntPath:
    def test_every_packet_reported_once(self, int_path):
        topo, collector, _ = int_path
        client, server = topo.hosts["client"], topo.hosts["server"]
        for i in range(50):
            client.send_at(i * 1_000, make_pkt(client, server, i))
        topo.run()
        assert server.received == 50
        assert len(collector) == 50

    def test_three_hop_stack(self, int_path):
        topo, collector, _ = int_path
        client, server = topo.hosts["client"], topo.hosts["server"]
        client.send_at(0, make_pkt(client, server))
        topo.run()
        stack = collector.stacks[0]
        assert [h.switch_id for h in stack] == [1, 2, 3]

    def test_host_receives_clean_packet(self, int_path):
        topo, _, _ = int_path
        client, server = topo.hosts["client"], topo.hosts["server"]
        got = []
        server.rx_callback = lambda pkt, t: got.append(pkt)
        client.send_at(0, make_pkt(client, server))
        topo.run()
        assert got[0].int_stack is None
        assert got[0].int_instruction == 0

    def test_report_carries_flow_identity(self, int_path):
        topo, collector, _ = int_path
        client, server = topo.hosts["client"], topo.hosts["server"]
        client.send_at(0, make_pkt(client, server, proto=Protocol.UDP, flags=0))
        topo.run()
        rec = collector.to_records()
        assert rec["src_ip"][0] == client.ip
        assert rec["dst_ip"][0] == server.ip
        assert rec["protocol"][0] == int(Protocol.UDP)
        assert rec["length"][0] == 1200

    def test_monotone_ingress_order(self, int_path):
        """Reports arrive in packet order; unwrapped first-hop ingress
        timestamps must be non-decreasing."""
        from repro.int_telemetry import unwrap32

        topo, collector, _ = int_path
        client, server = topo.hosts["client"], topo.hosts["server"]
        for i in range(100):
            client.send_at(i * 5_000, make_pkt(client, server, i))
        topo.run()
        rec = collector.to_records()
        ts = unwrap32(rec["ingress_ts"])
        assert np.all(np.diff(ts) >= 0)

    def test_hop_latency_positive(self, int_path):
        topo, collector, _ = int_path
        client, server = topo.hosts["client"], topo.hosts["server"]
        client.send_at(0, make_pkt(client, server))
        topo.run()
        rec = collector.to_records()
        assert rec["hop_latency"][0] > 0

    def test_watchlist_filters_initiation(self):
        topo = int_path_topology()
        collector = IntCollector()
        attach_int_path(
            topo.switches["source_sw"],
            [topo.switches["transit_sw"]],
            topo.switches["sink_sw"],
            collector,
            watchlist=lambda pkt: pkt.protocol == int(Protocol.UDP),
        )
        client, server = topo.hosts["client"], topo.hosts["server"]
        client.send_at(0, make_pkt(client, server, proto=Protocol.TCP))
        client.send_at(1_000, make_pkt(client, server, proto=Protocol.UDP, flags=0))
        topo.run()
        rec = collector.to_records()
        assert len(rec) == 1
        assert rec["protocol"][0] == int(Protocol.UDP)

    def test_hop_budget_enforced(self):
        topo = int_path_topology()
        collector = IntCollector(keep_stacks=True)
        src = IntSource(max_hops=2)
        src.attach(topo.switches["source_sw"])
        for name in ("source_sw", "transit_sw", "sink_sw"):
            tr = IntTransit(max_hops=2)
            tr.attach(topo.switches[name])
        sink = IntSink(collector)
        sink.attach(topo.switches["sink_sw"])
        client, server = topo.hosts["client"], topo.hosts["server"]
        client.send_at(0, make_pkt(client, server))
        topo.run()
        assert len(collector.stacks[0]) == 2  # third hop refused to append


class TestTestbedTopology:
    def test_loopback_collects_both_passes(self):
        """Fig 6: a packet from source to target crosses the wedge twice;
        both logical passes contribute hop metadata."""
        topo = make_testbed_topology()
        collector = IntCollector(keep_stacks=True)
        attach_int_path(
            topo.switches["wedge_a"], [], topo.switches["wedge_b"], collector
        )
        src, dst = topo.hosts["source_agent"], topo.hosts["target_agent"]
        src.send_at(0, make_pkt(src, dst))
        topo.run()
        assert dst.received == 1
        assert len(collector) == 1
        assert len(collector.stacks[0]) == 2  # both passes of the wedge

    def test_describe_lists_five_ports(self):
        topo = make_testbed_topology()
        desc = topo.describe()
        for port in ("port 1", "port 2", "port 3", "port 4", "port 5"):
            assert port in desc
