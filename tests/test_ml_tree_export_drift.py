"""Tests for tree export/introspection and drift monitoring."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier
from repro.ml.drift import DriftMonitor, population_stability_index
from repro.ml.tree_export import decision_path, export_dot, export_text


@pytest.fixture(scope="module")
def fitted_tree():
    X = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0],
                  [10.0, 5.0], [11.0, 5.0], [12.0, 5.0]])
    y = np.array([0, 0, 0, 1, 1, 1])
    return DecisionTreeClassifier(seed=0).fit(X, y), X, y


class TestExportText:
    def test_contains_split_and_leaves(self, fitted_tree):
        tree, _, _ = fitted_tree
        out = export_text(tree, feature_names=["size", "dummy"])
        assert "size <=" in out
        assert out.count("class:") == 2
        assert "p=1.0000" in out

    def test_default_feature_names(self, fitted_tree):
        tree, _, _ = fitted_tree
        assert "feature[0]" in export_text(tree)

    def test_max_depth_truncates(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 3))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y)
        shallow = export_text(tree, max_depth=1)
        assert shallow.count("\n") < export_text(tree).count("\n")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            export_text(DecisionTreeClassifier())


class TestExportDot:
    def test_valid_dot_structure(self, fitted_tree):
        tree, _, _ = fitted_tree
        dot = export_dot(tree, feature_names=["size", "dummy"],
                         class_names=["benign", "attack"])
        assert dot.startswith("digraph tree {")
        assert dot.rstrip().endswith("}")
        assert "size <=" in dot
        assert "benign" in dot and "attack" in dot
        assert dot.count("->") == tree.node_count - 1  # tree edges


class TestDecisionPath:
    def test_path_ends_in_class(self, fitted_tree):
        tree, X, y = fitted_tree
        path = decision_path(tree, X[0], feature_names=["size", "dummy"])
        assert path[-1].startswith("=> class 0")
        assert any("size" in step for step in path[:-1])

    def test_path_consistent_with_predict(self, fitted_tree):
        tree, X, y = fitted_tree
        for i in range(X.shape[0]):
            path = decision_path(tree, X[i])
            assert path[-1].split("class ")[1].split(" ")[0] == str(
                tree.predict(X[i : i + 1])[0]
            )


class TestPsi:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=5000)
        b = rng.normal(size=5000)
        assert population_stability_index(a, b) < 0.02

    def test_shifted_distribution_large(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 5000)
        b = rng.normal(3, 1, 5000)
        assert population_stability_index(a, b) > 1.0

    def test_constant_reference(self):
        # identical constants: no drift
        assert population_stability_index(np.ones(100), np.ones(50)) == pytest.approx(0.0, abs=1e-9)
        # a constant that moved: maximal drift
        assert population_stability_index(np.ones(100), np.zeros(50)) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            population_stability_index(np.array([]), np.ones(3))
        with pytest.raises(ValueError):
            population_stability_index(np.ones(5), np.ones(5), bins=1)


class TestDriftMonitor:
    def make(self, seed=0, n=2000):
        rng = np.random.default_rng(seed)
        X = np.column_stack([rng.normal(0, 1, n), rng.exponential(2, n)])
        mon = DriftMonitor(["a", "b"]).fit(X)
        return mon, rng

    def test_stable_on_fresh_sample_from_same_process(self):
        mon, rng = self.make()
        live = np.column_stack([rng.normal(0, 1, 1000), rng.exponential(2, 1000)])
        rep = mon.report(live)
        assert rep["status"] == "stable"
        assert rep["drifted"] == []

    def test_alarms_on_shifted_feature(self):
        mon, rng = self.make()
        live = np.column_stack([rng.normal(4, 1, 1000), rng.exponential(2, 1000)])
        rep = mon.report(live)
        assert rep["status"] == "alarm"
        assert rep["worst_feature"] == "a"
        assert "a" in rep["drifted"] and "b" not in rep["drifted"]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DriftMonitor(["a"]).score(np.zeros((5, 1)))

    def test_shape_validation(self):
        mon, _ = self.make()
        with pytest.raises(ValueError):
            mon.score(np.zeros((5, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DriftMonitor([])
        with pytest.raises(ValueError):
            DriftMonitor(["a"], warn_at=0.5, alarm_at=0.1)

    def test_detects_attack_regime_change(self):
        """Operationally: a flood arriving shifts the live feature mix —
        the drift monitor doubles as a sanity alarm."""
        from repro.datasets import SERVER_IP
        from repro.features import extract_features
        from repro.datasets import CampaignConfig, monitored_topology
        from repro.traffic import Replayer, generate_benign, syn_flood
        from repro.traffic.benign import BenignConfig

        def capture(trace):
            topo, col, _s, _a = monitored_topology(CampaignConfig.tiny())
            Replayer(
                topo,
                {"fwd": (topo.switches["edge_client"], 1),
                 "rev": (topo.switches["edge_server"], 2)},
                classify=lambda r: "fwd" if r["dst_ip"] == SERVER_IP else "rev",
            ).replay(trace)
            return col.to_records()

        cfg = BenignConfig(sessions_per_s=3, mean_think_ns=3_000_000,
                           rtt_ns=100_000)
        SEC = 10**9
        ben = extract_features(
            capture(generate_benign(SERVER_IP, 80, 0, 8 * SEC, cfg, seed=1)),
            source="int",
        )
        atk = extract_features(
            capture(syn_flood(SERVER_IP, 80, 0, SEC, rate_pps=3000, seed=2)),
            source="int",
        )
        mon = DriftMonitor(ben.names).fit(ben.X)
        assert mon.report(atk.X)["status"] == "alarm"
