"""Tests for dataset save/load round trips."""

import numpy as np
import pytest

from repro.datasets import AmLightDataset, CampaignConfig, build_dataset


@pytest.fixture(scope="module")
def tiny_ds():
    return build_dataset(CampaignConfig.tiny())


class TestPersistence:
    def test_roundtrip_arrays(self, tiny_ds, tmp_path):
        tiny_ds.save(tmp_path / "ds")
        back = AmLightDataset.load(tmp_path / "ds")
        assert np.array_equal(back.trace.records, tiny_ds.trace.records)
        assert np.array_equal(back.int_records, tiny_ds.int_records)
        assert np.array_equal(back.int_labels, tiny_ds.int_labels)
        assert np.array_equal(back.sflow_records, tiny_ds.sflow_records)
        assert np.array_equal(back.sflow_types, tiny_ds.sflow_types)

    def test_roundtrip_config_and_schedule(self, tiny_ds, tmp_path):
        tiny_ds.save(tmp_path / "ds")
        back = AmLightDataset.load(tmp_path / "ds")
        assert back.config == tiny_ds.config
        assert back.schedule.sim_windows() == tiny_ds.schedule.sim_windows()

    def test_truth_map_rebuilt(self, tiny_ds, tmp_path):
        tiny_ds.save(tmp_path / "ds")
        back = AmLightDataset.load(tmp_path / "ds")
        assert back.truth_map == tiny_ds.truth_map

    def test_loaded_dataset_usable_for_training(self, tiny_ds, tmp_path):
        from repro.features import extract_features
        from repro.ml import GaussianNB, StandardScaler

        tiny_ds.save(tmp_path / "ds")
        back = AmLightDataset.load(tmp_path / "ds")
        fm = extract_features(back.int_records, source="int")
        sc = StandardScaler().fit(fm.X)
        model = GaussianNB().fit(sc.transform(fm.X), back.int_labels)
        assert model.score(sc.transform(fm.X), back.int_labels) > 0.8

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            AmLightDataset.load(tmp_path / "nope")
