"""Public-API smoke tests: every advertised symbol imports and exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.dataplane",
    "repro.int_telemetry",
    "repro.sflow",
    "repro.traffic",
    "repro.ml",
    "repro.features",
    "repro.core",
    "repro.mitigation",
    "repro.controlplane",
    "repro.baselines",
    "repro.datasets",
    "repro.analysis",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), name
    for sym in mod.__all__:
        assert hasattr(mod, sym) or importlib.util.find_spec(
            f"{name}.{sym}"
        ), f"{name}.{sym} advertised but missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_packages_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40, (
        f"{name} lacks a meaningful module docstring"
    )


def test_public_classes_documented():
    """Every public class/function in __all__ carries a docstring."""
    undocumented = []
    for name in PACKAGES[1:]:
        mod = importlib.import_module(name)
        for sym in mod.__all__:
            obj = getattr(mod, sym, None)
            if obj is None or isinstance(obj, (int, float, str, tuple, dict)):
                continue
            if getattr(obj, "__module__", "") == "typing":
                continue  # type aliases carry no runtime docstring
            if getattr(obj, "__doc__", None) in (None, ""):
                if hasattr(obj, "dtype"):  # numpy dtype constants
                    continue
                undocumented.append(f"{name}.{sym}")
    assert undocumented == [], undocumented
