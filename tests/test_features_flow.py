"""Tests for FlowRecord / FlowTable update semantics (paper §III-2)."""

import numpy as np
import pytest

from repro.features import FlowRecord, FlowTable, feature_names
from repro.int_telemetry import WRAP_PERIOD_NS

KEY = (1, 2, 3, 4, 6)


class TestFlowRecord:
    def test_first_packet_defaults(self):
        """Flow-level values are 'mostly 0 at initiation'."""
        rec = FlowRecord(KEY)
        rec.update(now_ns=100, ingress_ts32=1000, length=500, protocol=6)
        assert rec.n_packets == 1
        assert rec.inter_arrival_s == 0.0
        assert rec.duration_s == 0.0
        assert rec.iat_stats.n == 0
        assert rec.packet_size == 500
        assert rec.is_new

    def test_packet_level_replaced(self):
        rec = FlowRecord(KEY)
        rec.update(0, 0, 500, 6, queue_occupancy=2)
        rec.update(10, 1_000_000, 800, 6, queue_occupancy=7)
        assert rec.packet_size == 800
        assert rec.queue_occupancy == 7
        assert not rec.is_new

    def test_flow_level_aggregated(self):
        rec = FlowRecord(KEY)
        rec.update(0, 0, 500, 6)
        rec.update(10, 1_000_000_000, 300, 6)  # 1s gap
        rec.update(20, 3_000_000_000, 200, 6)  # 2s gap
        assert rec.n_packets == 3
        assert rec.total_bytes == 1000
        assert rec.duration_s == pytest.approx(3.0)
        assert rec.iat_stats.mean == pytest.approx(1.5)

    def test_wrap_aware_inter_arrival(self):
        rec = FlowRecord(KEY, wrap_aware=True)
        rec.update(0, WRAP_PERIOD_NS - 100, 100, 6)
        rec.update(10, 100, 100, 6)  # 200 ns later, across the wrap
        assert rec.inter_arrival_s == pytest.approx(200e-9)

    def test_naive_mode_clamps_wrap_to_zero(self):
        rec = FlowRecord(KEY, wrap_aware=False)
        rec.update(0, WRAP_PERIOD_NS - 100, 100, 6)
        rec.update(10, 100, 100, 6)
        assert rec.inter_arrival_s == 0.0  # the §V error mode

    def test_feature_vector_matches_names(self):
        rec = FlowRecord(KEY)
        rec.update(0, 0, 500, 6, queue_occupancy=3)
        rec.update(10, 2_000_000, 700, 6, queue_occupancy=5)
        names = feature_names("int")
        v = rec.feature_vector(names)
        assert v.shape == (len(names),)
        d = dict(zip(names, v))
        assert d["protocol"] == 6
        assert d["packet_size"] == 700
        assert d["packet_size_cum"] == 1200
        assert d["n_packets"] == 2
        assert d["queue_occupancy"] == 5
        assert d["queue_occupancy_avg"] == pytest.approx(4.0)

    def test_rates(self):
        rec = FlowRecord(KEY)
        rec.update(0, 0, 1000, 17)
        rec.update(10, 2_000_000_000, 1000, 17)  # 2 s later
        names = ["packets_per_second", "bytes_per_second"]
        pps, bps = rec.feature_vector(names)
        assert pps == pytest.approx(1.0)  # 2 packets / 2 s
        assert bps == pytest.approx(1000.0)

    def test_unknown_feature_raises(self):
        rec = FlowRecord(KEY)
        rec.update(0, 0, 100, 6)
        with pytest.raises(KeyError):
            rec.feature_vector(["nope"])


class TestFlowTable:
    def test_creates_and_reuses(self):
        ft = FlowTable()
        r1 = ft.update(KEY, 0, 0, 100, 6)
        r2 = ft.update(KEY, 10, 1000, 200, 6)
        assert r1 is r2
        assert len(ft) == 1
        assert ft.created == 1

    def test_distinct_flows(self):
        ft = FlowTable()
        ft.update((1, 2, 3, 4, 6), 0, 0, 100, 6)
        ft.update((1, 2, 3, 5, 6), 0, 0, 100, 6)
        assert len(ft) == 2

    def test_lru_eviction_under_flood(self):
        """A flood of unique flow keys must not grow the table past cap."""
        ft = FlowTable(max_flows=100)
        for i in range(1000):
            ft.update((i, 2, 3, 4, 6), i, i, 64, 6)
        assert len(ft) == 100
        assert ft.evicted == 900
        # most recent keys survive
        assert (999, 2, 3, 4, 6) in ft
        assert (0, 2, 3, 4, 6) not in ft

    def test_update_refreshes_lru_position(self):
        ft = FlowTable(max_flows=2)
        ft.update(("a",), 0, 0, 1, 6)
        ft.update(("b",), 1, 0, 1, 6)
        ft.update(("a",), 2, 0, 1, 6)  # refresh "a"
        ft.update(("c",), 3, 0, 1, 6)  # evicts "b", not "a"
        assert ("a",) in ft
        assert ("b",) not in ft

    def test_get_does_not_refresh_lru_position(self):
        """Reads are LRU-neutral: only updates change eviction order.

        The sketch gate probes residency for every flow in every slice;
        if ``get`` refreshed recency, enabling the gate would silently
        reshuffle which flows a ``max_flows`` cap evicts.
        """
        ft = FlowTable(max_flows=2)
        ft.update(("a",), 0, 0, 1, 6)
        ft.update(("b",), 1, 0, 1, 6)
        assert ft.get(("a",)) is not None  # read must NOT move "a" back
        assert ("a",) in ft  # __contains__ is read-only too
        ft.update(("c",), 2, 0, 1, 6)  # evicts "a": still the LRU flow
        assert ("a",) not in ft
        assert ("b",) in ft and ("c",) in ft

    def test_idle_expiry(self):
        ft = FlowTable(idle_timeout_ns=1_000)
        ft.update(("old",), 0, 0, 1, 6)
        ft.update(("fresh",), 5_000, 0, 1, 6)
        n = ft.expire_idle(now_ns=5_500)
        assert n == 1
        assert ("fresh",) in ft and ("old",) not in ft

    def test_expire_noop_without_timeout(self):
        ft = FlowTable()
        ft.update(("k",), 0, 0, 1, 6)
        assert ft.expire_idle(10**12) == 0

    def test_invalid_max_flows(self):
        with pytest.raises(ValueError):
            FlowTable(max_flows=0)
