"""Tests for vectorized bulk extraction, incl. equivalence with the
streaming FlowRecord path — the two implementations check each other."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import FlowTable, extract_features, feature_names
from repro.features.extract import _segmented_cumsum
from repro.int_telemetry import REPORT_DTYPE, WRAP_PERIOD_NS
from repro.sflow import SAMPLE_DTYPE


def make_int_records(rows):
    """rows: list of (ts, src, dst, sport, dport, proto, length, occ)."""
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, (ts, src, dst, sport, dport, proto, length, occ) in enumerate(rows):
        rec[i] = (
            ts, src, dst, sport, dport, proto, 0, length,
            ts % WRAP_PERIOD_NS, ts % WRAP_PERIOD_NS, occ, 1000, 3,
        )
    return rec


class TestSegmentedCumsum:
    def test_single_group(self):
        x = np.array([1.0, 2.0, 3.0])
        mask = np.array([True, False, False])
        assert _segmented_cumsum(x, mask).tolist() == [1.0, 3.0, 6.0]

    def test_restarts_at_groups(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        mask = np.array([True, False, True, False])
        assert _segmented_cumsum(x, mask).tolist() == [1.0, 3.0, 3.0, 7.0]

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=100),
        st.integers(0, 2**16),
    )
    @settings(max_examples=100)
    def test_matches_python_loop(self, xs, seed):
        rng = np.random.default_rng(seed)
        x = np.array(xs)
        mask = rng.random(x.size) < 0.3
        mask[0] = True
        out = _segmented_cumsum(x, mask)
        acc, expected = 0.0, []
        for xi, m in zip(x, mask):
            acc = xi if m else acc + xi
            expected.append(acc)
        assert np.allclose(out, expected)


class TestExtractFeatures:
    def test_empty(self):
        fm = extract_features(np.empty(0, dtype=REPORT_DTYPE), source="int")
        assert len(fm) == 0
        assert fm.n_flows == 0

    def test_single_flow_counts(self):
        rows = [(i * 10**9, 1, 2, 3, 4, 6, 100, 0) for i in range(5)]
        fm = extract_features(make_int_records(rows), source="int")
        d = dict(zip(fm.names, fm.X.T))
        assert d["n_packets"].tolist() == [1, 2, 3, 4, 5]
        assert d["packet_size_cum"].tolist() == [100, 200, 300, 400, 500]
        assert fm.n_flows == 1
        assert fm.is_first.tolist() == [True, False, False, False, False]

    def test_interleaved_flows_kept_separate(self):
        rows = [
            (0, 1, 2, 3, 4, 6, 100, 0),
            (1000, 9, 2, 3, 4, 6, 999, 0),
            (2000, 1, 2, 3, 4, 6, 100, 0),
        ]
        fm = extract_features(make_int_records(rows), source="int")
        d = dict(zip(fm.names, fm.X.T))
        assert d["n_packets"].tolist() == [1, 1, 2]
        assert fm.flow_index[0] == fm.flow_index[2]
        assert fm.flow_index[0] != fm.flow_index[1]

    def test_inter_arrival_seconds(self):
        rows = [(0, 1, 2, 3, 4, 6, 100, 0), (2 * 10**9, 1, 2, 3, 4, 6, 100, 0)]
        fm = extract_features(make_int_records(rows), source="int")
        d = dict(zip(fm.names, fm.X.T))
        assert d["inter_arrival"].tolist() == [0.0, 2.0]
        assert d["inter_arrival_cum"].tolist() == [0.0, 2.0]

    def test_wrap_aware_vs_naive(self):
        t0 = WRAP_PERIOD_NS - 100
        t1 = WRAP_PERIOD_NS + 100  # 200 ns later, across the wrap
        rows = [(t0, 1, 2, 3, 4, 6, 100, 0), (t1, 1, 2, 3, 4, 6, 100, 0)]
        rec = make_int_records(rows)
        aware = extract_features(rec, source="int", wrap_mode="aware")
        naive = extract_features(rec, source="int", wrap_mode="naive")
        ia_col = aware.names.index("inter_arrival")
        assert aware.X[1, ia_col] == pytest.approx(200e-9)
        assert naive.X[1, ia_col] == 0.0

    def test_sflow_source_has_no_queue_features(self):
        rec = np.zeros(3, dtype=SAMPLE_DTYPE)
        rec["ts_sample"] = [0, 1000, 2000]
        rec["ts_collector"] = [0, 1000, 2000]
        rec["src_ip"] = 1
        rec["dst_ip"] = 2
        rec["protocol"] = 6
        rec["length"] = 100
        fm = extract_features(rec, source="sflow")
        assert "queue_occupancy" not in fm.names
        assert len(fm.names) == 12

    def test_int_source_has_15_features(self):
        rows = [(0, 1, 2, 3, 4, 6, 100, 0)]
        fm = extract_features(make_int_records(rows), source="int")
        assert len(fm.names) == 15  # the paper's testbed feature count

    def test_hop_latency_optional(self):
        rows = [(0, 1, 2, 3, 4, 6, 100, 0)]
        fm = extract_features(
            make_int_records(rows), source="int", include_hop_latency=True
        )
        assert "hop_latency" in fm.names
        assert len(fm.names) == 16

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            extract_features(np.empty(0, dtype=REPORT_DTYPE), source="netflow")
        with pytest.raises(ValueError):
            extract_features(np.empty(0, dtype=REPORT_DTYPE), wrap_mode="bogus")


@given(
    n_flows=st.integers(1, 6),
    n_packets=st.integers(1, 60),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_vectorized_equals_streaming(n_flows, n_packets, seed):
    """The bulk extractor must reproduce the online FlowRecord exactly."""
    rng = np.random.default_rng(seed)
    flows = [(int(rng.integers(1, 100)), 2, int(rng.integers(1, 1000)), 80, 6)
             for _ in range(n_flows)]
    rows = []
    t = 0
    for _ in range(n_packets):
        t += int(rng.integers(1, 10**9))
        f = flows[int(rng.integers(0, n_flows))]
        rows.append((t, *f[:2], *f[2:4], f[4], int(rng.integers(60, 1500)),
                     int(rng.integers(0, 50))))
    rec = make_int_records(rows)
    fm = extract_features(rec, source="int")

    names = feature_names("int")
    ft = FlowTable()
    for i, r in enumerate(rec):
        key = (int(r["src_ip"]), int(r["dst_ip"]), int(r["src_port"]),
               int(r["dst_port"]), int(r["protocol"]))
        frec = ft.update(key, int(r["ts_report"]), int(r["ingress_ts"]),
                         float(r["length"]), int(r["protocol"]),
                         float(r["queue_occupancy"]), float(r["hop_latency"]))
        v = frec.feature_vector(names)
        np.testing.assert_allclose(v, fm.X[i], rtol=1e-6, atol=1e-7)
