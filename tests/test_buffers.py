"""Tests for the growable structured-array record buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.buffers import GrowableRecordBuffer

DT = np.dtype([("a", np.int64), ("b", np.float64)])


class TestGrowableRecordBuffer:
    def test_empty(self):
        buf = GrowableRecordBuffer(DT)
        assert len(buf) == 0
        assert buf.view().shape == (0,)

    def test_append_kwargs(self):
        buf = GrowableRecordBuffer(DT)
        buf.append(a=1, b=2.5)
        assert buf.view()["a"].tolist() == [1]
        assert buf.view()["b"].tolist() == [2.5]

    def test_append_row(self):
        buf = GrowableRecordBuffer(DT)
        buf.append_row((7, 1.5))
        assert buf.view()["a"][0] == 7

    def test_growth_preserves_data(self):
        buf = GrowableRecordBuffer(DT, initial_capacity=2)
        for i in range(100):
            buf.append_row((i, float(i)))
        assert len(buf) == 100
        assert buf.view()["a"].tolist() == list(range(100))
        assert buf.capacity >= 100

    def test_extend(self):
        buf = GrowableRecordBuffer(DT, initial_capacity=1)
        block = np.zeros(10, dtype=DT)
        block["a"] = np.arange(10)
        buf.extend(block)
        assert len(buf) == 10
        assert buf.view()["a"].tolist() == list(range(10))

    def test_compact_is_owning_copy(self):
        buf = GrowableRecordBuffer(DT)
        buf.append_row((1, 1.0))
        snap = buf.compact()
        buf.append_row((2, 2.0))
        assert snap.shape == (1,)
        assert snap["a"][0] == 1

    def test_clear_retains_capacity(self):
        buf = GrowableRecordBuffer(DT, initial_capacity=4)
        for i in range(10):
            buf.append_row((i, 0.0))
        cap = buf.capacity
        buf.clear()
        assert len(buf) == 0
        assert buf.capacity == cap

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GrowableRecordBuffer(DT, initial_capacity=0)


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300))
@settings(max_examples=100)
def test_buffer_matches_list_semantics(values):
    """Appending N rows then viewing equals building the array directly."""
    buf = GrowableRecordBuffer(DT, initial_capacity=1)
    for v in values:
        buf.append_row((v, float(v % 97)))
    expected_a = np.array(values, dtype=np.int64)
    assert np.array_equal(buf.view()["a"], expected_a)
    assert len(buf) == len(values)
