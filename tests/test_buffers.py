"""Tests for the record buffers (growable and shared-memory ring)."""

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.buffers import GrowableRecordBuffer, PeerDead, SharedRing

DT = np.dtype([("a", np.int64), ("b", np.float64)])


class TestGrowableRecordBuffer:
    def test_empty(self):
        buf = GrowableRecordBuffer(DT)
        assert len(buf) == 0
        assert buf.view().shape == (0,)

    def test_append_kwargs(self):
        buf = GrowableRecordBuffer(DT)
        buf.append(a=1, b=2.5)
        assert buf.view()["a"].tolist() == [1]
        assert buf.view()["b"].tolist() == [2.5]

    def test_append_row(self):
        buf = GrowableRecordBuffer(DT)
        buf.append_row((7, 1.5))
        assert buf.view()["a"][0] == 7

    def test_growth_preserves_data(self):
        buf = GrowableRecordBuffer(DT, initial_capacity=2)
        for i in range(100):
            buf.append_row((i, float(i)))
        assert len(buf) == 100
        assert buf.view()["a"].tolist() == list(range(100))
        assert buf.capacity >= 100

    def test_extend(self):
        buf = GrowableRecordBuffer(DT, initial_capacity=1)
        block = np.zeros(10, dtype=DT)
        block["a"] = np.arange(10)
        buf.extend(block)
        assert len(buf) == 10
        assert buf.view()["a"].tolist() == list(range(10))

    def test_compact_is_owning_copy(self):
        buf = GrowableRecordBuffer(DT)
        buf.append_row((1, 1.0))
        snap = buf.compact()
        buf.append_row((2, 2.0))
        assert snap.shape == (1,)
        assert snap["a"][0] == 1

    def test_clear_retains_capacity(self):
        buf = GrowableRecordBuffer(DT, initial_capacity=4)
        for i in range(10):
            buf.append_row((i, 0.0))
        cap = buf.capacity
        buf.clear()
        assert len(buf) == 0
        assert buf.capacity == cap

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GrowableRecordBuffer(DT, initial_capacity=0)


def _block(lo, n):
    out = np.zeros(n, dtype=DT)
    out["a"] = np.arange(lo, lo + n)
    out["b"] = out["a"] * 0.5
    return out


def _producer_main(name, capacity, total, chunk):
    """Child-process producer for the cross-process ring test."""
    ring = SharedRing.attach(name, DT, capacity)
    try:
        sent = 0
        while sent < total:
            n = min(chunk, total - sent)
            ring.push(_block(sent, n), timeout=30.0)
            sent += n
    finally:
        ring.close()


class TestSharedRing:
    def test_roundtrip_in_process(self):
        with SharedRing(DT, capacity=8) as ring:
            ring.push(_block(0, 5))
            out = ring.pop()
            assert out["a"].tolist() == [0, 1, 2, 3, 4]
            assert len(ring) == 0

    def test_wraparound_preserves_order(self):
        with SharedRing(DT, capacity=4) as ring:
            got = []
            for start in range(0, 30, 3):
                ring.push(_block(start, 3))
                got.extend(ring.pop()["a"].tolist())
            assert got == list(range(30))

    def test_push_larger_than_capacity_streams_through(self):
        # With a same-process consumer the oversized push cannot drain
        # itself, so feed in ring-sized pieces and verify the cursors
        # stay monotonic across many wraps.
        with SharedRing(DT, capacity=4) as ring:
            got = []
            for start in range(0, 40, 4):
                assert ring.push(_block(start, 4)) == 4
                got.extend(ring.pop()["a"].tolist())
            assert got == list(range(40))

    def test_pop_max_records(self):
        with SharedRing(DT, capacity=8) as ring:
            ring.push(_block(0, 6))
            assert ring.pop(max_records=4)["a"].tolist() == [0, 1, 2, 3]
            assert ring.pop()["a"].tolist() == [4, 5]

    def test_empty_pop_nonblocking(self):
        with SharedRing(DT, capacity=4) as ring:
            assert ring.pop().shape == (0,)

    def test_full_push_times_out(self):
        with SharedRing(DT, capacity=2) as ring:
            ring.push(_block(0, 2))
            with pytest.raises(TimeoutError):
                ring.push(_block(2, 1), timeout=0.05)

    def test_pop_returns_owning_copy(self):
        with SharedRing(DT, capacity=4) as ring:
            ring.push(_block(0, 2))
            out = ring.pop()
            ring.push(_block(100, 4))  # reuses the slots just released
            assert out["a"].tolist() == [0, 1]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SharedRing(DT, capacity=0)

    def test_full_push_raises_peer_dead_before_timeout(self):
        """A dead consumer surfaces as PeerDead within a probe interval,
        not as a full-timeout hang (the PR-5 backpressure fix)."""
        with SharedRing(DT, capacity=2) as ring:
            ring.push(_block(0, 2))
            with pytest.raises(PeerDead):
                ring.push(_block(2, 1), timeout=60.0, peer_alive=lambda: False)

    def test_empty_pop_raises_peer_dead_before_timeout(self):
        with SharedRing(DT, capacity=2) as ring:
            with pytest.raises(PeerDead):
                ring.pop(timeout=60.0, peer_alive=lambda: False)

    def test_on_wait_hook_fires_and_may_abort(self):
        calls = []

        class Abort(RuntimeError):
            pass

        def hook():
            calls.append(1)
            if len(calls) >= 2:
                raise Abort()

        with SharedRing(DT, capacity=2) as ring:
            ring.push(_block(0, 2))
            with pytest.raises(Abort):
                ring.push(_block(2, 1), timeout=60.0, on_wait=hook)
        assert len(calls) == 2

    def test_wait_backoff_probes_immediately_then_escalates(self):
        """The adaptive backoff: first tick probes liveness (a wait
        against a dead peer fails fast), then spins, then sleeps with
        per-tick doubling capped at MAX_WAIT_SLEEP_S."""
        from repro.common.buffers import _WaitState

        with SharedRing(DT, capacity=2) as ring:
            # Dead peer detected on the very first tick — no sleep.
            with pytest.raises(PeerDead):
                ring._wait_tick(_WaitState(), lambda: False, None)

            state = _WaitState()
            state.spins_left = 0  # skip the spin phase
            for _ in range(16):
                ring._wait_tick(state, None, None)
                assert state.sleep_s <= SharedRing.MAX_WAIT_SLEEP_S
            assert state.sleep_s == SharedRing.MAX_WAIT_SLEEP_S

    def test_wait_backoff_probe_cadence_is_wall_clock(self):
        """on_wait fires every ~PROBE_INTERVAL_S of accumulated sleep,
        not every N ticks — escalation must not starve the probes."""
        from repro.common.buffers import _WaitState

        calls = []
        with SharedRing(DT, capacity=2) as ring:
            state = _WaitState()
            state.spins_left = 0
            ticks = 40
            for _ in range(ticks):
                ring._wait_tick(state, None, lambda: calls.append(1))
        # 40 ticks at the 1 ms cap ≈ 40 ms of sleep → ~a dozen probes;
        # exactly one per tick would mean the cadence ignores sleep_s.
        assert 2 <= len(calls) < ticks

    def test_reset_rewinds_cursors_and_discards_content(self):
        with SharedRing(DT, capacity=4) as ring:
            ring.push(_block(0, 3))
            ring.pop(max_records=1)
            ring.reset()
            assert len(ring) == 0
            ring.push(_block(10, 2))
            assert ring.pop()["a"].tolist() == [10, 11]

    def test_reset_is_owner_only(self):
        with SharedRing(DT, capacity=4) as ring:
            peer = SharedRing.attach(ring.name, DT, 4)
            try:
                with pytest.raises(RuntimeError):
                    peer.reset()
            finally:
                peer.close()

    def test_cross_process_transfer(self):
        """A child producer streams 10x the ring capacity through it."""
        total, capacity = 640, 64
        ring = SharedRing(DT, capacity=capacity)
        try:
            ctx = mp.get_context("fork")
            proc = ctx.Process(
                target=_producer_main,
                args=(ring.name, capacity, total, 48),
            )
            proc.start()
            got = []
            while len(got) < total:
                got.extend(ring.pop(timeout=5.0)["a"].tolist())
            proc.join(timeout=10.0)
            assert proc.exitcode == 0
            assert got == list(range(total))
        finally:
            ring.close()
            ring.unlink()


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300))
@settings(max_examples=100)
def test_buffer_matches_list_semantics(values):
    """Appending N rows then viewing equals building the array directly."""
    buf = GrowableRecordBuffer(DT, initial_capacity=1)
    for v in values:
        buf.append_row((v, float(v % 97)))
    expected_a = np.array(values, dtype=np.int64)
    assert np.array_equal(buf.view()["a"], expected_a)
    assert len(buf) == len(values)
