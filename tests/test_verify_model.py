"""reprocheck test suite: the bounded-interleaving model checker.

Covers the acceptance criteria for the protocol verifier: clean
configurations explore exhaustively with zero violations (and well past
the 1k-distinct-state floor), every seeded protocol bug is caught with
a readable violation trace, and sleep-set partial-order reduction
prunes transitions without changing the verdict or the reachable state
set.
"""

from __future__ import annotations

import pytest

from repro.verify import (
    BUGS,
    ModelConfig,
    ProtocolModel,
    explore,
    render_trace,
)
from repro.verify.__main__ import main as verify_main

#: Every invariant the checker can report; traces asserting on
#: `violation.invariant` must name one of these.
INVARIANTS = {
    "publish-before-read",
    "exactly-once",
    "shard-routing",
    "checkpoint-monotonic",
    "reset-liveness",
    "deadlock-freedom",
}

SMALL = ModelConfig(n_shards=1, n_cycles=2, kill_budget=1)


# ---------------------------------------------------------------------------
# clean protocol: exhaustive exploration, zero violations
# ---------------------------------------------------------------------------
def test_single_shard_clean_run_is_violation_free():
    result = explore(ModelConfig(n_shards=1, n_cycles=3, kill_budget=1))
    assert result.ok and not result.violations
    assert result.completed_runs > 0
    assert result.max_depth > 0


def test_two_shard_clean_run_exceeds_thousand_states():
    """Acceptance floor: the interleaving space is genuinely explored,
    not trivially collapsed — >1k distinct states after dedup."""
    result = explore(ModelConfig(n_shards=2, n_cycles=2, kill_budget=1))
    assert result.ok
    assert result.states > 1_000
    assert result.transitions >= result.states


@pytest.mark.slow
def test_acceptance_bounds_two_shards_three_cycles_one_kill():
    result = explore(ModelConfig(n_shards=2, n_cycles=3, kill_budget=1))
    assert result.ok and not result.violations
    assert result.states > 100_000


def test_no_kill_budget_still_explores_both_shards():
    result = explore(ModelConfig(n_shards=2, n_cycles=2, kill_budget=0))
    assert result.ok and result.completed_runs > 0


def test_small_replay_buffer_degrades_loudly_not_wrongly():
    """A 1-frame replay buffer cannot cover a kill, so recoveries are
    lossy — allowed (the real supervisor logs the drop) as long as no
    record is *duplicated* and non-lossy runs stay complete."""
    result = explore(
        ModelConfig(n_shards=1, n_cycles=3, kill_budget=1, replay_frames=1)
    )
    assert result.ok


# ---------------------------------------------------------------------------
# seeded bugs: the checker must catch every one, with a readable trace
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bug", sorted(BUGS))
def test_every_seeded_bug_is_caught(bug):
    cfg = SMALL._replace(bug=bug)
    result = explore(cfg)
    assert result.violations, f"seeded bug {bug!r} went undetected"
    violation = result.violations[0]
    assert violation.invariant in INVARIANTS
    assert violation.message
    # the trace replays to a numbered human-readable schedule
    text = render_trace(cfg, violation.trace)
    assert "shard0" in text
    for step in range(1, len(violation.trace) + 1):
        assert f"{step}." in text


def test_commit_before_write_is_a_publish_before_read_violation():
    cfg = SMALL._replace(bug="commit_before_write")
    result = explore(cfg)
    assert result.violations[0].invariant == "publish-before-read"
    text = render_trace(cfg, result.violations[0].trace)
    assert "<-- violation fires here" in text


def test_no_replay_loses_records_exactly_once_catches_it():
    result = explore(SMALL._replace(bug="no_replay"))
    assert result.violations[0].invariant == "exactly-once"


def test_no_result_truncation_duplicates_records():
    result = explore(SMALL._replace(bug="no_result_truncation"))
    assert result.violations[0].invariant == "exactly-once"
    assert "not truncated" in result.violations[0].message


def test_reset_with_live_peer_trips_reset_liveness():
    result = explore(SMALL._replace(bug="reset_with_live_peer"))
    assert result.violations[0].invariant == "reset-liveness"


def test_trace_tail_elides_long_prefixes():
    cfg = SMALL._replace(bug="no_replay")
    violation = explore(cfg).violations[0]
    if len(violation.trace) <= 3:
        pytest.skip("trace too short to elide")
    text = render_trace(cfg, violation.trace, tail=3)
    assert "elided" in text or "..." in text
    full = render_trace(cfg, violation.trace, tail=0)
    assert len(full.splitlines()) >= len(violation.trace)


def test_collect_all_reports_each_invariant_once():
    result = explore(
        SMALL._replace(bug="no_replay"), first_violation=False
    )
    invariants = [v.invariant for v in result.violations]
    assert invariants and len(invariants) == len(set(invariants))


# ---------------------------------------------------------------------------
# partial-order reduction: same verdict and state set, fewer transitions
# ---------------------------------------------------------------------------
def test_por_preserves_verdict_and_state_set_on_clean_config():
    cfg = ModelConfig(n_shards=2, n_cycles=2, kill_budget=1)
    with_por = explore(cfg, por=True)
    without = explore(cfg, por=False)
    assert with_por.ok and without.ok
    assert with_por.states == without.states
    assert with_por.completed_runs == without.completed_runs
    assert with_por.transitions < without.transitions


@pytest.mark.parametrize("bug", sorted(BUGS))
def test_por_never_masks_a_seeded_bug(bug):
    cfg = SMALL._replace(bug=bug)
    assert explore(cfg, por=True).violations
    assert explore(cfg, por=False).violations


# ---------------------------------------------------------------------------
# model plumbing + the CLI
# ---------------------------------------------------------------------------
def test_unknown_bug_name_is_rejected():
    with pytest.raises(ValueError):
        ProtocolModel(SMALL._replace(bug="not_a_bug"))


def test_max_states_valve_truncates_exploration():
    result = explore(
        ModelConfig(n_shards=2, n_cycles=2, kill_budget=1),
        max_states=50,
    )
    assert result.states <= 51  # the valve trips after insertion


def test_cli_selftest_passes_and_names_every_bug(capsys):
    assert verify_main(["--selftest"]) == 0
    out = capsys.readouterr().out
    for bug in BUGS:
        assert bug in out
    assert "MISSED" not in out


def test_cli_clean_config_exits_zero(capsys):
    assert verify_main(["--shards", "1", "--cycles", "2"]) == 0
    assert "[ok]" in capsys.readouterr().out


def test_cli_seeded_bug_prints_trace_and_exits_zero(capsys):
    # exploring a seeded bug: finding the violation IS the success case
    assert verify_main(["--bug", "no_replay", "--cycles", "2"]) == 0
    out = capsys.readouterr().out
    assert "[VIOLATION]" in out
    assert "invariant violated: exactly-once" in out
