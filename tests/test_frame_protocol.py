"""The batch-frame ring protocol (PR 7).

Three layers of coverage for the sharded detector's wire format:

* **codec properties** (hypothesis): ``pack_frame`` →
  ``read_frame_header`` → ``unpack_frame_payload`` round-trips
  arbitrary cycle sizes — including 0-record CYCLE barriers and
  EOF-in-header — bit-exactly, with the unpacked arrays as zero-copy
  views of the popped payload;
* **transport**: frames crossing a deliberately tiny
  :class:`~repro.common.buffers.SharedRing` stay intact across slot
  wrap-around at frame boundaries, and oversized frames stream through
  a ring smaller than one frame; ``pop_exact`` honours its timeout and
  peer-liveness guards;
* **recovery**: the frame-tagged replay buffer restores a murdered
  worker bit-for-bit even when the ring is small enough that replayed
  frames wrap — the same digest invariant as
  ``test_recovery_equivalence.py``, down at the frame layer.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.buffers import (
    FRAME_CYCLE,
    FRAME_DATA,
    FRAME_EOF,
    FRAME_HEADER_BYTES,
    FRAME_MAGIC,
    FrameError,
    PeerDead,
    SharedRing,
    pack_frame,
    read_frame_header,
    unpack_frame_payload,
)
from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.process_chaos import ProcessChaos

from .test_batch_equivalence import synthetic_records

#: Unaligned record layout (itemsize 11) — stresses the zero-copy view
#: reinterpretation harder than the naturally-aligned REPORT_DTYPE.
DT = np.dtype([("a", "<i8"), ("b", "<u2"), ("c", "<u1")])

_U8 = np.dtype(np.uint8)


def _make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    rec = np.zeros(n, dtype=DT)
    rec["a"] = rng.integers(-(2**62), 2**62, size=n)
    rec["b"] = rng.integers(0, 2**16, size=n)
    rec["c"] = rng.integers(0, 2**8, size=n)
    return rec


def _roundtrip(frame, record_dtype):
    kind, count, seq_base, payload_bytes = read_frame_header(
        frame[:FRAME_HEADER_BYTES]
    )
    assert payload_bytes == frame.shape[0] - FRAME_HEADER_BYTES
    seqs, records = unpack_frame_payload(
        frame[FRAME_HEADER_BYTES:], count, record_dtype
    )
    return kind, seq_base, seqs, records


# ---------------------------------------------------------------------------
# codec round-trip properties
# ---------------------------------------------------------------------------
@given(
    n=st.integers(0, 200),
    kind=st.sampled_from([FRAME_DATA, FRAME_CYCLE]),
    seq0=st.integers(0, 2**40),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=120, deadline=None)
def test_frame_roundtrip_arbitrary_cycle_sizes(n, kind, seq0, seed):
    records = _make_records(n, seed=seed)
    seqs = np.arange(seq0, seq0 + n, dtype=np.int64)
    frame = pack_frame(kind, seqs, records)
    assert frame.dtype == _U8
    assert frame.shape[0] == FRAME_HEADER_BYTES + n * (8 + DT.itemsize)

    out_kind, seq_base, out_seqs, out_records = _roundtrip(frame, DT)
    assert out_kind == kind
    assert seq_base == (seq0 if n else -1)
    assert out_seqs.tolist() == seqs.tolist()
    assert np.array_equal(out_records, records)


@given(n=st.integers(1, 64), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_frame_roundtrip_report_dtype(n, seed):
    """The real telemetry dtype survives the wire byte-exactly."""
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=REPORT_DTYPE)
    records["ts_report"] = rng.integers(0, 2**60, size=n)
    records["src_ip"] = rng.integers(0, 2**32, size=n)
    records["length"] = rng.integers(0, 2**16, size=n)
    seqs = rng.integers(0, 2**50, size=n).astype(np.int64)
    frame = pack_frame(FRAME_CYCLE, seqs, records)
    _, _, out_seqs, out_records = _roundtrip(frame, REPORT_DTYPE)
    assert out_seqs.tolist() == seqs.tolist()
    assert out_records.tobytes() == records.tobytes()


def test_zero_record_cycle_and_eof_fold_into_header():
    """Control markers are header-only frames: 32 bytes, no payload."""
    empty = _make_records(0)
    no_seqs = np.empty(0, dtype=np.int64)
    for kind in (FRAME_CYCLE, FRAME_EOF):
        frame = pack_frame(kind, no_seqs, empty)
        assert frame.shape[0] == FRAME_HEADER_BYTES
        out_kind, count, seq_base, payload_bytes = read_frame_header(frame)
        assert (out_kind, count, seq_base, payload_bytes) == (kind, 0, -1, 0)
        seqs, records = unpack_frame_payload(
            frame[FRAME_HEADER_BYTES:], 0, DT
        )
        assert seqs.shape == (0,) and records.shape == (0,)


def test_unpack_is_zero_copy_view_of_payload():
    """The aliasing contract: unpacked arrays alias the popped payload
    (an owning copy), never a second allocation."""
    records = _make_records(16)
    seqs = np.arange(16, dtype=np.int64)
    frame = pack_frame(FRAME_DATA, seqs, records)
    payload = frame[FRAME_HEADER_BYTES:]
    out_seqs, out_records = unpack_frame_payload(payload, 16, DT)
    assert out_seqs.base is not None and out_records.base is not None
    # Mutating the payload must show through the views — proof they
    # share memory rather than copying.
    payload[:8] = 0xFF
    assert out_seqs[0] == np.int64(-1)


def test_header_validation_rejects_desynchronized_streams():
    records = _make_records(3)
    seqs = np.arange(3, dtype=np.int64)
    frame = pack_frame(FRAME_DATA, seqs, records)

    with pytest.raises(FrameError, match="32 bytes"):
        read_frame_header(frame[: FRAME_HEADER_BYTES - 1])

    bad_magic = frame[:FRAME_HEADER_BYTES].copy()
    bad_magic[0] ^= 0xFF
    with pytest.raises(FrameError, match="magic"):
        read_frame_header(bad_magic)

    bad_kind = frame.copy()
    bad_kind[4] = 99
    with pytest.raises(FrameError, match="kind"):
        read_frame_header(bad_kind[:FRAME_HEADER_BYTES])

    truncated = frame[FRAME_HEADER_BYTES:-1]
    with pytest.raises(FrameError, match="expected"):
        unpack_frame_payload(truncated, 3, DT)


def test_pack_frame_rejects_length_mismatch():
    with pytest.raises(ValueError, match="mismatch"):
        pack_frame(FRAME_DATA, np.arange(2, dtype=np.int64),
                   _make_records(3))


def test_frame_magic_spells_frm1():
    assert FRAME_MAGIC.to_bytes(4, "little") == b"FRM1"


# ---------------------------------------------------------------------------
# transport: frames across a SharedRing
# ---------------------------------------------------------------------------
def _push_frames(ring, frames):
    for frame in frames:
        ring.push(frame, timeout=30.0)


def _pop_frame(ring, record_dtype, timeout=30.0):
    header = ring.pop_exact(FRAME_HEADER_BYTES, timeout=timeout)
    kind, count, seq_base, payload_bytes = read_frame_header(header)
    if payload_bytes:
        payload = ring.pop_exact(payload_bytes, timeout=timeout)
        seqs, records = unpack_frame_payload(payload, count, record_dtype)
    else:
        seqs = np.empty(0, dtype=np.int64)
        records = np.empty(0, dtype=record_dtype)
    return kind, seq_base, seqs, records


@given(
    counts=st.lists(st.integers(0, 9), min_size=1, max_size=12),
    capacity=st.sampled_from([96, 128, 256]),
)
@settings(max_examples=40, deadline=None)
def test_frames_cross_ring_wraparound_at_frame_boundaries(counts, capacity):
    """A frame sequence whose cumulative length exceeds the ring many
    times over arrives intact and in order — slot wrap-around lands at
    arbitrary offsets inside headers and payloads."""
    frames, expect = [], []
    seq = 0
    for i, n in enumerate(counts):
        records = _make_records(n, seed=i)
        seqs = np.arange(seq, seq + n, dtype=np.int64)
        seq += n
        kind = FRAME_CYCLE if i % 2 else FRAME_DATA
        frames.append(pack_frame(kind, seqs, records))
        expect.append((kind, seqs, records))
    frames.append(pack_frame(FRAME_EOF, np.empty(0, np.int64),
                             _make_records(0)))

    with SharedRing(_U8, capacity=capacity) as ring:
        producer = threading.Thread(target=_push_frames, args=(ring, frames))
        producer.start()
        try:
            for kind, seqs, records in expect:
                out_kind, _, out_seqs, out_records = _pop_frame(ring, DT)
                assert out_kind == kind
                assert out_seqs.tolist() == seqs.tolist()
                assert np.array_equal(out_records, records)
            assert _pop_frame(ring, DT)[0] == FRAME_EOF
        finally:
            producer.join()


def test_oversized_frame_streams_through_smaller_ring():
    """One frame larger than the whole ring drains in pieces —
    ``pop_exact`` releases slots as it copies, so the producer's
    streaming ``push`` never deadlocks against it."""
    records = _make_records(40)  # 32 + 40*19 = 792 B frame
    frame = pack_frame(FRAME_DATA, np.arange(40, dtype=np.int64), records)
    with SharedRing(_U8, capacity=64) as ring:
        assert frame.shape[0] > ring.capacity
        producer = threading.Thread(target=_push_frames, args=(ring, [frame]))
        producer.start()
        try:
            _, _, out_seqs, out_records = _pop_frame(ring, DT)
            assert np.array_equal(out_records, records)
            assert out_seqs.tolist() == list(range(40))
        finally:
            producer.join()


def test_pop_exact_times_out_on_partial_frame():
    with SharedRing(_U8, capacity=64) as ring:
        ring.push(np.zeros(8, dtype=_U8), timeout=1.0)
        with pytest.raises(TimeoutError, match="8/32"):
            ring.pop_exact(FRAME_HEADER_BYTES, timeout=0.2)


def test_pop_exact_raises_peer_dead_before_timeout():
    with SharedRing(_U8, capacity=64) as ring:
        with pytest.raises(PeerDead):
            ring.pop_exact(FRAME_HEADER_BYTES, timeout=30.0,
                           peer_alive=lambda: False)


def test_pop_exact_zero_and_negative():
    with SharedRing(_U8, capacity=64) as ring:
        assert ring.pop_exact(0, timeout=1.0).shape == (0,)
        with pytest.raises(ValueError):
            ring.pop_exact(-1, timeout=1.0)


# ---------------------------------------------------------------------------
# recovery: the frame-tagged replay buffer
# ---------------------------------------------------------------------------
POLL_EVERY = 37
CYCLE_BUDGET = 256


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=6, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(11).permutation(len(records))]


def test_replay_of_frame_tagged_buffer_survives_tiny_ring(bundle, stream):
    """Kill a worker behind a ring so small that both the live stream
    and the post-restore replay wrap it repeatedly: the frame-tagged
    replay buffer must reproduce the batched digest bit-for-bit.

    This is ``test_recovery_equivalence`` pushed down to the frame
    layer — replay re-pushes *frames* (tag = CYCLE frames sent before
    each one), so a correct recovery proves tags stay aligned with
    frame boundaries across wrap-around and ring reset.
    """
    det_ref = AutomatedDDoSDetector(bundle, batched=True)
    db_ref = det_ref.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET
    )
    ref_digest = prediction_log_digest(db_ref)

    n_cycles = stream.shape[0] // POLL_EVERY
    plan = ProcessChaos(kills=((max(2, n_cycles // 2), 1, "sigkill"),))
    det = AutomatedDDoSDetector(bundle, batched=True)
    db = det.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
        shards=2, process_chaos=plan, checkpoint_every=3,
        ring_capacity=16,  # frames for a 37-record slice always wrap
    )
    assert prediction_log_digest(db) == ref_digest
    sup = det.supervision_stats
    assert sup["workers_died"] == 1
    assert sup["workers_respawned"] == 1
    assert sup["lossy_recoveries"] == 0
