"""Checkpoint serialization round-trips (PR-5 fault tolerance).

The recovery invariant — a respawned worker's merged output is
byte-identical to the unfaulted run — holds only if every piece of
checkpointed state restores *bit-identical*: Welford accumulators down
to the last ulp, LRU order down to the last move-to-end, sliding
decision windows down to the deque order.  These are property tests for
exactly that, including under ``max_flows`` eviction pressure, plus the
blob-integrity gate (a truncated or tampered checkpoint must fail
loudly, never restore garbage).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.checkpoint import (
    CheckpointError,
    pack_state,
    restore_detector,
    snapshot_detector,
    unpack_state,
)
from repro.core.ensemble import SlidingDecision
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.features.flow_table import FlowTable
from repro.ml import GaussianNB, RandomForestClassifier

from .test_batch_equivalence import synthetic_records

# ---------------------------------------------------------------------------
# strategies: packet sequences driving a FlowTable
# ---------------------------------------------------------------------------
packets = st.lists(
    st.tuples(
        st.integers(0, 7),                       # flow index
        st.integers(0, 2**31),                   # ingress ts32
        st.floats(40.0, 1500.0, allow_nan=False),  # length
        st.floats(0.0, 1e4, allow_nan=False),    # queue occupancy
        st.floats(0.0, 1e6, allow_nan=False),    # hop latency
    ),
    min_size=1,
    max_size=60,
)


def _key(i):
    return (i, 10 + i, 1000 + i, 80, 6)


def _drive(table, seq, t0=0):
    for n, (i, ts32, length, occ, lat) in enumerate(seq):
        table.update(
            _key(i), now_ns=t0 + n * 1000, ingress_ts32=ts32,
            length=length, protocol=6, queue_occupancy=occ,
            hop_latency_ns=lat,
        )


def _roundtrip_table(table, max_flows=None):
    blob = pack_state({"flows": table.state_snapshot()})
    fresh = FlowTable(max_flows=max_flows, wrap_aware=table.wrap_aware)
    fresh.state_restore(unpack_state(blob)["flows"])
    return fresh


# ---------------------------------------------------------------------------
# FlowTable: Welford moments + LRU order, bit-identical
# ---------------------------------------------------------------------------
@given(seq=packets)
@settings(max_examples=120, deadline=None)
def test_flow_table_roundtrip_bit_identical(seq):
    table = FlowTable()
    _drive(table, seq)
    fresh = _roundtrip_table(table)
    # exact tuple equality: Welford (n, mean, m2) floats compare by bits
    assert [r.state_snapshot() for r in fresh.records()] == [
        r.state_snapshot() for r in table.records()
    ]
    assert [k for k, _ in fresh.items()] == [k for k, _ in table.items()]
    assert (fresh.created, fresh.evicted, fresh.expired) == (
        table.created, table.evicted, table.expired
    )


@given(seq=packets, max_flows=st.integers(1, 5))
@settings(max_examples=120, deadline=None)
def test_flow_table_roundtrip_under_eviction_pressure(seq, max_flows):
    """LRU eviction order must survive the round-trip: after restoring,
    identical further traffic must evict identical victims."""
    table = FlowTable(max_flows=max_flows)
    _drive(table, seq)
    fresh = _roundtrip_table(table, max_flows=max_flows)
    assert [k for k, _ in fresh.items()] == [k for k, _ in table.items()]
    assert fresh.evicted == table.evicted
    # continue both under the same traffic: evictions must match exactly
    tail = [(i + 2, 77, 100.0, 0.0, 0.0) for i in range(8)]
    _drive(table, tail, t0=10**9)
    _drive(fresh, tail, t0=10**9)
    assert [r.state_snapshot() for r in fresh.records()] == [
        r.state_snapshot() for r in table.records()
    ]
    assert fresh.evicted == table.evicted


@given(seq=packets)
@settings(max_examples=60, deadline=None)
def test_flow_table_continue_after_restore_is_equivalent(seq):
    """Feeding more packets to a restored table produces features
    bit-identical to the never-serialized table (Welford continuity)."""
    table = FlowTable()
    _drive(table, seq)
    fresh = _roundtrip_table(table)
    tail = [(i % 8, 12345, 333.5, 2.0, 7.0) for i in range(10)]
    _drive(table, tail, t0=5 * 10**8)
    _drive(fresh, tail, t0=5 * 10**8)
    for (k1, r1), (k2, r2) in zip(table.items(), fresh.items()):
        assert k1 == k2
        assert r1.state_snapshot() == r2.state_snapshot()


# ---------------------------------------------------------------------------
# SlidingDecision: smoothing-window state
# ---------------------------------------------------------------------------
labels = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 1)), min_size=0, max_size=80
)


@given(pushes=labels, window=st.integers(1, 5), partial=st.booleans())
@settings(max_examples=120, deadline=None)
def test_sliding_decision_roundtrip_and_continuation(pushes, window, partial):
    dec = SlidingDecision(window=window, emit_partial=partial)
    for k, lbl in pushes:
        dec.push(_key(k), lbl)
    blob = pack_state(dec.state_snapshot())
    fresh = SlidingDecision(window=window, emit_partial=partial)
    fresh.state_restore(unpack_state(blob))
    assert fresh.state_snapshot() == dec.state_snapshot()
    # continuation: identical further pushes yield identical decisions
    tail = [(k % 6, (k + 1) % 2) for k in range(12)]
    out_a = [dec.push(_key(k), lbl) for k, lbl in tail]
    out_b = [fresh.push(_key(k), lbl) for k, lbl in tail]
    assert out_a == out_b
    assert fresh.state_snapshot() == dec.state_snapshot()


# ---------------------------------------------------------------------------
# blob integrity
# ---------------------------------------------------------------------------
def test_pack_unpack_roundtrip_payload():
    payload = {"x": [1, 2.5, (3, 4)], "y": {"z": "deep"}}
    assert unpack_state(pack_state(payload)) == payload


@given(pos=st.integers(0, 200), flip=st.integers(1, 255))
@settings(max_examples=80, deadline=None)
def test_tampered_blob_raises(pos, flip):
    blob = pack_state({"table": list(range(50))})
    pos %= len(blob)
    bad = blob[:pos] + bytes([blob[pos] ^ flip]) + blob[pos + 1:]
    with pytest.raises(CheckpointError):
        unpack_state(bad)


@given(cut=st.integers(0, 60))
@settings(max_examples=40, deadline=None)
def test_truncated_blob_raises(cut):
    blob = pack_state({"k": "v"})
    with pytest.raises(CheckpointError):
        unpack_state(blob[: max(0, len(blob) - 1 - cut)])


def test_foreign_bytes_raise():
    with pytest.raises(CheckpointError):
        unpack_state(b"not a checkpoint at all")
    with pytest.raises(CheckpointError):
        unpack_state(b"")


def test_non_dict_payload_raises():
    import hashlib
    import pickle

    from repro.core.checkpoint import MAGIC

    body = pickle.dumps([1, 2, 3])
    with pytest.raises(CheckpointError):
        unpack_state(MAGIC + hashlib.sha256(body).digest() + body)


# ---------------------------------------------------------------------------
# whole-detector restore: continue-after-restore digest identity
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=6, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(7).permutation(len(records))]


POLL_EVERY = 37
CYCLE_BUDGET = 256


def _run_slices(det, records, start_slice, end_slice, seq_base):
    """Drive the batched pipeline slice-by-slice like a shard worker."""
    n = records.shape[0]
    for s in range(start_slice, end_slice):
        lo, hi = s * POLL_EVERY, min((s + 1) * POLL_EVERY, n)
        if lo >= n:
            break
        chunk = records[lo:hi]
        det.collection.feed_batch(
            chunk, seqs=np.arange(seq_base + lo, seq_base + hi, dtype=np.int64)
        )
        if hi - lo == POLL_EVERY:
            det.central.cycle(max_updates=CYCLE_BUDGET)
    return det


@pytest.mark.parametrize("cut_slice", [1, 3])
def test_detector_restore_mid_run_matches_uninterrupted(
    bundle, stream, cut_slice
):
    """Snapshot at a cycle boundary, restore into a fresh detector,
    finish the stream there: the digest equals the uninterrupted run."""
    n_slices = -(-stream.shape[0] // POLL_EVERY)

    ref = AutomatedDDoSDetector(bundle, batched=True)
    _run_slices(ref, stream, 0, n_slices, 0)
    ref.central.drain(batch=CYCLE_BUDGET)
    want = prediction_log_digest(ref.db)

    first = AutomatedDDoSDetector(bundle, batched=True)
    _run_slices(first, stream, 0, cut_slice, 0)
    blob = snapshot_detector(
        first, cycles_done=cut_slice, last_seq=cut_slice * POLL_EVERY - 1
    )

    second = AutomatedDDoSDetector(bundle, batched=True)
    payload = restore_detector(second, blob)
    assert payload["cycles_done"] == cut_slice
    _run_slices(second, stream, cut_slice, n_slices, 0)
    second.central.drain(batch=CYCLE_BUDGET)
    assert prediction_log_digest(second.db) == want
    assert len(second.db.predictions) == len(ref.db.predictions)
