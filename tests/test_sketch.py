"""Sketch layer determinism and admission-gate semantics.

Covers the contracts the detector leans on:

* the seeded hash family is stdlib-``hash()``-free and its scalar and
  vectorized forms are bit-identical;
* count-min never undercounts (estimate ≥ true count) and estimates are
  monotone in further updates, for both update disciplines;
* checkpoint snapshot/restore is bit-identical;
* slice-granular updates are order- and partition-independent — the
  property behind shard-count-independent admission;
* ``FlowBatch.subset`` composes like a batch that never held the
  dropped records;
* the gate's promotion/residual accounting conserves packets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.batch import group_by_flow
from repro.features.keys import (
    canonical_key_arrays,
    key_hash_arrays,
    key_hash_of_key,
    shard_of_key,
)
from repro.sketch import (
    CountMinSketch,
    SketchConfig,
    SketchGate,
    cell_column,
    cell_columns,
    mix64,
    mix64_arrays,
    row_seeds,
)

from .test_batch_equivalence import synthetic_records

ips = st.integers(0, 2**32 - 1)
ports = st.integers(0, 2**16 - 1)
u64 = st.integers(0, 2**64 - 1)


# ---------------------------------------------------------------------------
# hash family
# ---------------------------------------------------------------------------


class TestHashFamily:
    @given(x=u64)
    @settings(max_examples=200, deadline=None)
    def test_scalar_vector_mix_identical(self, x):
        arr = mix64_arrays(np.array([x], dtype=np.uint64))
        assert int(arr[0]) == mix64(x)

    @given(kh=u64, seed=u64, width=st.integers(1, 1 << 20))
    @settings(max_examples=200, deadline=None)
    def test_scalar_vector_columns_identical(self, kh, seed, width):
        vec = cell_columns(np.array([kh], dtype=np.uint64), seed, width)
        col = cell_column(kh, seed, width)
        assert int(vec[0]) == col
        assert 0 <= col < width

    def test_row_seeds_deterministic_and_distinct(self):
        a = row_seeds(2024, 8)
        b = row_seeds(2024, 8)
        assert np.array_equal(a, b)
        assert len(set(a.tolist())) == 8
        assert not np.array_equal(a, row_seeds(2025, 8))

    @given(src=ips, dst=ips, sp=ports, dp=ports)
    @settings(max_examples=100, deadline=None)
    def test_key_hash_scalar_matches_vectorized(self, src, dst, sp, dp):
        ia, ib = (src, dst) if (src, sp) <= (dst, dp) else (dst, src)
        pa, pb = (sp, dp) if (src, sp) <= (dst, dp) else (dp, sp)
        vec = key_hash_arrays(
            np.array([ia], np.uint32), np.array([ib], np.uint32),
            np.array([pa], np.uint16), np.array([pb], np.uint16),
            np.array([6], np.uint8),
        )
        assert int(vec[0]) == key_hash_of_key((ia, ib, pa, pb, 6))


# ---------------------------------------------------------------------------
# count-min estimates
# ---------------------------------------------------------------------------

flow_slices = st.lists(
    st.tuples(st.integers(0, 31), st.integers(1, 50), st.integers(1, 1500)),
    min_size=1,
    max_size=60,
)


def _fold_slices(sketch, slices, n_ids=32):
    """Fold (flow_id, pkts, bytes) triples as one-slice-per-triple and
    return true per-flow totals keyed by a stable synthetic key hash."""
    kh_of = {i: mix64(i * 7919 + 13) for i in range(n_ids)}
    true_pkts = {}
    true_bytes = {}
    for fid, pk, by in slices:
        sketch.update_groups(
            np.array([kh_of[fid]], dtype=np.uint64),
            np.array([pk], dtype=np.int64),
            np.array([by], dtype=np.int64),
        )
        true_pkts[fid] = true_pkts.get(fid, 0) + pk
        true_bytes[fid] = true_bytes.get(fid, 0) + by
    return kh_of, true_pkts, true_bytes


class TestCountMin:
    @pytest.mark.parametrize("kind", ["cms", "cu"])
    @given(slices=flow_slices)
    @settings(max_examples=60, deadline=None)
    def test_estimate_never_undercounts(self, kind, slices):
        sk = CountMinSketch(width=16, depth=3, partitions=4, kind=kind)
        kh_of, true_pkts, true_bytes = _fold_slices(sk, slices)
        for fid, pk in true_pkts.items():
            est_p, est_b = sk.estimate(kh_of[fid])
            assert est_p >= pk
            assert est_b >= true_bytes[fid]

    @pytest.mark.parametrize("kind", ["cms", "cu"])
    @given(slices=flow_slices)
    @settings(max_examples=40, deadline=None)
    def test_estimates_monotone_in_updates(self, kind, slices):
        sk = CountMinSketch(width=16, depth=3, partitions=4, kind=kind)
        probe = np.uint64(mix64(424242))
        prev = 0
        for fid, pk, by in slices:
            sk.update_groups(
                np.array([mix64(fid * 7919 + 13)], dtype=np.uint64),
                np.array([pk], dtype=np.int64),
                np.array([by], dtype=np.int64),
            )
            cur, _ = sk.estimate(int(probe))
            assert cur >= prev
            prev = cur

    def test_cu_tighter_than_cms(self):
        """Conservative update's estimates are bounded by plain CMS."""
        rng = np.random.default_rng(3)
        kh = mix64_arrays(rng.integers(0, 2**63, 500, dtype=np.uint64))
        pk = rng.integers(1, 20, 500).astype(np.int64)
        by = pk * 100
        cms = CountMinSketch(width=8, depth=2, partitions=2, kind="cms")
        cu = CountMinSketch(width=8, depth=2, partitions=2, kind="cu")
        cms.update_groups(kh, pk, by)
        cu.update_groups(kh, pk, by)
        e_cms, _ = cms.estimate_batch(kh)
        e_cu, _ = cu.estimate_batch(kh)
        assert (e_cu <= e_cms).all()
        assert (e_cu >= pk).all()  # still never undercounts one slice

    def test_decay_halves_counters(self):
        sk = CountMinSketch(width=8, depth=2, partitions=2)
        kh = np.array([mix64(1)], dtype=np.uint64)
        sk.update_groups(kh, np.array([9]), np.array([901]))
        sk.decay()
        est_p, est_b = sk.estimate(mix64(1))
        assert est_p == 4  # floor(9/2)
        assert est_b == 450
        assert sk.decays == 1

    @given(slices=flow_slices)
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_bit_identity(self, slices):
        sk = CountMinSketch(width=16, depth=3, partitions=4)
        _fold_slices(sk, slices)
        sk.decay()
        snap = sk.state_snapshot()
        other = CountMinSketch(width=16, depth=3, partitions=4)
        other.state_restore(snap)
        assert np.array_equal(other.packets, sk.packets)
        assert np.array_equal(other.bytes, sk.bytes)
        assert other.updates == sk.updates and other.decays == sk.decays
        # and the restored sketch keeps evolving identically
        kh = np.array([mix64(5)], dtype=np.uint64)
        sk.update_groups(kh, np.array([3]), np.array([300]))
        other.update_groups(kh, np.array([3]), np.array([300]))
        assert np.array_equal(other.packets, sk.packets)

    def test_snapshot_shape_mismatch_rejected(self):
        sk = CountMinSketch(width=16, depth=3, partitions=4)
        snap = sk.state_snapshot()
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=3, partitions=4).state_restore(snap)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(kind="exact")


# ---------------------------------------------------------------------------
# partition/shard co-location — the shard-independence lemma
# ---------------------------------------------------------------------------


class TestPartitionColocation:
    @given(src=ips, dst=ips, sp=ports, dp=ports,
           n_shards=st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    @settings(max_examples=200, deadline=None)
    def test_partition_implies_shard(self, src, dst, sp, dp, n_shards):
        """partition p ⇒ shard p % n_shards whenever n_shards | P: all
        flows of one partition co-locate on one worker."""
        P = 64
        key = (src, dst, sp, dp, 6)
        kh = key_hash_of_key(key)
        assert shard_of_key(key, n_shards) == (kh % P) % n_shards

    @pytest.mark.parametrize("kind", ["cms", "cu"])
    @pytest.mark.parametrize("n_parts", [1, 2, 4])
    def test_partitioned_fold_matches_unified(self, kind, n_parts):
        """Folding a slice split by partition-group equals the unified
        fold — the worker-count-independence property."""
        rng = np.random.default_rng(11)
        kh = mix64_arrays(rng.integers(0, 2**63, 300, dtype=np.uint64))
        pk = rng.integers(1, 9, 300).astype(np.int64)
        by = pk * 64
        P = 8
        unified = CountMinSketch(width=16, depth=3, partitions=P, kind=kind)
        unified.update_groups(kh, pk, by)
        split = CountMinSketch(width=16, depth=3, partitions=P, kind=kind)
        worker = (kh % np.uint64(P)).astype(np.int64) % n_parts
        for w in range(n_parts):
            sel = worker == w
            split.update_groups(kh[sel], pk[sel], by[sel])
        assert np.array_equal(split.packets, unified.packets)
        assert np.array_equal(split.bytes, unified.bytes)


# ---------------------------------------------------------------------------
# FlowBatch.subset
# ---------------------------------------------------------------------------


class TestBatchSubset:
    def _batch(self, n_flows=20, pkts=4):
        rec = synthetic_records(n_flows=n_flows, pkts_per_flow=pkts)
        rec = rec[np.random.default_rng(5).permutation(rec.shape[0])]
        return rec, group_by_flow(*canonical_key_arrays(rec))

    def test_subset_matches_brute_force_regroup(self):
        rec, batch = self._batch()
        rng = np.random.default_rng(9)
        keep = rng.random(batch.n_groups) < 0.5
        sub, rec_mask = batch.subset(keep)
        # Brute force: drop the records of rejected groups, regroup.
        ref = group_by_flow(*canonical_key_arrays(rec[rec_mask]))
        assert sub.n == ref.n
        assert sub.keys == ref.keys
        assert np.array_equal(sub.order, ref.order)
        assert np.array_equal(sub.starts, ref.starts)
        assert np.array_equal(sub.counts, ref.counts)
        assert np.array_equal(sub.first_pos, ref.first_pos)
        assert np.array_equal(sub.last_pos, ref.last_pos)
        assert np.array_equal(sub.key_hash, ref.key_hash)
        assert np.array_equal(sub.group_ip_a, ref.group_ip_a)

    def test_subset_keep_all_is_identity(self):
        _, batch = self._batch()
        sub, rec_mask = batch.subset(np.ones(batch.n_groups, bool))
        assert sub is batch
        assert rec_mask.all()

    def test_subset_keep_none_is_empty(self):
        _, batch = self._batch()
        sub, rec_mask = batch.subset(np.zeros(batch.n_groups, bool))
        assert sub.n == 0 and sub.n_groups == 0
        assert not rec_mask.any()

    def test_group_metadata_matches_scalar_hash(self):
        _, batch = self._batch()
        for g, key in enumerate(batch.keys):
            assert int(batch.key_hash[g]) == key_hash_of_key(key)
            assert int(batch.group_ip_a[g]) == key[0]


# ---------------------------------------------------------------------------
# gate semantics
# ---------------------------------------------------------------------------


class TestSketchGate:
    CFG = SketchConfig(width=64, depth=3, partitions=8, promote_packets=4)

    def test_promotion_threshold(self):
        gate = self.CFG.build()
        kh = np.array([mix64(1), mix64(2)], dtype=np.uint64)
        admit = gate.admit_slice(
            kh, np.array([5, 2]), np.array([500, 200]),
            np.zeros(2, bool), np.array([10, 20]),
        )
        assert admit.tolist() == [True, False]
        assert gate.promotions == 1
        # the small flow keeps accumulating and crosses on a later slice
        admit2 = gate.admit_slice(
            kh[1:], np.array([3]), np.array([300]),
            np.zeros(1, bool), np.array([20]),
        )
        assert admit2.tolist() == [True]
        assert gate.promotions == 2

    def test_resident_flows_always_admitted(self):
        gate = self.CFG.build()
        kh = np.array([mix64(3)], dtype=np.uint64)
        admit = gate.admit_slice(
            kh, np.array([1]), np.array([64]),
            np.array([True]), np.array([30]),
        )
        assert admit.tolist() == [True]
        assert gate.promotions == 0  # residency is not a promotion

    def test_residual_accounting_conserves_packets(self):
        gate = self.CFG.build()
        rng = np.random.default_rng(2)
        total = 0
        admitted_pkts = 0
        for _ in range(10):
            n = 20
            kh = mix64_arrays(rng.integers(0, 2**63, n, dtype=np.uint64))
            pk = rng.integers(1, 6, n).astype(np.int64)
            by = pk * 100
            admit = gate.admit_slice(
                kh, pk, by, np.zeros(n, bool),
                rng.integers(0, 2**32, n).astype(np.int64),
            )
            total += int(pk.sum())
            admitted_pkts += int(pk[admit].sum())
        st_ = gate.stats()
        assert admitted_pkts + st_["rejected_packets"] == total
        assert st_["residual_packets"] == st_["rejected_packets"]
        assert st_["residual_prefixes"] >= 1

    def test_residual_top_prefixes(self):
        gate = SketchConfig(
            width=64, depth=3, partitions=8,
            promote_packets=10**9, prefix_bits=16,
        ).build()
        kh = np.array([mix64(7)], dtype=np.uint64)
        src = (192 << 24) | (168 << 16) | (1 << 8) | 5
        gate.admit_slice(
            kh, np.array([9]), np.array([900]),
            np.zeros(1, bool), np.array([src]),
        )
        top = gate.residual.top_prefixes(1)
        assert top == (("192.168.0.0/16", 9, 900),)

    def test_window_decay_cadence(self):
        cfg = SketchConfig(
            width=64, depth=3, partitions=8, promote_packets=4, decay_every=3
        )
        gate = cfg.build()
        for _ in range(6):
            gate.end_window()
        assert gate.windows == 6
        assert gate.sketch.decays == 2

    def test_gate_snapshot_restore_bit_identity(self):
        gate = self.CFG.build()
        rng = np.random.default_rng(4)
        kh = mix64_arrays(rng.integers(0, 2**63, 50, dtype=np.uint64))
        gate.admit_slice(
            kh, rng.integers(1, 9, 50).astype(np.int64),
            rng.integers(64, 1500, 50).astype(np.int64),
            np.zeros(50, bool), rng.integers(0, 2**32, 50).astype(np.int64),
        )
        gate.end_window()
        other = self.CFG.build()
        other.state_restore(gate.state_snapshot())
        assert other.stats() == gate.stats()
        assert np.array_equal(other.sketch.packets, gate.sketch.packets)
        assert other.residual.packets == gate.residual.packets

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SketchConfig(promote_packets=0, promote_bytes=0)
        with pytest.raises(ValueError):
            SketchConfig(prefix_bits=33)
        with pytest.raises(ValueError):
            SketchConfig(decay_every=-1)

    def test_scalar_admission_matches_singleton_slices(self):
        """admit_one is admit_slice on a one-flow slice."""
        g1 = self.CFG.build()
        g2 = self.CFG.build()
        rng = np.random.default_rng(6)
        for _ in range(40):
            kh = int(rng.integers(0, 2**63))
            resident = bool(rng.random() < 0.2)
            a = g2.admit_one(kh, 100, resident, 42)
            b = g1.admit_slice(
                np.array([kh], dtype=np.uint64),
                np.array([1]), np.array([100]),
                np.array([resident]), np.array([42]),
            )
            assert a == bool(b[0])
        assert g1.stats() == g2.stats()
