"""Round-trip tests for INT header/metadata byte codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.int_telemetry.header import (
    INT_HEADER_BYTES,
    INT_SHIM_BYTES,
    IntHeader,
    decode_stack,
    encode_stack,
)
from repro.int_telemetry.instructions import (
    AMLIGHT_INSTRUCTION,
    IntInstruction,
    instruction_fields,
)
from repro.int_telemetry.metadata import HOP_METADATA_BYTES, HopMetadata


class TestInstructions:
    def test_amlight_requests_everything(self):
        assert AMLIGHT_INSTRUCTION == IntInstruction.ALL

    def test_field_order_matches_bit_order(self):
        assert instruction_fields(IntInstruction.ALL) == (
            "switch_id",
            "ingress_ts",
            "egress_ts",
            "queue_occupancy",
            "hop_latency",
        )

    def test_subset_selection(self):
        bm = IntInstruction.SWITCH_ID | IntInstruction.QUEUE_OCCUPANCY
        assert instruction_fields(bm) == ("switch_id", "queue_occupancy")

    def test_none(self):
        assert instruction_fields(IntInstruction.NONE) == ()


class TestHopMetadata:
    def test_capture_wraps_timestamps(self):
        h = HopMetadata.capture(1, 2**32 + 5, 2**32 + 10, 3)
        assert h.ingress_ts == 5
        assert h.egress_ts == 10

    def test_hop_latency_across_wrap(self):
        h = HopMetadata.capture(1, 2**32 - 10, 2**32 + 10, 0)
        assert h.hop_latency_ns == 20

    def test_encode_size(self):
        h = HopMetadata(1, 2, 3, 4)
        assert len(h.encode()) == HOP_METADATA_BYTES

    def test_roundtrip(self):
        h = HopMetadata(7, 123456, 234567, 42)
        assert HopMetadata.decode(h.encode()) == h

    def test_occupancy_saturates_at_u16(self):
        h = HopMetadata(1, 0, 0, 100_000)
        assert HopMetadata.decode(h.encode()).queue_occupancy == 0xFFFF

    def test_decode_wrong_size(self):
        with pytest.raises(ValueError):
            HopMetadata.decode(b"\x00" * 3)


class TestHeaderCodec:
    def test_roundtrip_empty_stack(self):
        hdr = IntHeader(2, 0, 8, AMLIGHT_INSTRUCTION)
        blob = encode_stack(hdr, [])
        assert len(blob) == INT_SHIM_BYTES + INT_HEADER_BYTES
        hdr2, stack2 = decode_stack(blob)
        assert hdr2 == hdr
        assert stack2 == []

    def test_hop_count_mismatch_rejected(self):
        hdr = IntHeader(2, 2, 6, AMLIGHT_INSTRUCTION)
        with pytest.raises(ValueError):
            encode_stack(hdr, [HopMetadata(1, 0, 0, 0)])

    def test_truncated_rejected(self):
        hdr = IntHeader(2, 1, 7, AMLIGHT_INSTRUCTION)
        blob = encode_stack(hdr, [HopMetadata(1, 0, 0, 0)])
        with pytest.raises(ValueError):
            decode_stack(blob[:-1])

    def test_bad_shim_type_rejected(self):
        hdr = IntHeader(2, 0, 8, AMLIGHT_INSTRUCTION)
        blob = bytearray(encode_stack(hdr, []))
        blob[0] = 0x7F
        with pytest.raises(ValueError):
            decode_stack(bytes(blob))


hop_strategy = st.builds(
    HopMetadata,
    switch_id=st.integers(min_value=0, max_value=2**32 - 1),
    ingress_ts=st.integers(min_value=0, max_value=2**32 - 1),
    egress_ts=st.integers(min_value=0, max_value=2**32 - 1),
    queue_occupancy=st.integers(min_value=0, max_value=2**16 - 1),
)


@given(
    stack=st.lists(hop_strategy, max_size=8),
    instruction=st.sampled_from(list(IntInstruction)),
)
@settings(max_examples=150)
def test_stack_roundtrip_property(stack, instruction):
    hdr = IntHeader(2, len(stack), 8 - len(stack), instruction)
    hdr2, stack2 = decode_stack(encode_stack(hdr, stack))
    assert hdr2 == hdr
    assert stack2 == stack
