"""Tests for the flow database and its polling semantics."""

import pytest

from repro.core.database import FlowDatabase, PredictionEntry
from repro.features.flow_table import FlowTable

KEY_A = (1, 2, 3, 4, 6)
KEY_B = (9, 2, 3, 4, 6)


def feed(db, key, n, t0=0):
    """Push n packets of a flow into the table + update log."""
    for i in range(n):
        db.flows.update(key, t0 + i, t0 + i, 100, 6)
        db.register_update(key, t0 + i, 1000 + i)


class TestPolling:
    def test_updates_returned_once(self):
        db = FlowDatabase()
        feed(db, KEY_A, 3)
        first = db.poll_updates()
        assert len(first) == 3
        assert db.poll_updates() == []

    def test_default_predicts_new_flows(self):
        """One-packet flows must be predictable (Table VI consistency)."""
        db = FlowDatabase()
        feed(db, KEY_A, 1)
        assert len(db.poll_updates()) == 1

    def test_skip_new_flows_withholds_single_packet(self):
        db = FlowDatabase(skip_new_flows=True)
        feed(db, KEY_A, 1)
        assert db.poll_updates() == []
        assert db.pending_updates == 1
        # second packet releases the queued updates
        feed(db, KEY_A, 1, t0=10)
        assert len(db.poll_updates()) == 2

    def test_limit_requeues_remainder(self):
        db = FlowDatabase()
        feed(db, KEY_A, 5)
        out = db.poll_updates(limit=2)
        assert len(out) == 2
        assert db.pending_updates == 3
        assert len(db.poll_updates()) == 3

    def test_oldest_first_within_flow(self):
        db = FlowDatabase()
        feed(db, KEY_A, 3)
        out = db.poll_updates()
        stamps = [ts for _, ts, _, _ in out]
        assert stamps == sorted(stamps)

    def test_evicted_flow_updates_dropped(self):
        table = FlowTable(max_flows=1)
        db = FlowDatabase(table)
        feed(db, KEY_A, 1)
        feed(db, KEY_B, 1)  # evicts KEY_A
        out = db.poll_updates()
        assert [k for k, _, _, _ in out] == [KEY_B]

    def test_fast_poll_equivalent_results(self):
        slow = FlowDatabase(fast_poll=False)
        fast = FlowDatabase(fast_poll=True)
        for db in (slow, fast):
            feed(db, KEY_A, 2)
            feed(db, KEY_B, 3)
        assert sorted(slow.poll_updates()) == sorted(fast.poll_updates())

    def test_scan_cost_tracks_table_size(self):
        """The paper-faithful poll walks all resident records."""
        db = FlowDatabase(fast_poll=False)
        for i in range(50):
            feed(db, (i, 2, 3, 4, 6), 1)
        db.poll_updates()
        assert db.records_scanned == 50
        db.poll_updates()
        assert db.records_scanned == 100  # scans again even with nothing dirty

    def test_fast_poll_skips_scan(self):
        db = FlowDatabase(fast_poll=True)
        for i in range(50):
            feed(db, (i, 2, 3, 4, 6), 1)
        db.poll_updates()
        assert db.records_scanned == 0


class TestPredictionLog:
    def test_latency_definition(self):
        entry = PredictionEntry(
            key=KEY_A, ts_registered_ns=0, wall_registered_ns=100,
            wall_predicted_ns=350, label=1, votes=(1, 1, 0), final_decision=1,
        )
        assert entry.latency_ns == 250

    def test_store_and_read_back(self):
        db = FlowDatabase()
        e = PredictionEntry(KEY_A, 0, 10, 30, 0, (0, 0, 0), 0)
        db.store_prediction(e)
        assert db.latencies_ns() == [20]
