"""Tests for the microburst detector (prior-work [8] functionality)."""

import numpy as np
import pytest

from repro.analysis.microburst import Microburst, detect_microbursts, occupancy_series
from repro.int_telemetry import REPORT_DTYPE

MS = 1_000_000


def capture(spikes, span_ms=100, base_occ=0):
    """Records at 10 µs spacing; ``spikes`` = [(start_ms, end_ms, occ)]."""
    n = span_ms * 100
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.arange(n, dtype=np.int64) * 10_000
    rec["ts_report"] = ts
    rec["queue_occupancy"] = base_occ
    for start, end, occ in spikes:
        mask = (ts >= start * MS) & (ts < end * MS)
        rec["queue_occupancy"][mask] = occ
    return rec


class TestOccupancySeries:
    def test_empty(self):
        starts, peaks, counts = occupancy_series(np.empty(0, dtype=REPORT_DTYPE), MS)
        assert starts.size == 0

    def test_peaks_per_window(self):
        rec = capture([(5, 6, 20)], span_ms=10)
        starts, peaks, counts = occupancy_series(rec, MS)
        assert peaks[5] == 20
        assert peaks[0] == 0
        assert counts.sum() == rec.shape[0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            occupancy_series(np.empty(0, dtype=REPORT_DTYPE), 0)


class TestDetectMicrobursts:
    def test_quiet_capture(self):
        rec = capture([], span_ms=20)
        assert detect_microbursts(rec, threshold=5) == []

    def test_single_burst(self):
        rec = capture([(10, 13, 25)], span_ms=50)
        bursts = detect_microbursts(rec, threshold=10)
        assert len(bursts) == 1
        b = bursts[0]
        assert b.start_ns == 10 * MS
        assert b.duration_ns == 3 * MS
        assert b.peak_occupancy == 25

    def test_two_separate_bursts(self):
        rec = capture([(5, 7, 15), (30, 31, 40)], span_ms=50)
        bursts = detect_microbursts(rec, threshold=10)
        assert len(bursts) == 2
        assert bursts[0].start_ns < bursts[1].start_ns
        assert bursts[1].peak_occupancy == 40

    def test_sustained_congestion_excluded(self):
        rec = capture([(5, 95, 30)], span_ms=120)
        bursts = detect_microbursts(rec, threshold=10, max_duration_ns=50 * MS)
        assert bursts == []

    def test_threshold_respected(self):
        rec = capture([(5, 6, 7)], span_ms=20)
        assert detect_microbursts(rec, threshold=8) == []
        assert len(detect_microbursts(rec, threshold=7)) == 1

    def test_burst_at_capture_edges(self):
        rec = capture([(0, 2, 20), (18, 20, 20)], span_ms=20)
        bursts = detect_microbursts(rec, threshold=10)
        assert len(bursts) == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_microbursts(np.empty(0, dtype=REPORT_DTYPE), threshold=0)

    def test_flood_produces_queue_events_end_to_end(self):
        """A flood through a tight bottleneck must register bursts."""
        from repro.dataplane import Packet, Protocol, Topology
        from repro.int_telemetry import IntCollector, IntSink, IntSource, IntTransit
        from repro.traffic import Replayer, syn_flood

        topo = Topology()
        client = topo.add_host("c", "10.0.0.1")
        server = topo.add_host("s", "10.0.0.2")
        sw = topo.add_switch("sw", 1)
        # 2 Mbps bottleneck: a 3000 pps flood of 40 B SYNs (~1 Mbps wire
        # incl. overhead) bursts the queue
        topo.connect_host_to_switch(client, sw, 1, 1e9)
        topo.connect_host_to_switch(server, sw, 2, 2e6, capacity_pkts=512)
        sw.add_route(server.ip, 2)
        sw.set_default_route(1)
        col = IntCollector()
        IntSource().attach(sw)
        IntTransit().attach(sw)
        IntSink(col).attach(sw)
        flood = syn_flood(server.ip, 80, 0, 500 * MS, rate_pps=3000,
                          backscatter_fraction=0.0, seed=0)
        Replayer(topo, {"in": (sw, 1)}).replay(flood)
        bursts = detect_microbursts(col.to_records(), threshold=4,
                                    max_duration_ns=10**9)
        assert len(bursts) >= 1
        assert max(b.peak_occupancy for b in bursts) >= 4
