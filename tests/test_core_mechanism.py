"""Integration tests: the assembled automated detection mechanism."""

import numpy as np
import pytest

from repro.core import (
    AutomatedDDoSDetector,
    LatencyTracker,
    PredictionModule,
    TrainedBundle,
    pretrain,
    score_by_type,
)
from repro.features import feature_names
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier, StandardScaler
from repro.traffic.trace import AttackType

NAMES = feature_names("int")


def synthetic_records(n_flows=30, pkts_per_flow=6, attack=False, t0=0):
    """REPORT_DTYPE records: benign = large slow packets, attack = tiny
    fast ones — trivially separable so tests focus on plumbing."""
    rows = []
    t = t0
    for f in range(n_flows):
        sport = 1000 + f
        for p in range(pkts_per_flow):
            t += 50_000 if attack else 2_000_000
            length = 64 if attack else 1200
            src = 0x01000000 + f if attack else 0xAC100000 + f
            rows.append((t, src, 0x0A0A0050, sport, 80, 6, 2, length,
                         t % 2**32, t % 2**32, 0, 500, 3))
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, row in enumerate(rows):
        rec[i] = row
    return rec


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    from repro.features import extract_features
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=0),
            "gnb": lambda: GaussianNB(),
        },
    )


class TestPredictionModule:
    def test_votes_shape(self, bundle):
        pm = PredictionModule(bundle.scaler, bundle.models, bundle.feature_names)
        votes = pm.predict_one(np.zeros(len(NAMES)))
        assert votes.shape == (2,)
        assert set(votes.tolist()) <= {0, 1}

    def test_batch_matches_single(self, bundle):
        pm = PredictionModule(bundle.scaler, bundle.models, bundle.feature_names)
        rng = np.random.default_rng(0)
        X = rng.normal(500, 100, size=(5, len(NAMES)))
        batch = pm.predict_batch(X)
        singles = np.vstack([pm.predict_one(x) for x in X])
        assert np.array_equal(batch, singles)

    def test_schema_mismatch_rejected(self, bundle):
        with pytest.raises(ValueError):
            PredictionModule(bundle.scaler, bundle.models, ["just_one"])

    def test_empty_panel_rejected(self, bundle):
        with pytest.raises(ValueError):
            PredictionModule(bundle.scaler, {}, bundle.feature_names)


class TestBundlePersistence:
    def test_save_load_roundtrip(self, bundle, tmp_path):
        path = tmp_path / "bundle.pkl"
        bundle.save(path)
        loaded = TrainedBundle.load(path)
        assert loaded.feature_names == bundle.feature_names
        rng = np.random.default_rng(1)
        X = rng.normal(500, 100, size=(8, len(NAMES)))
        a = PredictionModule(bundle.scaler, bundle.models, bundle.feature_names)
        b = PredictionModule(loaded.scaler, loaded.models, loaded.feature_names)
        assert np.array_equal(a.predict_batch(X), b.predict_batch(X))


class TestDetectorStream:
    def test_every_update_predicted(self, bundle):
        det = AutomatedDDoSDetector(bundle)
        records = synthetic_records(n_flows=10, pkts_per_flow=4)
        db = det.run_stream(records, poll_every=8, cycle_budget=16)
        assert len(db.predictions) == len(records)

    def test_benign_stream_classified_benign(self, bundle):
        det = AutomatedDDoSDetector(bundle)
        db = det.run_stream(synthetic_records(n_flows=10, pkts_per_flow=6))
        decisions = [e.final_decision for e in db.predictions
                     if e.final_decision is not None]
        assert np.mean(decisions) < 0.1

    def test_attack_stream_classified_attack(self, bundle):
        det = AutomatedDDoSDetector(bundle)
        db = det.run_stream(
            synthetic_records(n_flows=10, pkts_per_flow=6, attack=True)
        )
        decisions = [e.final_decision for e in db.predictions
                     if e.final_decision is not None]
        assert np.mean(decisions) > 0.9

    def test_strict_window_defers_decisions(self, bundle):
        det = AutomatedDDoSDetector(bundle, emit_partial=False)
        records = synthetic_records(n_flows=5, pkts_per_flow=2)
        db = det.run_stream(records)
        # every flow has 2 updates < window 3 → no final decisions
        assert all(e.final_decision is None for e in db.predictions)

    def test_latencies_positive(self, bundle):
        det = AutomatedDDoSDetector(bundle)
        db = det.run_stream(synthetic_records(n_flows=5, pkts_per_flow=3))
        assert all(lat >= 0 for lat in db.latencies_ns())

    def test_skip_new_flows_defers_until_second_packet(self, bundle):
        """Creation updates are withheld while a flow is new, then
        released once the second packet arrives — so multi-packet flows
        still see every update predicted, but one-packet flows never do."""
        det = AutomatedDDoSDetector(bundle, skip_new_flows=True)
        records = synthetic_records(n_flows=4, pkts_per_flow=3)
        db = det.run_stream(records)
        assert len(db.predictions) == 4 * 3

        det1 = AutomatedDDoSDetector(bundle, skip_new_flows=True)
        singles = synthetic_records(n_flows=4, pkts_per_flow=1)
        db1 = det1.run_stream(singles)
        assert len(db1.predictions) == 0  # one-packet flows never predicted

    def test_invalid_stream_params(self, bundle):
        det = AutomatedDDoSDetector(bundle)
        with pytest.raises(ValueError):
            det.run_stream(synthetic_records(), poll_every=0)

    def test_unknown_source_rejected(self, bundle):
        with pytest.raises(ValueError):
            AutomatedDDoSDetector(bundle, source="netflow")


class TestScoring:
    def test_score_by_type(self, bundle):
        det = AutomatedDDoSDetector(bundle)
        records = synthetic_records(n_flows=6, pkts_per_flow=4, attack=True)
        db = det.run_stream(records)
        rows = score_by_type(
            db, lambda key: (1, int(AttackType.SYN_FLOOD))
        )
        assert "SYN Flood" in rows
        row = rows["SYN Flood"]
        assert row["predicted"] == row["misclassified"] + round(
            row["accuracy"] * row["predicted"]
        )
        assert row["avg_time_s"] >= 0


class TestLatencyTracker:
    def test_summary(self):
        lt = LatencyTracker()
        for v in (10, 20, 30):
            lt.record("Benign", v * 10**6)
        s = lt.summary("Benign")
        assert s["count"] == 3
        assert s["avg_s"] == pytest.approx(0.02)
        assert s["max_s"] == pytest.approx(0.03)

    def test_percentile_max(self):
        lt = LatencyTracker()
        for v in range(1, 101):
            lt.record("Benign", v * 10**6)
        s = lt.summary("Benign", percentile_max=50.0)
        assert s["max_s"] == pytest.approx(0.0505, rel=0.05)

    def test_missing_category(self):
        with pytest.raises(KeyError):
            LatencyTracker().summary("nope")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().record("x", -1)
