"""Batch-vs-scalar equivalence: the vectorized hot path must be
*bit-identical* to the paper-faithful scalar pipeline.

The batched mode exists purely for throughput — every observable
artifact (flow-record contents, Welford states, LRU order, pending-
update order, votes, sliding-window decisions, counters, and — under a
deterministic injected clock — even the wall stamps inside every stored
:class:`PredictionEntry`) must match the scalar path exactly.  These
tests replay identical telemetry through both modes and compare
everything, clean and under the PR 1 chaos schedule.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.prediction import PredictionUnavailableError
from repro.features import extract_features
from repro.features.batch import group_by_flow
from repro.features.flow_table import FlowTable
from repro.features.keys import canonical_flow_key, canonical_key_arrays
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.chaos import ChaosSchedule

# ---------------------------------------------------------------------------
# shared fixtures
# ---------------------------------------------------------------------------


def synthetic_records(n_flows=30, pkts_per_flow=6, attack=False, t0=0):
    rows = []
    t = t0
    for f in range(n_flows):
        sport = 1000 + f
        for _ in range(pkts_per_flow):
            t += 50_000 if attack else 2_000_000
            length = 64 if attack else 1200
            src = 0x01000000 + f if attack else 0xAC100000 + f
            rows.append((t, src, 0x0A0A0050, sport, 80, 6, 2, length,
                         t % 2**32, t % 2**32, 0, 500, 3))
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, row in enumerate(rows):
        rec[i] = row
    return rec


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    # RF + GNB panel: threshold/elementwise models whose batched
    # prediction is bit-identical to per-row prediction.
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=0),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(7).permutation(len(records))]


def counter_clock():
    c = itertools.count()
    return lambda: next(c)


def run_detector(bundle, stream, batched, chaos=None, fast_poll=False,
                 poll_every=37, cycle_budget=50, **kwargs):
    det = AutomatedDDoSDetector(
        bundle,
        fast_poll=fast_poll,
        clock=counter_clock(),
        chaos=chaos,
        chaos_seed=123,
        **kwargs,
    )
    db = det.run_stream(
        stream, poll_every=poll_every, cycle_budget=cycle_budget, batched=batched
    )
    return det, db


def assert_tables_equal(a: FlowTable, b: FlowTable) -> None:
    items_a, items_b = list(a.items()), list(b.items())
    assert [k for k, _ in items_a] == [k for k, _ in items_b]  # incl. LRU order
    for (_, ra), (_, rb) in zip(items_a, items_b):
        assert ra.feature_row() == rb.feature_row()
        assert ra.size_stats.state() == rb.size_stats.state()
        assert ra.iat_stats.state() == rb.iat_stats.state()
        assert ra.occ_stats.state() == rb.occ_stats.state()
        assert (ra.created_ns, ra.updated_ns, ra.n_packets, ra.total_bytes,
                ra.duration_s, ra.updates) == \
               (rb.created_ns, rb.updated_ns, rb.n_packets, rb.total_bytes,
                rb.duration_s, rb.updates)
    assert (a.created, a.evicted) == (b.created, b.evicted)


# ---------------------------------------------------------------------------
# end-to-end replay equivalence
# ---------------------------------------------------------------------------

CHAOS = ChaosSchedule(
    drop_rate=0.05, burst_p=0.02, burst_r=0.3, burst_loss=0.8,
    duplicate_rate=0.03, reorder_rate=0.04, reorder_depth=3,
    corrupt_rate=0.02,
)


class TestRunStreamEquivalence:
    @pytest.mark.parametrize("fast_poll", [False, True])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    def test_full_replay_identical(self, bundle, stream, chaos, fast_poll):
        det_s, db_s = run_detector(bundle, stream, False, chaos, fast_poll)
        det_b, db_b = run_detector(bundle, stream, True, chaos, fast_poll)
        # Every stored entry — key, votes, label, windowed decision, and
        # (under the counter clock) both wall stamps — must be equal.
        assert db_s.predictions == db_b.predictions
        assert len(db_s.predictions) > 0
        assert_tables_equal(db_s.flows, db_b.flows)
        stats_s, stats_b = det_s.stats(), det_b.stats()
        # The paper-faithful poll scan is the one counter the batched
        # mode legitimately shares (same polls, same resident flows).
        assert stats_s == stats_b

    def test_counters_track_replay(self, bundle, stream):
        det_b, db = run_detector(bundle, stream, True)
        stats = det_b.stats()
        assert stats["reports_consumed"] == stream.shape[0]
        assert stats["packets_processed"] == stream.shape[0]
        assert stats["updates_registered"] == stream.shape[0]
        assert stats["predictions_stored"] == len(db.predictions)

    def test_max_flows_pressure_identical(self, bundle, stream):
        # Tight table cap forces the batched ingest onto its scalar
        # eviction fallback mid-run; results must still match.
        _, db_s = run_detector(bundle, stream, False, max_flows=7)
        det_b, db_b = run_detector(bundle, stream, True, max_flows=7)
        assert db_s.predictions == db_b.predictions
        assert_tables_equal(db_s.flows, db_b.flows)
        assert det_b.db.flows.evicted > 0

    def test_sflow_source_identical(self, bundle, stream):
        from repro.sflow import SAMPLE_DTYPE

        samples = np.zeros(stream.shape[0], dtype=SAMPLE_DTYPE)
        for name in ("src_ip", "dst_ip", "src_port", "dst_port",
                     "protocol", "length"):
            samples[name] = stream[name]
        samples["ts_collector"] = stream["ts_report"]
        samples["ts_sample"] = stream["ts_report"] % 2**32
        det_s = AutomatedDDoSDetector(bundle, source="sflow", clock=counter_clock())
        db_s = det_s.run_stream(samples, poll_every=37, cycle_budget=50,
                                batched=False)
        det_b = AutomatedDDoSDetector(bundle, source="sflow", clock=counter_clock())
        db_b = det_b.run_stream(samples, poll_every=37, cycle_budget=50,
                                batched=True)
        assert db_s.predictions == db_b.predictions
        assert_tables_equal(db_s.flows, db_b.flows)


# ---------------------------------------------------------------------------
# batched dispatch resilience semantics
# ---------------------------------------------------------------------------


class TestBatchedDispatchResilience:
    def _fed_detector(self, bundle, n_records=130):
        det = AutomatedDDoSDetector(
            bundle, fast_poll=True, clock=counter_clock(), batched=True
        )
        records = synthetic_records(n_flows=n_records, pkts_per_flow=1)
        det.collection.feed_batch(records)
        return det, n_records

    def test_deadline_sheds_before_dispatch(self, bundle):
        det, n = self._fed_detector(bundle)
        det.central.deadline_ns = 0  # counter clock: poll alone exceeds it
        assert det.central.cycle(max_updates=None) == n
        stats = det.central.stats()
        assert stats["updates_shed"] == n
        assert stats["updates_dispatched"] == 0
        assert stats["deadline_hits"] == 1

    def test_deadline_sheds_between_chunks(self, bundle):
        det, n = self._fed_detector(bundle)
        chunk = det.central.BATCH_SHED_CHUNK
        # The scatter loop reads the clock once per update; a budget of
        # chunk+1 ticks admits exactly one chunk, then sheds the rest.
        det.central.deadline_ns = chunk + 1
        assert det.central.cycle(max_updates=None) == n
        stats = det.central.stats()
        assert stats["updates_dispatched"] == chunk
        assert stats["updates_shed"] == n - chunk
        assert stats["deadline_hits"] == 1
        assert len(det.db.predictions) == chunk

    def test_prediction_unavailable_sheds_batch(self, bundle):
        det, n = self._fed_detector(bundle)

        def boom(X):
            raise PredictionUnavailableError("all members quarantined")

        det.prediction.predict_batch = boom
        assert det.central.cycle(max_updates=None) == n
        stats = det.central.stats()
        assert stats["updates_shed"] == n
        assert det.watchdog.snapshot()["prediction"] == "FAILED"

    def test_evicted_flows_skipped(self, bundle):
        # Eviction *between* poll and dispatch (the poll itself already
        # drops pending updates of flows evicted earlier).
        det, n = self._fed_detector(bundle)
        updates = det.db.poll_updates()
        for key in {u[0] for u in updates[:3]}:
            del det.db.flows._flows[key]  # simulate flood-pressure eviction
        det.central._dispatch_batched(updates, None, 0)
        stats = det.central.stats()
        assert stats["skipped_evicted"] == 3
        assert stats["updates_dispatched"] == n - 3
        assert len(det.db.predictions) == n - 3


# ---------------------------------------------------------------------------
# FlowTable.update_batch property tests
# ---------------------------------------------------------------------------


def _random_records(rng: np.random.Generator, n: int) -> np.ndarray:
    """Records drawn from tiny endpoint pools, so one batch is dense
    with duplicate keys (and both flow directions of the same key)."""
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    rec["src_ip"] = rng.integers(1, 5, n)
    rec["dst_ip"] = rng.integers(1, 5, n)
    rec["src_port"] = rng.integers(1, 4, n)
    rec["dst_port"] = rng.integers(1, 4, n)
    rec["protocol"] = rng.choice([6, 17], n)
    rec["ts_report"] = np.cumsum(rng.integers(1, 2**31, n))
    rec["ingress_ts"] = rec["ts_report"] % 2**32
    rec["length"] = rng.integers(40, 1500, n)
    rec["queue_occupancy"] = rng.integers(0, 1000, n)
    rec["hop_latency"] = rng.integers(0, 10**6, n)
    return rec


def _scalar_table(records, max_flows=None):
    table = FlowTable(max_flows=max_flows)
    for i in range(records.shape[0]):
        r = records[i]
        key = canonical_flow_key(
            int(r["src_ip"]), int(r["dst_ip"]),
            int(r["src_port"]), int(r["dst_port"]), int(r["protocol"]),
        )
        table.update(key, int(r["ts_report"]), int(r["ingress_ts"]),
                     float(r["length"]), int(r["protocol"]),
                     float(r["queue_occupancy"]), float(r["hop_latency"]))
    return table


def _batched_table(records, cuts, max_flows=None):
    table = FlowTable(max_flows=max_flows)
    bounds = [0] + sorted(cuts) + [records.shape[0]]
    for a, b in zip(bounds[:-1], bounds[1:]):
        chunk = records[a:b]
        if chunk.shape[0] == 0:
            continue
        batch = group_by_flow(*canonical_key_arrays(chunk))
        table.update_batch(
            batch,
            chunk["ts_report"].astype(np.int64),
            chunk["ingress_ts"].astype(np.int64),
            chunk["length"].astype(np.float64),
            chunk["protocol"].astype(np.int64),
            chunk["queue_occupancy"].astype(np.float64),
            chunk["hop_latency"].astype(np.float64),
        )
    return table


class TestUpdateBatchProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 80),
        n_cuts=st.integers(0, 5),
    )
    def test_duplicate_keys_in_one_batch(self, seed, n, n_cuts):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, n)
        cuts = rng.integers(0, n + 1, n_cuts).tolist()
        assert_tables_equal(
            _scalar_table(records), _batched_table(records, cuts)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 80),
        max_flows=st.integers(1, 5),
    )
    def test_max_flows_eviction_mid_batch(self, seed, n, max_flows):
        rng = np.random.default_rng(seed)
        records = _random_records(rng, n)
        cuts = rng.integers(0, n + 1, 2).tolist()
        assert_tables_equal(
            _scalar_table(records, max_flows),
            _batched_table(records, cuts, max_flows),
        )

    def test_single_flow_repeated_in_batch(self):
        rng = np.random.default_rng(0)
        records = _random_records(rng, 32)
        for name in ("src_ip", "dst_ip", "src_port", "dst_port", "protocol"):
            records[name] = records[name][0]
        assert_tables_equal(
            _scalar_table(records), _batched_table(records, [])
        )

    def test_empty_and_singleton_slices(self):
        rng = np.random.default_rng(1)
        records = _random_records(rng, 10)
        cuts = [0, 1, 1, 5, 10]
        assert_tables_equal(
            _scalar_table(records), _batched_table(records, cuts)
        )


class TestExpireIdleFastScan:
    def test_stops_at_first_fresh_record(self):
        table = FlowTable(idle_timeout_ns=100)
        for f in range(10):
            table.update((f,), now_ns=f * 50, ingress_ts32=0,
                         length=100.0, protocol=6)
        # cutoff = 450 - 100 = 350: flows updated at 0..300 are stale.
        assert table.expire_idle(450) == 7
        assert [k for k, _ in table.items()] == [(7,), (8,), (9,)]
        assert table.expired == 7
        assert table.expire_idle(450) == 0

    def test_noop_without_timeout(self):
        table = FlowTable()
        table.update((1,), now_ns=0, ingress_ts32=0, length=1.0, protocol=6)
        assert table.expire_idle(10**12) == 0
        assert len(table) == 1
