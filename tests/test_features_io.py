"""Tests for feature-matrix CSV/NPZ interchange."""

import csv

import numpy as np
import pytest

from repro.features import extract_features
from repro.features.io import from_npz, to_csv, to_npz
from repro.int_telemetry import REPORT_DTYPE


@pytest.fixture(scope="module")
def fm_and_labels():
    rng = np.random.default_rng(0)
    n = 200
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.sort(rng.integers(0, 10**9, n))
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["src_ip"] = rng.integers(1, 20, n)
    rec["dst_ip"] = 9
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = rng.integers(40, 1500, n)
    fm = extract_features(rec, source="int")
    labels = rng.integers(0, 2, n)
    return fm, labels


class TestCsv:
    def test_header_and_rows(self, fm_and_labels, tmp_path):
        fm, labels = fm_and_labels
        path = to_csv(fm, tmp_path / "f.csv", labels=labels)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][: len(fm.names)] == fm.names
        assert rows[0][-1] == "label"
        assert len(rows) == len(fm) + 1
        # values round-trip through repr exactly
        assert float(rows[1][0]) == fm.X[0, 0]

    def test_without_bookkeeping(self, fm_and_labels, tmp_path):
        fm, _ = fm_and_labels
        path = to_csv(fm, tmp_path / "f.csv", include_bookkeeping=False)
        with open(path) as fh:
            header = next(csv.reader(fh))
        assert header == fm.names

    def test_label_mismatch(self, fm_and_labels, tmp_path):
        fm, labels = fm_and_labels
        with pytest.raises(ValueError):
            to_csv(fm, tmp_path / "f.csv", labels=labels[:-1])


class TestNpz:
    def test_lossless_roundtrip(self, fm_and_labels, tmp_path):
        fm, labels = fm_and_labels
        path = to_npz(fm, tmp_path / "f.npz", labels=labels)
        back, back_labels = from_npz(path)
        assert np.array_equal(back.X, fm.X)
        assert back.names == fm.names
        assert np.array_equal(back.flow_index, fm.flow_index)
        assert np.array_equal(back.is_first, fm.is_first)
        assert back.n_flows == fm.n_flows
        assert np.array_equal(back_labels, labels)

    def test_without_labels(self, fm_and_labels, tmp_path):
        fm, _ = fm_and_labels
        path = to_npz(fm, tmp_path / "f.npz")
        _, labels = from_npz(path)
        assert labels is None

    def test_label_mismatch(self, fm_and_labels, tmp_path):
        fm, labels = fm_and_labels
        with pytest.raises(ValueError):
            to_npz(fm, tmp_path / "f.npz", labels=labels[:3])
