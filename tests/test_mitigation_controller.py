"""Tests for the fault-tolerant mitigation control plane (PR 6).

Covers the pieces the closed loop's determinism contract rests on:

* token-bucket admit sequences are a pure function of the (injected)
  timestamp stream — including across a snapshot/restore boundary
  (hypothesis property);
* TTL expiry sweeps drop exactly the expired entries, in canonical
  order, regardless of install/sweep interleaving (hypothesis
  property) — the ``_next_expiry_ns`` fast-path bail must never skip a
  due expiry;
* the compiled rule predicates are semantically identical to the
  reference :meth:`ThresholdRule.matches` walk;
* controller state survives a checkpoint round-trip bit-identically,
  and tampered/truncated blobs fail loudly (:class:`CheckpointError`);
* the operator command API works mid-run, and non-canonical operations
  (reads, unblock) never perturb the action-log digest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CheckpointError,
    restore_detector,
    snapshot_detector,
    unpack_state,
)
from repro.core.database import PredictionEntry
from repro.mitigation import (
    BlockTable,
    MitigationConfig,
    MitigationController,
    RulesEngine,
    ThresholdRule,
    action_log_digest,
)
from repro.mitigation.controller import PERMANENT

SEC = 1_000_000_000
SERVER = 0x0A0A0050


# ---------------------------------------------------------------------------
# harness: a minimal detector stand-in for the flow tier
# ---------------------------------------------------------------------------
class StubRecord:
    def __init__(self, n_packets, total_bytes, duration_s):
        self.n_packets = n_packets
        self.total_bytes = total_bytes
        self.duration_s = duration_s


class StubFlows(dict):
    def get(self, key, default=None):  # FlowTable API
        return dict.get(self, key, default)


class StubDB:
    def __init__(self):
        self.predictions = []
        self.flows = StubFlows()


class StubDetector:
    def __init__(self):
        self.db = StubDB()
        self.mitigation = None


def flow_key(i, port=80):
    attacker = 0xC0000000 + i
    return (SERVER, attacker, port, 40000 + i, 6)


def entry(key, ts, seq, decision=1):
    return PredictionEntry(
        key=key, ts_registered_ns=ts, wall_registered_ns=0,
        wall_predicted_ns=1, label=decision, votes=(decision,),
        final_decision=decision, seq=seq,
    )


def hot_flow(det, i, ts, seq, pps=1000.0, packets=100):
    """Register a flagged hot flow + its prediction entry on the stub."""
    key = flow_key(i)
    det.db.flows[key] = StubRecord(packets, packets * 64, packets / pps)
    det.db.predictions.append(entry(key, ts, seq))
    return key


ONE_RULE = MitigationConfig(
    rules=(
        ThresholdRule(name="hot", pps_above=100.0, packets_above=3,
                      combine="and", scope="flow", action="block",
                      ttl_ns=30 * SEC),
    ),
)


# ---------------------------------------------------------------------------
# token-bucket determinism (hypothesis)
# ---------------------------------------------------------------------------
class TestTokenBucketDeterminism:
    @staticmethod
    def _admits(table, target, offsets_ns):
        e = table.entries[target]
        return [table.admit(e, e.last_ns + off) for off in offsets_ns]

    @given(
        rate=st.floats(min_value=1.0, max_value=10_000.0),
        burst=st.floats(min_value=1.0, max_value=100.0),
        gaps=st.lists(st.integers(min_value=0, max_value=10**9),
                      min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_admit_sequence_pure_in_time(self, rate, burst, gaps):
        """Two tables fed the identical timestamp stream admit
        identically — no hidden wall-clock or ordering state."""
        seqs = []
        for _ in range(2):
            t = BlockTable(burst=burst)
            t.install(("source", 7), "r", "rate_limit", rate, 0, None, 0)
            e = t.entries[("source", 7)]
            now, out = 0, []
            for g in gaps:
                now += g
                out.append(t.admit(e, now))
            seqs.append(out)
        assert seqs[0] == seqs[1]

    @given(
        rate=st.floats(min_value=1.0, max_value=10_000.0),
        burst=st.floats(min_value=1.0, max_value=100.0),
        gaps=st.lists(st.integers(min_value=0, max_value=10**9),
                      min_size=2, max_size=60),
        cut=st.integers(min_value=1, max_value=59),
    )
    @settings(max_examples=60, deadline=None)
    def test_admit_sequence_survives_snapshot_restore(
        self, rate, burst, gaps, cut
    ):
        """Snapshot/restore mid-stream must not perturb a single admit
        decision (token level and last-update stamp both ride the
        checkpoint)."""
        cut = min(cut, len(gaps) - 1)

        def drive(table, gap_seq, start_now):
            e = table.entries[("source", 7)]
            now, out = start_now, []
            for g in gap_seq:
                now += g
                out.append(table.admit(e, now))
            return out, now

        straight = BlockTable(burst=burst)
        straight.install(("source", 7), "r", "rate_limit", rate, 0, None, 0)
        want, _ = drive(straight, gaps, 0)

        first = BlockTable(burst=burst)
        first.install(("source", 7), "r", "rate_limit", rate, 0, None, 0)
        head, now = drive(first, gaps[:cut], 0)
        resumed = BlockTable()
        resumed.state_restore(first.state_snapshot())
        tail, _ = drive(resumed, gaps[cut:], now)
        assert head + tail == want


# ---------------------------------------------------------------------------
# TTL expiry ordering (hypothesis)
# ---------------------------------------------------------------------------
class TestExpiryOrdering:
    @given(
        installs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),    # target id
                st.integers(min_value=0, max_value=10**6),  # install time
                st.one_of(st.none(),
                          st.integers(min_value=1, max_value=10**6)),  # ttl
            ),
            min_size=1, max_size=40,
        ),
        sweeps=st.lists(st.integers(min_value=0, max_value=3 * 10**6),
                        min_size=1, max_size=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_sweep_exact_and_canonically_ordered(self, installs, sweeps):
        """After any install/sweep interleaving: every returned entry
        was expired, no expired entry survives (the fast-path bail may
        only defer work to the sweep that's due, never drop it), and
        returned entries come in (expires_ns, target) order."""
        table = BlockTable()
        installs = sorted(installs, key=lambda t: t[1])
        now = 0
        for tid, ts, ttl in installs:
            now = max(now, ts)
            table.install(("source", tid), "r", "block", 0.0, now, ttl, 0)
        for sweep_at in sorted(sweeps):
            now = max(now, sweep_at)
            dead = table.expire(now)
            assert all(e.expired(now) for e in dead)
            keys = [(e.expires_ns or 0, e.target) for e in dead]
            assert keys == sorted(keys)
            assert not any(
                e.expired(now) for e in table.entries.values()
            ), "fast-path bail skipped a due expiry"

    def test_refresh_extends_never_shortens(self):
        table = BlockTable()
        t = ("source", 1)
        table.install(t, "r", "block", 0.0, 0, 100, 0)
        assert table.install(t, "r", "block", 0.0, 10, 50, 1) == "refreshed"
        assert table.entries[t].expires_ns == 100  # 10+50=60 < 100: kept
        table.install(t, "r", "block", 0.0, 20, 500, 2)
        assert table.entries[t].expires_ns == 520
        table.install(t, "r", "block", 0.0, 30, None, 3)
        assert table.entries[t].expires_ns is None  # upgraded to permanent


# ---------------------------------------------------------------------------
# compiled predicates == reference semantics (hypothesis)
# ---------------------------------------------------------------------------
_rule_st = st.builds(
    ThresholdRule,
    name=st.just("r"),
    pps_above=st.one_of(st.none(), st.floats(0, 10**6)),
    bps_above=st.one_of(st.none(), st.floats(0, 10**9)),
    packets_above=st.one_of(st.none(), st.integers(0, 10**6)),
    combine=st.sampled_from(["and", "or"]),
    enabled=st.booleans(),
)


class TestCompiledRules:
    @given(
        rule=_rule_st,
        pps=st.floats(0, 2 * 10**6),
        bps=st.floats(0, 2 * 10**9),
        packets=st.integers(0, 2 * 10**6),
    )
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_reference(self, rule, pps, bps, packets):
        engine = RulesEngine([rule])
        assert (
            [r.name for r in engine.evaluate(pps, bps, packets)]
            == (["r"] if rule.matches(pps, bps, packets) else [])
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RulesEngine([ThresholdRule(name="a", pps_above=1.0)] * 2)


# ---------------------------------------------------------------------------
# flow tier semantics on the stub detector
# ---------------------------------------------------------------------------
class TestFlowTier:
    def loop(self, config=ONE_RULE):
        det = StubDetector()
        ctrl = MitigationController(config).attach_to(det)
        return det, ctrl

    def test_flagged_hot_flow_blocked_once(self):
        det, ctrl = self.loop()
        key = hot_flow(det, 1, ts=0, seq=0)
        det.db.predictions.append(entry(key, 1000, 1))  # same flow again
        ctrl.on_cycle()
        installs = [a for a in ctrl.action_log if a.verdict == "installed"]
        assert len(installs) == 1
        assert installs[0].target == ("flow",) + key
        assert ctrl.blocks.lookup(("flow",) + key, 1000) is not None

    def test_reemit_after_ttl_as_refreshed(self):
        det, ctrl = self.loop()
        key = hot_flow(det, 1, ts=0, seq=0)
        ctrl.on_cycle()
        det.db.predictions.append(entry(key, 31 * SEC, 1))
        ctrl.on_cycle()
        assert [a.verdict for a in ctrl.action_log] == [
            "installed", "refreshed"
        ]

    def test_whitelist_precedence(self):
        cfg = MitigationConfig(
            rules=ONE_RULE.rules, whitelist=((0xC0000000, 8),)
        )
        det, ctrl = self.loop(cfg)
        hot_flow(det, 1, ts=0, seq=0)
        ctrl.on_cycle()
        (act,) = ctrl.action_log
        assert act.verdict == "whitelisted"
        assert ctrl.blocks.entries == {}  # logged, never installed
        assert ctrl.counters["whitelist_hits"] == 1

    def test_permanent_rule_never_reemits(self):
        cfg = MitigationConfig(rules=(
            ThresholdRule(name="perm", pps_above=100.0, scope="source",
                          action="block", ttl_ns=None),
        ))
        det, ctrl = self.loop(cfg)
        key = hot_flow(det, 1, ts=0, seq=0)
        det.db.predictions.append(entry(key, 10**15, 1))
        ctrl.on_cycle()
        assert len(ctrl.action_log) == 1
        assert ctrl.action_log[0].ttl_ns == PERMANENT
        assert ctrl.blocks.entries[("source", 0xC0000001)].expires_ns is None

    def test_benign_and_undecided_ignored(self):
        det, ctrl = self.loop()
        key = flow_key(1)
        det.db.flows[key] = StubRecord(100, 6400, 0.1)
        det.db.predictions.append(entry(key, 0, 0, decision=0))
        det.db.predictions.append(
            PredictionEntry(key, 0, 0, 1, 1, (1,), None, seq=1)
        )
        ctrl.on_cycle()
        assert ctrl.action_log == []

    def test_chunked_on_cycle_equals_one_shot(self):
        """The flow cursor makes cycle granularity irrelevant: any
        split of the prediction log over on_cycle() calls yields the
        identical canonical log."""
        def build(chunks):
            det, ctrl = self.loop()
            seq = 0
            for chunk in chunks:
                for i in chunk:
                    hot_flow(det, i, ts=seq * 1000, seq=seq)
                    seq += 1
                ctrl.on_cycle()
            return ctrl.action_log_digest()

        flows = [1, 2, 1, 3, 2, 1, 4]
        assert (
            build([flows])
            == build([flows[:2], flows[2:5], flows[5:]])
            == build([[f] for f in flows])
        )


# ---------------------------------------------------------------------------
# checkpoint round-trip
# ---------------------------------------------------------------------------
class TestControllerCheckpoint:
    def populated(self):
        det = StubDetector()
        ctrl = MitigationController(ONE_RULE).attach_to(det)
        for i in range(6):
            hot_flow(det, i % 3, ts=i * SEC, seq=i)
        ctrl.on_cycle()
        ctrl.command({"op": "set_config", "config": {"episode_rate_pps": 40.0}})
        return det, ctrl

    def test_round_trip_bit_identical(self):
        det, ctrl = self.populated()
        restored = MitigationController()
        restored.state_restore(ctrl.state_snapshot())
        assert restored.action_log_digest() == ctrl.action_log_digest()
        assert restored.counters == ctrl.counters
        assert restored.config.to_dict() == ctrl.config.to_dict()
        assert restored.blocks.state_snapshot() == ctrl.blocks.state_snapshot()
        assert restored._flow_pos == ctrl._flow_pos
        assert restored._flow_emits == ctrl._flow_emits

    def test_divergence_after_restore_is_identical(self):
        """The restored controller continues the run exactly like the
        original would have."""
        det, ctrl = self.populated()
        restored = MitigationController()
        restored.state_restore(ctrl.state_snapshot())
        restored.attach_to(det)
        for i in range(6, 12):
            hot_flow(det, i % 4, ts=i * 40 * SEC, seq=i)
        ctrl.on_cycle()
        restored.on_cycle()
        assert restored.action_log_digest() == ctrl.action_log_digest()


class TestDetectorCheckpointWithMitigation:
    @pytest.fixture()
    def running_detector(self):
        from repro.core import AutomatedDDoSDetector, pretrain
        from repro.features import extract_features
        from repro.ml import GaussianNB

        from .test_batch_equivalence import synthetic_records

        ben = synthetic_records(attack=False)
        atk = synthetic_records(attack=True, t0=10**9)
        records = np.concatenate([ben, atk])
        fm = extract_features(records, source="int")
        y = np.array([0] * len(ben) + [1] * len(atk))
        bundle = pretrain(fm.X, y, fm.names,
                          panel={"gnb": lambda: GaussianNB()})

        def build():
            det = AutomatedDDoSDetector(bundle, batched=True)
            ctrl = MitigationController().attach_to(det)
            return det, ctrl

        det, ctrl = build()
        det.run_stream(records, poll_every=64)
        assert ctrl.counters["rules_installed"] > 0
        return det, ctrl, build

    def test_mitigation_rides_the_blob(self, running_detector):
        det, ctrl, build = running_detector
        blob = snapshot_detector(det, cycles_done=5, last_seq=42)
        assert unpack_state(blob)["mitigation"]["flow_pos"] == ctrl._flow_pos
        det2, ctrl2 = build()
        restore_detector(det2, blob)
        assert ctrl2.action_log_digest() == ctrl.action_log_digest()
        assert ctrl2.counters == ctrl.counters
        assert ctrl2._flow_pos == ctrl._flow_pos
        assert (
            ctrl2.blocks.state_snapshot() == ctrl.blocks.state_snapshot()
        )

    def test_tampered_blob_fails_loudly(self, running_detector):
        det, _, build = running_detector
        blob = bytearray(snapshot_detector(det, 5, 42))
        blob[len(blob) // 2] ^= 0xFF
        det2, _ = build()
        with pytest.raises(CheckpointError):
            restore_detector(det2, bytes(blob))

    def test_truncated_blob_fails_loudly(self, running_detector):
        det, _, build = running_detector
        blob = snapshot_detector(det, 5, 42)
        det2, _ = build()
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CheckpointError):
                restore_detector(det2, blob[:cut])


# ---------------------------------------------------------------------------
# operator command API
# ---------------------------------------------------------------------------
class TestCommandAPI:
    def loop(self):
        det = StubDetector()
        return det, MitigationController(ONE_RULE).attach_to(det)

    def test_get_and_set_config(self):
        _, ctrl = self.loop()
        got = ctrl.command({"op": "get_config"})
        assert got["ok"] and got["result"]["rules"][0]["name"] == "hot"
        out = ctrl.command({
            "op": "set_config",
            "config": {"episode_rate_pps": 25.0,
                       "whitelist": [[0x0A000000, 8]]},
        })
        assert out["ok"] and out["result"]["episode_rate_pps"] == 25.0
        assert ctrl.whitelist.covers(0x0A000001)
        assert ctrl.counters["config_updates"] == 1

    def test_invalid_config_rejected_atomically(self):
        _, ctrl = self.loop()
        before = ctrl.config.to_dict()
        out = ctrl.command({
            "op": "set_config",
            "config": {"rules": [{"name": "bad", "combine": "xor"}]},
        })
        assert not out["ok"] and "combine" in out["error"]
        assert ctrl.config.to_dict() == before

    def test_stats_blocked_unblock_activity(self):
        det, ctrl = self.loop()
        key = hot_flow(det, 1, ts=0, seq=0)
        ctrl.on_cycle()
        stats = ctrl.command({"op": "stats"})["result"]
        assert stats["counters"]["rules_installed"] == 1
        assert stats["active_blocks"] == 1
        blocked = ctrl.command({"op": "blocked_list"})["result"]
        assert [tuple(b["target"]) for b in blocked] == [("flow",) + key]
        out = ctrl.command({"op": "unblock", "target": ("flow",) + key})
        assert out["ok"] and out["result"]["removed"]
        assert ctrl.command({"op": "blocked_list"})["result"] == []
        feed = ctrl.command({"op": "activity_feed", "limit": 10})["result"]
        assert [e["kind"] for e in feed] == ["installed", "unblock"]

    def test_unknown_op(self):
        _, ctrl = self.loop()
        out = ctrl.command({"op": "reboot"})
        assert not out["ok"] and "reboot" in out["error"]

    def test_noncanonical_commands_never_move_the_digest(self):
        """Reads and unblocks mid-run must not perturb the canonical
        log: verdicts depend only on the flow's emit history, never on
        current BlockTable contents."""
        def run(with_commands):
            det, ctrl = self.loop()
            seq = 0
            for round_ in range(4):
                for i in range(3):
                    hot_flow(det, i, ts=(seq + 1) * 20 * SEC, seq=seq)
                    seq += 1
                ctrl.on_cycle()
                if with_commands:
                    ctrl.command({"op": "stats"})
                    ctrl.command({"op": "blocked_list"})
                    ctrl.command({"op": "activity_feed"})
                    ctrl.command(
                        {"op": "unblock",
                         "target": ("flow",) + flow_key(round_ % 3)}
                    )
            return ctrl.action_log_digest()

        assert run(False) == run(True)

    def test_set_config_steers_the_flow_tier(self):
        det, ctrl = self.loop()
        hot_flow(det, 1, ts=0, seq=0)
        ctrl.on_cycle()
        ctrl.command({
            "op": "set_config",
            "config": {"rules": [
                {**ONE_RULE.rules[0].to_dict(), "enabled": False}
            ]},
        })
        hot_flow(det, 2, ts=SEC, seq=1)
        ctrl.on_cycle()
        assert len(ctrl.action_log) == 1  # disabled rule stopped firing


# ---------------------------------------------------------------------------
# stream-level determinism of the full controller (hypothesis)
# ---------------------------------------------------------------------------
class TestControllerDeterminism:
    @given(
        flows=st.lists(st.integers(min_value=0, max_value=5),
                       min_size=1, max_size=40),
        boundaries=st.sets(st.integers(min_value=1, max_value=39)),
    )
    @settings(max_examples=50, deadline=None)
    def test_digest_invariant_to_cycle_boundaries(self, flows, boundaries):
        def run(cuts):
            det = StubDetector()
            ctrl = MitigationController(ONE_RULE).attach_to(det)
            for seq, i in enumerate(flows):
                hot_flow(det, i, ts=seq * 7 * SEC, seq=seq)
                if seq in cuts:
                    ctrl.on_cycle()
            ctrl.finish_run(det.db)
            return ctrl.action_log_digest()

        assert run(set()) == run(boundaries)

    def test_digest_orders_canonically(self):
        """Same actions in different append order → same digest."""
        det = StubDetector()
        ctrl = MitigationController(ONE_RULE).attach_to(det)
        for seq, i in enumerate([3, 1, 2]):
            hot_flow(det, i, ts=seq * 1000, seq=seq)
        ctrl.on_cycle()
        shuffled = list(reversed(ctrl.action_log))
        assert action_log_digest(shuffled) == ctrl.action_log_digest()
