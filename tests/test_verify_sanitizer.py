"""Runtime sanitizer test suite (``REPRO_SANITIZE=1``).

Unit-level coverage of the observer shims in ``repro.verify.sanitizer``
(each must accept the legal protocol and raise ``SanitizerError`` on
the model's seeded-bug shapes), plus the integration contract on
``SharedRing``: sanitizer-off attaches nothing (zero-overhead path),
sanitizer-on instruments normal use silently and catches out-of-band
cursor stores.  The full kill-recovery chaos suite runs under
``REPRO_SANITIZE=1`` in the CI ``verify`` job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.buffers import SharedRing
from repro.verify.sanitizer import (
    ENV_VAR,
    CheckpointObserver,
    FrameSeqChecker,
    RingObserver,
    SanitizerError,
    assert_recover,
    sanitize_enabled,
)


# ---------------------------------------------------------------------------
# RingObserver
# ---------------------------------------------------------------------------
def test_ring_observer_accepts_legal_publish_release_interleaving():
    obs = RingObserver("fixture", capacity=4)
    obs.on_publish(0, 2, 0)   # tail 0 -> 2
    obs.on_release(0, 1, 2)   # head 0 -> 1
    obs.on_publish(2, 2, 1)   # tail 2 -> 4 (ring holds 3 <= 4)
    obs.on_release(1, 3, 4)   # head 1 -> 4, drained
    assert obs.publishes == 2 and obs.releases == 2


def test_ring_observer_catches_out_of_band_tail_store():
    obs = RingObserver("fixture", capacity=4)
    obs.on_publish(0, 1, 0)
    with pytest.raises(SanitizerError, match="CONC006"):
        obs.on_publish(5, 1, 0)  # tail jumped 1 -> 5 outside push


def test_ring_observer_catches_out_of_band_head_store():
    obs = RingObserver("fixture", capacity=4)
    obs.on_release(0, 1, 2)
    with pytest.raises(SanitizerError, match="CONC006"):
        obs.on_release(3, 1, 4)  # head jumped 1 -> 3 outside pop


def test_ring_observer_catches_publish_before_read():
    obs = RingObserver("fixture", capacity=8)
    # consumer releases past the tail it observed: it read slots the
    # producer never published — the live torn-frame bug
    with pytest.raises(SanitizerError, match="publish-before-read"):
        obs.on_release(0, 3, 2)


def test_ring_observer_catches_consumer_past_published_tail():
    obs = RingObserver("fixture", capacity=8)
    with pytest.raises(SanitizerError, match="past"):
        obs.on_publish(0, 1, 5)  # head sample 5 > new tail 1


def test_ring_observer_catches_capacity_overrun_and_peer_regression():
    obs = RingObserver("fixture", capacity=2)
    with pytest.raises(SanitizerError, match="capacity"):
        obs.on_publish(0, 3, 0)
    obs = RingObserver("fixture", capacity=8)
    obs.on_publish(0, 2, 1)
    with pytest.raises(SanitizerError, match="regressed"):
        obs.on_publish(2, 1, 0)  # peer head went 1 -> 0


def test_ring_observer_reset_rearms_for_new_epoch():
    obs = RingObserver("fixture", capacity=4)
    obs.on_publish(0, 3, 0)
    with pytest.raises(SanitizerError):
        obs.on_reset(owner=False)
    obs.on_reset(owner=True)
    obs.on_publish(0, 1, 0)  # cursors legitimately restart at zero
    assert obs.resets == 2


# ---------------------------------------------------------------------------
# FrameSeqChecker / CheckpointObserver / assert_recover
# ---------------------------------------------------------------------------
def test_frame_seq_checker_accepts_increasing_and_rejects_duplicates():
    chk = FrameSeqChecker(shard=0)
    chk.on_frame([0, 1, 2])
    with pytest.raises(SanitizerError, match="exactly-once"):
        chk.on_frame([2])
    assert chk.checked == 4


def test_frame_seq_checker_restore_floor_blocks_refolded_seqs():
    chk = FrameSeqChecker(shard=1, floor=5)
    with pytest.raises(SanitizerError, match="already folded"):
        chk.on_frame([5])
    chk.on_restore(7)
    chk.on_frame([8, 9])
    with pytest.raises(SanitizerError):
        chk.on_frame([7])


def test_checkpoint_observer_monotone_packs_and_restores():
    obs = CheckpointObserver()
    obs.on_pack(1)
    obs.on_pack(2)
    with pytest.raises(SanitizerError, match="regressed"):
        obs.on_pack(2)
    obs.on_restore(2)  # restoring the snapshot we packed is fine
    with pytest.raises(SanitizerError, match="behind"):
        obs.on_restore(1)


def test_assert_recover_accepts_the_model_recover_shape():
    assert_recover(
        shard=0, ckpt_cycle=2, kept_block_tags=[0, 1, 2],
        replay_tags=[2, 3], worker_alive=False,
    )


def test_assert_recover_rejects_seeded_bug_shapes():
    with pytest.raises(SanitizerError, match="double-count"):
        assert_recover(0, 2, kept_block_tags=[1, 3],
                       replay_tags=[2], worker_alive=False)
    with pytest.raises(SanitizerError, match="already folded"):
        assert_recover(0, 2, kept_block_tags=[1],
                       replay_tags=[1, 2], worker_alive=False)
    with pytest.raises(SanitizerError, match="alive"):
        assert_recover(0, 2, kept_block_tags=[],
                       replay_tags=[], worker_alive=True)


# ---------------------------------------------------------------------------
# SharedRing integration: the env-gated hook
# ---------------------------------------------------------------------------
DT = np.dtype([("a", np.int64), ("b", np.float64)])


def _block(n: int) -> np.ndarray:
    out = np.zeros(n, dtype=DT)
    out["a"] = np.arange(n)
    return out


def _roundtrip(ring: SharedRing) -> None:
    ring.push(_block(3))
    got = ring.pop()
    assert len(got) == 3 and got["a"].tolist() == [0, 1, 2]


def test_ring_without_sanitizer_attaches_no_observer(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert not sanitize_enabled()
    ring = SharedRing(DT, capacity=8)
    try:
        assert ring._observer is None
        _roundtrip(ring)
    finally:
        ring.close()
        ring.unlink()


def test_ring_with_sanitizer_observes_normal_use_silently(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    assert sanitize_enabled()
    ring = SharedRing(DT, capacity=8)
    try:
        assert ring._observer is not None
        _roundtrip(ring)
        assert ring._observer.publishes == 1
        assert ring._observer.releases == 1
        ring.reset()
        assert ring._observer.resets == 1
        _roundtrip(ring)  # post-reset epoch is clean too
    finally:
        ring.close()
        ring.unlink()


def test_ring_with_sanitizer_catches_out_of_band_cursor_store(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    ring = SharedRing(DT, capacity=8)
    try:
        _roundtrip(ring)
        # the CONC006 bug, live: a cursor store outside SharedRing
        # methods (legal here — this test module is outside repro.*)
        ring._tail[0] = 5
        with pytest.raises(SanitizerError, match="outside push"):
            ring.push(_block(1))
    finally:
        ring.close()
        ring.unlink()
