"""Tests for the four classifiers (tree/forest, GNB, KNN, MLP)."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    MLPClassifier,
    RandomForestClassifier,
)


def blobs(n=400, d=4, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n, d))
    X1 = rng.normal(gap, 1.0, size=(n, d))
    X = np.vstack([X0, X1])
    y = np.array([0] * n + [1] * n)
    perm = rng.permutation(2 * n)
    return X[perm], y[perm]


ALL_MODELS = [
    ("gnb", lambda: GaussianNB()),
    ("knn", lambda: KNeighborsClassifier(5)),
    ("tree", lambda: DecisionTreeClassifier(max_depth=8, seed=0)),
    ("forest", lambda: RandomForestClassifier(n_estimators=10, max_depth=8, seed=0)),
    ("mlp", lambda: MLPClassifier((16, 8), max_epochs=25, seed=0)),
]


@pytest.mark.parametrize("name,factory", ALL_MODELS)
class TestCommonBehaviour:
    def test_separable_blobs(self, name, factory):
        X, y = blobs(gap=3.0)
        model = factory().fit(X, y)
        assert model.score(X, y) > 0.97

    def test_proba_rows_sum_to_one(self, name, factory):
        X, y = blobs()
        proba = factory().fit(X, y).predict_proba(X[:50])
        assert proba.shape == (50, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_predict_matches_argmax_proba(self, name, factory):
        X, y = blobs()
        m = factory().fit(X, y)
        proba = m.predict_proba(X[:100])
        assert np.array_equal(m.predict(X[:100]), np.argmax(proba, axis=1))

    def test_unfitted_raises(self, name, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((2, 4)))

    def test_feature_count_mismatch(self, name, factory):
        X, y = blobs(d=4)
        m = factory().fit(X, y)
        with pytest.raises(ValueError):
            m.predict(np.zeros((3, 5)))

    def test_nonstandard_labels(self, name, factory):
        X, y = blobs(gap=3.0)
        m = factory().fit(X, np.where(y == 1, 7, -3))
        preds = m.predict(X)
        assert set(np.unique(preds)) <= {-3, 7}

    def test_single_class_rejected(self, name, factory):
        X, _ = blobs(n=20)
        with pytest.raises(ValueError):
            factory().fit(X, np.zeros(X.shape[0]))

    def test_nan_rejected(self, name, factory):
        X, y = blobs(n=20)
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            factory().fit(X, y)


class TestDecisionTree:
    def test_pure_leaf_on_clean_split(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        t = DecisionTreeClassifier().fit(X, y)
        assert t.score(X, y) == 1.0
        assert t.node_count == 3  # one split, two leaves
        assert t.depth == 1

    def test_max_depth_respected(self):
        X, y = blobs(n=300, gap=0.5)
        t = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        assert t.depth <= 3

    def test_min_samples_leaf(self):
        X, y = blobs(n=100)
        t = DecisionTreeClassifier(min_samples_leaf=20, seed=0).fit(X, y)
        leaf_mask = t.feature_ == -1
        assert (t.n_node_samples_[leaf_mask] >= 20).all()

    def test_importance_concentrates_on_informative_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(800, 5))
        y = (X[:, 2] > 0).astype(int)
        t = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y)
        assert np.argmax(t.feature_importances_) == 2
        assert t.feature_importances_.sum() == pytest.approx(1.0)

    def test_constant_features_yield_stump(self):
        X = np.ones((30, 3))
        y = np.array([0, 1] * 15)
        t = DecisionTreeClassifier().fit(X, y)
        assert t.node_count == 1  # no valid split exists

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestRandomForest:
    def test_beats_single_tree_on_noise(self):
        rng = np.random.default_rng(3)
        n = 1500
        X = rng.normal(size=(n, 10))
        y = ((X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(0, 0.8, n)) > 0).astype(int)
        Xte = rng.normal(size=(600, 10))
        yte = ((Xte[:, 0] + Xte[:, 1] * Xte[:, 2]) > 0).astype(int)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        forest = RandomForestClassifier(n_estimators=25, seed=0).fit(X, y)
        assert forest.score(Xte, yte) >= tree.score(Xte, yte) - 0.01

    def test_importances_normalized(self):
        X, y = blobs()
        rf = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        assert rf.feature_importances_.sum() == pytest.approx(1.0)
        assert (rf.feature_importances_ >= 0).all()

    def test_max_samples_fraction_and_int(self):
        X, y = blobs(n=200)
        RandomForestClassifier(n_estimators=3, max_samples=0.5, seed=0).fit(X, y)
        RandomForestClassifier(n_estimators=3, max_samples=50, seed=0).fit(X, y)

    def test_deterministic_with_seed(self):
        X, y = blobs()
        a = RandomForestClassifier(n_estimators=5, seed=9).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, seed=9).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        X, y = blobs(n=20)
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=2, max_samples=1.5).fit(X, y)


class TestGaussianNB:
    def test_recovers_generating_means(self):
        X, y = blobs(n=3000, gap=2.0, seed=5)
        g = GaussianNB().fit(X, y)
        assert np.allclose(g.theta_[0], 0.0, atol=0.1)
        assert np.allclose(g.theta_[1], 2.0, atol=0.1)

    def test_priors_match_class_balance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 80 + [1] * 20)
        g = GaussianNB().fit(X, y)
        assert g.class_prior_.tolist() == [0.8, 0.2]

    def test_constant_feature_does_not_crash(self):
        X = np.column_stack([np.ones(40), np.r_[np.zeros(20), np.ones(20)]])
        y = np.array([0] * 20 + [1] * 20)
        g = GaussianNB().fit(X, y)
        assert g.score(X, y) == 1.0


class TestKNN:
    def test_memorizes_training_points_k1(self):
        X, y = blobs(n=100)
        k = KNeighborsClassifier(1).fit(X, y)
        assert k.score(X, y) == 1.0

    def test_n_neighbors_gt_samples_rejected(self):
        X, y = blobs(n=2)
        with pytest.raises(ValueError):
            KNeighborsClassifier(100).fit(X, y)

    def test_distance_weighting(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([0, 0, 1, 1, 1])
        k = KNeighborsClassifier(5, weights="distance").fit(X, y)
        # query near class 0: uniform voting would say 1 (3 of 5),
        # distance weighting must say 0
        assert k.predict(np.array([[0.05]]))[0] == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(5, weights="bogus")


class TestMLP:
    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(1200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        m = MLPClassifier((16, 8), max_epochs=80, seed=0).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_loss_decreases(self):
        X, y = blobs()
        m = MLPClassifier((8,), max_epochs=30, seed=0).fit(X, y)
        assert m.loss_curve_[-1] < m.loss_curve_[0]

    def test_paper_architectures_accepted(self):
        X, y = blobs(n=100)
        MLPClassifier((32, 16, 8), max_epochs=2, seed=0).fit(X, y)
        MLPClassifier((64, 32, 16), max_epochs=2, seed=0).fit(X, y)

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(c * 3, 0.5, size=(150, 3)) for c in range(3)])
        y = np.repeat([0, 1, 2], 150)
        m = MLPClassifier((16,), max_epochs=40, seed=0).fit(X, y)
        assert m.score(X, y) > 0.95
        assert m.predict_proba(X[:5]).shape == (5, 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MLPClassifier(())
        with pytest.raises(ValueError):
            MLPClassifier((8,), learning_rate=0)
