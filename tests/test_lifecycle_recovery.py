"""Hot-swap equivalence and kill-recovery for the model lifecycle (PR 10).

The tentpole invariant: attaching a :class:`LifecycleManager` that
retrains and *hot-swaps* the model panel mid-run must keep the sharded
runtime byte-deterministic.  The merged prediction log of a sharded run
(shards 1/2/4, clean and under the PR-1 data-chaos layer, with and
without seeded worker kills) must be byte-identical to the unfaulted
single-process batched run carrying the same lifecycle — including runs
where the kill lands on the very cycle the swap barrier is broadcast.

Swap *atomicity* is asserted through the epoch column stamped on every
prediction: sorted by ``(seq, key)``, panel epochs must never decrease
(a decrease would mean some shard served a cycle with the outgoing
panel after the barrier), and the profile must start at 0 and end >= 1
(the swap really happened mid-run, not at the edges).

A lifecycle that never swaps must be a *zero-cost observer*: its digest
equals the no-lifecycle run bit for bit.
"""

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.lifecycle import LifecycleConfig, LifecycleManager
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.chaos import ChaosSchedule
from repro.resilience.harness import _epoch_profile, _parity_labels
from repro.resilience.process_chaos import ProcessChaos

from .test_batch_equivalence import synthetic_records

POLL_EVERY = 37
CYCLE_BUDGET = 256
RETRAIN_SEED = 42
#: With check_every=2 the forced swap at check 3 lands at slice 6 of 9
#: — safely mid-run for the 360-record synthetic stream.
FORCE_AT_CHECK = 3
SWAP_CYCLE = 6

CHAOS = ChaosSchedule(
    drop_rate=0.05, burst_p=0.02, burst_r=0.3, burst_loss=0.8,
    duplicate_rate=0.03, reorder_rate=0.04, reorder_depth=3,
    corrupt_rate=0.02,
)


@pytest.fixture(scope="module")
def bundle():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(ben) + [1] * len(atk))
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=6, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


@pytest.fixture(scope="module")
def stream():
    ben = synthetic_records(attack=False)
    atk = synthetic_records(attack=True, t0=10**9)
    records = np.concatenate([ben, atk])
    return records[np.random.default_rng(7).permutation(len(records))]


def n_cycles_of(stream):
    return stream.shape[0] // POLL_EVERY


def make_lifecycle(force=True):
    """The kill-suite lifecycle recipe: deterministic forced swap, the
    parity label oracle, holdout gate disabled (swap *mechanics* are
    under test here; the rollback paths have dedicated unit tests)."""
    return LifecycleManager(LifecycleConfig(
        check_every=2,
        min_window_records=32,
        min_retrain_records=64,
        reservoir_windows=6,
        holdout_every=4,
        cooldown_checks=1,
        regression_tolerance=1.0,
        retrain_seed=RETRAIN_SEED,
        label_fn=_parity_labels,
        force_swap_at_check=FORCE_AT_CHECK if force else None,
    ))


def run_life(bundle, stream, chaos=None, shards=None, lifecycle=True,
             force=True, **kw):
    det = AutomatedDDoSDetector(
        bundle, batched=True, chaos=chaos, chaos_seed=123
    )
    mgr = make_lifecycle(force=force).attach_to(det) if lifecycle else None
    db = det.run_stream(
        stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET,
        shards=shards, **kw
    )
    return det, mgr, db


@pytest.fixture(scope="module")
def reference(bundle, stream):
    """Unfaulted single-process lifecycle runs, clean and under chaos."""
    out = {}
    for chaos in (None, CHAOS):
        _, mgr, db = run_life(bundle, stream, chaos=chaos)
        assert mgr.swaps >= 1  # the forced swap really happened
        out[chaos] = {
            "digest": prediction_log_digest(db),
            "events": [e.kind for e in mgr.events],
            "epoch": mgr.epoch,
        }
    return out


def assert_swap_profile(db):
    monotone, mid_run, final = _epoch_profile(db)
    assert monotone, "epoch decreased along seq: mixed-panel cycle"
    assert mid_run, "swap did not land mid-run"
    assert final >= 1
    return final


# ---------------------------------------------------------------------------
# swap equivalence across execution modes
# ---------------------------------------------------------------------------
class TestSwapEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    def test_sharded_swap_digest_identical(
        self, bundle, stream, reference, n_shards, chaos
    ):
        det, mgr, db = run_life(bundle, stream, chaos=chaos, shards=n_shards)
        ref = reference[chaos]
        assert prediction_log_digest(db) == ref["digest"]
        assert [e.kind for e in mgr.events] == ref["events"]
        assert mgr.epoch == ref["epoch"]
        assert_swap_profile(db)
        assert det.supervision_stats["swap_broadcasts"] == mgr.swaps

    def test_swap_is_atomic_in_reference_too(self, bundle, stream):
        _, _, db = run_life(bundle, stream)
        assert_swap_profile(db)

    def test_epoch_rides_prediction_entries(self, bundle, stream):
        _, mgr, db = run_life(bundle, stream)
        epochs = {e.epoch for e in db.predictions}
        assert epochs == set(range(mgr.epoch + 1))

    def test_no_swap_lifecycle_is_zero_cost_observer(self, bundle, stream):
        _, _, db_bare = run_life(bundle, stream, lifecycle=False)
        _, mgr, db_obs = run_life(bundle, stream, force=False)
        assert mgr.swaps == 0
        assert prediction_log_digest(db_obs) == prediction_log_digest(db_bare)
        assert all(e.epoch == 0 for e in db_obs.predictions)

    def test_retrain_jobs_do_not_change_the_panel(self, bundle, stream):
        # Forest tree-chunk parallelism is bit-reproducible: a panel
        # retrained with retrain_jobs=2 must make the exact same
        # predictions as one retrained serially.  (The serialized blob
        # *bytes* may differ — pickle memoizes shared dtype/Generator
        # instances differently depending on whether trees round-tripped
        # through worker pickles — so equivalence is asserted on the
        # epochs produced and the merged prediction digest, which is
        # byte-identical only if every vote of every retrained model
        # matches.)
        _, mgr1, db1 = run_life(bundle, stream)
        det2 = AutomatedDDoSDetector(bundle, batched=True)
        mgr2 = LifecycleManager(LifecycleConfig(
            check_every=2, min_window_records=32, min_retrain_records=64,
            reservoir_windows=6, holdout_every=4, cooldown_checks=1,
            regression_tolerance=1.0, retrain_seed=RETRAIN_SEED,
            label_fn=_parity_labels, force_swap_at_check=FORCE_AT_CHECK,
            retrain_jobs=2,
        )).attach_to(det2)
        db2 = det2.run_stream(
            stream, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET
        )
        assert mgr2.panels.keys() == mgr1.panels.keys()
        assert mgr2.epoch == mgr1.epoch
        assert [e.kind for e in mgr2.events] == [e.kind for e in mgr1.events]
        assert prediction_log_digest(db2) == prediction_log_digest(db1)


# ---------------------------------------------------------------------------
# swap under worker kills
# ---------------------------------------------------------------------------
class TestSwapKillRecovery:
    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("chaos", [None, CHAOS], ids=["clean", "chaos"])
    @pytest.mark.parametrize("mode", ["sigkill", "raise"])
    def test_seeded_kill_with_swap_digest_identical(
        self, bundle, stream, reference, n_shards, chaos, mode
    ):
        plan = ProcessChaos.seeded(
            seed=30_000 + n_shards, n_cycles=n_cycles_of(stream),
            n_shards=n_shards, modes=(mode,),
        )
        assert not plan.is_noop
        det, mgr, db = run_life(
            bundle, stream, chaos=chaos, shards=n_shards,
            process_chaos=plan, checkpoint_every=3,
        )
        ref = reference[chaos]
        assert prediction_log_digest(db) == ref["digest"]
        assert [e.kind for e in mgr.events] == ref["events"]
        assert_swap_profile(db)
        sup = det.supervision_stats
        assert sup["workers_died"] >= 1
        assert sup["workers_respawned"] >= 1
        assert sup["lossy_recoveries"] == 0
        assert sup["swap_broadcasts"] >= 1

    @pytest.mark.parametrize(
        "kill_cycle",
        [SWAP_CYCLE - 1, SWAP_CYCLE, SWAP_CYCLE + 1],
        ids=["before-swap", "at-swap", "after-swap"],
    )
    def test_kill_around_the_swap_broadcast(
        self, bundle, stream, reference, kill_cycle
    ):
        """The hardest alignment: the worker dies at the very CYCLE
        boundary the swap barrier is broadcast on (and one cycle to
        either side).  The respawned worker must recover into the
        correct panel generation — from the checkpointed panel archive
        if its checkpoint post-dates the swap, from the replayed
        FRAME_SWAP if not."""
        plan = ProcessChaos(kills=((kill_cycle, 0, "sigkill"),))
        det, mgr, db = run_life(
            bundle, stream, shards=2, process_chaos=plan, checkpoint_every=3,
        )
        assert prediction_log_digest(db) == reference[None]["digest"]
        assert [e.kind for e in mgr.events] == reference[None]["events"]
        assert_swap_profile(db)
        assert det.supervision_stats["lossy_recoveries"] == 0

    def test_kill_after_swap_with_late_checkpoint_uses_archive(
        self, bundle, stream, reference
    ):
        """checkpoint_every large enough that the victim's last
        checkpoint *pre-dates* the swap: recovery must replay the
        FRAME_SWAP from the replay buffer in stream position."""
        plan = ProcessChaos(kills=((SWAP_CYCLE + 1, 1, "sigkill"),))
        det, mgr, db = run_life(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=100,  # never checkpoints after the swap
        )
        assert prediction_log_digest(db) == reference[None]["digest"]
        assert_swap_profile(db)
        assert det.supervision_stats["lossy_recoveries"] == 0

    def test_hung_worker_recovers_across_the_swap(
        self, bundle, stream, reference
    ):
        plan = ProcessChaos(kills=((SWAP_CYCLE, 1, "hang"),))
        det, mgr, db = run_life(
            bundle, stream, shards=2, process_chaos=plan,
            checkpoint_every=3, heartbeat_timeout_s=2.0,
        )
        assert prediction_log_digest(db) == reference[None]["digest"]
        assert_swap_profile(db)
        sup = det.supervision_stats
        assert sup["workers_died"] >= 1 and sup["lossy_recoveries"] == 0


# ---------------------------------------------------------------------------
# the packaged harness scenario
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestHarnessScenario:
    def test_run_lifecycle_kill_swaps_identically(self):
        from repro.resilience.harness import ResilienceHarness

        harness = ResilienceHarness(profile="tiny", seed=0)
        report = harness.run_lifecycle_kill(shards=2, kill_seed=0)
        assert report.swapped_identically, report.render()
        assert report.epoch_final >= 1
        assert "match" in report.render()
