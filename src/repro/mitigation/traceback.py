"""Attack-source traceback.

Aggregates flagged flow keys into per-source evidence (the "mitigation
module traces the origin of the attack" step of [17]).  Two aggregation
levels:

* per source host — catches scans and SlowLoris, where one real host
  owns many flagged flows;
* per source prefix toward one (dst, port, proto) — catches spoofed
  floods, where every flagged flow has a different (fake) source but
  they share a destination service and usually a spoofing range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["AttackSource", "SourceTracker"]


@dataclass
class AttackSource:
    """Evidence accumulated against one source host."""

    src_ip: int
    flagged_flows: Set[tuple] = field(default_factory=set)
    first_seen_ns: int = 0
    last_seen_ns: int = 0

    @property
    def n_flows(self) -> int:
        return len(self.flagged_flows)


class SourceTracker:
    """Accumulates flagged flows and surfaces actionable aggregates."""

    def __init__(self, prefix_len: int = 8) -> None:
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        self.prefix_len = int(prefix_len)
        self.sources: Dict[int, AttackSource] = {}
        # (dst, dport, proto) -> set of flagged source ips
        self._services: Dict[Tuple[int, int, int], Set[int]] = {}
        self.flows_flagged = 0

    def _prefix_of(self, ip: int) -> int:
        shift = 32 - self.prefix_len
        return (ip >> shift) << shift if shift < 32 else 0

    def flag(self, key: tuple, now_ns: int) -> AttackSource:
        """Record one flagged flow; returns the source's evidence."""
        src, dst, sport, dport, proto = key
        entry = self.sources.get(src)
        if entry is None:
            entry = AttackSource(src_ip=src, first_seen_ns=now_ns)
            self.sources[src] = entry
        if key not in entry.flagged_flows:
            entry.flagged_flows.add(key)
            self.flows_flagged += 1
        entry.last_seen_ns = now_ns
        self._services.setdefault((dst, dport, proto), set()).add(src)
        return entry

    def heavy_sources(self, min_flows: int) -> List[AttackSource]:
        """Hosts with at least ``min_flows`` flagged flows."""
        return [s for s in self.sources.values() if s.n_flows >= min_flows]

    def flooded_services(
        self, min_sources: int
    ) -> List[Tuple[Tuple[int, int, int], Tuple[int, int], int]]:
        """Services hit from many distinct sources (spoofed floods).

        Returns ``[(service, (prefix_base, prefix_len), n_sources)]``
        where the prefix is the covering ``prefix_len`` block of the
        modal spoofing range.
        """
        out = []
        for service, srcs in self._services.items():
            if len(srcs) < min_sources:
                continue
            # modal prefix block among the sources
            buckets: Dict[int, int] = {}
            for ip in srcs:
                p = self._prefix_of(ip)
                buckets[p] = buckets.get(p, 0) + 1
            base = max(buckets, key=buckets.get)
            out.append((service, (base, self.prefix_len), len(srcs)))
        return out

    def forget_service(self, service: Tuple[int, int, int]) -> None:
        """Clear a service's evidence once it has been mitigated."""
        self._services.pop(service, None)
