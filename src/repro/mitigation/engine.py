"""The mitigation engine: detector decisions → installed rules.

Subscribes to the detection mechanism's output (each
:class:`~repro.core.database.PredictionEntry` with a positive final
decision), feeds the source tracker, and escalates per policy:

1. every flagged flow gets an exact-match drop rule immediately;
2. a source accumulating ``host_flow_threshold`` flagged flows earns a
   host-level drop (scan / SlowLoris response);
3. a service flagged from ``spoof_source_threshold`` distinct sources is
   treated as a spoofed flood and earns a prefix-scoped rate limit —
   per-source rules are pointless against random spoofing.

The engine is deliberately decoupled from any switch: it emits rules
into one or more :class:`~repro.mitigation.enforcement.AclTable` sinks,
so the same engine drives a single-switch testbed or every edge of a
topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.database import PredictionEntry

from .enforcement import AclTable
from .rules import FlowRule, RuleGenerator
from .traceback import SourceTracker

__all__ = ["MitigationPolicy", "MitigationEngine"]


@dataclass
class MitigationPolicy:
    """Escalation thresholds and rule parameters."""

    host_flow_threshold: int = 5
    spoof_source_threshold: int = 50
    rule_ttl_ns: int = 60_000_000_000
    flood_rate_pps: float = 100.0
    per_flow_rules: bool = True
    spoof_prefix_len: int = 8


class MitigationEngine:
    """Closes the detect→mitigate loop the paper leaves to future work."""

    def __init__(
        self,
        tables: Iterable[AclTable],
        policy: Optional[MitigationPolicy] = None,
    ) -> None:
        self.tables = list(tables)
        if not self.tables:
            raise ValueError("need at least one ACL table to install into")
        self.policy = policy if policy is not None else MitigationPolicy()
        self.tracker = SourceTracker(prefix_len=self.policy.spoof_prefix_len)
        self.generator = RuleGenerator(
            host_flow_threshold=self.policy.host_flow_threshold,
            spoof_source_threshold=self.policy.spoof_source_threshold,
            rule_ttl_ns=self.policy.rule_ttl_ns,
            flood_rate_pps=self.policy.flood_rate_pps,
        )
        self.rules_emitted: List[FlowRule] = []
        self._host_ruled: set = set()
        self._service_ruled: set = set()

    # ------------------------------------------------------------------
    def _install(self, rule: FlowRule) -> None:
        for table in self.tables:
            table.install(rule)
        self.rules_emitted.append(rule)

    def on_decision(self, entry: PredictionEntry) -> List[FlowRule]:
        """Consume one detector output; returns rules installed for it."""
        if entry.final_decision != 1:
            return []
        now = entry.ts_registered_ns
        key = entry.key
        installed: List[FlowRule] = []

        source = self.tracker.flag(key, now)

        if self.policy.per_flow_rules:
            rule = self.generator.flow_rule(key, now)
            self._install(rule)
            installed.append(rule)

        if (
            source.n_flows >= self.policy.host_flow_threshold
            and source.src_ip not in self._host_ruled
        ):
            rule = self.generator.host_rule(source.src_ip, now, source.n_flows)
            self._install(rule)
            self._host_ruled.add(source.src_ip)
            installed.append(rule)

        for service, prefix, n_src in self.tracker.flooded_services(
            self.policy.spoof_source_threshold
        ):
            if service in self._service_ruled:
                continue
            dst, dport, proto = service
            rule = self.generator.flood_rule(dst, dport, proto, prefix, now, n_src)
            self._install(rule)
            self._service_ruled.add(service)
            installed.append(rule)
        return installed

    def attach_to(self, detector) -> None:
        """Hook into an AutomatedDDoSDetector: every stored prediction
        flows through :meth:`on_decision`."""
        db = detector.db
        original = db.store_prediction

        def wrapped(entry: PredictionEntry) -> None:
            original(entry)
            self.on_decision(entry)

        db.store_prediction = wrapped

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "rules_emitted": len(self.rules_emitted),
            "hosts_blocked": len(self._host_ruled),
            "services_rate_limited": len(self._service_ruled),
            "flows_flagged": self.tracker.flows_flagged,
        }
