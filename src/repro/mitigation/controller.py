"""The fault-tolerant mitigation control plane (closing the loop).

The paper stops at detection; its cited blueprint (Flood Defender [17],
the P4/5G IDS [20]) and the Ryu-style SDN demos stop at "push a rule to
the switch".  What a production loop additionally needs — and what this
module provides on top of the PR-5 supervised sharded runtime — is a
mitigation subsystem whose *state survives process death* and whose
*decisions are reproducible* for any worker count:

* :class:`ThresholdRule` / :class:`RulesEngine` — per-rule PPS/BPS/
  packet-count thresholds with AND/OR predicate combination, temporary
  (auto-expiring) or permanent actions, drop vs token-bucket rate
  limit, flow- or source-scoped;
* :class:`BlockTable` — the durable enforcement state: active blocks
  keyed by canonical target, TTL deadlines, per-entry token buckets
  (time injected — simulation/telemetry timestamps only, never the
  wall clock), idempotent install/refresh, operator unblock;
* :class:`Whitelist` — prefix-based precedence: whitelisted sources are
  never blocked, only counted;
* :class:`MitigationController` — consumes the detector's stored
  predictions (flow tier) and AlertManager episodes (episode tier, via
  :class:`repro.controlplane.bridge.EpisodeBridge`), maintains the
  canonical **action log**, answers the operator JSON command API
  (``get_config`` / ``set_config`` / ``stats`` / ``blocked_list`` /
  ``unblock`` / ``activity_feed``), and snapshots/restores all of it
  through the RPRCKPT1 checkpoint frames.

Determinism contract (the action-log digest)
--------------------------------------------
:func:`action_log_digest` is the mitigation counterpart of
``prediction_log_digest``: SHA-256 over the canonically-ordered
:class:`MitigationAction` records.  It must be byte-identical across
worker counts, clean and under telemetry chaos + worker-kill.  Two
design rules make that hold:

* **flow tier** actions are a pure function of the triggering
  prediction entry plus *flow-local* state (the flow's own record
  metrics and this flow's previous emissions).  Sharding partitions by
  canonical flow key, so flow-local state is always worker-local;
  cross-flow suppression is deliberately absent from the canonical log
  (duplicate same-source actions are emitted and deduplicated
  *idempotently* at the block table instead).
* **episode tier** actions are derived from the globally merged,
  ``(seq, key)``-sorted prediction log at end of run — the identical
  input sequence for every worker count.

Wall-clock never enters: every timestamp in the subsystem is the
telemetry time of the evidence.
"""

from __future__ import annotations

import hashlib
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.database import PredictionEntry

from .enforcement import AclTable
from .rules import FlowRule, RuleAction

#: Canonical prediction-log order (C-speed key for the episode replay).
_ENTRY_ORDER = operator.attrgetter("seq", "key")

__all__ = [
    "ThresholdRule",
    "RulesEngine",
    "Whitelist",
    "BlockEntry",
    "BlockTable",
    "ActivityRing",
    "MitigationAction",
    "MitigationConfig",
    "MitigationController",
    "action_log_digest",
    "build_controller",
]

#: ttl_ns sentinel meaning "permanent" inside action records (None does
#: not survive the structured digest line cleanly).
PERMANENT = -1


# ---------------------------------------------------------------------------
# configuration: threshold rules + whitelist
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ThresholdRule:
    """One configurable detection→action rule.

    Predicates (``pps_above`` / ``bps_above`` / ``packets_above``) test
    the flagged flow's record metrics; ``None`` leaves a predicate out.
    ``combine`` joins the *defined* predicates with AND or OR.  A rule
    with no predicates never fires.

    ``scope`` picks the block target: the exact flow, or the attacking
    source host.  ``ttl_ns=None`` makes the block permanent.
    """

    name: str
    pps_above: Optional[float] = None
    bps_above: Optional[float] = None
    packets_above: Optional[int] = None
    combine: str = "and"
    scope: str = "flow"
    action: str = "block"
    rate_pps: float = 0.0
    ttl_ns: Optional[int] = 60_000_000_000
    enabled: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule needs a name")
        if self.combine not in ("and", "or"):
            raise ValueError(f"combine must be 'and' or 'or': {self.combine!r}")
        if self.scope not in ("flow", "source"):
            raise ValueError(f"scope must be 'flow' or 'source': {self.scope!r}")
        if self.action not in ("block", "rate_limit"):
            raise ValueError(
                f"action must be 'block' or 'rate_limit': {self.action!r}"
            )
        if self.action == "rate_limit" and self.rate_pps <= 0:
            raise ValueError("rate_limit rules need rate_pps > 0")
        if self.ttl_ns is not None and self.ttl_ns <= 0:
            raise ValueError(f"ttl_ns must be positive or None: {self.ttl_ns}")

    def matches(self, pps: float, bps: float, packets: int) -> bool:
        """Evaluate the defined predicates against flow metrics."""
        if not self.enabled:
            return False
        checks: List[bool] = []
        if self.pps_above is not None:
            checks.append(pps > self.pps_above)
        if self.bps_above is not None:
            checks.append(bps > self.bps_above)
        if self.packets_above is not None:
            checks.append(packets > self.packets_above)
        if not checks:
            return False
        return all(checks) if self.combine == "and" else any(checks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "pps_above": self.pps_above,
            "bps_above": self.bps_above,
            "packets_above": self.packets_above,
            "combine": self.combine,
            "scope": self.scope,
            "action": self.action,
            "rate_pps": self.rate_pps,
            "ttl_ns": self.ttl_ns,
            "enabled": self.enabled,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ThresholdRule":
        return cls(**{k: d[k] for k in cls.__dataclass_fields__ if k in d})


class RulesEngine:
    """Ordered evaluation of :class:`ThresholdRule` entries.

    Every enabled matching rule fires (the controller deduplicates per
    flow/rule); rule order only affects the order actions are appended,
    and the canonical digest sorts, so order is cosmetic.
    """

    def __init__(self, rules: Sequence[ThresholdRule]) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.rules: Tuple[ThresholdRule, ...] = tuple(rules)
        # Pre-compile each live rule to a specialized predicate closure
        # — evaluate() runs once per stored prediction, so the generic
        # matches() walk is too slow for the hot path.
        compiled = []
        for r in self.rules:
            fn = self._compile(r)
            if fn is not None:
                compiled.append((r, fn))
        self._compiled: Tuple[Tuple[ThresholdRule, Any], ...] = tuple(compiled)

    @staticmethod
    def _compile(rule: ThresholdRule) -> Optional[Any]:
        """Specialized ``(pps, bps, packets) -> bool`` for one rule, or
        ``None`` if the rule can never match (disabled / no predicates).
        Semantics identical to :meth:`ThresholdRule.matches`."""
        if not rule.enabled:
            return None
        preds = []
        if rule.pps_above is not None:
            t = rule.pps_above
            preds.append(lambda pps, bps, pk, _t=t: pps > _t)
        if rule.bps_above is not None:
            t = rule.bps_above
            preds.append(lambda pps, bps, pk, _t=t: bps > _t)
        if rule.packets_above is not None:
            t = rule.packets_above
            preds.append(lambda pps, bps, pk, _t=t: pk > _t)
        if not preds:
            return None
        if len(preds) == 1:
            return preds[0]
        if rule.combine == "and":
            def all_of(pps, bps, pk, _preds=tuple(preds)):
                for p in _preds:
                    if not p(pps, bps, pk):
                        return False
                return True
            return all_of

        def any_of(pps, bps, pk, _preds=tuple(preds)):
            for p in _preds:
                if p(pps, bps, pk):
                    return True
            return False
        return any_of

    def evaluate(
        self, pps: float, bps: float, packets: int
    ) -> List[ThresholdRule]:
        return [r for r, fn in self._compiled if fn(pps, bps, packets)]


class Whitelist:
    """Source prefixes that must never be blocked.

    Entries are ``(base_ip, prefix_len)``; a covered source still
    generates a (canonical) ``whitelisted`` action so operators see the
    suppressed response, but nothing is installed.
    """

    def __init__(self, entries: Iterable[Tuple[int, int]] = ()) -> None:
        norm: List[Tuple[int, int]] = []
        for base, bits in entries:
            bits = int(bits)
            if not 0 <= bits <= 32:
                raise ValueError(f"prefix length out of range: {bits}")
            mask = 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            norm.append((int(base) & mask, bits))
        self.entries: Tuple[Tuple[int, int], ...] = tuple(norm)

    def covers(self, ip: int) -> bool:
        for base, bits in self.entries:
            mask = 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            if (int(ip) & mask) == base:
                return True
        return False


# ---------------------------------------------------------------------------
# durable block state
# ---------------------------------------------------------------------------
@dataclass
class BlockEntry:
    """One active mitigation target (flow / source / service)."""

    target: Tuple[Any, ...]
    rule: str
    action: str               # "block" | "rate_limit"
    rate_pps: float
    installed_ns: int
    expires_ns: Optional[int]  # None = permanent
    seq: int
    hits: int = 0              # packets that matched (dropped for "block")
    shed: int = 0              # rate-limit rejections
    refreshes: int = 0
    tokens: float = 0.0
    last_ns: int = 0

    def expired(self, now_ns: int) -> bool:
        return self.expires_ns is not None and now_ns >= self.expires_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": list(self.target),
            "rule": self.rule,
            "action": self.action,
            "rate_pps": self.rate_pps,
            "installed_ns": self.installed_ns,
            "expires_ns": self.expires_ns,
            "seq": self.seq,
            "hits": self.hits,
            "shed": self.shed,
            "refreshes": self.refreshes,
        }


class BlockTable:
    """Durable mitigation state: targets → :class:`BlockEntry`.

    Install is **idempotent**: re-installing an active target refreshes
    its expiry (extending, never shortening) instead of duplicating —
    this is what lets the canonical action log carry duplicate
    same-source actions from different shards without the enforcement
    state diverging.

    Token buckets for rate-limit entries are fed exclusively with
    injected timestamps (telemetry/simulation time), so the admit
    sequence is a pure function of the evidence stream.
    """

    def __init__(self, burst: float = 20.0) -> None:
        if burst <= 0:
            raise ValueError(f"burst must be positive: {burst}")
        self.burst = float(burst)
        self.entries: Dict[Tuple[Any, ...], BlockEntry] = {}
        # Lower bound on the earliest TTL deadline (None = no TTL
        # entries).  Lets the per-prediction expiry sweep bail in O(1);
        # it may run stale-low after a refresh/unblock, which only costs
        # an occasional full scan, never a missed expiry.
        self._next_expiry_ns: Optional[int] = None

    def install(
        self,
        target: Tuple[Any, ...],
        rule: str,
        action: str,
        rate_pps: float,
        now_ns: int,
        ttl_ns: Optional[int],
        seq: int,
    ) -> str:
        """Install or refresh; returns ``"installed"`` or ``"refreshed"``."""
        expires = None if ttl_ns is None else now_ns + int(ttl_ns)
        cur = self.entries.get(target)
        if cur is not None and not cur.expired(now_ns):
            cur.refreshes += 1
            if cur.expires_ns is not None:
                if expires is None:
                    cur.expires_ns = None
                else:
                    cur.expires_ns = max(cur.expires_ns, expires)
            return "refreshed"
        self.entries[target] = BlockEntry(
            target=target, rule=rule, action=action, rate_pps=float(rate_pps),
            installed_ns=int(now_ns), expires_ns=expires, seq=int(seq),
            tokens=self.burst, last_ns=int(now_ns),
        )
        if expires is not None and (
            self._next_expiry_ns is None or expires < self._next_expiry_ns
        ):
            self._next_expiry_ns = expires
        return "installed"

    def lookup(
        self, target: Tuple[Any, ...], now_ns: int
    ) -> Optional[BlockEntry]:
        e = self.entries.get(target)
        if e is None or e.expired(now_ns):
            return None
        return e

    def admit(self, entry: BlockEntry, now_ns: int) -> bool:
        """Token-bucket decision for a rate-limit entry (pure in time)."""
        entry.tokens = min(
            self.burst,
            entry.tokens + (now_ns - entry.last_ns) * 1e-9 * entry.rate_pps,
        )
        entry.last_ns = int(now_ns)
        if entry.tokens >= 1.0:
            entry.tokens -= 1.0
            return True
        return False

    def expire(self, now_ns: int) -> List[BlockEntry]:
        """Drop TTL-expired entries; returns them in canonical order."""
        if self._next_expiry_ns is None or now_ns < self._next_expiry_ns:
            return []
        dead = sorted(
            (e for e in self.entries.values() if e.expired(now_ns)),
            key=lambda e: (e.expires_ns or 0, e.target),
        )
        for e in dead:
            del self.entries[e.target]
        live = [
            e.expires_ns for e in self.entries.values()
            if e.expires_ns is not None
        ]
        self._next_expiry_ns = min(live) if live else None
        return dead

    def unblock(self, target: Tuple[Any, ...]) -> bool:
        return self.entries.pop(target, None) is not None

    def active(self, now_ns: int) -> List[BlockEntry]:
        return sorted(
            (e for e in self.entries.values() if not e.expired(now_ns)),
            key=lambda e: e.target,
        )

    # -- checkpoint support -------------------------------------------
    def state_snapshot(self) -> dict:
        return {
            "burst": self.burst,
            "entries": [
                {**e.to_dict(), "tokens": e.tokens, "last_ns": e.last_ns,
                 "target": e.target}
                for e in self.entries.values()
            ],
        }

    def state_restore(self, state: dict) -> None:
        self.burst = float(state["burst"])
        self.entries = {}
        for d in state["entries"]:
            target = tuple(d["target"])
            self.entries[target] = BlockEntry(
                target=target, rule=d["rule"], action=d["action"],
                rate_pps=d["rate_pps"], installed_ns=d["installed_ns"],
                expires_ns=d["expires_ns"], seq=d["seq"], hits=d["hits"],
                shed=d["shed"], refreshes=d["refreshes"],
                tokens=d["tokens"], last_ns=d["last_ns"],
            )
        live = [
            e.expires_ns for e in self.entries.values()
            if e.expires_ns is not None
        ]
        self._next_expiry_ns = min(live) if live else None


class ActivityRing:
    """Bounded operator-visible event feed (oldest evicted first)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self.events: List[Dict[str, Any]] = []
        self.evicted = 0

    def push(self, ts_ns: int, kind: str, detail: str) -> None:
        self.events.append({"ts_ns": int(ts_ns), "kind": kind, "detail": detail})
        overflow = len(self.events) - self.capacity
        if overflow > 0:
            del self.events[:overflow]
            self.evicted += overflow

    def tail(self, limit: int) -> List[Dict[str, Any]]:
        limit = max(1, int(limit))
        return [dict(e) for e in self.events[-limit:]]

    def state_snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "events": [dict(e) for e in self.events],
            "evicted": self.evicted,
        }

    def state_restore(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self.events = [dict(e) for e in state["events"]]
        self.evicted = int(state["evicted"])


# ---------------------------------------------------------------------------
# the canonical action log
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MitigationAction:
    """One canonical mitigation decision (the digest's unit).

    ``seq`` is the triggering prediction entry's global stream sequence
    number and ``ts_ns`` its telemetry timestamp — both are properties
    of the delivered stream, never of the executing process.
    """

    seq: int
    ts_ns: int
    tier: str      # "flow" | "episode"
    rule: str
    verdict: str   # "installed" | "refreshed" | "whitelisted"
    action: str    # "block" | "rate_limit"
    scope: str     # "flow" | "source" | "service"
    target: Tuple[Any, ...]
    ttl_ns: int    # PERMANENT (-1) for permanent blocks
    rate_pps: float

    def sort_key(self) -> tuple:
        return (self.seq, self.tier, self.rule, self.scope,
                self.target, self.verdict)

    def canonical(self) -> str:
        return (
            f"{self.seq}|{self.ts_ns}|{self.tier}|{self.rule}|{self.verdict}|"
            f"{self.action}|{self.scope}|{self.target}|{self.ttl_ns}|"
            f"{self.rate_pps!r}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq, "ts_ns": self.ts_ns, "tier": self.tier,
            "rule": self.rule, "verdict": self.verdict, "action": self.action,
            "scope": self.scope, "target": list(self.target),
            "ttl_ns": self.ttl_ns, "rate_pps": self.rate_pps,
        }


def action_log_digest(actions: Iterable[MitigationAction]) -> str:
    """SHA-256 over the canonically ordered action log.

    Actions are sorted by ``(seq, tier, rule, scope, target, verdict)``
    — a total order independent of shard interleaving — and serialized
    over the deterministic fields only.  Two runs installed the same
    mitigation response iff their digests match.
    """
    lines = [a.canonical() for a in sorted(actions, key=lambda a: a.sort_key())]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# ---------------------------------------------------------------------------
# configuration bundle
# ---------------------------------------------------------------------------
def default_rules() -> Tuple[ThresholdRule, ...]:
    """The out-of-the-box ruleset: block hot flagged flows, rate-limit
    the moderately hot, and source-block sustained attackers."""
    return (
        ThresholdRule(
            name="flow-burst-block", pps_above=100.0, packets_above=3,
            combine="and", scope="flow", action="block",
            ttl_ns=60_000_000_000,
        ),
        ThresholdRule(
            name="flow-soft-limit", pps_above=10.0, bps_above=50_000.0,
            combine="or", scope="flow", action="rate_limit", rate_pps=50.0,
            ttl_ns=30_000_000_000,
        ),
        ThresholdRule(
            name="source-sustained-block", pps_above=500.0, packets_above=20,
            combine="and", scope="source", action="block",
            ttl_ns=120_000_000_000,
        ),
    )


@dataclass(frozen=True)
class MitigationConfig:
    """Controller configuration (JSON-able; the command API edits it)."""

    rules: Tuple[ThresholdRule, ...] = field(default_factory=default_rules)
    whitelist: Tuple[Tuple[int, int], ...] = ()
    burst: float = 20.0
    activity_capacity: int = 256
    #: episode tier: rate allowed to a flooded service, and how long
    #: episode-installed responses live (None = permanent).
    episode_rate_pps: float = 100.0
    episode_ttl_ns: Optional[int] = 120_000_000_000

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rules": [r.to_dict() for r in self.rules],
            "whitelist": [list(w) for w in self.whitelist],
            "burst": self.burst,
            "activity_capacity": self.activity_capacity,
            "episode_rate_pps": self.episode_rate_pps,
            "episode_ttl_ns": self.episode_ttl_ns,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MitigationConfig":
        kw: Dict[str, Any] = {}
        if "rules" in d:
            kw["rules"] = tuple(
                r if isinstance(r, ThresholdRule) else ThresholdRule.from_dict(r)
                for r in d["rules"]
            )
        if "whitelist" in d:
            kw["whitelist"] = tuple(
                (int(b), int(p)) for b, p in d["whitelist"]
            )
        for k in ("burst", "activity_capacity", "episode_rate_pps",
                  "episode_ttl_ns"):
            if k in d:
                kw[k] = d[k]
        return cls(**kw)


def build_controller(config: Dict[str, Any]) -> "MitigationController":
    """Module-level factory for shard workers (picklable by reference)."""
    return MitigationController(MitigationConfig.from_dict(config))


# ---------------------------------------------------------------------------
# the controller
# ---------------------------------------------------------------------------
class MitigationController:
    """Consumes detector output, installs blocks, answers operators.

    Attach with :meth:`attach_to`; the detector then owns the flow tier
    (stored predictions are swept at cycle boundaries by
    :meth:`on_cycle`) and calls
    :meth:`finish_run` at end of stream, which runs the episode tier
    over the merged, ``(seq, key)``-sorted prediction log.  In sharded
    mode each worker carries a clone built from :meth:`worker_spec`;
    the coordinator absorbs the workers' flow-tier action logs with
    :meth:`absorb_run` before its own episode pass.
    """

    COUNTER_KEYS = (
        "rules_installed", "rules_refreshed", "rules_expired",
        "rules_pruned", "packets_dropped", "packets_rate_shed",
        "whitelist_hits", "episode_escalations", "config_updates",
        "unblocks",
    )

    def __init__(
        self,
        config: Optional[MitigationConfig] = None,
        tables: Iterable[AclTable] = (),
    ) -> None:
        self.config = config if config is not None else MitigationConfig()
        self.tables: List[AclTable] = list(tables)
        self.engine = RulesEngine(self.config.rules)
        self.whitelist = Whitelist(self.config.whitelist)
        self.blocks = BlockTable(burst=self.config.burst)
        self.activity = ActivityRing(self.config.activity_capacity)
        self.action_log: List[MitigationAction] = []
        self.counters: Dict[str, int] = {k: 0 for k in self.COUNTER_KEYS}
        #: (flow_key, rule_name) -> re-emit deadline (None = never again).
        self._flow_emits: Dict[Tuple[tuple, str], Optional[int]] = {}
        self._db: Optional[Any] = None
        self._episode_sink: Optional[
            Callable[[List[PredictionEntry]], None]
        ] = None
        self._inline_episodes = False
        self._episode_pos = 0
        self._flow_pos = 0
        self._lossy_recoveries = 0
        self._last_ts_ns = 0
        # Derived caches (pure functions of durable state; never
        # checkpointed, cleared when the inputs change):
        # flow key -> the three block-table targets its packets match.
        self._targets_memo: Dict[tuple, List[Tuple[Any, ...]]] = {}
        # flow key -> consolidated no-op horizon, present only once
        # EVERY compiled rule has emitted for the flow: None = all
        # permanent (skip forever), int = earliest re-emit deadline
        # (skip until then).  Exact — until that instant the rule loop
        # is a guaranteed no-op, so skipping cannot change the log.
        self._flow_next: Dict[tuple, Optional[int]] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_to(self, detector: Any) -> "MitigationController":
        """Register as a detector's ``mitigation`` subsystem
        (checkpointed, sharded, surfaced in stats).

        The flow tier consumes the prediction log at cycle boundaries
        (:meth:`on_cycle`, invoked by the mechanism's cycle loop) rather
        than wrapping ``store_prediction`` per entry: nothing ingests
        between a cycle's stores and its boundary, so the flow state
        read is bit-identical to store time — and the hot path stays a
        single call per cycle instead of one per prediction."""
        self._db = detector.db
        detector.mitigation = self
        return self

    def worker_spec(self) -> Tuple[Callable[[Dict[str, Any]], Any], Dict[str, Any]]:
        """Picklable ``(factory, config)`` recipe for shard workers."""
        return (build_controller, self.config.to_dict())

    def set_episode_sink(
        self, sink: Callable[[List[PredictionEntry]], None],
        inline: bool = False,
    ) -> None:
        """Register the episode consumer (the controlplane bridge).

        ``inline=True`` means the bridge already taps the live stream
        (DES demo mode); :meth:`finish_run` then skips the replay pass
        — inline episode order is storage order, which is documented as
        non-canonical.
        """
        self._episode_sink = sink
        self._inline_episodes = bool(inline)

    # ------------------------------------------------------------------
    # flow tier
    # ------------------------------------------------------------------
    @staticmethod
    def _attacker_of(key: tuple) -> int:
        """The non-service endpoint of a canonical (bidirectional) key:
        the service is the lower-port side, matching AlertManager's
        orientation heuristic."""
        ip_a, ip_b, port_a, port_b, _proto = key
        return int(ip_b) if port_a <= port_b else int(ip_a)

    @staticmethod
    def _service_of(key: tuple) -> Tuple[int, int, int]:
        ip_a, ip_b, port_a, port_b, proto = key
        if port_a <= port_b:
            return (int(ip_a), int(port_a), int(proto))
        return (int(ip_b), int(port_b), int(proto))

    def _enforcement_targets(
        self, key: tuple
    ) -> List[Tuple[Any, ...]]:
        """Every block-table target this flow's packets would match."""
        return [
            ("flow",) + tuple(int(v) for v in key),
            ("source", self._attacker_of(key)),
            ("service",) + self._service_of(key),
        ]

    def _targets_for(self, key: tuple) -> List[Tuple[Any, ...]]:
        t = self._targets_memo.get(key)
        if t is None:
            if len(self._targets_memo) > 65536:
                self._targets_memo.clear()
            t = self._targets_memo[key] = self._enforcement_targets(key)
        return t

    def _account(self, key: tuple, now_ns: int) -> None:
        """Shadow enforcement accounting: would this packet have been
        dropped/shed by the active blocks?  Counters only — never part
        of the canonical log (source/service blocks are not visible to
        sibling shards mid-run)."""
        entries = self.blocks.entries
        for target in self._targets_for(key):
            e = entries.get(target)
            if e is None or (
                e.expires_ns is not None and now_ns >= e.expires_ns
            ):
                continue
            if e.action == "block":
                e.hits += 1
                self.counters["packets_dropped"] += 1
            elif not self.blocks.admit(e, now_ns):
                e.shed += 1
                self.counters["packets_rate_shed"] += 1
            else:
                e.hits += 1
            return

    def _acl_rule_for(
        self, target: Tuple[Any, ...], action: str, rate_pps: float,
        now_ns: int, ttl_ns: Optional[int], rule: str,
    ) -> FlowRule:
        expires = None if ttl_ns is None else now_ns + int(ttl_ns)
        act = RuleAction.DROP if action == "block" else RuleAction.RATE_LIMIT
        if target[0] == "flow":
            src, dst, sport, dport, proto = target[1:]
            return FlowRule(
                src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                protocol=proto, action=act, rate_pps=rate_pps,
                expires_ns=expires, reason=rule,
            )
        if target[0] == "source":
            return FlowRule(
                src_ip=target[1], src_prefix_len=32, action=act,
                rate_pps=rate_pps, expires_ns=expires, reason=rule,
            )
        ip, port, proto = target[1:]
        return FlowRule(
            dst_ip=ip, dst_port=port, protocol=proto, action=act,
            rate_pps=rate_pps, expires_ns=expires, reason=rule,
        )

    def _emit(
        self, *, seq: int, now_ns: int, tier: str, rule: str, verdict: str,
        action: str, scope: str, target: Tuple[Any, ...],
        ttl_ns: Optional[int], rate_pps: float,
    ) -> MitigationAction:
        """Append a canonical action and (unless whitelisted) install."""
        act = MitigationAction(
            seq=int(seq), ts_ns=int(now_ns), tier=tier, rule=rule,
            verdict=verdict, action=action, scope=scope, target=target,
            ttl_ns=PERMANENT if ttl_ns is None else int(ttl_ns),
            rate_pps=float(rate_pps),
        )
        self.action_log.append(act)
        if verdict == "whitelisted":
            self.counters["whitelist_hits"] += 1
            self.activity.push(now_ns, "whitelisted",
                               f"{rule}: spared {target}")
            return act
        state = self.blocks.install(
            target, rule, action, rate_pps, now_ns, ttl_ns, seq
        )
        if state == "installed":
            self.counters["rules_installed"] += 1
        else:
            self.counters["rules_refreshed"] += 1
        for table in self.tables:
            table.install(self._acl_rule_for(
                target, action, rate_pps, now_ns, ttl_ns, rule
            ))
        self.activity.push(
            now_ns, state, f"{tier}/{rule}: {action} {target}"
        )
        return act

    def _sweep_expired(self, now_ns: int) -> None:
        for e in self.blocks.expire(now_ns):
            self.counters["rules_expired"] += 1
            self.activity.push(
                now_ns, "expired", f"{e.rule}: {e.action} {e.target}"
            )

    def on_cycle(self) -> None:
        """Flow tier: consume predictions stored since the last cycle.

        Invoked by the mechanism (and shard workers) at every cycle
        boundary, before the next ingest — so the flow-table state read
        here is byte-identical to what a per-store hook would have
        seen.  Every emitted action is a pure function of the entry and
        its flow's local state (record metrics + emit history), so
        shard placement cannot change the canonical log.
        """
        db = self._db
        if db is None:
            return
        preds = db.predictions
        # The cursor is an *absolute* stream position; sharded workers
        # trim shipped entries off the front of the resident log, so
        # resident index = absolute index - predictions_base.  Trims
        # only ever happen after this sweep ran over the trimmed
        # entries (worker order: cycle → on_cycle → ship+trim), so the
        # cursor can never point below the base.
        base = getattr(db, "predictions_base", 0)
        n = base + len(preds)
        pos = self._flow_pos
        if pos >= n:
            return
        self._flow_pos = n
        # Hot loop: local aliases, cheap checks inline, rare work in
        # helper calls.
        blocks = self.blocks
        block_entries = blocks.entries
        flow_next = self._flow_next
        account = self._account
        process = self._process_flagged
        last = self._last_ts_ns
        for i in range(pos - base, n - base):
            entry = preds[i]
            now = entry.ts_registered_ns
            if now > last:
                last = now
            if block_entries:
                nx = blocks._next_expiry_ns
                if nx is not None and now >= nx:
                    self._sweep_expired(now)
                account(entry.key, now)
            if entry.final_decision == 1:
                horizon = flow_next.get(entry.key, 0)
                if horizon == 0 or (horizon is not None and now >= horizon):
                    self._last_ts_ns = int(last)
                    process(entry, now, horizon)
        self._last_ts_ns = int(last)

    def _process_flagged(
        self, entry: PredictionEntry, now: int, horizon: int
    ) -> List[MitigationAction]:
        """Rule evaluation for one flagged prediction (the rare path)."""
        key = entry.key
        rec = self._db.flows.get(key) if self._db is not None else None
        if rec is None:
            # Coordinator-side merge replay (no ingest here) or an
            # evicted flow: the flow tier already ran where the flow
            # lives.
            return []
        dur = rec.duration_s
        pps = rec.n_packets / dur if dur > 0 else 0.0
        bps = rec.total_bytes / dur if dur > 0 else 0.0
        out: List[MitigationAction] = []
        for rule in self.engine.evaluate(pps, bps, rec.n_packets):
            emit_key = (key, rule.name)
            deadline = self._flow_emits.get(emit_key, 0)
            if deadline is None or (deadline != 0 and now < deadline):
                continue  # already emitted and still covered
            verdict = "refreshed" if deadline != 0 else "installed"
            self._flow_emits[emit_key] = (
                None if rule.ttl_ns is None else now + rule.ttl_ns
            )
            attacker = self._attacker_of(key)
            if self.whitelist.covers(attacker):
                verdict = "whitelisted"
            target: Tuple[Any, ...] = (
                ("flow",) + tuple(int(v) for v in key)
                if rule.scope == "flow" else ("source", attacker)
            )
            out.append(self._emit(
                seq=entry.seq, now_ns=now, tier="flow", rule=rule.name,
                verdict=verdict, action=rule.action, scope=rule.scope,
                target=target, ttl_ns=rule.ttl_ns, rate_pps=rule.rate_pps,
            ))
        if out or horizon != 0:
            self._refresh_flow_horizon(key)
        return out

    def _refresh_flow_horizon(self, key: tuple) -> None:
        """Recompute the consolidated no-op horizon for one flow.

        Present only when every compiled rule has an emit on record for
        the flow; then the flow tier provably cannot fire again before
        the earliest re-emit deadline, and :meth:`on_cycle` may skip
        the evaluation loop outright until that instant."""
        emits = self._flow_emits
        deadlines: List[int] = []
        for rule, _fn in self.engine._compiled:
            d = emits.get((key, rule.name), 0)
            if d == 0:
                self._flow_next.pop(key, None)
                return
            if d is not None:
                deadlines.append(d)
        self._flow_next[key] = min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    # episode tier
    # ------------------------------------------------------------------
    def escalate(self, alert: Any, entry: PredictionEntry) -> MitigationAction:
        """Respond to one opened episode (called by the bridge, once per
        service, in merged-log order — deterministic input, see
        :class:`repro.controlplane.bridge.EpisodeBridge`)."""
        now = entry.ts_registered_ns
        self.counters["episode_escalations"] += 1
        cfg = self.config
        victim_ip, port, proto = alert.service
        if port == 0:
            # Port sweep: block the probing host.
            attacker = self._attacker_of(entry.key)
            verdict = (
                "whitelisted" if self.whitelist.covers(attacker) else "installed"
            )
            return self._emit(
                seq=entry.seq, now_ns=now, tier="episode",
                rule="episode-sweep-block", verdict=verdict, action="block",
                scope="source", target=("source", attacker),
                ttl_ns=cfg.episode_ttl_ns, rate_pps=0.0,
            )
        # Service flood: rate-limit the victim service (spoofed sources
        # make per-source blocks useless).
        return self._emit(
            seq=entry.seq, now_ns=now, tier="episode",
            rule="episode-service-limit", verdict="installed",
            action="rate_limit", scope="service",
            target=("service", int(victim_ip), int(port), int(proto)),
            ttl_ns=cfg.episode_ttl_ns, rate_pps=cfg.episode_rate_pps,
        )

    def finish_run(self, db: Any, lossy: int = 0) -> None:
        """End-of-run hook: run the episode tier over the merged,
        canonically sorted prediction log, then a final expiry sweep.

        Incremental: only entries beyond the last processed position
        are replayed, so driving a stream in chunks (mid-run command
        tests) does not double-escalate.
        """
        self.on_cycle()  # flow-tier sweep of any final-drain stores
        self._lossy_recoveries += int(lossy)
        entries = sorted(db.predictions, key=_ENTRY_ORDER)
        if entries:
            self._last_ts_ns = max(
                self._last_ts_ns, int(entries[-1].ts_registered_ns)
            )
        if self._episode_sink is not None and not self._inline_episodes:
            new = entries[self._episode_pos:]
            self._episode_pos = len(entries)
            if new:
                self._episode_sink(new)
        self._sweep_expired(self._last_ts_ns)

    def absorb_run(
        self,
        actions: List[MitigationAction],
        worker_stats: List[Dict[str, Any]],
        lossy: int = 0,
    ) -> None:
        """Coordinator-side merge of the workers' flow-tier output.

        The workers' action logs join the canonical log verbatim;
        their block state is replayed into this controller's table
        (idempotently, without re-counting — the workers' own counters
        are summed instead).  The coordinator's flow cursor is
        fast-forwarded past the merged log: each entry's flow tier
        already ran on the worker that owns the flow."""
        if self._db is not None:
            self._flow_pos = (
                getattr(self._db, "predictions_base", 0)
                + len(self._db.predictions)
            )
        self._lossy_recoveries += int(lossy)
        for a in sorted(actions, key=lambda a: a.sort_key()):
            self.action_log.append(a)
            if a.verdict == "whitelisted":
                continue
            ttl = None if a.ttl_ns == PERMANENT else a.ttl_ns
            self.blocks.install(
                a.target, a.rule, a.action, a.rate_pps, a.ts_ns, ttl, a.seq
            )
        for ws in worker_stats:
            counters = ws.get("counters", {})
            for k in self.COUNTER_KEYS:
                self.counters[k] += int(counters.get(k, 0))

    # ------------------------------------------------------------------
    # observability + operator command API
    # ------------------------------------------------------------------
    def action_log_digest(self) -> str:
        return action_log_digest(self.action_log)

    def stats(self) -> Dict[str, Any]:
        active = self.blocks.active(self._last_ts_ns)
        return {
            "counters": dict(self.counters),
            "active_blocks": len(active),
            "permanent_blocks": sum(
                1 for e in active if e.expires_ns is None
            ),
            "actions_logged": len(self.action_log),
            "activity_evicted": self.activity.evicted,
            "lossy_recoveries": self._lossy_recoveries,
            "state_authoritative": self._lossy_recoveries == 0,
        }

    def command(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """In-process JSON command API (the operator control surface).

        ``request`` and the response are JSON-able dicts; the optional
        stdlib HTTP driver (:mod:`repro.controlplane.httpapi`) is a thin
        transport over exactly this method.
        """
        op = request.get("op")
        try:
            if op == "get_config":
                return {"ok": True, "result": self.config.to_dict()}
            if op == "set_config":
                merged = self.config.to_dict()
                merged.update(request.get("config", {}))
                self.config = MitigationConfig.from_dict(merged)
                self.engine = RulesEngine(self.config.rules)
                self.whitelist = Whitelist(self.config.whitelist)
                self.blocks.burst = float(self.config.burst)
                self._flow_next.clear()  # horizons assume the old rules
                self.counters["config_updates"] += 1
                self.activity.push(
                    self._last_ts_ns, "config",
                    f"configuration updated ({len(self.config.rules)} rules, "
                    f"{len(self.config.whitelist)} whitelist entries)",
                )
                return {"ok": True, "result": self.config.to_dict()}
            if op == "stats":
                return {"ok": True, "result": self.stats()}
            if op == "blocked_list":
                now = int(request.get("now_ns", self._last_ts_ns))
                return {
                    "ok": True,
                    "result": [e.to_dict() for e in self.blocks.active(now)],
                }
            if op == "unblock":
                target = tuple(request.get("target", ()))
                removed = self.blocks.unblock(target)
                if removed:
                    self.counters["rules_pruned"] += 1
                    self.counters["unblocks"] += 1
                    self.activity.push(
                        self._last_ts_ns, "unblock", f"operator: {target}"
                    )
                return {"ok": True, "result": {"removed": removed}}
            if op == "activity_feed":
                limit = int(request.get("limit", 50))
                return {"ok": True, "result": self.activity.tail(limit)}
        except (TypeError, ValueError, KeyError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": False, "error": f"unknown op: {op!r}"}

    # ------------------------------------------------------------------
    # checkpoint support (rides the RPRCKPT1 frames)
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "blocks": self.blocks.state_snapshot(),
            "activity": self.activity.state_snapshot(),
            "actions": [a.to_dict() for a in self.action_log],
            "flow_emits": [
                [list(k[0]), k[1], v] for k, v in self._flow_emits.items()
            ],
            "counters": dict(self.counters),
            "episode_pos": self._episode_pos,
            "flow_pos": self._flow_pos,
            "lossy_recoveries": self._lossy_recoveries,
            "last_ts_ns": self._last_ts_ns,
        }

    def state_restore(self, state: dict) -> None:
        self.config = MitigationConfig.from_dict(state["config"])
        self.engine = RulesEngine(self.config.rules)
        self.whitelist = Whitelist(self.config.whitelist)
        self.blocks.state_restore(state["blocks"])
        self.activity.state_restore(state["activity"])
        self.action_log = [
            MitigationAction(
                seq=d["seq"], ts_ns=d["ts_ns"], tier=d["tier"], rule=d["rule"],
                verdict=d["verdict"], action=d["action"], scope=d["scope"],
                target=tuple(d["target"]), ttl_ns=d["ttl_ns"],
                rate_pps=d["rate_pps"],
            )
            for d in state["actions"]
        ]
        self._flow_emits = {
            (tuple(k), name): v for k, name, v in state["flow_emits"]
        }
        self.counters = {
            key: int(state["counters"].get(key, 0))
            for key in self.COUNTER_KEYS
        }
        self._episode_pos = int(state["episode_pos"])
        self._flow_pos = int(state.get("flow_pos", 0))
        self._lossy_recoveries = int(state["lossy_recoveries"])
        self._last_ts_ns = int(state["last_ts_ns"])
        # Derived caches rebuild lazily against the restored state.
        self._targets_memo.clear()
        self._flow_next.clear()
