"""DDoS mitigation: the paper's declared next step, built out.

The paper stops at detection ("we do not address mitigation", §III fn.2)
and cites ONOS Flood Defender [17] and the P4/5G IDS of [20] as the
blueprint for closing the loop.  This package implements that loop over
our data plane: flagged flows are traced back to their sources
(:mod:`~repro.mitigation.traceback`), turned into drop/rate-limit rules
(:mod:`~repro.mitigation.rules`), and enforced as switch ACL hooks
(:mod:`~repro.mitigation.enforcement`); the
:class:`~repro.mitigation.engine.MitigationEngine` drives the whole
pipeline from live detector output.
"""

from .enforcement import AclTable, attach_acl
from .engine import MitigationEngine, MitigationPolicy
from .rules import FlowRule, RuleAction, RuleGenerator
from .traceback import AttackSource, SourceTracker

__all__ = [
    "AclTable",
    "attach_acl",
    "MitigationEngine",
    "MitigationPolicy",
    "FlowRule",
    "RuleAction",
    "RuleGenerator",
    "AttackSource",
    "SourceTracker",
]
