"""DDoS mitigation: the paper's declared next step, built out.

The paper stops at detection ("we do not address mitigation", §III fn.2)
and cites ONOS Flood Defender [17] and the P4/5G IDS of [20] as the
blueprint for closing the loop.  This package implements that loop over
our data plane: flagged flows are traced back to their sources
(:mod:`~repro.mitigation.traceback`), turned into drop/rate-limit rules
(:mod:`~repro.mitigation.rules`), and enforced as switch ACL hooks
(:mod:`~repro.mitigation.enforcement`).

Two drivers exist on top of those primitives:

* :class:`~repro.mitigation.engine.MitigationEngine` — the original
  standalone escalation engine for live DES demos;
* :class:`~repro.mitigation.controller.MitigationController` — the
  fault-tolerant control plane: configurable threshold rules, durable
  auto-expiring blocks with whitelist precedence, an operator JSON
  command API, checkpointed state, and a canonical action log whose
  digest is byte-identical across shard counts, chaos, and worker-kill
  recovery.
"""

from .controller import (
    ActivityRing,
    BlockEntry,
    BlockTable,
    MitigationAction,
    MitigationConfig,
    MitigationController,
    RulesEngine,
    ThresholdRule,
    Whitelist,
    action_log_digest,
    build_controller,
)
from .enforcement import AclTable, attach_acl
from .engine import MitigationEngine, MitigationPolicy
from .rules import FlowRule, RuleAction, RuleGenerator
from .traceback import AttackSource, SourceTracker

__all__ = [
    "AclTable",
    "attach_acl",
    "ActivityRing",
    "BlockEntry",
    "BlockTable",
    "MitigationAction",
    "MitigationConfig",
    "MitigationController",
    "MitigationEngine",
    "MitigationPolicy",
    "RulesEngine",
    "ThresholdRule",
    "Whitelist",
    "action_log_digest",
    "build_controller",
    "FlowRule",
    "RuleAction",
    "RuleGenerator",
    "AttackSource",
    "SourceTracker",
]
