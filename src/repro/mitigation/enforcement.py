"""Rule enforcement at the switch.

:class:`AclTable` installs as an ingress hook (the mechanism the
data-plane already exposes for telemetry) and drops or rate-limits
packets that match active rules — the equivalent of pushing flow rules
to the switch via the controller in [17]/[20].

Rate limiting uses a token bucket per rule: sustained rates above
``rate_pps`` are shed while short bursts inside the bucket pass.

Time is always *injected*: :meth:`AclTable.check` takes the current
simulation timestamp and :func:`attach_acl` reads the discrete-event
clock (or any caller-supplied clock).  No wall-clock source exists
anywhere in enforcement, so an enforcement decision sequence is a pure
function of the packet stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dataplane.packet import Packet
from repro.dataplane.switch import Switch

from .rules import FlowRule, RuleAction

__all__ = ["AclTable", "attach_acl"]


@dataclass
class _Bucket:
    tokens: float
    last_ns: int


class AclTable:
    """Ordered rule table with drop / token-bucket rate-limit actions.

    Rules are evaluated in insertion order; the first match decides.
    Expired rules are pruned lazily on lookup.
    """

    def __init__(self, burst: float = 20.0) -> None:
        if burst <= 0:
            raise ValueError(f"burst must be positive: {burst}")
        self.rules: List[FlowRule] = []
        self.burst = float(burst)
        # Keyed by the (frozen, hashable) rule itself — identical rules
        # installed twice share one bucket, and bucket identity survives
        # pickling/checkpointing, unlike an id()-keyed map.
        self._buckets: Dict[FlowRule, _Bucket] = {}
        self.dropped = 0
        self.rate_limited = 0
        self.passed = 0
        self.installed = 0

    def install(self, rule: FlowRule) -> None:
        self.rules.append(rule)
        self.installed += 1

    def active_rules(self, now_ns: int) -> List[FlowRule]:
        live = [r for r in self.rules if not r.expired(now_ns)]
        if len(live) != len(self.rules):
            keep = set(live)
            self._buckets = {
                k: v for k, v in self._buckets.items() if k in keep
            }
            self.rules = live
        return self.rules

    def _allow_rate(self, rule: FlowRule, now_ns: int) -> bool:
        b = self._buckets.get(rule)
        if b is None:
            b = _Bucket(tokens=self.burst, last_ns=now_ns)
            self._buckets[rule] = b
        b.tokens = min(
            self.burst, b.tokens + (now_ns - b.last_ns) * 1e-9 * rule.rate_pps
        )
        b.last_ns = now_ns
        if b.tokens >= 1.0:
            b.tokens -= 1.0
            return True
        return False

    def check(self, pkt: Packet, now_ns: int) -> bool:
        """True if the packet may proceed; False to drop it."""
        for rule in self.active_rules(now_ns):
            if not rule.matches(pkt):
                continue
            if rule.action is RuleAction.DROP:
                self.dropped += 1
                return False
            if not self._allow_rate(rule, now_ns):
                self.rate_limited += 1
                return False
            break  # first matching rule decides; limited-but-allowed passes
        self.passed += 1
        return True


def attach_acl(
    switch: Switch,
    table: Optional[AclTable] = None,
    clock: Optional[Callable[[], int]] = None,
) -> AclTable:
    """Install an ACL as the switch's *first* ingress hook.

    Mitigation must run before telemetry sampling so dropped packets do
    not keep feeding the detector (matching hardware, where the ACL
    stage precedes the INT/monitoring stages).

    ``clock`` injects the time source for rule expiry and token-bucket
    refill; the default reads the switch's discrete-event simulation
    clock.  Enforcement never consults the wall clock.
    """
    acl = table if table is not None else AclTable()

    def now_ns(sw: Switch) -> int:
        return clock() if clock is not None else sw.events.clock.now

    switch.ingress_hooks.insert(
        0, lambda sw, pkt, port: acl.check(pkt, now_ns(sw))
    )
    return acl
