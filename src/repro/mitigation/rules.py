"""Flow-rule generation (the Flood Defender pattern [17]).

A :class:`FlowRule` matches on any subset of the five-tuple (wildcards
allowed) plus an optional source prefix, and carries an action (drop or
rate-limit) with an expiry.  The :class:`RuleGenerator` converts traced
attack sources into rules, choosing match granularity by evidence:

* a single offending flow → exact five-tuple drop;
* many flows from one host → source-host drop (scan/SlowLoris pattern);
* many spoofed sources inside one prefix toward one destination port →
  destination-port rate limit scoped to the prefix (flood pattern —
  dropping by source is useless when sources are random).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Tuple

from repro.dataplane.packet import Packet

__all__ = ["RuleAction", "FlowRule", "RuleGenerator"]


class RuleAction(Enum):
    """What an ACL match does to a packet."""

    DROP = "drop"
    RATE_LIMIT = "rate_limit"


def _prefix_mask(bits: int) -> int:
    if not 0 <= bits <= 32:
        raise ValueError(f"prefix length out of range: {bits}")
    return 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF


@dataclass(frozen=True)
class FlowRule:
    """An ACL entry.  ``None`` fields are wildcards.

    Attributes
    ----------
    src_ip, src_prefix_len : match source against a prefix.
    dst_ip : exact destination match.
    src_port, dst_port, protocol : exact L4 matches.
    action : drop or rate-limit.
    rate_pps : packets/second allowed when rate-limiting.
    expires_ns : absolute simulation expiry (None = permanent).
    reason : human-readable provenance (attack type + evidence).
    """

    src_ip: Optional[int] = None
    src_prefix_len: int = 32
    dst_ip: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    protocol: Optional[int] = None
    action: RuleAction = RuleAction.DROP
    rate_pps: float = 0.0
    expires_ns: Optional[int] = None
    reason: str = ""

    def __post_init__(self) -> None:
        _prefix_mask(self.src_prefix_len)  # validates
        if self.action is RuleAction.RATE_LIMIT and self.rate_pps <= 0:
            raise ValueError("rate limit rules need rate_pps > 0")

    def matches(self, pkt: Packet) -> bool:
        """Does this rule apply to ``pkt``?"""
        if self.src_ip is not None:
            mask = _prefix_mask(self.src_prefix_len)
            if (pkt.src_ip & mask) != (self.src_ip & mask):
                return False
        if self.dst_ip is not None and pkt.dst_ip != self.dst_ip:
            return False
        if self.src_port is not None and pkt.src_port != self.src_port:
            return False
        if self.dst_port is not None and pkt.dst_port != self.dst_port:
            return False
        if self.protocol is not None and pkt.protocol != self.protocol:
            return False
        return True

    def expired(self, now_ns: int) -> bool:
        return self.expires_ns is not None and now_ns >= self.expires_ns


class RuleGenerator:
    """Evidence-driven rule synthesis.

    Parameters
    ----------
    host_flow_threshold : int
        Flagged flows from one source host before escalating from
        per-flow rules to a host-level drop.
    spoof_source_threshold : int
        Distinct flagged sources toward one (dst, port) before treating
        the event as a spoofed flood and emitting a rate limit.
    rule_ttl_ns : int
        Lifetime of generated rules.
    flood_rate_pps : float
        Allowance for flood rate-limit rules.
    """

    def __init__(
        self,
        host_flow_threshold: int = 5,
        spoof_source_threshold: int = 50,
        rule_ttl_ns: int = 60_000_000_000,
        flood_rate_pps: float = 100.0,
    ) -> None:
        if host_flow_threshold < 1 or spoof_source_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.host_flow_threshold = int(host_flow_threshold)
        self.spoof_source_threshold = int(spoof_source_threshold)
        self.rule_ttl_ns = int(rule_ttl_ns)
        self.flood_rate_pps = float(flood_rate_pps)

    def flow_rule(self, key: tuple, now_ns: int, reason: str = "") -> FlowRule:
        """Exact five-tuple drop for one flagged flow."""
        src, dst, sport, dport, proto = key
        return FlowRule(
            src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
            protocol=proto, action=RuleAction.DROP,
            expires_ns=now_ns + self.rule_ttl_ns,
            reason=reason or "flagged flow",
        )

    def host_rule(self, src_ip: int, now_ns: int, n_flows: int) -> FlowRule:
        """Source-host drop once one host accumulates many flagged flows."""
        return FlowRule(
            src_ip=src_ip, src_prefix_len=32, action=RuleAction.DROP,
            expires_ns=now_ns + self.rule_ttl_ns,
            reason=f"host with {n_flows} flagged flows",
        )

    def flood_rule(
        self, dst_ip: int, dst_port: int, protocol: int,
        prefix: Tuple[int, int], now_ns: int, n_sources: int,
    ) -> FlowRule:
        """Prefix-scoped rate limit for a spoofed-source flood."""
        base, bits = prefix
        return FlowRule(
            src_ip=base, src_prefix_len=bits, dst_ip=dst_ip,
            dst_port=dst_port, protocol=protocol,
            action=RuleAction.RATE_LIMIT, rate_pps=self.flood_rate_pps,
            expires_ns=now_ns + self.rule_ttl_ns,
            reason=f"spoofed flood from {n_sources} sources",
        )
