"""Feature standardization.

The paper's Prediction module "uploads … the coefficients of scaler
transformation, which are used to standardize the feature values to unit
variance" (§III-4).  :class:`StandardScaler` is that transformation:
per-feature zero mean, unit variance, with the fitted coefficients
(:attr:`mean_`, :attr:`scale_`) exportable so the online pipeline can
standardize single records without touching training data again.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Per-feature ``(x - mean) / std`` standardization.

    Features with zero variance get ``scale_ = 1`` so they pass through
    centered (scikit-learn behaviour), avoiding division by zero on
    constant columns like a single-protocol capture.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.n_features_: int | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty matrix")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        self.n_features_ = X.shape[1]
        return self

    def _check_fitted(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"feature count mismatch: fitted {self.n_features_}, got {X.shape[1]}"
            )
        return X if not single else X  # shape normalized; caller squeezes

    def transform(self, X: np.ndarray) -> np.ndarray:
        single = np.asarray(X).ndim == 1
        X = self._check_fitted(X)
        out = (X - self.mean_) / self.scale_
        return out[0] if single else out

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        single = np.asarray(X).ndim == 1
        X = self._check_fitted(X)
        out = X * self.scale_ + self.mean_
        return out[0] if single else out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def coefficients(self) -> dict:
        """Exportable fitted coefficients (what the testbed ships to the
        Prediction module alongside the pre-trained models)."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return {"mean": self.mean_.copy(), "scale": self.scale_.copy()}

    @classmethod
    def from_coefficients(cls, coeffs: dict) -> "StandardScaler":
        """Rebuild a scaler from exported coefficients."""
        sc = cls()
        sc.mean_ = np.asarray(coeffs["mean"], dtype=np.float64).copy()
        sc.scale_ = np.asarray(coeffs["scale"], dtype=np.float64).copy()
        if sc.mean_.shape != sc.scale_.shape or sc.mean_.ndim != 1:
            raise ValueError("inconsistent coefficient shapes")
        sc.n_features_ = sc.mean_.shape[0]
        return sc
