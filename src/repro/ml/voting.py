"""Ensemble majority voting.

The paper's live mechanism (§IV-C4) combines MLP, RF and GNB outputs "by
ensemble voting … if two or more of the predictions are 1, then it is
classified as an attack flow".  :func:`majority_vote` is that 2-of-3 rule
generalized to any odd panel; :class:`VotingClassifier` wraps fitted
models behind the standard predict API for offline use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import check_X

__all__ = ["majority_vote", "VotingClassifier"]


def majority_vote(predictions: np.ndarray) -> np.ndarray:
    """Row-wise majority over a (n_samples, n_models) 0/1 matrix.

    Ties (possible only with an even panel) resolve to 1 — in a security
    context the conservative tie-break is to flag.
    """
    predictions = np.atleast_2d(np.asarray(predictions))
    if predictions.ndim != 2:
        raise ValueError(f"expected 2-D prediction matrix: {predictions.shape}")
    votes = predictions.sum(axis=1)
    return (votes * 2 >= predictions.shape[1]).astype(np.int64)


class VotingClassifier:
    """Hard-voting ensemble over pre-fitted binary classifiers.

    Parameters
    ----------
    models : sequence of fitted classifiers
        Each must implement ``predict`` returning 0/1 labels.
    """

    def __init__(self, models: Sequence) -> None:
        if not models:
            raise ValueError("need at least one model")
        self.models = list(models)

    def predict(self, X) -> np.ndarray:
        X = check_X(X)
        preds = np.column_stack([m.predict(X) for m in self.models])
        return majority_vote(preds)

    def predict_each(self, X) -> np.ndarray:
        """Per-model predictions, one column per panel member."""
        X = check_X(X)
        return np.column_stack([m.predict(X) for m in self.models])
