"""K-fold cross-validation.

Complements the paper's single 90:10 split with variance estimates —
useful because several of our reproduced metrics live on small sFlow
test sets where a single split is noisy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.common.rng import as_generator

from .metrics import accuracy_score
from .scaler import StandardScaler

__all__ = ["kfold_indices", "cross_val_score"]


def kfold_indices(n: int, k: int = 5, shuffle: bool = True, seed=None):
    """Yield ``(train_idx, test_idx)`` pairs for k folds."""
    if k < 2:
        raise ValueError(f"k must be >= 2: {k}")
    if n < k:
        raise ValueError(f"cannot split {n} samples into {k} folds")
    idx = np.arange(n)
    if shuffle:
        idx = as_generator(seed).permutation(n)
    folds = np.array_split(idx, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def cross_val_score(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    scorer: Optional[Callable] = None,
    standardize: bool = True,
    seed=None,
) -> np.ndarray:
    """Per-fold scores for a freshly constructed model each fold.

    Parameters
    ----------
    model_factory : callable() -> classifier
        Called once per fold (models must not leak state across folds).
    standardize : bool
        Fit a StandardScaler on each fold's training split (the paper's
        preprocessing), applied to both splits.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError("length mismatch")
    score = scorer if scorer is not None else accuracy_score
    out: List[float] = []
    for train, test in kfold_indices(X.shape[0], k=k, seed=seed):
        Xtr, Xte = X[train], X[test]
        if standardize:
            sc = StandardScaler().fit(Xtr)
            Xtr, Xte = sc.transform(Xtr), sc.transform(Xte)
        model = model_factory()
        model.fit(Xtr, y[train])
        out.append(float(score(y[test], model.predict(Xte))))
    return np.asarray(out)
