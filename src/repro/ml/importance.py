"""Model-agnostic permutation feature importance.

The paper's Table V ranks "the five most important features" per model.
Random forests carry intrinsic impurity importances, but GNB, KNN and the
NN do not — for those the standard model-agnostic measure is permutation
importance: the drop in a score when one feature's column is shuffled,
breaking its relationship with the target while preserving its marginal
distribution.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.common.rng import as_generator

from .metrics import accuracy_score

__all__ = ["permutation_importance", "top_k_features"]


def permutation_importance(
    model,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    scorer: Optional[Callable] = None,
    seed=None,
) -> np.ndarray:
    """Mean score drop per permuted feature.

    Parameters
    ----------
    model : fitted classifier with ``predict``.
    X, y : evaluation data (held-out, ideally).
    n_repeats : int
        Shuffles per feature; the mean drop is returned.
    scorer : callable(y_true, y_pred) -> float
        Defaults to accuracy.
    seed : int | numpy.random.Generator | None

    Returns
    -------
    numpy.ndarray
        Importance per feature (may be slightly negative for irrelevant
        features — noise around zero).
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1: {n_repeats}")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    rng = as_generator(seed)
    score = scorer if scorer is not None else accuracy_score

    baseline = score(y, model.predict(X))
    n_features = X.shape[1]
    importances = np.zeros(n_features)
    Xp = X.copy()
    for f in range(n_features):
        drops = np.empty(n_repeats)
        original = Xp[:, f].copy()
        for r in range(n_repeats):
            Xp[:, f] = original[rng.permutation(X.shape[0])]
            drops[r] = baseline - score(y, model.predict(Xp))
        Xp[:, f] = original
        importances[f] = drops.mean()
    return importances


def top_k_features(
    importances: np.ndarray, feature_names: Sequence[str], k: int = 5
) -> list:
    """The ``k`` highest-importance feature names, ranked (Table V rows)."""
    importances = np.asarray(importances)
    if importances.shape[0] != len(feature_names):
        raise ValueError("importances / names length mismatch")
    order = np.argsort(importances)[::-1][:k]
    return [(feature_names[i], float(importances[i])) for i in order]
