"""Random forest classifier (the paper's RF model).

Bagged CART trees with per-split feature subsampling.  Probabilities are
the across-tree mean of leaf class distributions; feature importances are
the across-tree mean of impurity-decrease importances — the statistic the
paper ranks in Table V.

``max_samples`` caps the bootstrap size, which is the practical lever for
training on captures with hundreds of thousands of packets without
sacrificing the ensemble's behaviour (each tree still sees an unbiased
bootstrap draw).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.rng import as_generator

from .base import ClassifierMixin
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(ClassifierMixin):
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_estimators : int
        Number of trees.
    max_depth : int, optional
        Per-tree depth cap.
    max_features : int | "sqrt" | None
        Features considered per split (default ``"sqrt"``, the standard
        forest heuristic).
    max_samples : int | float | None
        Bootstrap sample size per tree: absolute count, fraction of the
        training set, or ``None`` for the full size.
    min_samples_split, min_samples_leaf : int
        Passed to each tree.
    seed : int | numpy.random.Generator | None
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        max_features="sqrt",
        max_samples=None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        seed=None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1: {n_estimators}")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.max_features = max_features
        self.max_samples = max_samples
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.seed = seed

    def _bootstrap_size(self, n: int) -> int:
        if self.max_samples is None:
            return n
        if isinstance(self.max_samples, float):
            if not 0.0 < self.max_samples <= 1.0:
                raise ValueError(f"max_samples fraction out of (0,1]: {self.max_samples}")
            return max(1, int(round(self.max_samples * n)))
        size = int(self.max_samples)
        if size < 1:
            raise ValueError(f"max_samples must be >= 1: {self.max_samples}")
        return min(size, n)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = as_generator(self.seed)
        n = X.shape[0]
        m = self._bootstrap_size(n)
        self.estimators_ = []
        for _ in range(self.n_estimators):
            # A bootstrap draw can miss a class entirely on tiny or very
            # unbalanced data; redraw a few times before giving up.
            for _attempt in range(8):
                idx = rng.integers(0, n, size=m)
                yb = y[idx]
                if np.unique(yb).size == self.classes_.size:
                    break
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=rng,
            )
            # Trees see encoded labels directly; bypass re-encoding by
            # fitting through the public API on the encoded targets.
            tree.fit(X[idx], yb)
            self.estimators_.append(tree)

        imps = [
            t.feature_importances_
            for t in self.estimators_
            if t.feature_importances_.sum() > 0
        ]
        if imps:
            self.feature_importances_ = np.mean(imps, axis=0)
        else:  # all trees degenerate (e.g. constant features)
            self.feature_importances_ = np.zeros(X.shape[1])

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        k = self.classes_.size
        acc = np.zeros((X.shape[0], k))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Trees are fitted on already-encoded targets, so a tree's
            # classes_ are integers in [0, k) and directly index the
            # forest's probability columns (a rare class-incomplete
            # bootstrap simply leaves its missing column at zero).
            cols = tree.classes_.astype(np.int64)
            acc[:, cols] += proba
        acc /= len(self.estimators_)
        return acc
