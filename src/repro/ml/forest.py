"""Random forest classifier (the paper's RF model).

Bagged CART trees with per-split feature subsampling.  Probabilities are
the across-tree mean of leaf class distributions; feature importances are
the across-tree mean of impurity-decrease importances — the statistic the
paper ranks in Table V.

``max_samples`` caps the bootstrap size, which is the practical lever for
training on captures with hundreds of thousands of packets without
sacrificing the ensemble's behaviour (each tree still sees an unbiased
bootstrap draw).

Training parallelizes across trees (``n_jobs``): every tree draws its
bootstrap and split randomness from its own spawned generator stream, so
the fitted forest is a pure function of ``seed`` — bit-identical for any
worker count, including serial.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.common.rng import as_generator

from .base import ClassifierMixin
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

#: Bootstrap redraws allowed before a class-incomplete draw is an error.
_BOOTSTRAP_ATTEMPTS = 8


def _fit_tree_chunk(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    bootstrap_size: int,
    tree_params: Dict[str, object],
    rngs: List[np.random.Generator],
) -> List[DecisionTreeClassifier]:
    """Fit one contiguous chunk of trees.

    Module-level so it pickles into :class:`ProcessPoolExecutor`
    workers; each tree consumes only its own generator, so chunk
    boundaries (and therefore ``n_jobs``) cannot change the result.
    """
    n = X.shape[0]
    trees: List[DecisionTreeClassifier] = []
    for rng in rngs:
        # A bootstrap draw can miss a class entirely on tiny or very
        # unbalanced data; redraw a few times, then fail loudly — a
        # silently class-blind tree poisons the ensemble's probabilities.
        for _attempt in range(_BOOTSTRAP_ATTEMPTS):
            idx = rng.integers(0, n, size=bootstrap_size)
            yb = y[idx]
            if np.unique(yb).size == n_classes:
                break
        else:
            raise ValueError(
                f"bootstrap draw missed a class {_BOOTSTRAP_ATTEMPTS} times "
                f"in a row (n={n}, max_samples={bootstrap_size}, "
                f"classes={n_classes}); the training set is too small or "
                "too unbalanced — raise max_samples or rebalance"
            )
        tree = DecisionTreeClassifier(seed=rng, **tree_params)
        # Trees see encoded labels directly; bypass re-encoding by
        # fitting through the public API on the encoded targets.
        tree.fit(X[idx], yb)
        trees.append(tree)
    return trees


class RandomForestClassifier(ClassifierMixin):
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_estimators : int
        Number of trees.
    max_depth : int, optional
        Per-tree depth cap.
    max_features : int | "sqrt" | None
        Features considered per split (default ``"sqrt"``, the standard
        forest heuristic).
    max_samples : int | float | None
        Bootstrap sample size per tree: absolute count, fraction of the
        training set, or ``None`` for the full size.
    min_samples_split, min_samples_leaf : int
        Passed to each tree.
    n_jobs : int
        Worker processes for training (``-1`` = CPU count).  The fitted
        forest is identical for every value — each tree owns a spawned
        RNG stream, so parallelism only moves work, never randomness.
    seed : int | numpy.random.Generator | None
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        max_features="sqrt",
        max_samples=None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        n_jobs: int = 1,
        seed=None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1: {n_estimators}")
        if n_jobs == 0:
            raise ValueError("n_jobs must be >= 1 or -1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.max_features = max_features
        self.max_samples = max_samples
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.n_jobs = int(n_jobs)
        self.seed = seed

    def _bootstrap_size(self, n: int) -> int:
        if self.max_samples is None:
            return n
        if isinstance(self.max_samples, float):
            if not 0.0 < self.max_samples <= 1.0:
                raise ValueError(f"max_samples fraction out of (0,1]: {self.max_samples}")
            return max(1, int(round(self.max_samples * n)))
        size = int(self.max_samples)
        if size < 1:
            raise ValueError(f"max_samples must be >= 1: {self.max_samples}")
        return min(size, n)

    def _resolve_jobs(self) -> int:
        jobs = self.n_jobs if self.n_jobs > 0 else (os.cpu_count() or 1)
        return max(1, min(jobs, self.n_estimators))

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        m = self._bootstrap_size(X.shape[0])
        k = self.classes_.size
        # One independent generator stream per tree: tree i's randomness
        # depends only on (seed, i), never on which worker fits it or on
        # how many trees precede it in a chunk.
        rngs = as_generator(self.seed).spawn(self.n_estimators)
        params: Dict[str, object] = dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
        )
        jobs = self._resolve_jobs()
        if jobs == 1:
            self.estimators_ = _fit_tree_chunk(X, y, k, m, params, rngs)
        else:
            bounds = np.linspace(0, self.n_estimators, jobs + 1).astype(int)
            chunks = [rngs[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(_fit_tree_chunk, X, y, k, m, params, c)
                    for c in chunks
                ]
                # Collect in submission order: estimators_[i] is tree i
                # regardless of which worker finished first.
                self.estimators_ = [t for fut in futures for t in fut.result()]
        self._tree_values_ = None  # invalidate the predict cache on refit

        imps = [
            t.feature_importances_
            for t in self.estimators_
            if t.feature_importances_.sum() > 0
        ]
        if imps:
            self.feature_importances_ = np.mean(imps, axis=0)
        else:  # all trees degenerate (e.g. constant features)
            self.feature_importances_ = np.zeros(X.shape[1])

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _padded_tree_values(self) -> List[np.ndarray]:
        """Per-tree leaf-value matrices aligned to the forest's class
        columns, built once and cached.

        Trees fitted on a (rare) class-incomplete bootstrap carry fewer
        probability columns than the forest; padding them up front turns
        the per-predict column scatter into a plain row gather.
        """
        cached = getattr(self, "_tree_values_", None)
        if cached is not None:
            return cached
        k = self.classes_.size
        values: List[np.ndarray] = []
        for tree in self.estimators_:
            cols = tree.classes_.astype(np.int64)
            if cols.size == k:
                values.append(tree.value_)
            else:
                padded = np.zeros((tree.value_.shape[0], k))
                padded[:, cols] = tree.value_
                values.append(padded)
        self._tree_values_ = values
        return values

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        k = self.classes_.size
        acc = np.zeros((X.shape[0], k))
        buf = np.empty((X.shape[0], k))
        for tree, values in zip(self.estimators_, self._padded_tree_values()):
            # One validated-input descent + one preallocated row gather
            # per tree; no per-tree allocation beyond the leaf indices.
            np.take(values, tree._apply(X), axis=0, out=buf)
            acc += buf
        acc /= len(self.estimators_)
        return acc
