"""Decision-tree introspection and export.

Operators deploying an anomaly detector need to see *why* it flags
traffic (the paper's §V deployment discussion is all about trust in the
pipeline).  These helpers render a fitted
:class:`~repro.ml.tree.DecisionTreeClassifier` as indented text or
Graphviz DOT, with feature names and class distributions at the leaves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .tree import DecisionTreeClassifier

__all__ = ["export_text", "export_dot", "decision_path"]


def _check(tree: DecisionTreeClassifier) -> None:
    if not hasattr(tree, "feature_"):
        raise RuntimeError("tree is not fitted")


def export_text(
    tree: DecisionTreeClassifier,
    feature_names: Optional[Sequence[str]] = None,
    max_depth: Optional[int] = None,
    digits: int = 4,
) -> str:
    """Indented if/else rendering of a fitted tree."""
    _check(tree)
    names = feature_names

    def fname(f: int) -> str:
        return names[f] if names is not None else f"feature[{f}]"

    lines: List[str] = []

    def walk(node: int, depth: int) -> None:
        indent = "|   " * depth
        if tree.feature_[node] == -1 or (max_depth is not None and depth >= max_depth):
            dist = tree.value_[node]
            cls = tree.classes_[dist.argmax()]
            lines.append(
                f"{indent}class: {cls} "
                f"(p={dist.max():.{digits}f}, n={tree.n_node_samples_[node]})"
            )
            return
        f, thr = int(tree.feature_[node]), float(tree.threshold_[node])
        lines.append(f"{indent}{fname(f)} <= {thr:.{digits}g}")
        walk(int(tree.children_left_[node]), depth + 1)
        lines.append(f"{indent}{fname(f)} >  {thr:.{digits}g}")
        walk(int(tree.children_right_[node]), depth + 1)

    walk(0, 0)
    return "\n".join(lines)


def export_dot(
    tree: DecisionTreeClassifier,
    feature_names: Optional[Sequence[str]] = None,
    class_names: Optional[Sequence[str]] = None,
) -> str:
    """Graphviz DOT source for a fitted tree (``dot -Tpng`` renders it)."""
    _check(tree)

    def fname(f: int) -> str:
        return feature_names[f] if feature_names is not None else f"x{f}"

    def cname(c) -> str:
        if class_names is not None:
            return str(class_names[list(tree.classes_).index(c)])
        return str(c)

    lines = ["digraph tree {", '  node [shape=box, fontname="monospace"];']
    for nid in range(tree.node_count):
        if tree.feature_[nid] == -1:
            dist = tree.value_[nid]
            label = (
                f"{cname(tree.classes_[dist.argmax()])}\\n"
                f"p={dist.max():.3f} n={tree.n_node_samples_[nid]}"
            )
            lines.append(f'  n{nid} [label="{label}", style=filled];')
        else:
            label = f"{fname(int(tree.feature_[nid]))} <= {tree.threshold_[nid]:.4g}"
            lines.append(f'  n{nid} [label="{label}"];')
            lines.append(f'  n{nid} -> n{tree.children_left_[nid]} [label="yes"];')
            lines.append(f'  n{nid} -> n{tree.children_right_[nid]} [label="no"];')
    lines.append("}")
    return "\n".join(lines)


def decision_path(
    tree: DecisionTreeClassifier,
    x,
    feature_names: Optional[Sequence[str]] = None,
) -> List[str]:
    """Human-readable list of the tests one sample passes through."""
    import numpy as np

    _check(tree)
    x = np.asarray(x, dtype=float).ravel()

    def fname(f: int) -> str:
        return feature_names[f] if feature_names is not None else f"feature[{f}]"

    out: List[str] = []
    node = 0
    while tree.feature_[node] != -1:
        f, thr = int(tree.feature_[node]), float(tree.threshold_[node])
        if x[f] <= thr:
            out.append(f"{fname(f)} = {x[f]:.6g} <= {thr:.6g}")
            node = int(tree.children_left_[node])
        else:
            out.append(f"{fname(f)} = {x[f]:.6g} >  {thr:.6g}")
            node = int(tree.children_right_[node])
    dist = tree.value_[node]
    out.append(f"=> class {tree.classes_[dist.argmax()]} (p={dist.max():.4f})")
    return out
