"""From-scratch machine-learning library.

Implements (on NumPy/SciPy only) the model set and tooling the paper
uses via scikit-learn: :class:`RandomForestClassifier`,
:class:`GaussianNB`, :class:`KNeighborsClassifier`,
:class:`MLPClassifier`, :class:`StandardScaler`, the §IV-A metric suite,
train/test splitting, permutation importances (Table V) and ensemble
voting (§IV-C4).
"""

from .base import ClassifierMixin
from .cross_validation import cross_val_score, kfold_indices
from .drift import DriftMonitor, population_stability_index
from .curves import (
    average_precision,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)
from .forest import RandomForestClassifier
from .importance import permutation_importance, top_k_features
from .knn import KNeighborsClassifier
from .metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from .mlp import MLPClassifier
from .model_selection import train_test_split
from .naive_bayes import GaussianNB
from .scaler import StandardScaler
from .tree import DecisionTreeClassifier
from .tree_export import decision_path, export_dot, export_text
from .voting import VotingClassifier, majority_vote

__all__ = [
    "ClassifierMixin",
    "cross_val_score",
    "kfold_indices",
    "roc_curve",
    "roc_auc_score",
    "precision_recall_curve",
    "average_precision",
    "DriftMonitor",
    "population_stability_index",
    "export_text",
    "export_dot",
    "decision_path",
    "RandomForestClassifier",
    "DecisionTreeClassifier",
    "GaussianNB",
    "KNeighborsClassifier",
    "MLPClassifier",
    "StandardScaler",
    "train_test_split",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "classification_report",
    "permutation_importance",
    "top_k_features",
    "majority_vote",
    "VotingClassifier",
]
