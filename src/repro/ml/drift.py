"""Feature-distribution drift monitoring.

The paper's §V worries about deploying a trained detector on a living
network: "network behavior can show quite varying patterns".  A model
trained in June silently decays as traffic drifts; the standard guard is
to monitor the live feature distribution against the training
distribution and alarm before accuracy falls.

:class:`DriftMonitor` uses the Population Stability Index (PSI) per
feature — the industry-standard drift score — against bin edges frozen
at fit time.  PSI < 0.1 is stable, 0.1–0.25 moderate shift, > 0.25
action required.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["population_stability_index", "DriftMonitor"]

_EPS = 1e-6


def _psi_profile(
    expected: np.ndarray, bins: int
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Frozen half of a PSI comparison: decile edges of ``expected``
    (endcapped at ±inf) and its clipped bin fractions.

    Returns ``(edges, None)`` for the degenerate single-bin case.
    """
    edges = np.quantile(expected, np.linspace(0, 1, bins + 1))
    edges[0], edges[-1] = -np.inf, np.inf
    edges = np.unique(edges)  # constant features collapse to few bins
    if edges.size < 3:
        # degenerate: a single catch-all bin, both fractions are 1
        return edges, None
    e_frac = np.histogram(expected, bins=edges)[0] / expected.size
    return edges, np.maximum(e_frac, _EPS)


def _psi_score(
    edges: np.ndarray, e_frac: Optional[np.ndarray], observed: np.ndarray
) -> float:
    """PSI of ``observed`` against a :func:`_psi_profile` capture."""
    if e_frac is None:
        return 0.0
    o_frac = np.histogram(observed, bins=edges)[0] / observed.size
    o_frac = np.maximum(o_frac, _EPS)
    return float(np.sum((o_frac - e_frac) * np.log(o_frac / e_frac)))


def population_stability_index(
    expected: np.ndarray, observed: np.ndarray, bins: int = 10
) -> float:
    """PSI between a reference sample and an observed sample.

    Bins are decile edges of ``expected``; both samples are histogrammed
    onto them and ``sum((o - e) * ln(o / e))`` is returned.
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    observed = np.asarray(observed, dtype=np.float64).ravel()
    if expected.size == 0 or observed.size == 0:
        raise ValueError("need non-empty samples")
    if bins < 2:
        raise ValueError(f"bins must be >= 2: {bins}")
    if not np.isfinite(expected).all() or not np.isfinite(observed).all():
        # NaN poisons np.quantile edges and Inf collapses the histogram
        # into the endcap bin — either way the score would be garbage
        # presented with full confidence.  Callers filter first
        # (DriftMonitor drops and counts non-finite rows).
        raise ValueError("samples must be finite (no NaN/Inf)")
    edges, e_frac = _psi_profile(expected, bins)
    return _psi_score(edges, e_frac, observed)


class DriftMonitor:
    """Per-feature PSI monitor frozen against the training distribution.

    Parameters
    ----------
    feature_names : sequence of str
    bins : int
        Decile-style bin count for PSI.
    warn_at, alarm_at : float
        The conventional PSI ladders (0.1 / 0.25).
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        bins: int = 10,
        warn_at: float = 0.1,
        alarm_at: float = 0.25,
    ) -> None:
        if not feature_names:
            raise ValueError("need at least one feature")
        if not 0 < warn_at <= alarm_at:
            raise ValueError("need 0 < warn_at <= alarm_at")
        self.feature_names = list(feature_names)
        self.bins = int(bins)
        self.warn_at = float(warn_at)
        self.alarm_at = float(alarm_at)
        self._reference: Optional[np.ndarray] = None
        #: Per-feature (edges, e_frac) frozen at fit time so the serving
        #: path never re-quantiles the reference on every window.
        self._profiles: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []
        #: Live rows dropped for carrying NaN/Inf (corrupted telemetry
        #: must not poison the PSI histograms, but the loss is counted).
        self.nonfinite_dropped = 0

    @property
    def fitted(self) -> bool:
        return self._reference is not None

    def fit(self, X: np.ndarray) -> "DriftMonitor":
        """Freeze the training-time feature distribution."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError("X must be (n, n_features)")
        if X.shape[0] < self.bins:
            raise ValueError("reference sample smaller than the bin count")
        if not np.isfinite(X).all():
            raise ValueError("reference sample must be finite (no NaN/Inf)")
        self._reference = X.copy()
        self._profiles = [
            _psi_profile(self._reference[:, j], self.bins)
            for j in range(self._reference.shape[1])
        ]
        return self

    def score(self, X: np.ndarray) -> Dict[str, float]:
        """PSI per feature for a live batch.

        Rows carrying NaN/Inf are dropped (and counted in
        :attr:`nonfinite_dropped`); an all-non-finite batch raises."""
        if self._reference is None:
            raise RuntimeError("monitor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError("X must be (n, n_features)")
        finite = np.isfinite(X).all(axis=1)
        if not finite.all():
            self.nonfinite_dropped += int(X.shape[0] - finite.sum())
            X = X[finite]
        if X.shape[0] == 0:
            raise ValueError("every observed row was non-finite")
        # The cached profile makes this bit-identical to calling
        # population_stability_index(reference, X[:, j]) — same edges,
        # same clipped fractions — without re-quantiling the reference
        # on every serving window.
        return {
            name: _psi_score(*self._profiles[j], X[:, j])
            for j, name in enumerate(self.feature_names)
        }

    def report(self, X: np.ndarray) -> dict:
        """Scores plus the worst offender and an overall status."""
        scores = self.score(X)
        worst = max(scores, key=scores.get)
        worst_psi = scores[worst]
        status = (
            "alarm" if worst_psi > self.alarm_at
            else "warn" if worst_psi > self.warn_at
            else "stable"
        )
        return {
            "status": status,
            "worst_feature": worst,
            "worst_psi": worst_psi,
            "scores": scores,
            "drifted": [n for n, s in scores.items() if s > self.warn_at],
        }

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Frozen reference + drop counter as a plain picklable dict.

        The reference array is copied so the snapshot cannot alias a
        monitor that is later refitted; restoring yields bit-identical
        PSI scores for any subsequent batch (the lifecycle equivalence
        suite depends on this riding the coordinator checkpoints)."""
        return {
            "reference": (
                None if self._reference is None else self._reference.copy()
            ),
            "nonfinite_dropped": self.nonfinite_dropped,
        }

    def state_restore(self, state: dict) -> None:
        """Replace monitor state with a :meth:`state_snapshot` capture
        (configuration — names, bins, thresholds — is not restored;
        construct with the same recipe).  The PSI profiles are rebuilt
        from the restored reference, so they are bit-identical to the
        snapshotted monitor's without riding the checkpoint."""
        ref = state["reference"]
        self._reference = None if ref is None else np.array(ref, copy=True)
        self._profiles = (
            []
            if self._reference is None
            else [
                _psi_profile(self._reference[:, j], self.bins)
                for j in range(self._reference.shape[1])
            ]
        )
        self.nonfinite_dropped = int(state["nonfinite_dropped"])
