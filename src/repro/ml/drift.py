"""Feature-distribution drift monitoring.

The paper's §V worries about deploying a trained detector on a living
network: "network behavior can show quite varying patterns".  A model
trained in June silently decays as traffic drifts; the standard guard is
to monitor the live feature distribution against the training
distribution and alarm before accuracy falls.

:class:`DriftMonitor` uses the Population Stability Index (PSI) per
feature — the industry-standard drift score — against bin edges frozen
at fit time.  PSI < 0.1 is stable, 0.1–0.25 moderate shift, > 0.25
action required.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["population_stability_index", "DriftMonitor"]

_EPS = 1e-6


def population_stability_index(
    expected: np.ndarray, observed: np.ndarray, bins: int = 10
) -> float:
    """PSI between a reference sample and an observed sample.

    Bins are decile edges of ``expected``; both samples are histogrammed
    onto them and ``sum((o - e) * ln(o / e))`` is returned.
    """
    expected = np.asarray(expected, dtype=np.float64).ravel()
    observed = np.asarray(observed, dtype=np.float64).ravel()
    if expected.size == 0 or observed.size == 0:
        raise ValueError("need non-empty samples")
    if bins < 2:
        raise ValueError(f"bins must be >= 2: {bins}")
    edges = np.quantile(expected, np.linspace(0, 1, bins + 1))
    edges[0], edges[-1] = -np.inf, np.inf
    edges = np.unique(edges)  # constant features collapse to few bins
    if edges.size < 3:
        # degenerate: a single catch-all bin, both fractions are 1
        return 0.0
    e_frac = np.histogram(expected, bins=edges)[0] / expected.size
    o_frac = np.histogram(observed, bins=edges)[0] / observed.size
    e_frac = np.maximum(e_frac, _EPS)
    o_frac = np.maximum(o_frac, _EPS)
    return float(np.sum((o_frac - e_frac) * np.log(o_frac / e_frac)))


class DriftMonitor:
    """Per-feature PSI monitor frozen against the training distribution.

    Parameters
    ----------
    feature_names : sequence of str
    bins : int
        Decile-style bin count for PSI.
    warn_at, alarm_at : float
        The conventional PSI ladders (0.1 / 0.25).
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        bins: int = 10,
        warn_at: float = 0.1,
        alarm_at: float = 0.25,
    ) -> None:
        if not feature_names:
            raise ValueError("need at least one feature")
        if not 0 < warn_at <= alarm_at:
            raise ValueError("need 0 < warn_at <= alarm_at")
        self.feature_names = list(feature_names)
        self.bins = int(bins)
        self.warn_at = float(warn_at)
        self.alarm_at = float(alarm_at)
        self._reference: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "DriftMonitor":
        """Freeze the training-time feature distribution."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError("X must be (n, n_features)")
        if X.shape[0] < self.bins:
            raise ValueError("reference sample smaller than the bin count")
        self._reference = X.copy()
        return self

    def score(self, X: np.ndarray) -> Dict[str, float]:
        """PSI per feature for a live batch."""
        if self._reference is None:
            raise RuntimeError("monitor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError("X must be (n, n_features)")
        return {
            name: population_stability_index(
                self._reference[:, j], X[:, j], bins=self.bins
            )
            for j, name in enumerate(self.feature_names)
        }

    def report(self, X: np.ndarray) -> dict:
        """Scores plus the worst offender and an overall status."""
        scores = self.score(X)
        worst = max(scores, key=scores.get)
        worst_psi = scores[worst]
        status = (
            "alarm" if worst_psi > self.alarm_at
            else "warn" if worst_psi > self.warn_at
            else "stable"
        )
        return {
            "status": status,
            "worst_feature": worst,
            "worst_psi": worst_psi,
            "scores": scores,
            "drifted": [n for n, s in scores.items() if s > self.warn_at],
        }
