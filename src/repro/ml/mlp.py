"""Multi-layer perceptron classifier (the paper's NN / MLP models).

A NumPy implementation of the scikit-learn ``MLPClassifier`` subset the
paper uses: fully connected ReLU hidden layers, softmax output,
cross-entropy loss, L2 regularization, and the Adam optimizer with
mini-batches.  The paper's offline study uses hidden layers (32, 16, 8);
its testbed study uses (64, 32, 16) — both are just the
``hidden_layer_sizes`` argument here.

All math is batched matrix algebra on C-contiguous float64 arrays; no
per-sample Python loops.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.common.rng import as_generator

from .base import ClassifierMixin

__all__ = ["MLPClassifier"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0, out=z)


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=1, keepdims=True)
    return z


class MLPClassifier(ClassifierMixin):
    """Feed-forward neural network trained with Adam.

    Parameters
    ----------
    hidden_layer_sizes : sequence of int
        Neurons per hidden layer (paper: (32, 16, 8) offline,
        (64, 32, 16) on the testbed).
    alpha : float
        L2 penalty.
    learning_rate : float
        Adam step size.
    batch_size : int
        Mini-batch size.
    max_epochs : int
        Upper bound on passes over the data.
    tol : float
        Relative training-loss improvement below which patience counts
        down; training stops when patience is exhausted.
    patience : int
        Epochs of non-improvement tolerated before early stop.
    seed : int | numpy.random.Generator | None
    """

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (32, 16, 8),
        alpha: float = 1e-4,
        learning_rate: float = 1e-2,
        batch_size: int = 128,
        max_epochs: int = 120,
        tol: float = 1e-4,
        patience: int = 8,
        seed=None,
    ) -> None:
        sizes = tuple(int(s) for s in hidden_layer_sizes)
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError(f"invalid hidden_layer_sizes: {hidden_layer_sizes}")
        if learning_rate <= 0 or batch_size < 1 or max_epochs < 1:
            raise ValueError("invalid optimizer hyper-parameters")
        self.hidden_layer_sizes = sizes
        self.alpha = float(alpha)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.max_epochs = int(max_epochs)
        self.tol = float(tol)
        self.patience = int(patience)
        self.seed = seed

    # ------------------------------------------------------------------
    def _init_params(self, n_in: int, n_out: int, rng) -> None:
        dims = (n_in, *self.hidden_layer_sizes, n_out)
        self.coefs_ = []
        self.intercepts_ = []
        for a, b in zip(dims[:-1], dims[1:]):
            # He initialization suits ReLU layers.
            w = rng.normal(0.0, np.sqrt(2.0 / a), size=(a, b))
            self.coefs_.append(w)
            self.intercepts_.append(np.zeros(b))

    def _forward(self, X: np.ndarray) -> Tuple[list, np.ndarray]:
        acts = [X]
        h = X
        last = len(self.coefs_) - 1
        for i, (W, b) in enumerate(zip(self.coefs_, self.intercepts_)):
            z = h @ W + b
            h = _softmax(z) if i == last else _relu(z)
            acts.append(h)
        return acts, h

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = as_generator(self.seed)
        n, d = X.shape
        k = self.classes_.size
        Y = np.zeros((n, k))
        Y[np.arange(n), y] = 1.0
        self._init_params(d, k, rng)

        # Adam state
        m_w = [np.zeros_like(w) for w in self.coefs_]
        v_w = [np.zeros_like(w) for w in self.coefs_]
        m_b = [np.zeros_like(b) for b in self.intercepts_]
        v_b = [np.zeros_like(b) for b in self.intercepts_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        self.loss_curve_ = []
        best_loss = np.inf
        stall = 0
        bs = min(self.batch_size, n)

        for _epoch in range(self.max_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, bs):
                idx = order[start : start + bs]
                xb, yb = X[idx], Y[idx]
                acts, out = self._forward(xb)
                # cross-entropy + L2
                batch_loss = -np.sum(yb * np.log(np.maximum(out, 1e-12))) / idx.size
                batch_loss += (
                    0.5 * self.alpha * sum(float((w * w).sum()) for w in self.coefs_)
                    / n
                )
                epoch_loss += batch_loss * idx.size

                # backprop: softmax+CE gives delta = (out - yb)/B at the top
                delta = (out - yb) / idx.size
                step += 1
                for li in range(len(self.coefs_) - 1, -1, -1):
                    gw = acts[li].T @ delta + self.alpha * self.coefs_[li] / n
                    gb = delta.sum(axis=0)
                    if li > 0:
                        delta = (delta @ self.coefs_[li].T) * (acts[li] > 0)
                    # Adam update
                    m_w[li] = beta1 * m_w[li] + (1 - beta1) * gw
                    v_w[li] = beta2 * v_w[li] + (1 - beta2) * gw * gw
                    m_b[li] = beta1 * m_b[li] + (1 - beta1) * gb
                    v_b[li] = beta2 * v_b[li] + (1 - beta2) * gb * gb
                    mw_hat = m_w[li] / (1 - beta1**step)
                    vw_hat = v_w[li] / (1 - beta2**step)
                    mb_hat = m_b[li] / (1 - beta1**step)
                    vb_hat = v_b[li] / (1 - beta2**step)
                    self.coefs_[li] -= (
                        self.learning_rate * mw_hat / (np.sqrt(vw_hat) + eps)
                    )
                    self.intercepts_[li] -= (
                        self.learning_rate * mb_hat / (np.sqrt(vb_hat) + eps)
                    )

            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        _, out = self._forward(X)
        return out
