"""Shared estimator plumbing.

All classifiers follow the familiar ``fit(X, y) / predict(X) /
predict_proba(X)`` protocol with a fitted ``classes_`` attribute.
:class:`ClassifierMixin` centralizes input validation and label
encoding so the individual algorithms only see dense float matrices and
integer-coded targets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ClassifierMixin", "check_Xy", "check_X"]


def check_X(X) -> np.ndarray:
    """Coerce features to a C-contiguous float64 2-D matrix."""
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[None, :]
    if X.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("features contain NaN or infinity")
    return X


def check_Xy(X, y) -> tuple:
    X = check_X(X)
    y = np.asarray(y).ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"length mismatch: X {X.shape[0]} vs y {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    return X, y


class ClassifierMixin:
    """Label-encoding base for classifiers.

    Subclasses implement ``_fit(X, y_encoded)`` and
    ``_predict_proba(X)``; this mixin handles class discovery, encoding,
    argmax prediction and fitted-state checks.
    """

    classes_: np.ndarray

    def fit(self, X, y) -> "ClassifierMixin":
        X, y = check_Xy(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes to fit a classifier")
        self.n_features_ = X.shape[1]
        self._fit(X, y_enc.astype(np.int64))
        return self

    def _check_predict_input(self, X) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"feature count mismatch: fitted {self.n_features_}, got {X.shape[1]}"
            )
        return X

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities, columns ordered as ``classes_``."""
        X = self._check_predict_input(X)
        proba = self._predict_proba(X)
        return proba

    def predict(self, X) -> np.ndarray:
        """Most probable class for each row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy on the given data."""
        from .metrics import accuracy_score

        return accuracy_score(np.asarray(y).ravel(), self.predict(X))

    # subclass hooks -----------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError
