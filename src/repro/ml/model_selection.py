"""Train/test splitting.

The paper trains with a 90:10 random split (Table III) and with a
time-based split where June 11 is held out entirely (Table IV, the
zero-day protocol).  :func:`train_test_split` covers the first;
time-based splits are plain boolean masks on timestamps and live with
the experiment code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.common.rng import as_generator

__all__ = ["train_test_split"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.1,
    stratify: bool = False,
    seed=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test partitions.

    Parameters
    ----------
    X, y : arrays with matching first dimension.
    test_size : float
        Fraction assigned to the test set (paper: 0.1).
    stratify : bool
        Preserve the class balance of ``y`` in both partitions (useful
        when attack packets are rare).
    seed : int | numpy.random.Generator | None

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"length mismatch: X {X.shape[0]} vs y {y.shape[0]}")
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1): {test_size}")
    rng = as_generator(seed)

    if not stratify:
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_size)))
        test_idx = order[:n_test]
        train_idx = order[n_test:]
    else:
        test_parts = []
        train_parts = []
        for cls in np.unique(y):
            idx = np.flatnonzero(y == cls)
            idx = rng.permutation(idx)
            k = max(1, int(round(idx.size * test_size))) if idx.size > 1 else 0
            test_parts.append(idx[:k])
            train_parts.append(idx[k:])
        test_idx = rng.permutation(np.concatenate(test_parts))
        train_idx = rng.permutation(np.concatenate(train_parts))

    if train_idx.size == 0:
        raise ValueError("split left the training set empty")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
