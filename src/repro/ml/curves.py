"""Threshold curves: ROC / AUC and precision-recall.

The paper reports fixed-threshold metrics only; curve analysis is the
standard next step when tuning an anomaly detector's alarm threshold
(false alarms being the §II-C concern with anomaly-based IDS).  All
functions consume the positive-class score column from
``predict_proba`` and are fully vectorized.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["roc_curve", "roc_auc_score", "precision_recall_curve", "average_precision"]


def _validate(y_true, scores):
    y_true = np.asarray(y_true).ravel().astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same length")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("y_true must be binary 0/1")
    if y_true.min() == y_true.max():
        raise ValueError("need both classes present")
    return y_true, scores


def roc_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate, thresholds.

    Thresholds descend over the distinct score values; the curve starts
    at (0, 0) with threshold +inf and ends at (1, 1).
    """
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(scores, kind="stable")[::-1]
    y = y_true[order]
    s = scores[order]
    # indices where the score strictly drops = candidate thresholds
    distinct = np.flatnonzero(np.diff(s) != 0)
    idx = np.r_[distinct, y.size - 1]
    tps = np.cumsum(y)[idx]
    fps = (idx + 1) - tps
    P = y_true.sum()
    N = y_true.size - P
    tpr = np.r_[0.0, tps / P]
    fpr = np.r_[0.0, fps / N]
    thresholds = np.r_[np.inf, s[idx]]
    return fpr, tpr, thresholds


def roc_auc_score(y_true, scores) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.sum(np.diff(fpr) * (tpr[1:] + tpr[:-1]) * 0.5))


def precision_recall_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision, recall, thresholds (recall ascending)."""
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(scores, kind="stable")[::-1]
    y = y_true[order]
    s = scores[order]
    distinct = np.flatnonzero(np.diff(s) != 0)
    idx = np.r_[distinct, y.size - 1]
    tps = np.cumsum(y)[idx]
    predicted = idx + 1
    precision = tps / predicted
    recall = tps / y_true.sum()
    return precision, recall, s[idx]


def average_precision(y_true, scores) -> float:
    """Area under the PR curve via the step-wise AP definition."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    recall = np.r_[0.0, recall]
    return float(np.sum(np.diff(recall) * precision))
