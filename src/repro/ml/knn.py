"""K-nearest-neighbors classifier.

Backed by :class:`scipy.spatial.cKDTree` for O(log n) queries.  The paper
notes KNN's "relatively slower prediction times" kept it out of the live
testbed and forced a 1/1000 subsample in the offline study (Table III
footnote); both behaviours are visible here too, which the benchmark for
Table III documents.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .base import ClassifierMixin

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(ClassifierMixin):
    """KNN with uniform or inverse-distance neighbor weighting.

    Parameters
    ----------
    n_neighbors : int
        Number of neighbors (paper-era scikit-learn default: 5).
    weights : {"uniform", "distance"}
        Neighbor vote weighting.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1: {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights: {weights!r}")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if X.shape[0] < self.n_neighbors:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={X.shape[0]}"
            )
        self._tree = cKDTree(X)
        self._y = y

    #: Query rows per kd-tree call.  One monolithic query materializes
    #: the full (n, k) distance/index result while the tree walk runs;
    #: chunking keeps the working set cache-sized without changing any
    #: output (queries are row-independent).
    QUERY_CHUNK = 65536

    def _query(self, X: np.ndarray):
        """kd-tree lookup: all cores, cache-sized chunks.

        ``workers=-1`` fans the tree walk over every core (scipy
        releases the GIL per worker); results are deterministic — worker
        count only partitions the query rows.
        """
        k = self.n_neighbors
        n = X.shape[0]
        if n <= self.QUERY_CHUNK:
            return self._tree.query(X, k=k, workers=-1)
        dist = np.empty((n, k) if k > 1 else (n,), dtype=np.float64)
        idx = np.empty((n, k) if k > 1 else (n,), dtype=np.intp)
        for start in range(0, n, self.QUERY_CHUNK):
            end = min(start + self.QUERY_CHUNK, n)
            dist[start:end], idx[start:end] = self._tree.query(
                X[start:end], k=k, workers=-1
            )
        return dist, idx

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        dist, idx = self._query(X)
        if self.n_neighbors == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        labels = self._y[idx]  # (n_samples, k)
        n_classes = self.classes_.size
        if self.weights == "uniform":
            w = np.ones_like(dist)
        else:
            # Exact matches get full weight; others inverse distance.
            with np.errstate(divide="ignore"):
                w = 1.0 / dist
            exact = ~np.isfinite(w)
            if exact.any():
                w[exact.any(axis=1)] = 0.0
                w[exact] = 1.0
        # Weighted per-class vote, vectorized with bincount over flat ids.
        rows = np.repeat(np.arange(X.shape[0]), self.n_neighbors)
        flat = rows * n_classes + labels.ravel()
        votes = np.bincount(
            flat, weights=w.ravel(), minlength=X.shape[0] * n_classes
        ).reshape(X.shape[0], n_classes)
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return votes / totals
