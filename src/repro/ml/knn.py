"""K-nearest-neighbors classifier.

Backed by :class:`scipy.spatial.cKDTree` for O(log n) queries.  The paper
notes KNN's "relatively slower prediction times" kept it out of the live
testbed and forced a 1/1000 subsample in the offline study (Table III
footnote); both behaviours are visible here too, which the benchmark for
Table III documents.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .base import ClassifierMixin

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(ClassifierMixin):
    """KNN with uniform or inverse-distance neighbor weighting.

    Parameters
    ----------
    n_neighbors : int
        Number of neighbors (paper-era scikit-learn default: 5).
    weights : {"uniform", "distance"}
        Neighbor vote weighting.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1: {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights: {weights!r}")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if X.shape[0] < self.n_neighbors:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={X.shape[0]}"
            )
        self._tree = cKDTree(X)
        self._y = y

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        dist, idx = self._tree.query(X, k=self.n_neighbors)
        if self.n_neighbors == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        labels = self._y[idx]  # (n_samples, k)
        n_classes = self.classes_.size
        if self.weights == "uniform":
            w = np.ones_like(dist)
        else:
            # Exact matches get full weight; others inverse distance.
            with np.errstate(divide="ignore"):
                w = 1.0 / dist
            exact = ~np.isfinite(w)
            if exact.any():
                w[exact.any(axis=1)] = 0.0
                w[exact] = 1.0
        # Weighted per-class vote, vectorized with bincount over flat ids.
        rows = np.repeat(np.arange(X.shape[0]), self.n_neighbors)
        flat = rows * n_classes + labels.ravel()
        votes = np.bincount(
            flat, weights=w.ravel(), minlength=X.shape[0] * n_classes
        ).reshape(X.shape[0], n_classes)
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return votes / totals
