"""CART decision tree with a fully vectorized split search.

The split search is the hot path of random-forest training, so it is
written NumPy-first: per candidate feature the node's rows are sorted
once, class counts become prefix sums, and the Gini impurity of *every*
candidate threshold is evaluated in one vectorized expression — no
per-threshold Python loop.  Tree structure is stored in flat parallel
arrays (``feature_``, ``threshold_``, ``children_left_`` …), which makes
prediction a vectorized level-by-level descent instead of per-sample
recursion.

Impurity-decrease feature importances (the quantity behind the paper's
Table V for the RF model) are accumulated during construction exactly as
in scikit-learn: each split contributes its weighted impurity decrease
to the split feature, normalized at the end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.rng import as_generator

from .base import ClassifierMixin

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts (vectorized over rows).

    ``counts`` has shape (m, k); ``totals`` shape (m,).  Rows with zero
    total get impurity 0.
    """
    safe = np.maximum(totals, 1)[:, None]
    p = counts / safe
    return 1.0 - np.einsum("ij,ij->i", p, p)


class DecisionTreeClassifier(ClassifierMixin):
    """Binary-split CART classifier (Gini criterion).

    Parameters
    ----------
    max_depth : int, optional
        Depth cap; ``None`` grows until purity/minimum-size limits.
    min_samples_split : int
        Minimum node size eligible for splitting.
    min_samples_leaf : int
        Minimum samples on each side of a split.
    max_features : int | "sqrt" | None
        Features examined per split; ``"sqrt"`` is the forest default.
    seed : int | numpy.random.Generator | None
        Randomness for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        seed=None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1: {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2: {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1: {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = seed

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        mf = int(self.max_features)
        if not 1 <= mf <= n_features:
            raise ValueError(f"max_features out of range: {self.max_features}")
        return mf

    def _best_split(self, X, y_onehot, idx, features, presort=None, ranks=None):
        """Best (feature, threshold, gain) over the candidate features.

        Returns ``(feature, threshold, impurity_decrease, left_mask)`` or
        ``None`` when no valid split exists.

        ``presort``/``ranks`` are the fit-time per-feature sort caches.
        Dense nodes (holding at least 1/4 of the samples — the root and
        the top levels, where the sort work concentrates) don't sort at
        all: they *filter* the feature's global presorted order by node
        membership, an O(n_samples) vectorized scan replacing an
        O(n log n) argsort.  Small, deep nodes sort the gathered int32
        ranks — distinct integer keys, so the unstable default sort
        yields the stable value-order permutation.  Both reuses are
        exact, not approximate: a node's index set is ascending
        (children inherit parent order), so ordering by (value, global
        position) — what the filtered order and the ranks both encode —
        tie-breaks exactly like the stable value-sort of the node's
        column, and thresholds/prefix counts come out bit-for-bit the
        same as the direct argsort.
        """
        n = idx.size
        msl = self.min_samples_leaf
        counts_total = y_onehot[idx].sum(axis=0)
        parent_gini = _gini_from_counts(counts_total[None, :], np.array([n]))[0]
        if parent_gini == 0.0:
            return None

        is_root = n == X.shape[0]
        use_filter = presort is not None and n * 4 >= X.shape[0]
        node_mask = None
        if use_filter and not is_root:
            node_mask = np.zeros(X.shape[0], dtype=bool)
            node_mask[idx] = True
        best = None
        best_score = parent_gini  # must strictly improve
        for f in features:
            if use_filter:
                og = presort[:, f]
                sub = og if is_root else og[node_mask[og]]
                xs_sorted = X[sub, f]
                onehot_sorted = y_onehot[sub]
            else:
                xs = X[idx, f]
                if ranks is not None:
                    order = np.argsort(ranks[idx, f])
                else:
                    order = np.argsort(xs, kind="stable")
                xs_sorted = xs[order]
                # Prefix class counts after each position i (split
                # between i and i+1).
                onehot_sorted = y_onehot[idx[order]]
            left_counts = np.cumsum(onehot_sorted, axis=0)[:-1]  # (n-1, k)
            nl = np.arange(1, n)
            nr = n - nl
            valid = xs_sorted[1:] > xs_sorted[:-1]
            if msl > 1:
                valid &= (nl >= msl) & (nr >= msl)
            if not valid.any():
                continue
            right_counts = counts_total[None, :] - left_counts
            gl = _gini_from_counts(left_counts, nl)
            gr = _gini_from_counts(right_counts, nr)
            weighted = (nl * gl + nr * gr) / n
            weighted[~valid] = np.inf
            pos = int(np.argmin(weighted))
            if weighted[pos] < best_score - 1e-12:
                best_score = weighted[pos]
                thr = 0.5 * (xs_sorted[pos] + xs_sorted[pos + 1])
                best = (int(f), float(thr), parent_gini - weighted[pos])
        if best is None:
            return None
        f, thr, gain = best
        return f, thr, gain, X[idx, f] <= thr

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = as_generator(self.seed)
        n_samples, n_features = X.shape
        k = self.classes_.size
        mf = self._resolve_max_features(n_features)
        y_onehot = np.zeros((n_samples, k), dtype=np.float64)
        y_onehot[np.arange(n_samples), y] = 1.0

        # Per-feature sort caches, computed once per fit: the stable
        # value order (reused verbatim by the root split search) and its
        # inverse permutation as int32 ranks (interior nodes sort these
        # instead of re-sorting float64 columns at every node).
        # Column-major: the split search reads one feature column at a
        # time, so F-order keeps each gather contiguous.
        presort = np.empty((n_samples, n_features), dtype=np.int32, order="F")
        ranks = np.empty((n_samples, n_features), dtype=np.int32, order="F")
        pos = np.arange(n_samples, dtype=np.int32)
        for f in range(n_features):
            order = np.argsort(X[:, f], kind="stable").astype(np.int32)
            presort[:, f] = order
            ranks[order, f] = pos

        feature, threshold = [], []
        left, right = [], []
        value, n_node = [], []
        importances = np.zeros(n_features)

        # Iterative construction: stack of (node_id, indices, depth).
        root_idx = np.arange(n_samples)
        stack = [(0, root_idx, 0)]
        feature.append(_LEAF)
        threshold.append(0.0)
        left.append(_LEAF)
        right.append(_LEAF)
        value.append(None)
        n_node.append(n_samples)

        while stack:
            node_id, idx, depth = stack.pop()
            counts = y_onehot[idx].sum(axis=0)
            value[node_id] = counts
            n_node[node_id] = idx.size

            depth_ok = self.max_depth is None or depth < self.max_depth
            size_ok = idx.size >= self.min_samples_split
            split = None
            if depth_ok and size_ok:
                if mf < n_features:
                    cand = rng.choice(n_features, size=mf, replace=False)
                else:
                    cand = np.arange(n_features)
                split = self._best_split(X, y_onehot, idx, cand, presort, ranks)
            if split is None:
                continue  # stays a leaf

            f, thr, gain, left_mask = split
            importances[f] += idx.size / n_samples * gain
            li, ri = idx[left_mask], idx[~left_mask]

            feature[node_id] = f
            threshold[node_id] = thr
            for child_idx in (li, ri):
                feature.append(_LEAF)
                threshold.append(0.0)
                left.append(_LEAF)
                right.append(_LEAF)
                value.append(None)
                n_node.append(child_idx.size)
            left[node_id] = len(feature) - 2
            right[node_id] = len(feature) - 1
            stack.append((left[node_id], li, depth + 1))
            stack.append((right[node_id], ri, depth + 1))

        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold, dtype=np.float64)
        self.children_left_ = np.asarray(left, dtype=np.int64)
        self.children_right_ = np.asarray(right, dtype=np.int64)
        val = np.vstack(value)
        self.value_ = val / np.maximum(val.sum(axis=1, keepdims=True), 1.0)
        self.n_node_samples_ = np.asarray(n_node, dtype=np.int64)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def apply(self, X) -> np.ndarray:
        """Leaf index reached by each sample (vectorized descent)."""
        return self._apply(self._check_predict_input(X))

    def _apply(self, X: np.ndarray) -> np.ndarray:
        """:meth:`apply` minus input validation, for callers (the forest,
        :meth:`_predict_proba`) whose input is already validated."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[node]
            active = feat != _LEAF
            if not active.any():
                return node
            rows = np.flatnonzero(active)
            f = feat[rows]
            thr = self.threshold_[node[rows]]
            go_left = X[rows, f] <= thr
            nxt = np.where(
                go_left,
                self.children_left_[node[rows]],
                self.children_right_[node[rows]],
            )
            node[rows] = nxt

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        # X is already validated by the public predict_proba entry.
        leaves = self._apply(X)
        return self.value_[leaves]

    @property
    def node_count(self) -> int:
        if not hasattr(self, "feature_"):
            raise RuntimeError("tree is not fitted")
        return int(self.feature_.shape[0])

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree.

        Level-by-level frontier walk: one vectorized gather per tree
        level instead of a Python loop over every node.
        """
        if not hasattr(self, "feature_"):
            raise RuntimeError("tree is not fitted")
        frontier = np.zeros(1, dtype=np.int64)  # root
        levels = -1
        while frontier.size:
            levels += 1
            internal = frontier[self.feature_[frontier] != _LEAF]
            frontier = np.concatenate(
                (self.children_left_[internal], self.children_right_[internal])
            )
        return levels
