"""Gaussian Naive Bayes (the paper's GNB model).

Class-conditional features are modeled as independent Gaussians; the
log-posterior is a vectorized sum of per-feature log densities plus the
log prior.  Variance smoothing follows scikit-learn: a fraction of the
largest feature variance is added to every variance so constant features
don't produce degenerate densities.
"""

from __future__ import annotations

import numpy as np

from .base import ClassifierMixin

__all__ = ["GaussianNB"]


class GaussianNB(ClassifierMixin):
    """Gaussian Naive Bayes classifier.

    Parameters
    ----------
    var_smoothing : float
        Portion of the largest feature variance added to all variances
        for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be >= 0: {var_smoothing}")
        self.var_smoothing = float(var_smoothing)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_classes = self.classes_.size
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        for c in range(n_classes):
            Xc = X[y == c]
            self.theta_[c] = Xc.mean(axis=0)
            self.var_[c] = Xc.var(axis=0)
            self.class_prior_[c] = Xc.shape[0] / X.shape[0]
        self.epsilon_ = self.var_smoothing * float(X.var(axis=0).max())
        self.var_ += self.epsilon_
        # A fully constant dataset can still leave zero variance.
        self.var_[self.var_ == 0.0] = 1e-300

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        # (n_samples, n_classes): log P(c) + sum_f log N(x_f; theta, var)
        n_classes = self.classes_.size
        jll = np.empty((X.shape[0], n_classes))
        for c in range(n_classes):
            diff = X - self.theta_[c]
            log_density = -0.5 * (
                np.log(2.0 * np.pi * self.var_[c]) + diff * diff / self.var_[c]
            )
            jll[:, c] = np.log(self.class_prior_[c]) + log_density.sum(axis=1)
        return jll

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
