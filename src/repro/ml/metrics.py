"""Classification metrics (paper §IV-A).

Implements exactly the metric set the paper evaluates with — accuracy,
recall, precision, F1-score and the 2×2 confusion matrix — using the TP /
TN / FP / FN formulas quoted in Section IV-A.  Layout of the confusion
matrix matches scikit-learn's convention (rows = true class, columns =
predicted class), so ``cm[1, 1]`` is TP for the positive (attack) class.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "classification_report",
]


def _validate(y_true, y_pred):
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred, n_classes: int = 2) -> np.ndarray:
    """Counts matrix ``cm[i, j]`` = samples with true ``i`` predicted ``j``.

    Labels must already be integer-coded in ``[0, n_classes)``.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    y_true = y_true.astype(np.int64)
    y_pred = y_pred.astype(np.int64)
    if (y_true < 0).any() or (y_true >= n_classes).any():
        raise ValueError("y_true labels out of range")
    if (y_pred < 0).any() or (y_pred >= n_classes).any():
        raise ValueError("y_pred labels out of range")
    idx = y_true * n_classes + y_pred
    return np.bincount(idx, minlength=n_classes * n_classes).reshape(
        n_classes, n_classes
    )


def accuracy_score(y_true, y_pred) -> float:
    """(TP + TN) / (TP + TN + FP + FN)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, positive: int = 1, zero_division: float = 0.0) -> float:
    """TP / (TP + FP); ``zero_division`` returned when nothing is predicted positive."""
    y_true, y_pred = _validate(y_true, y_pred)
    pred_pos = y_pred == positive
    denom = int(pred_pos.sum())
    if denom == 0:
        return float(zero_division)
    tp = int((pred_pos & (y_true == positive)).sum())
    return tp / denom


def recall_score(y_true, y_pred, positive: int = 1, zero_division: float = 0.0) -> float:
    """TP / (TP + FN); ``zero_division`` returned when no true positives exist."""
    y_true, y_pred = _validate(y_true, y_pred)
    true_pos = y_true == positive
    denom = int(true_pos.sum())
    if denom == 0:
        return float(zero_division)
    tp = int((true_pos & (y_pred == positive)).sum())
    return tp / denom


def f1_score(y_true, y_pred, positive: int = 1) -> float:
    """Harmonic mean of precision and recall.

    Matches the paper's Table IV edge case: with zero precision and zero
    recall the harmonic mean is defined as 0; the 0.5 the paper reports
    for the all-negative sFlow NN row is the *accuracy-flavored* F1 of a
    degenerate averaging — we additionally expose
    :func:`classification_report` whose ``f1_macro`` reproduces that 0.5.
    """
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def classification_report(y_true, y_pred, positive: int = 1) -> Dict[str, float]:
    """All four paper metrics at once, plus macro-F1 and the raw counts.

    Returns
    -------
    dict
        Keys: ``accuracy``, ``recall``, ``precision``, ``f1``,
        ``f1_macro``, ``tp``, ``tn``, ``fp``, ``fn``.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    pos_t = y_true == positive
    pos_p = y_pred == positive
    tp = int((pos_t & pos_p).sum())
    tn = int((~pos_t & ~pos_p).sum())
    fp = int((~pos_t & pos_p).sum())
    fn = int((pos_t & ~pos_p).sum())
    # F1 of the negative class, for the macro average
    p_neg = tn / (tn + fn) if (tn + fn) else 0.0
    r_neg = tn / (tn + fp) if (tn + fp) else 0.0
    f1_neg = 2 * p_neg * r_neg / (p_neg + r_neg) if (p_neg + r_neg) else 0.0
    f1_pos = f1_score(y_true, y_pred, positive)
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "recall": recall_score(y_true, y_pred, positive),
        "precision": precision_score(y_true, y_pred, positive),
        "f1": f1_pos,
        "f1_macro": 0.5 * (f1_pos + f1_neg),
        "tp": tp,
        "tn": tn,
        "fp": fp,
        "fn": fn,
    }
