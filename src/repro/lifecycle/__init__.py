"""Online model lifecycle: train → serve → monitor → retrain.

The paper trains its ensemble once and serves it forever; Table IV shows
the cost — accuracy collapses silently on traffic the panel never saw.
This package closes the loop around the live detector:

* per-cycle-window PSI drift scores (:class:`repro.ml.drift.DriftMonitor`)
  feed Watchdog alerts at WARN;
* at ALARM, a deterministic incremental retrain runs on a bounded
  reservoir of recent labeled windows (seeded, bit-reproducible for any
  worker count);
* the retrained panel is installed via an **atomic hot swap**: in the
  sharded runtime the coordinator broadcasts the panel blob at a CYCLE
  boundary so every shard switches generations at the same global
  sequence number;
* a candidate that fails to train or regresses on the holdout gate is
  rolled back to the incumbent with a FAILED alert — never silently.

See DESIGN.md §17 for the state machine and wire behavior.
"""

from .manager import (
    LifecycleConfig,
    LifecycleError,
    LifecycleEvent,
    LifecycleManager,
    SwapCommand,
)

__all__ = [
    "LifecycleConfig",
    "LifecycleError",
    "LifecycleEvent",
    "LifecycleManager",
    "SwapCommand",
]
