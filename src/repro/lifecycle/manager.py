"""Lifecycle manager: drift-triggered retraining and atomic hot swap.

:class:`LifecycleManager` is a coordinator-side subsystem attached to a
detector the same way the mitigation controller is (duck-typed
``det.lifecycle`` attribute — ``repro.core`` never imports this layer).
The run loop hands it every delivered telemetry slice *after* the CYCLE
that consumed it; the manager accumulates slices into check windows,
scores them against a frozen reference distribution with per-feature
PSI, and walks the state machine::

    SERVING ──warn──▶ SERVING (Watchdog DEGRADED, drift_warn event)
       │alarm (cooldown elapsed)
       ▼
    RETRAINING ──candidate regresses / training raises──▶ SERVING
       │                 (rollback: incumbent kept, Watchdog FAILED)
       │candidate passes holdout gate
       ▼
    SWAP at the next CYCLE boundary (epoch += 1, Watchdog HEALTHY)

Everything is deterministic: drift windows are cut at cycle boundaries
of the *delivered* stream (identical for any worker count — the sharded
coordinator sees the same post-chaos slices the single-process loop
does), retraining is seeded with ``retrain_seed + epoch``, and no wall
clock is consulted anywhere.  The retrained panel travels as an
RPRCKPT1-framed blob whose content hash is the panel's identity across
swap broadcast, checkpoint, and restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkpoint import (
    CheckpointError,
    pack_panel,
    panel_content_hash,
    unpack_panel,
)
from repro.core.training import TrainedBundle, default_panel, pretrain_from_records
from repro.features.extract import extract_features
from repro.ml.drift import DriftMonitor
from repro.ml.forest import RandomForestClassifier
from repro.resilience.degradation import Watchdog

__all__ = [
    "LifecycleConfig",
    "LifecycleError",
    "LifecycleEvent",
    "LifecycleManager",
    "SwapCommand",
]

#: Record fields usable as drift features, in canonical order.  The
#: intersection with the telemetry dtype is taken at attach time, so the
#: same config works for INT records (all four) and sFlow samples
#: (length + protocol only).
DRIFT_FIELD_CANDIDATES: Tuple[str, ...] = (
    "length",
    "hop_latency",
    "queue_occupancy",
    "protocol",
)


class LifecycleError(RuntimeError):
    """Lifecycle misconfiguration or an unrecoverable archive mismatch."""


@dataclass(frozen=True)
class LifecycleEvent:
    """One observable lifecycle decision, in check order.

    ``kind`` is one of ``reference_frozen``, ``drift_warn``,
    ``drift_alarm``, ``retrain_skipped``, ``rollback``, ``swap``.
    ``detail`` carries the operator-triage payload — PSI scores, the
    top contributing features, holdout accuracies, failure reasons.
    """

    kind: str
    check: int
    epoch: int
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SwapCommand:
    """A panel generation ready to broadcast to every shard.

    ``blob`` is the :func:`repro.core.checkpoint.pack_panel` frame;
    ``panel_hash`` its embedded content hash.  The sharded coordinator
    pushes the blob as a ``FRAME_SWAP`` between two CYCLE markers so
    all workers install it at the same global boundary.
    """

    epoch: int
    blob: bytes
    panel_hash: str


@dataclass
class LifecycleConfig:
    """Tuning knobs for the train→serve→monitor→retrain loop.

    Parameters
    ----------
    check_every : int
        Drift check cadence, in full CYCLE slices.
    min_window_records : int
        Smallest delivered-record window worth scoring; a check whose
        accumulated window is thinner waits for the next slice.
    bins, warn_at, alarm_at :
        Forwarded to :class:`~repro.ml.drift.DriftMonitor`.
    drift_fields : sequence of str, optional
        Telemetry record fields to monitor; defaults to the
        intersection of :data:`DRIFT_FIELD_CANDIDATES` with the record
        dtype at attach time.
    reservoir_windows : int
        Bounded FIFO of recent check windows kept as retraining data.
    min_retrain_records : int
        Reservoir rows required before a retrain is attempted; an alarm
        with a thinner reservoir emits ``retrain_skipped`` instead.
    holdout_every : int
        Every ``holdout_every``-th reservoir row (by position) is held
        out of training and used for the candidate-vs-incumbent gate.
    regression_tolerance : float
        A candidate may trail the incumbent's holdout accuracy by at
        most this much; worse means rollback.
    cooldown_checks : int
        Checks to wait after any retrain attempt before alarming again
        (retrain storms are an outage of their own).
    retrain_seed : int
        Base seed; generation ``e`` trains with ``retrain_seed + e``.
    retrain_jobs : int
        Process parallelism for the candidate forest fit (tree-chunk
        boundaries cannot change the fitted model, so any value is
        bit-reproducible).
    panel : callable(seed) -> dict, optional
        Candidate panel factories; defaults to the testbed panel.
    label_fn : callable(records) -> labels, optional
        Ground-truth oracle for reservoir windows.  Without it the
        manager monitors and alarms but never retrains.
    force_swap_at_check : int, optional
        Force a retrain at this check index regardless of PSI — the
        deterministic trigger the swap-equivalence suite and the bench
        use to exercise a mid-run swap.
    top_k : int
        Drifted features reported in swap/rollback events.
    """

    check_every: int = 4
    min_window_records: int = 32
    bins: int = 10
    warn_at: float = 0.1
    alarm_at: float = 0.25
    drift_fields: Optional[Sequence[str]] = None
    reservoir_windows: int = 8
    min_retrain_records: int = 128
    holdout_every: int = 4
    regression_tolerance: float = 0.02
    cooldown_checks: int = 2
    retrain_seed: int = 0
    retrain_jobs: int = 1
    panel: Optional[Callable[[int], Dict[str, Callable[[], object]]]] = None
    label_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None
    force_swap_at_check: Optional[int] = None
    top_k: int = 3

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1: {self.check_every}")
        if self.reservoir_windows < 1:
            raise ValueError(
                f"reservoir_windows must be >= 1: {self.reservoir_windows}"
            )
        if self.holdout_every < 2:
            raise ValueError(
                f"holdout_every must be >= 2 (need both splits): "
                f"{self.holdout_every}"
            )
        if self.cooldown_checks < 0:
            raise ValueError(
                f"cooldown_checks must be >= 0: {self.cooldown_checks}"
            )
        if self.regression_tolerance < 0:
            raise ValueError(
                f"regression_tolerance must be >= 0: {self.regression_tolerance}"
            )


def _panel_factories(
    config: LifecycleConfig, seed: int
) -> Dict[str, Callable[[], object]]:
    """Candidate panel for one generation (testbed panel by default,
    with the forest fit parallelized across ``retrain_jobs``)."""
    if config.panel is not None:
        return config.panel(seed)
    panel = default_panel(seed)
    if config.retrain_jobs != 1:
        jobs = config.retrain_jobs
        panel["rf"] = lambda: RandomForestClassifier(
            n_estimators=25, max_depth=14, max_samples=20000,
            seed=seed, n_jobs=jobs,
        )
    return panel


def _bundle_accuracy(bundle: TrainedBundle, X: np.ndarray, y: np.ndarray) -> float:
    """Majority-vote accuracy of a trained bundle on extracted features."""
    Xs = bundle.scaler.transform(np.asarray(X, dtype=np.float64))
    votes = np.column_stack(
        [np.asarray(m.predict(Xs), dtype=np.int64) for m in bundle.models.values()]
    )
    maj = (votes.sum(axis=1) * 2 >= votes.shape[1]).astype(np.int64)
    return float(np.mean(maj == np.asarray(y).ravel()))


class LifecycleManager:
    """Drift monitoring + deterministic retraining + hot swap.

    Attach with :meth:`attach_to`; the detector's run loop then calls
    :meth:`on_slice` once per full CYCLE slice of *delivered* records
    and broadcasts any returned :class:`SwapCommand` (the sharded
    coordinator) — single-process runs need nothing more, the manager
    installs the new panel into the serving module itself.
    """

    def __init__(self, config: Optional[LifecycleConfig] = None) -> None:
        self.config = config if config is not None else LifecycleConfig()
        self._det: Optional[Any] = None
        self.watchdog: Optional[Watchdog] = None
        self.source: str = "int"
        self.incumbent: Optional[TrainedBundle] = None
        self.drift_fields: List[str] = []
        self.monitor: Optional[DriftMonitor] = None
        #: Current panel generation (0 = pretrained).
        self.epoch = 0
        #: Archive of every swapped generation's blob, keyed by epoch —
        #: the supervisor's source of truth when a respawned worker's
        #: checkpoint names a post-swap generation.
        self.panels: Dict[int, bytes] = {}
        self.slices_seen = 0
        self.checks_done = 0
        self.cooldown_remaining = 0
        self.retrains = 0
        self.rollbacks = 0
        self.swaps = 0
        self.events: List[LifecycleEvent] = []
        self.last_scores: Dict[str, float] = {}
        self._window: List[np.ndarray] = []
        self._reservoir: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_to(self, det: Any) -> "LifecycleManager":
        """Register on a detector (``det.lifecycle = self``) and bind to
        its watchdog, telemetry source, and incumbent bundle."""
        self._det = det
        det.lifecycle = self
        self.watchdog = det.watchdog
        self.source = det.source
        self.incumbent = det.bundle
        # drift_fields resolve lazily against the first window's dtype
        # (so a configured field that the telemetry source lacks fails
        # loudly in _resolve_fields, not as a numpy indexing error).
        return self

    def _resolve_fields(self, records: np.ndarray) -> List[str]:
        names = records.dtype.names or ()
        if self.config.drift_fields is not None:
            missing = [f for f in self.config.drift_fields if f not in names]
            if missing:
                raise LifecycleError(
                    f"drift_fields {missing} not in telemetry dtype {list(names)}"
                )
            return list(self.config.drift_fields)
        fields = [f for f in DRIFT_FIELD_CANDIDATES if f in names]
        if not fields:
            raise LifecycleError(
                f"no usable drift fields in telemetry dtype {list(names)}"
            )
        return fields

    def _drift_matrix(self, records: np.ndarray) -> np.ndarray:
        return np.column_stack(
            [np.asarray(records[f], dtype=np.float64) for f in self.drift_fields]
        )

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, detail: Dict[str, object]) -> LifecycleEvent:
        ev = LifecycleEvent(
            kind=kind, check=self.checks_done, epoch=self.epoch, detail=detail
        )
        self.events.append(ev)
        return ev

    def _top_features(self) -> List[Tuple[str, float]]:
        ranked = sorted(
            self.last_scores.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [(n, float(s)) for n, s in ranked[: self.config.top_k]]

    # ------------------------------------------------------------------
    # the cycle hook
    # ------------------------------------------------------------------
    def on_slice(self, records: np.ndarray) -> Optional[SwapCommand]:
        """Fold one delivered CYCLE slice; maybe check, maybe swap.

        Returns the :class:`SwapCommand` when this call produced a new
        panel generation (already installed into the attached
        detector's serving module) so the sharded coordinator can
        broadcast it at the current CYCLE boundary.
        """
        if self._det is None:
            raise LifecycleError("manager is not attached to a detector")
        self.slices_seen += 1
        if records.shape[0]:
            self._window.append(np.array(records, copy=True))
        if self.slices_seen % self.config.check_every != 0:
            return None
        pending = sum(w.shape[0] for w in self._window)
        if pending < max(self.config.min_window_records, self.config.bins):
            return None  # window too thin; keep accumulating
        window = (
            self._window[0] if len(self._window) == 1
            else np.concatenate(self._window)
        )
        self._window = []
        self.checks_done += 1
        if self.cooldown_remaining > 0:
            self.cooldown_remaining -= 1
        self._reservoir.append(window)
        if len(self._reservoir) > self.config.reservoir_windows:
            del self._reservoir[: len(self._reservoir) - self.config.reservoir_windows]
        if not self.drift_fields:
            self.drift_fields = self._resolve_fields(window)
        X = self._drift_matrix(window)
        if self.monitor is None:
            self.monitor = DriftMonitor(
                self.drift_fields,
                bins=self.config.bins,
                warn_at=self.config.warn_at,
                alarm_at=self.config.alarm_at,
            ).fit(X)
            self._emit(
                "reference_frozen",
                {"rows": int(X.shape[0]), "fields": list(self.drift_fields)},
            )
            return None
        report = self.monitor.report(X)
        self.last_scores = dict(report["scores"])
        status = str(report["status"])
        forced = (
            self.config.force_swap_at_check is not None
            and self.checks_done == self.config.force_swap_at_check
        )
        if status == "warn" and not forced:
            self._emit(
                "drift_warn",
                {
                    "worst_feature": report["worst_feature"],
                    "worst_psi": float(report["worst_psi"]),
                    "drifted": list(report["drifted"]),
                },
            )
            if self.watchdog is not None:
                self.watchdog.degraded(
                    "lifecycle",
                    f"feature drift WARN: {report['worst_feature']} "
                    f"PSI={report['worst_psi']:.3f}",
                )
            return None
        if status != "alarm" and not forced:
            return None
        self._emit(
            "drift_alarm",
            {
                "worst_feature": report["worst_feature"],
                "worst_psi": float(report["worst_psi"]),
                "drifted": list(report["drifted"]),
                "forced": forced,
            },
        )
        if self.watchdog is not None:
            self.watchdog.degraded(
                "lifecycle",
                f"feature drift ALARM: {report['worst_feature']} "
                f"PSI={report['worst_psi']:.3f}",
            )
        if self.cooldown_remaining > 0 and not forced:
            return None
        return self._retrain(forced=forced)

    # ------------------------------------------------------------------
    # retraining
    # ------------------------------------------------------------------
    def _retrain(self, forced: bool = False) -> Optional[SwapCommand]:
        """Train a candidate on the reservoir; swap or roll back.

        Every exit is loud: a skip emits ``retrain_skipped``, a failed
        or regressing candidate emits ``rollback`` + Watchdog FAILED,
        success emits ``swap`` + Watchdog HEALTHY.  The incumbent keeps
        serving throughout — there is no window where the panel is
        neither generation.
        """
        cfg = self.config
        if cfg.label_fn is None:
            self._emit("retrain_skipped", {"reason": "no label_fn configured"})
            if self.watchdog is not None:
                self.watchdog.degraded(
                    "lifecycle", "drift ALARM but no label oracle: cannot retrain"
                )
            return None
        data = (
            self._reservoir[0] if len(self._reservoir) == 1
            else np.concatenate(self._reservoir)
        )
        if data.shape[0] < cfg.min_retrain_records:
            self._emit(
                "retrain_skipped",
                {
                    "reason": "reservoir too small",
                    "rows": int(data.shape[0]),
                    "needed": int(cfg.min_retrain_records),
                },
            )
            if self.watchdog is not None:
                self.watchdog.degraded(
                    "lifecycle",
                    f"drift ALARM with {data.shape[0]} reservoir rows "
                    f"(< {cfg.min_retrain_records}): retrain deferred",
                )
            return None
        self.retrains += 1
        self.cooldown_remaining = cfg.cooldown_checks
        candidate_epoch = self.epoch + 1
        seed = cfg.retrain_seed + candidate_epoch
        assert self.incumbent is not None  # set at attach
        try:
            labels = np.asarray(cfg.label_fn(data)).ravel().astype(np.int64)
            if labels.shape[0] != data.shape[0]:
                raise LifecycleError(
                    f"label_fn returned {labels.shape[0]} labels for "
                    f"{data.shape[0]} records"
                )
            idx = np.arange(data.shape[0])
            hold = idx % cfg.holdout_every == 0
            candidate = pretrain_from_records(
                data[~hold],
                labels[~hold],
                source=self.source,
                panel=_panel_factories(cfg, seed),
                seed=seed,
            )
            hold_X = extract_features(data[hold], source=self.source).X
            hold_y = labels[hold]
            acc_candidate = _bundle_accuracy(candidate, hold_X, hold_y)
            acc_incumbent = _bundle_accuracy(self.incumbent, hold_X, hold_y)
        except Exception as exc:  # noqa: BLE001 - rollback boundary
            self.rollbacks += 1
            self._emit(
                "rollback",
                {
                    "reason": f"retrain failed: {type(exc).__name__}: {exc}",
                    "candidate_epoch": candidate_epoch,
                    "top_features": self._top_features(),
                },
            )
            if self.watchdog is not None:
                self.watchdog.failed(
                    "lifecycle",
                    f"retrain for epoch {candidate_epoch} failed "
                    f"({type(exc).__name__}: {exc}); incumbent panel kept",
                )
            return None
        # Fit-time parallelism is an execution detail, not panel
        # content: normalize it away so the packed blob (and therefore
        # the panel content hash) is identical for any retrain_jobs.
        for model in candidate.models.values():
            if getattr(model, "n_jobs", 1) != 1:
                model.n_jobs = 1
        if acc_candidate < acc_incumbent - cfg.regression_tolerance:
            self.rollbacks += 1
            self._emit(
                "rollback",
                {
                    "reason": "holdout regression",
                    "candidate_epoch": candidate_epoch,
                    "holdout_candidate": acc_candidate,
                    "holdout_incumbent": acc_incumbent,
                    "top_features": self._top_features(),
                },
            )
            if self.watchdog is not None:
                self.watchdog.failed(
                    "lifecycle",
                    f"candidate epoch {candidate_epoch} regressed on holdout "
                    f"({acc_candidate:.3f} < {acc_incumbent:.3f} - "
                    f"{cfg.regression_tolerance}); incumbent panel kept",
                )
            return None
        blob = pack_panel(
            candidate_epoch, candidate.scaler, candidate.models,
            candidate.feature_names,
        )
        panel_hash = panel_content_hash(blob)
        self.epoch = candidate_epoch
        self.panels[candidate_epoch] = blob
        self.incumbent = candidate
        self._emit(
            "swap",
            {
                "panel_hash": panel_hash,
                "holdout_candidate": acc_candidate,
                "holdout_incumbent": acc_incumbent,
                "reservoir_rows": int(data.shape[0]),
                "seed": seed,
                "top_features": self._top_features(),
            },
        )
        if self.watchdog is not None:
            self.watchdog.healthy(
                "lifecycle",
                f"panel epoch {candidate_epoch} installed "
                f"(holdout {acc_candidate:.3f} vs {acc_incumbent:.3f})",
            )
        self.swaps += 1
        assert self._det is not None
        self._det.prediction.swap_panel(
            candidate.scaler, candidate.models, candidate_epoch, panel_hash,
            feature_names=candidate.feature_names,
        )
        return SwapCommand(epoch=candidate_epoch, blob=blob, panel_hash=panel_hash)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, Any]:
        """Full lifecycle state as a picklable dict: drift reference,
        reservoir, pending window, counters, event log, and the panel
        blob archive (so a restored run can reinstall the serving
        generation without retraining)."""
        return {
            "epoch": self.epoch,
            "panels": dict(self.panels),
            "slices_seen": self.slices_seen,
            "checks_done": self.checks_done,
            "cooldown_remaining": self.cooldown_remaining,
            "retrains": self.retrains,
            "rollbacks": self.rollbacks,
            "swaps": self.swaps,
            "drift_fields": list(self.drift_fields),
            "monitor": None if self.monitor is None else self.monitor.state_snapshot(),
            "last_scores": dict(self.last_scores),
            "events": list(self.events),
            "window": [np.array(w, copy=True) for w in self._window],
            "reservoir": [np.array(w, copy=True) for w in self._reservoir],
        }

    def state_restore(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_snapshot` capture.  If the attached
        detector's serving module names a post-swap generation, the
        matching archived panel is reinstalled (hash-checked)."""
        self.epoch = int(state["epoch"])
        self.panels = dict(state["panels"])
        self.slices_seen = int(state["slices_seen"])
        self.checks_done = int(state["checks_done"])
        self.cooldown_remaining = int(state["cooldown_remaining"])
        self.retrains = int(state["retrains"])
        self.rollbacks = int(state["rollbacks"])
        self.swaps = int(state["swaps"])
        self.drift_fields = list(state["drift_fields"])
        mon = state["monitor"]
        if mon is None:
            self.monitor = None
        else:
            if self.monitor is None:
                self.monitor = DriftMonitor(
                    self.drift_fields,
                    bins=self.config.bins,
                    warn_at=self.config.warn_at,
                    alarm_at=self.config.alarm_at,
                )
            self.monitor.state_restore(mon)
        self.last_scores = dict(state["last_scores"])
        self.events = list(state["events"])
        self._window = [np.array(w, copy=True) for w in state["window"]]
        self._reservoir = [np.array(w, copy=True) for w in state["reservoir"]]
        det = self._det
        if det is not None and det.prediction.panel_epoch > 0:
            blob = self.panels.get(det.prediction.panel_epoch)
            if blob is None:
                raise CheckpointError(
                    f"serving panel epoch {det.prediction.panel_epoch} has no "
                    "archived blob in the lifecycle checkpoint"
                )
            payload = unpack_panel(blob)
            got = panel_content_hash(blob)
            if det.prediction.panel_hash and got != det.prediction.panel_hash:
                raise CheckpointError(
                    f"panel archive hash {got} != checkpointed serving hash "
                    f"{det.prediction.panel_hash} for epoch "
                    f"{det.prediction.panel_epoch}"
                )
            det.prediction.load_panel(payload["scaler"], payload["models"])
            self.incumbent = TrainedBundle(
                scaler=payload["scaler"],
                models=payload["models"],
                feature_names=list(payload["feature_names"]),
            )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Scorecard for the detector's stats surface."""
        return {
            "epoch": self.epoch,
            "checks_done": self.checks_done,
            "retrains": self.retrains,
            "rollbacks": self.rollbacks,
            "swaps": self.swaps,
            "cooldown_remaining": self.cooldown_remaining,
            "reservoir_windows": len(self._reservoir),
            "reservoir_rows": int(sum(w.shape[0] for w in self._reservoir)),
            "events": [
                {"kind": e.kind, "check": e.check, "epoch": e.epoch}
                for e in self.events
            ],
            "last_scores": dict(self.last_scores),
            "nonfinite_dropped": (
                0 if self.monitor is None else self.monitor.nonfinite_dropped
            ),
        }
