"""Flow table: the Data Processor's keyed store of flow records.

Keeps exactly one :class:`~repro.features.flow_record.FlowRecord` per
five-tuple (the paper's deliberate storage optimization: "we only keep
one record for each flow at a given time").  Supports idle-flow eviction
so a long-running deployment — or a SYN flood, where every spoofed packet
creates a new flow — cannot grow the table without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.int_telemetry.timestamps import delta32_signed, naive_delta32

from .batch import FlowBatch
from .flow_record import FlowRecord

__all__ = ["FlowTable"]

_NS = 1e-9


class FlowTable:
    """Ordered mapping of five-tuple → :class:`FlowRecord`.

    Parameters
    ----------
    max_flows : int, optional
        Hard cap on resident flows; exceeding it evicts the least
        recently updated flow (SYN-flood pressure relief).
    idle_timeout_ns : int, optional
        Flows not updated for this long are evicted by
        :meth:`expire_idle`.
    wrap_aware : bool
        Passed through to new records (timestamp ablation hook).
    """

    def __init__(
        self,
        max_flows: Optional[int] = None,
        idle_timeout_ns: Optional[int] = None,
        wrap_aware: bool = True,
    ) -> None:
        if max_flows is not None and max_flows < 1:
            raise ValueError(f"max_flows must be >= 1: {max_flows}")
        self._flows: "OrderedDict[tuple, FlowRecord]" = OrderedDict()
        self.max_flows = max_flows
        self.idle_timeout_ns = idle_timeout_ns
        self.wrap_aware = bool(wrap_aware)
        self.created = 0
        self.evicted = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: tuple) -> bool:
        return key in self._flows

    def get(self, key: tuple) -> Optional[FlowRecord]:
        """Look up a flow's record **without refreshing its recency**.

        Only :meth:`update` / :meth:`update_batch` move a flow toward
        the most-recently-used end of the LRU order; reads — feature
        polls, observability probes, sketch-gate residency checks — are
        order-neutral.  This is a contract, not an accident: eviction
        under ``max_flows`` pressure and :meth:`expire_idle` sweeps
        depend only on the *update* sequence, so read-heavy layers (the
        sketch admission gate probes residency for every flow in every
        slice) cannot perturb which flows get evicted.
        """
        return self._flows.get(key)

    def update(
        self,
        key: tuple,
        now_ns: int,
        ingress_ts32: int,
        length: float,
        protocol: int,
        queue_occupancy: float = 0.0,
        hop_latency_ns: float = 0.0,
    ) -> FlowRecord:
        """Route one packet's data into its flow record (creating it if
        this is a brand-new Flow ID), and return the record."""
        rec = self._flows.get(key)
        if rec is None:
            rec = FlowRecord(key, wrap_aware=self.wrap_aware)
            self._flows[key] = rec
            self.created += 1
            if self.max_flows is not None and len(self._flows) > self.max_flows:
                self._flows.popitem(last=False)
                self.evicted += 1
        else:
            self._flows.move_to_end(key)
        rec.update(now_ns, ingress_ts32, length, protocol, queue_occupancy, hop_latency_ns)
        return rec

    def update_batch(
        self,
        batch: FlowBatch,
        now_ns: np.ndarray,
        ingress_ts32: np.ndarray,
        length: np.ndarray,
        protocol: np.ndarray,
        queue_occupancy: Optional[np.ndarray] = None,
        hop_latency_ns: Optional[np.ndarray] = None,
    ) -> int:
        """Fold a grouped batch of packets into the table; returns the
        number of newly created flows.

        Column arrays are in *original record order* (``batch.order``
        permutes them).  The fold is bit-identical to calling
        :meth:`update` once per record in order: per-flow aggregates are
        advanced by a vectorized loop over *packet position within
        flow*, so every floating-point operation happens in the same
        order (and therefore rounds identically) as the scalar path,
        while the Python-level iteration count drops from
        ``n_records`` to ``max(packets per flow in batch)``.

        The final LRU order also matches the scalar path (untouched
        flows keep their relative order; touched flows move to the back
        ordered by their last packet in the batch).  When ``max_flows``
        could force an eviction mid-batch — the one case where grouping
        is unsound, because an evicted flow may be re-created by a later
        packet of the same batch — the fold falls back to the scalar
        loop, which is identical by construction.
        """
        if batch.n == 0:
            return 0
        if queue_occupancy is None:
            queue_occupancy = np.zeros(batch.n)
        if hop_latency_ns is None:
            hop_latency_ns = np.zeros(batch.n)

        recs = [self._flows.get(k) for k in batch.keys]
        n_new = sum(1 for r in recs if r is None)
        if self.max_flows is not None and len(self._flows) + n_new > self.max_flows:
            # Eviction pressure: replay the exact scalar path.
            gid_sorted = np.repeat(np.arange(batch.n_groups), batch.counts)
            gid = np.empty(batch.n, np.int64)
            gid[batch.order] = gid_sorted
            keys = batch.keys
            for i, g in enumerate(gid.tolist()):
                self.update(
                    keys[g],
                    int(now_ns[i]),
                    int(ingress_ts32[i]),
                    float(length[i]),
                    int(protocol[i]),
                    float(queue_occupancy[i]),
                    float(hop_latency_ns[i]),
                )
            return n_new

        # -- gather per-group state ------------------------------------
        G = batch.n_groups
        npk = np.zeros(G, np.int64)
        upd = np.zeros(G, np.int64)
        tot = np.zeros(G)
        dur = np.zeros(G)
        last_ts = np.zeros(G, np.int64)
        created = np.zeros(G, np.int64)
        s_n = np.zeros(G, np.int64)
        s_mean = np.zeros(G)
        s_m2 = np.zeros(G)
        i_n = np.zeros(G, np.int64)
        i_mean = np.zeros(G)
        i_m2 = np.zeros(G)
        o_n = np.zeros(G, np.int64)
        o_mean = np.zeros(G)
        o_m2 = np.zeros(G)
        for g, rec in enumerate(recs):
            if rec is None:
                rec = FlowRecord(batch.keys[g], wrap_aware=self.wrap_aware)
                self._flows[batch.keys[g]] = rec
                recs[g] = rec
                self.created += 1
                continue
            npk[g] = rec.n_packets
            upd[g] = rec.updates
            tot[g] = rec.total_bytes
            dur[g] = rec.duration_s
            last_ts[g] = rec._last_ts32 if rec._last_ts32 is not None else 0
            created[g] = rec.created_ns
            s_n[g], s_mean[g], s_m2[g] = rec.size_stats.state()
            i_n[g], i_mean[g], i_m2[g] = rec.iat_stats.state()
            o_n[g], o_mean[g], o_m2[g] = rec.occ_stats.state()

        # -- permute columns to (flow, arrival) order ------------------
        o = batch.order
        ts32_s = ingress_ts32[o].astype(np.int64)
        now_s = np.asarray(now_ns)[o].astype(np.int64)
        len_s = np.asarray(length, dtype=np.float64)[o]
        occ_s = np.asarray(queue_occupancy, dtype=np.float64)[o]

        # Groups sorted by size descending: at fold step j the active
        # groups are exactly a prefix, so per-step masking is a slice.
        gorder = np.argsort(-batch.counts, kind="stable")
        starts_d = batch.starts[gorder]
        counts_d = batch.counts[gorder]
        maxc = int(counts_d[0])
        # Number of active groups at step j: groups with count > j.
        cum = np.cumsum(np.bincount(batch.counts, minlength=maxc + 1))

        # Views over the state arrays in size-descending group order.
        npk_d = npk[gorder]
        upd_d = upd[gorder]
        tot_d = tot[gorder]
        dur_d = dur[gorder]
        last_ts_d = last_ts[gorder]
        created_d = created[gorder]
        s_n_d, s_mean_d, s_m2_d = s_n[gorder], s_mean[gorder], s_m2[gorder]
        i_n_d, i_mean_d, i_m2_d = i_n[gorder], i_mean[gorder], i_m2[gorder]
        o_n_d, o_mean_d, o_m2_d = o_n[gorder], o_mean[gorder], o_m2[gorder]
        last_gap = np.zeros(G)
        diff32 = delta32_signed if self.wrap_aware else naive_delta32

        # -- vectorized fold, one step per within-flow packet position --
        for j in range(maxc):
            a = G - int(cum[j])  # active prefix length
            rows = starts_d[:a] + j
            ts32 = ts32_s[rows]
            ln = len_s[rows]
            oc = occ_s[rows]

            # inter-arrival (skipped for a record's very first packet)
            gap = np.zeros(a)
            if j == 0:
                fresh = npk_d[:a] == 0
                created_d[:a][fresh] = now_s[rows][fresh]
                m = np.flatnonzero(~fresh)
            else:
                m = slice(None)
            gap_ns = np.maximum(diff32(ts32[m], last_ts_d[:a][m]), 0)
            gap[m] = gap_ns * _NS
            i_n_d[:a][m] += 1
            gm = gap[m]
            d_i = gm - i_mean_d[:a][m]
            i_mean_d[:a][m] += d_i / i_n_d[:a][m]
            i_m2_d[:a][m] += d_i * (gm - i_mean_d[:a][m])
            dur_d[:a][m] += gm
            last_gap[:a] = gap
            last_ts_d[:a] = ts32

            # packet size / queue occupancy moments (every packet)
            s_n_d[:a] += 1
            d_s = ln - s_mean_d[:a]
            s_mean_d[:a] += d_s / s_n_d[:a]
            s_m2_d[:a] += d_s * (ln - s_mean_d[:a])
            o_n_d[:a] += 1
            d_o = oc - o_mean_d[:a]
            o_mean_d[:a] += d_o / o_n_d[:a]
            o_m2_d[:a] += d_o * (oc - o_mean_d[:a])

            npk_d[:a] += 1
            upd_d[:a] += 1
            tot_d[:a] += ln

        # -- scatter state + packet-level values back into records -----
        last_rows = (starts_d + counts_d - 1).tolist()
        proto_l = np.asarray(protocol)[o].tolist()
        hop_l = np.asarray(hop_latency_ns, dtype=np.float64)[o].tolist()
        now_l = now_s.tolist()
        len_l = len_s.tolist()
        occ_l = occ_s.tolist()
        npk_l, upd_l = npk_d.tolist(), upd_d.tolist()
        tot_l, dur_l = tot_d.tolist(), dur_d.tolist()
        last_ts_l, created_l = last_ts_d.tolist(), created_d.tolist()
        gap_l = last_gap.tolist()
        s_state = (s_n_d.tolist(), s_mean_d.tolist(), s_m2_d.tolist())
        i_state = (i_n_d.tolist(), i_mean_d.tolist(), i_m2_d.tolist())
        o_state = (o_n_d.tolist(), o_mean_d.tolist(), o_m2_d.tolist())
        gorder_l = gorder.tolist()
        for d, g in enumerate(gorder_l):
            rec = recs[g]
            r_last = last_rows[d]
            rec.created_ns = created_l[d]
            rec.updated_ns = now_l[r_last]
            rec.protocol = proto_l[r_last]
            rec.packet_size = len_l[r_last]
            rec.inter_arrival_s = gap_l[d]
            rec.queue_occupancy = occ_l[r_last]
            rec.hop_latency_s = hop_l[r_last] * _NS
            rec.n_packets = npk_l[d]
            rec.total_bytes = tot_l[d]
            rec.duration_s = dur_l[d]
            rec._last_ts32 = last_ts_l[d]
            rec.updates = upd_l[d]
            rec.size_stats.set_state(s_state[0][d], s_state[1][d], s_state[2][d])
            rec.iat_stats.set_state(i_state[0][d], i_state[1][d], i_state[2][d])
            rec.occ_stats.set_state(o_state[0][d], o_state[1][d], o_state[2][d])

        # -- replicate the scalar path's LRU order ---------------------
        # Touched flows end up at the back, ordered by last occurrence.
        move = self._flows.move_to_end
        for g in np.argsort(batch.last_pos, kind="stable").tolist():
            move(batch.keys[g])
        return n_new

    def expire_idle(self, now_ns: int) -> int:
        """Evict flows idle longer than ``idle_timeout_ns``; returns count.

        The table is LRU-ordered (every update moves its flow to the
        back), and update timestamps are non-decreasing in any replayed
        or live feed, so the scan walks from the least-recently-updated
        end and stops at the first non-stale record instead of visiting
        the whole table.
        """
        if self.idle_timeout_ns is None:
            return 0
        cutoff = now_ns - self.idle_timeout_ns
        stale = []
        for key, rec in self._flows.items():
            if rec.updated_ns >= cutoff:
                break
            stale.append(key)
        for k in stale:
            del self._flows[k]
        self.expired += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Table state as a plain picklable dict.

        Records are captured **in LRU order** (the ``OrderedDict``
        iteration order) — restore rebuilds the same order, so
        ``max_flows`` evictions and :meth:`expire_idle` sweeps after a
        restore hit exactly the flows they would have hit without the
        checkpoint round-trip.
        """
        return {
            "records": [rec.state_snapshot() for rec in self._flows.values()],
            "created": self.created,
            "evicted": self.evicted,
            "expired": self.expired,
        }

    def state_restore(self, state: dict) -> None:
        """Replace table contents with a :meth:`state_snapshot` capture.

        Configuration (``max_flows``, ``idle_timeout_ns``,
        ``wrap_aware``) is *not* restored — the restoring process
        constructs the table with the same recipe the checkpointed one
        used.
        """
        self._flows.clear()
        for rec_state in state["records"]:
            rec = FlowRecord.from_state(rec_state)
            self._flows[rec.key] = rec
        self.created = int(state["created"])
        self.evicted = int(state["evicted"])
        self.expired = int(state["expired"])

    def items(self) -> Iterator[Tuple[tuple, FlowRecord]]:
        return iter(self._flows.items())

    def records(self) -> Iterator[FlowRecord]:
        return iter(self._flows.values())
