"""Flow table: the Data Processor's keyed store of flow records.

Keeps exactly one :class:`~repro.features.flow_record.FlowRecord` per
five-tuple (the paper's deliberate storage optimization: "we only keep
one record for each flow at a given time").  Supports idle-flow eviction
so a long-running deployment — or a SYN flood, where every spoofed packet
creates a new flow — cannot grow the table without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from .flow_record import FlowRecord

__all__ = ["FlowTable"]


class FlowTable:
    """Ordered mapping of five-tuple → :class:`FlowRecord`.

    Parameters
    ----------
    max_flows : int, optional
        Hard cap on resident flows; exceeding it evicts the least
        recently updated flow (SYN-flood pressure relief).
    idle_timeout_ns : int, optional
        Flows not updated for this long are evicted by
        :meth:`expire_idle`.
    wrap_aware : bool
        Passed through to new records (timestamp ablation hook).
    """

    def __init__(
        self,
        max_flows: Optional[int] = None,
        idle_timeout_ns: Optional[int] = None,
        wrap_aware: bool = True,
    ) -> None:
        if max_flows is not None and max_flows < 1:
            raise ValueError(f"max_flows must be >= 1: {max_flows}")
        self._flows: "OrderedDict[tuple, FlowRecord]" = OrderedDict()
        self.max_flows = max_flows
        self.idle_timeout_ns = idle_timeout_ns
        self.wrap_aware = bool(wrap_aware)
        self.created = 0
        self.evicted = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: tuple) -> bool:
        return key in self._flows

    def get(self, key: tuple) -> Optional[FlowRecord]:
        return self._flows.get(key)

    def update(
        self,
        key: tuple,
        now_ns: int,
        ingress_ts32: int,
        length: float,
        protocol: int,
        queue_occupancy: float = 0.0,
        hop_latency_ns: float = 0.0,
    ) -> FlowRecord:
        """Route one packet's data into its flow record (creating it if
        this is a brand-new Flow ID), and return the record."""
        rec = self._flows.get(key)
        if rec is None:
            rec = FlowRecord(key, wrap_aware=self.wrap_aware)
            self._flows[key] = rec
            self.created += 1
            if self.max_flows is not None and len(self._flows) > self.max_flows:
                self._flows.popitem(last=False)
                self.evicted += 1
        else:
            self._flows.move_to_end(key)
        rec.update(now_ns, ingress_ts32, length, protocol, queue_occupancy, hop_latency_ns)
        return rec

    def expire_idle(self, now_ns: int) -> int:
        """Evict flows idle longer than ``idle_timeout_ns``; returns count."""
        if self.idle_timeout_ns is None:
            return 0
        cutoff = now_ns - self.idle_timeout_ns
        stale = [k for k, rec in self._flows.items() if rec.updated_ns < cutoff]
        for k in stale:
            del self._flows[k]
        self.expired += len(stale)
        return len(stale)

    def items(self) -> Iterator[Tuple[tuple, FlowRecord]]:
        return iter(self._flows.items())

    def records(self) -> Iterator[FlowRecord]:
        return iter(self._flows.values())
