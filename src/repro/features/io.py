"""Feature-matrix interchange: CSV and NPZ export/import.

Downstream users will want to take the extracted features into their own
tooling (pandas, scikit-learn, a notebook).  CSV is the lingua franca;
NPZ round-trips losslessly including the flow bookkeeping columns.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional

import numpy as np

from .extract import FeatureMatrix

__all__ = ["to_csv", "to_npz", "from_npz"]


def to_csv(
    fm: FeatureMatrix,
    path,
    labels: Optional[np.ndarray] = None,
    include_bookkeeping: bool = True,
) -> Path:
    """Write the feature matrix as a headed CSV.

    Parameters
    ----------
    fm : FeatureMatrix
    path : destination file.
    labels : optional ground-truth column (appended as ``label``).
    include_bookkeeping : bool
        Also emit ``flow_index`` / ``packet_index`` / ``is_first``.
    """
    path = Path(path)
    if labels is not None and len(labels) != len(fm):
        raise ValueError("labels must align with the feature matrix")
    header = list(fm.names)
    if include_bookkeeping:
        header += ["flow_index", "packet_index", "is_first"]
    if labels is not None:
        header.append("label")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for i in range(len(fm)):
            row = [repr(float(v)) for v in fm.X[i]]
            if include_bookkeeping:
                row += [int(fm.flow_index[i]), int(fm.packet_index[i]),
                        int(fm.is_first[i])]
            if labels is not None:
                row.append(int(labels[i]))
            writer.writerow(row)
    return path


def to_npz(fm: FeatureMatrix, path, labels: Optional[np.ndarray] = None) -> Path:
    """Lossless NPZ export of a feature matrix (+optional labels)."""
    path = Path(path)
    payload = dict(
        X=fm.X,
        names=np.asarray(fm.names),
        flow_index=fm.flow_index,
        packet_index=fm.packet_index,
        is_first=fm.is_first,
        n_flows=np.int64(fm.n_flows),
    )
    if labels is not None:
        if len(labels) != len(fm):
            raise ValueError("labels must align with the feature matrix")
        payload["labels"] = np.asarray(labels)
    np.savez_compressed(path, **payload)
    return path


def from_npz(path):
    """Load a feature matrix written by :func:`to_npz`.

    Returns
    -------
    (FeatureMatrix, labels or None)
    """
    with np.load(path, allow_pickle=False) as blob:
        fm = FeatureMatrix(
            X=blob["X"],
            names=[str(n) for n in blob["names"]],
            flow_index=blob["flow_index"],
            packet_index=blob["packet_index"],
            is_first=blob["is_first"],
            n_flows=int(blob["n_flows"]),
        )
        labels = blob["labels"] if "labels" in blob else None
    return fm, labels
