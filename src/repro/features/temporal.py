"""Sliding-window temporal features (paper §V future work).

The paper's flow features are cumulative over the whole flow lifetime;
§V notes that "in our implementation, we do not consider any temporal
patterns" and flags windowed analysis as the next step (with its storage
cost being the obstacle).  This module adds that step: per-flow,
per-packet statistics over a *recent* time window, computed vectorized
with the same segmented layout as the base extractor.

Windowed features react to rate changes a cumulative counter dilutes —
e.g. a flow that turns hostile mid-life, or a pulsing attack whose
long-run average looks benign.

The implementation cost the paper worries about is explicit here: the
offline path needs each flow's recent packet history (a sorted-search
per packet), and the online equivalent would need a per-flow ring
buffer instead of O(1) Welford state.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .extract import FeatureMatrix

__all__ = ["TEMPORAL_FEATURES", "temporal_feature_names", "add_temporal_features"]

TEMPORAL_FEATURES = (
    "win_packets",       # packets of this flow within the window
    "win_bytes",         # bytes of this flow within the window
    "win_pps",           # window packet rate
    "win_bps",           # window byte rate
    "win_size_avg",      # mean packet size within the window
)


def temporal_feature_names(window_s: float) -> List[str]:
    """Column names, suffixed with the window length for traceability."""
    tag = f"{window_s:g}s"
    return [f"{name}_{tag}" for name in TEMPORAL_FEATURES]


def add_temporal_features(
    fm: FeatureMatrix,
    ts_ns: np.ndarray,
    lengths: np.ndarray,
    window_ns: int,
) -> FeatureMatrix:
    """Augment a feature matrix with recent-window statistics.

    Parameters
    ----------
    fm : FeatureMatrix
        Output of :func:`repro.features.extract.extract_features` (its
        ``flow_index``/``packet_index`` describe the flow structure).
    ts_ns : array (n,)
        Per-record absolute timestamps, arrival order (e.g.
        ``records["ts_report"]``).
    lengths : array (n,)
        Per-record packet lengths.
    window_ns : int
        Lookback horizon.

    Returns
    -------
    FeatureMatrix
        New matrix with ``len(TEMPORAL_FEATURES)`` extra columns; the
        base columns and bookkeeping arrays are shared, not copied.
    """
    if window_ns <= 0:
        raise ValueError(f"window must be positive: {window_ns}")
    ts_ns = np.asarray(ts_ns, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.float64)
    n = len(fm)
    if ts_ns.shape[0] != n or lengths.shape[0] != n:
        raise ValueError("ts/lengths must align with the feature matrix")

    win_pkts = np.zeros(n, dtype=np.float64)
    win_bytes = np.zeros(n, dtype=np.float64)

    if n:
        # Group rows by flow, keep arrival order within each flow.
        order = np.lexsort((np.arange(n), fm.flow_index))
        flow_sorted = fm.flow_index[order]
        ts_sorted = ts_ns[order]
        len_sorted = lengths[order]
        starts = np.flatnonzero(np.r_[True, flow_sorted[1:] != flow_sorted[:-1]])
        ends = np.r_[starts[1:], n]
        cum = np.cumsum(len_sorted)
        for a, b in zip(starts, ends):
            ts_f = ts_sorted[a:b]
            # first index within the half-open lookback (t - W, t]
            lo = np.searchsorted(ts_f, ts_f - window_ns, side="right")
            idx = np.arange(b - a)
            win_pkts[order[a:b]] = idx - lo + 1
            seg_cum = cum[a:b] - (cum[a - 1] if a else 0.0)
            lo_cum = np.where(lo > 0, seg_cum[lo - 1], 0.0)
            win_bytes[order[a:b]] = seg_cum - lo_cum

    window_s = window_ns * 1e-9
    win_pps = win_pkts / window_s
    win_bps = win_bytes / window_s
    win_size_avg = np.where(win_pkts > 0, win_bytes / np.maximum(win_pkts, 1), 0.0)

    extra = np.column_stack([win_pkts, win_bytes, win_pps, win_bps, win_size_avg])
    return FeatureMatrix(
        X=np.ascontiguousarray(np.hstack([fm.X, extra])),
        names=fm.names + temporal_feature_names(window_s),
        flow_index=fm.flow_index,
        packet_index=fm.packet_index,
        is_first=fm.is_first,
        n_flows=fm.n_flows,
    )
