"""Feature engineering: the Data Processor's computations (paper §III-2).

Streaming per-flow statistics (:mod:`~repro.features.welford`,
:mod:`~repro.features.flow_record`, :mod:`~repro.features.flow_table`)
for the online pipeline, a vectorized bulk extractor
(:mod:`~repro.features.extract`) for offline training, and the Table II
feature schema (:mod:`~repro.features.schema`).
"""

from .batch import FlowBatch, group_by_flow
from .extract import FeatureMatrix, extract_features
from .flow_record import FEATURE_ORDER, FlowRecord
from .io import from_npz, to_csv, to_npz
from .flow_table import FlowTable
from .keys import canonical_flow_key, canonical_key_arrays
from .schema import FEATURES, Feature, feature_names, table2_rows
from .temporal import TEMPORAL_FEATURES, add_temporal_features, temporal_feature_names
from .welford import Welford

__all__ = [
    "FeatureMatrix",
    "extract_features",
    "FlowBatch",
    "group_by_flow",
    "FlowRecord",
    "FEATURE_ORDER",
    "to_csv",
    "to_npz",
    "from_npz",
    "FlowTable",
    "Feature",
    "FEATURES",
    "feature_names",
    "table2_rows",
    "canonical_flow_key",
    "canonical_key_arrays",
    "TEMPORAL_FEATURES",
    "add_temporal_features",
    "temporal_feature_names",
    "Welford",
]
