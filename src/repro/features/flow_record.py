"""Per-flow state record (the Data Processor's unit of storage).

Implements the update semantics of paper §III-2 exactly:

* first packet of a Flow ID → create a record with packet-level values
  from that packet and flow-level values at their defaults ("mostly 0
  at initiation");
* subsequent packets → update all flow-level aggregates, *replace* all
  packet-level values with the newest packet's.

Inter-arrival times are computed from consecutive (wrapped 32-bit) INT
ingress timestamps with wrap-aware differencing by default; the naive
mode reproduces the error discussed in paper §V and feeds the timestamp
ablation bench.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.int_telemetry.timestamps import delta32_signed, naive_delta32

from .welford import Welford

__all__ = ["FlowRecord", "FEATURE_ORDER"]

_NS = 1e-9

#: Canonical order of every feature a record can produce, matching the
#: keys of :meth:`FlowRecord.feature_vector`'s lookup.  The batched
#: dispatch path materializes full rows in this order and column-selects
#: the schema subset, so per-update dict construction disappears from
#: the hot path while values stay bit-identical to the scalar path.
FEATURE_ORDER = (
    "protocol",
    "packet_size",
    "packet_size_cum",
    "packet_size_avg",
    "packet_size_std",
    "inter_arrival",
    "inter_arrival_cum",
    "inter_arrival_avg",
    "inter_arrival_std",
    "queue_occupancy",
    "queue_occupancy_avg",
    "queue_occupancy_std",
    "n_packets",
    "packets_per_second",
    "bytes_per_second",
    "hop_latency",
)


class FlowRecord:
    """Running state for one five-tuple flow.

    Parameters
    ----------
    key : tuple
        The five-tuple Flow ID.
    wrap_aware : bool
        Use modular 32-bit differencing for inter-arrival times.  With
        ``False`` a timestamp wrap between packets produces a (clamped)
        wrong gap — the paper's Section V failure mode.
    """

    __slots__ = (
        "key",
        "wrap_aware",
        "created_ns",
        "updated_ns",
        "protocol",
        "packet_size",
        "inter_arrival_s",
        "queue_occupancy",
        "hop_latency_s",
        "n_packets",
        "total_bytes",
        "duration_s",
        "_last_ts32",
        "size_stats",
        "iat_stats",
        "occ_stats",
        "updates",
    )

    def __init__(self, key: tuple, wrap_aware: bool = True) -> None:
        self.key = key
        self.wrap_aware = bool(wrap_aware)
        self.created_ns = 0
        self.updated_ns = 0
        # packet-level (replaced on every packet)
        self.protocol = 0
        self.packet_size = 0.0
        self.inter_arrival_s = 0.0
        self.queue_occupancy = 0.0
        self.hop_latency_s = 0.0
        # flow-level (aggregated)
        self.n_packets = 0
        self.total_bytes = 0.0
        self.duration_s = 0.0
        self._last_ts32: int | None = None
        self.size_stats = Welford()
        self.iat_stats = Welford()
        self.occ_stats = Welford()
        self.updates = 0

    def update(
        self,
        now_ns: int,
        ingress_ts32: int,
        length: float,
        protocol: int,
        queue_occupancy: float = 0.0,
        hop_latency_ns: float = 0.0,
    ) -> None:
        """Fold one packet into the record.

        Parameters
        ----------
        now_ns : int
            Registration wall-clock time (drives prediction latency).
        ingress_ts32 : int
            Wrapped 32-bit INT ingress timestamp (or the collector clock
            folded to 32 bits for sFlow-sourced updates).
        length, protocol, queue_occupancy, hop_latency_ns :
            Latest packet's header/metadata values.
        """
        if self.n_packets == 0:
            self.created_ns = now_ns
            gap_s = 0.0
        else:
            if self.wrap_aware:
                # Signed nearest-representative difference: corrects
                # wraps and turns slight cross-observation-point
                # reordering into a clamped zero instead of ~4.29 s.
                gap_ns = max(0, int(delta32_signed(ingress_ts32, self._last_ts32)))
            else:
                gap_ns = max(0, int(naive_delta32(ingress_ts32, self._last_ts32)))
            gap_s = gap_ns * _NS
            self.iat_stats.push(gap_s)
            self.duration_s += gap_s

        self._last_ts32 = int(ingress_ts32)
        self.updated_ns = now_ns

        # packet-level replacement
        self.protocol = int(protocol)
        self.packet_size = float(length)
        self.inter_arrival_s = gap_s
        self.queue_occupancy = float(queue_occupancy)
        self.hop_latency_s = float(hop_latency_ns) * _NS

        # flow-level aggregation
        self.n_packets += 1
        self.total_bytes += float(length)
        self.size_stats.push(float(length))
        self.occ_stats.push(float(queue_occupancy))
        self.updates += 1

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> tuple:
        """Full record state as a plain picklable tuple.

        Everything :meth:`update` touches is captured — including the raw
        Welford accumulator triples — so a restored record continues the
        stream with bit-identical arithmetic.  ``created_ns`` /
        ``updated_ns`` are *simulation* timestamps (they come from the
        telemetry, not a wall clock), so checkpointing them is
        deterministic.
        """
        return (
            self.key,
            self.wrap_aware,
            self.created_ns,
            self.updated_ns,
            self.protocol,
            self.packet_size,
            self.inter_arrival_s,
            self.queue_occupancy,
            self.hop_latency_s,
            self.n_packets,
            self.total_bytes,
            self.duration_s,
            self._last_ts32,
            self.size_stats.state(),
            self.iat_stats.state(),
            self.occ_stats.state(),
            self.updates,
        )

    @classmethod
    def from_state(cls, state: tuple) -> "FlowRecord":
        """Rebuild a record captured by :meth:`state_snapshot`."""
        rec = cls(state[0], wrap_aware=state[1])
        (
            _key, _wrap,
            rec.created_ns, rec.updated_ns,
            rec.protocol, rec.packet_size, rec.inter_arrival_s,
            rec.queue_occupancy, rec.hop_latency_s,
            rec.n_packets, rec.total_bytes, rec.duration_s,
            rec._last_ts32,
            size_state, iat_state, occ_state,
            rec.updates,
        ) = state
        rec.size_stats.set_state(*size_state)
        rec.iat_stats.set_state(*iat_state)
        rec.occ_stats.set_state(*occ_state)
        return rec

    # ------------------------------------------------------------------
    @property
    def is_new(self) -> bool:
        """True until the record has been updated at least once beyond
        creation — the CentralServer skips these (§III-3)."""
        return self.n_packets <= 1

    def feature_row(self) -> list:
        """All features as floats in :data:`FEATURE_ORDER` — no dict,
        no array allocation; the batched feature-matrix fill writes these
        rows straight into a preallocated matrix."""
        dur = self.duration_s
        pps = self.n_packets / dur if dur > 0 else 0.0
        bps = self.total_bytes / dur if dur > 0 else 0.0
        return [
            float(self.protocol),
            self.packet_size,
            self.total_bytes,
            self.size_stats.mean,
            self.size_stats.std,
            self.inter_arrival_s,
            dur,
            self.iat_stats.mean,
            self.iat_stats.std,
            self.queue_occupancy,
            self.occ_stats.mean,
            self.occ_stats.std,
            float(self.n_packets),
            pps,
            bps,
            self.hop_latency_s,
        ]

    def feature_vector(self, names: Sequence[str]) -> np.ndarray:
        """Features in schema order for the Prediction module."""
        lookup = dict(zip(FEATURE_ORDER, self.feature_row()))
        try:
            return np.array([lookup[n] for n in names], dtype=np.float64)
        except KeyError as exc:  # pragma: no cover - schema misuse
            raise KeyError(f"unknown feature name: {exc}") from exc
