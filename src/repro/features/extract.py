"""Bulk (offline) feature extraction from collector output.

The online Data Processor updates one flow record per packet; for
training on a multi-hundred-thousand-packet capture that per-packet path
is far too slow in Python.  This module computes the *same* per-packet
feature rows fully vectorized:

1. records are stably sorted by five-tuple (original arrival order kept
   within each flow),
2. every running statistic becomes a group-segmented cumulative sum
   (mean/std via first and second moments),
3. rows are scattered back to arrival order.

Equivalence with the streaming :class:`~repro.features.flow_record.FlowRecord`
path is asserted by a dedicated property test — the two implementations
check each other.

Units follow the schema: seconds and bytes (not ns), which keeps the
second moments well inside float64's exact range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.int_telemetry.timestamps import WRAP_PERIOD_NS

from .keys import canonical_key_arrays
from .schema import feature_names

__all__ = ["FeatureMatrix", "extract_features"]

_NS = 1e-9


@dataclass
class FeatureMatrix:
    """Extraction result: one row per telemetry record, arrival order.

    Attributes
    ----------
    X : ndarray (n, f)
        Feature rows in schema order.
    names : list of str
        Column names.
    flow_index : ndarray (n,)
        Dense integer id of each record's flow.
    packet_index : ndarray (n,)
        0-based position of each record within its flow.
    is_first : ndarray (n,) of bool
        True on the first packet of every flow (the records the
        CentralServer skips).
    n_flows : int
    """

    X: np.ndarray
    names: List[str]
    flow_index: np.ndarray
    packet_index: np.ndarray
    is_first: np.ndarray
    n_flows: int

    def __len__(self) -> int:
        return int(self.X.shape[0])


def _segmented_cumsum(x: np.ndarray, group_starts_mask: np.ndarray) -> np.ndarray:
    """Cumulative sum restarting at every True in ``group_starts_mask``."""
    total = np.cumsum(x)
    start_idx = np.flatnonzero(group_starts_mask)
    group_id = np.cumsum(group_starts_mask) - 1
    # Offset for each group: running total just before the group starts.
    per_group_offset = np.zeros(start_idx.size, dtype=total.dtype)
    per_group_offset[1:] = total[start_idx[1:] - 1]
    return total - per_group_offset[group_id]


def _time_and_fields(records: np.ndarray, source: str):
    if source == "int":
        ts32 = records["ingress_ts"].astype(np.int64)
        occ = records["queue_occupancy"].astype(np.float64)
        hop = records["hop_latency"].astype(np.float64)
    elif source == "sflow":
        # sFlow has no in-band timestamps; the agent's sampling clock is
        # the packet timeline.  Fold to 32 bits so both sources share the
        # wrap-aware differencing path.
        ts32 = np.mod(records["ts_sample"].astype(np.int64), WRAP_PERIOD_NS)
        occ = None
        hop = None
    else:
        raise ValueError(f"unknown telemetry source: {source!r}")
    return ts32, occ, hop


def extract_features(
    records: np.ndarray,
    source: str = "int",
    wrap_mode: str = "aware",
    include_hop_latency: bool = False,
    directional: bool = False,
) -> FeatureMatrix:
    """Per-packet feature rows from an INT or sFlow record array.

    Parameters
    ----------
    records : structured ndarray
        ``REPORT_DTYPE`` rows (INT) or ``SAMPLE_DTYPE`` rows (sFlow), in
        collector arrival order.
    source : {"int", "sflow"}
    wrap_mode : {"aware", "naive"}
        Inter-arrival differencing on the wrapped 32-bit timeline.
        ``"naive"`` reproduces the paper-§V error (negative gaps clamp
        to zero, matching the streaming path).
    include_hop_latency : bool
        Append the hop-latency column the paper dropped (INT only).
    directional : bool
        Group by the raw directional five-tuple instead of the default
        bidirectional canonical key (see :mod:`repro.features.keys`).

    Returns
    -------
    FeatureMatrix
    """
    if wrap_mode not in ("aware", "naive"):
        raise ValueError(f"unknown wrap_mode: {wrap_mode!r}")
    names = feature_names(source, include_hop_latency=include_hop_latency)
    n = records.shape[0]
    if n == 0:
        return FeatureMatrix(
            X=np.empty((0, len(names))),
            names=names,
            flow_index=np.empty(0, dtype=np.int64),
            packet_index=np.empty(0, dtype=np.int64),
            is_first=np.empty(0, dtype=bool),
            n_flows=0,
        )

    ts32, occ_col, hop_col = _time_and_fields(records, source)
    length = records["length"].astype(np.float64)
    protocol = records["protocol"].astype(np.float64)

    # --- sort by flow, stable in arrival order -------------------------
    if directional:
        kc = (
            records["src_ip"].astype(np.uint32),
            records["dst_ip"].astype(np.uint32),
            records["src_port"].astype(np.uint16),
            records["dst_port"].astype(np.uint16),
            records["protocol"].astype(np.uint8),
        )
    else:
        kc = canonical_key_arrays(records)
    ip_a, ip_b, port_a, port_b, proto_k = kc
    order = np.lexsort((np.arange(n), proto_k, port_b, port_a, ip_b, ip_a))
    new_flow = np.ones(n, dtype=bool)
    if n > 1:
        cols = [c[order] for c in kc]
        same = np.ones(n - 1, dtype=bool)
        for c in cols:
            same &= c[1:] == c[:-1]
        new_flow[1:] = ~same
    flow_id_sorted = np.cumsum(new_flow) - 1
    n_flows = int(flow_id_sorted[-1]) + 1

    group_id = flow_id_sorted
    start_mask = new_flow
    # position within flow
    start_positions = np.flatnonzero(start_mask)
    pos = np.arange(n) - start_positions[group_id]
    n_packets = (pos + 1).astype(np.float64)

    # --- inter-arrival gaps (wrapped 32-bit timeline) -------------------
    ts_sorted = ts32[order]
    raw = np.zeros(n, dtype=np.int64)
    if n > 1:
        diffs = ts_sorted[1:] - ts_sorted[:-1]
        if wrap_mode == "aware":
            # Signed nearest-representative difference: a wrap between
            # packets is corrected, while slight reordering (records of
            # one bidirectional flow can come from two observation
            # points) yields a small negative gap that clamps to zero
            # instead of a near-full-wrap bogus value.
            half = WRAP_PERIOD_NS // 2
            diffs = np.mod(diffs + half, WRAP_PERIOD_NS) - half
        diffs = np.maximum(diffs, 0)
        raw[1:] = diffs
    raw[start_mask] = 0
    iat = raw * _NS

    # --- segmented cumulative statistics --------------------------------
    len_sorted = length[order]
    proto_sorted = protocol[order]

    cum_bytes = _segmented_cumsum(len_sorted, start_mask)
    cum_len2 = _segmented_cumsum(len_sorted * len_sorted, start_mask)
    size_avg = cum_bytes / n_packets
    size_var = np.maximum(cum_len2 / n_packets - size_avg * size_avg, 0.0)
    size_std = np.sqrt(size_var)

    cum_iat = _segmented_cumsum(iat, start_mask)  # = flow duration
    cum_iat2 = _segmented_cumsum(iat * iat, start_mask)
    gap_count = np.maximum(n_packets - 1.0, 1.0)
    iat_avg = np.where(n_packets > 1, cum_iat / gap_count, 0.0)
    # A single gap has zero variance by definition; computing it via
    # E[x²]−E[x]² leaves ~eps·x² cancellation noise, so force it exact.
    iat_var = np.where(
        n_packets > 2,
        np.maximum(cum_iat2 / gap_count - iat_avg * iat_avg, 0.0),
        0.0,
    )
    iat_std = np.sqrt(iat_var)

    duration = cum_iat
    with np.errstate(divide="ignore", invalid="ignore"):
        pps = np.where(duration > 0, n_packets / duration, 0.0)
        bps = np.where(duration > 0, cum_bytes / duration, 0.0)

    columns = {
        "protocol": proto_sorted,
        "packet_size": len_sorted,
        "packet_size_cum": cum_bytes,
        "packet_size_avg": size_avg,
        "packet_size_std": size_std,
        "inter_arrival": iat,
        "inter_arrival_cum": duration,
        "inter_arrival_avg": iat_avg,
        "inter_arrival_std": iat_std,
        "n_packets": n_packets,
        "packets_per_second": pps,
        "bytes_per_second": bps,
    }

    if source == "int":
        occ_sorted = occ_col[order]
        cum_occ = _segmented_cumsum(occ_sorted, start_mask)
        cum_occ2 = _segmented_cumsum(occ_sorted * occ_sorted, start_mask)
        occ_avg = cum_occ / n_packets
        occ_var = np.maximum(cum_occ2 / n_packets - occ_avg * occ_avg, 0.0)
        columns["queue_occupancy"] = occ_sorted
        columns["queue_occupancy_avg"] = occ_avg
        columns["queue_occupancy_std"] = np.sqrt(occ_var)
        if include_hop_latency:
            columns["hop_latency"] = hop_col[order] * _NS

    X_sorted = np.column_stack([columns[name] for name in names])

    # --- scatter back to arrival order ----------------------------------
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n)
    return FeatureMatrix(
        X=np.ascontiguousarray(X_sorted[inverse]),
        names=names,
        flow_index=group_id[inverse],
        packet_index=pos[inverse],
        is_first=start_mask[inverse],
        n_flows=n_flows,
    )
