"""Feature schema (paper Table II).

Defines the packet- and flow-level features derived from each telemetry
source, and which source can supply which feature:

* both INT and sFlow provide the IP/L4 headers (protocol, packet length)
  and timestamps from which inter-arrival statistics derive;
* only INT provides *queue occupancy* and *hop latency*.

The paper's testbed deployment uses "15 packet-level and flow-level
features" — the INT column below minus hop latency, which the authors
dropped because they "were not able to retrieve it on the same scale for
all flow types".  We reproduce that default; hop latency remains
available behind ``include_hop_latency=True`` for the ablation bench.

Note on identifiers: source/destination addresses and ports are
*collected* (they form the five-tuple Flow ID) but are deliberately not
model features — feeding attacker identity to the classifier would make
the task trivial and the model useless against any new source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Feature", "FEATURES", "feature_names", "table2_rows"]


@dataclass(frozen=True)
class Feature:
    """One model feature and its source availability."""

    name: str
    description: str
    int_available: bool
    sflow_available: bool
    default_enabled: bool = True


#: The full feature catalogue.  Order here is the column order of every
#: extracted feature matrix.
FEATURES: Tuple[Feature, ...] = (
    Feature("protocol", "IP protocol number of the latest packet", True, True),
    Feature("packet_size", "length of the latest packet (bytes)", True, True),
    Feature("packet_size_cum", "total bytes in the flow so far", True, True),
    Feature("packet_size_avg", "running mean packet length", True, True),
    Feature("packet_size_std", "running std of packet length", True, True),
    Feature("inter_arrival", "gap to the previous packet of the flow (s)", True, True),
    Feature("inter_arrival_cum", "flow duration so far (s)", True, True),
    Feature("inter_arrival_avg", "running mean inter-arrival (s)", True, True),
    Feature("inter_arrival_std", "running std of inter-arrival (s)", True, True),
    Feature("queue_occupancy", "queue depth seen by the latest packet", True, False),
    Feature("queue_occupancy_avg", "running mean queue depth", True, False),
    Feature("queue_occupancy_std", "running std of queue depth", True, False),
    Feature("n_packets", "packets in the flow so far", True, True),
    Feature("packets_per_second", "n_packets / flow duration", True, True),
    Feature("bytes_per_second", "total bytes / flow duration", True, True),
    Feature(
        "hop_latency",
        "total in-switch latency of the latest packet (s)",
        True,
        False,
        default_enabled=False,  # dropped by the paper (scale issues)
    ),
)


def feature_names(source: str = "int", include_hop_latency: bool = False) -> List[str]:
    """Feature column names for a telemetry source.

    Parameters
    ----------
    source : {"int", "sflow"}
    include_hop_latency : bool
        Re-enable the feature the paper dropped (INT only).

    Returns
    -------
    list of str
        15 names for INT (16 with hop latency), 12 for sFlow.
    """
    if source not in ("int", "sflow"):
        raise ValueError(f"unknown telemetry source: {source!r}")
    names = []
    for f in FEATURES:
        available = f.int_available if source == "int" else f.sflow_available
        if not available:
            continue
        if not f.default_enabled and not (include_hop_latency and source == "int"):
            continue
        names.append(f.name)
    return names


def table2_rows() -> List[Tuple[str, str, str]]:
    """Render Table II: (feature, INT availability, sFlow availability)."""
    rows = []
    for f in FEATURES:
        rows.append(
            (
                f.name,
                "yes" if f.int_available else "no",
                "yes" if f.sflow_available else "no",
            )
        )
    return rows
