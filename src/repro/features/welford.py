"""Streaming mean/variance (Welford's algorithm).

The online Data Processor must maintain per-flow averages and standard
deviations (Table II's *avg* / *std* feature variants) one packet at a
time without storing packet history.  Welford's update is the numerically
stable way to do that — naive sum/sum-of-squares accumulation loses
precision exactly in the regime the detector cares about (long flows with
small inter-arrival variance).
"""

from __future__ import annotations

import math

__all__ = ["Welford"]


class Welford:
    """Single-variable streaming moments.

    Attributes
    ----------
    n : int
        Observations so far.
    mean : float
        Running mean (0.0 when empty).
    """

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        """Fold one observation into the moments."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    def state(self) -> tuple:
        """``(n, mean, m2)`` — the raw accumulator triple.

        Used by the batched flow-table fold to gather per-flow moments
        into flat arrays, run the vectorized update, and scatter back
        via :meth:`set_state` without losing a bit.
        """
        return (self.n, self.mean, self._m2)

    def set_state(self, n: int, mean: float, m2: float) -> None:
        """Restore an accumulator triple captured by :meth:`state`."""
        self.n = int(n)
        self.mean = float(mean)
        self._m2 = float(m2)

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two observations)."""
        if self.n < 2:
            return 0.0
        return self._m2 / self.n

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    def merge(self, other: "Welford") -> "Welford":
        """Combine two streams (parallel-merge form of the update)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self.mean, self._m2 = other.n, other.mean, other._m2
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        mean = self.mean + delta * other.n / n
        m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        self.n, self.mean, self._m2 = n, mean, m2
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Welford(n={self.n}, mean={self.mean:.6g}, std={self.std:.6g})"
