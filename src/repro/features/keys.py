"""Flow-key canonicalization.

The paper defines the Flow ID as the five-tuple (source IP, destination
IP, source port, destination port, protocol), following the IDS
literature it builds on [17].  That literature (ONOS flow pipelines,
CICFlowMeter-style feature extractors) aggregates the two directions of
a conversation into one *bidirectional* flow — the request and its
response update the same record.  Reading the paper's Table VI the same
way is the only consistent interpretation: scan probes and their RSTs
must share a record for the mechanism to ever produce the per-scan
predictions the paper reports (a strictly directional key would leave
every one-packet probe flow permanently "new" and unpredicted).

:func:`canonical_flow_key` therefore orders the two endpoints so both
directions map to the same key; the raw directional key remains
available (``directional=True`` everywhere it matters) for the ablation
bench that quantifies what direction-merging buys.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "canonical_flow_key",
    "canonical_key_arrays",
    "key_hash_of_key",
    "key_hash_packed",
    "key_hash_arrays",
    "shard_of_key",
    "shard_arrays",
]


def canonical_flow_key(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int, protocol: int
) -> Tuple[int, int, int, int, int]:
    """Direction-normalized five-tuple: the lexicographically smaller
    (ip, port) endpoint always comes first."""
    if (src_ip, src_port) <= (dst_ip, dst_port):
        return (src_ip, dst_ip, src_port, dst_port, protocol)
    return (dst_ip, src_ip, dst_port, src_port, protocol)


def canonical_key_arrays(records: np.ndarray):
    """Vectorized canonicalization of a record array's key columns.

    Parameters
    ----------
    records : structured ndarray
        Must expose ``src_ip``, ``dst_ip``, ``src_port``, ``dst_port``,
        ``protocol`` fields (both telemetry dtypes and the trace dtype
        qualify).

    Returns
    -------
    (ip_a, ip_b, port_a, port_b, protocol) : tuple of ndarrays
        Key columns with endpoint order normalized per row.
    """
    src_ip = records["src_ip"].astype(np.uint32)
    dst_ip = records["dst_ip"].astype(np.uint32)
    src_port = records["src_port"].astype(np.uint16)
    dst_port = records["dst_port"].astype(np.uint16)
    proto = records["protocol"].astype(np.uint8)
    # Endpoint comparison on (ip, port) lexicographic order.
    swap = (src_ip > dst_ip) | ((src_ip == dst_ip) & (src_port > dst_port))
    ip_a = np.where(swap, dst_ip, src_ip)
    ip_b = np.where(swap, src_ip, dst_ip)
    port_a = np.where(swap, dst_port, src_port)
    port_b = np.where(swap, src_port, dst_port)
    return ip_a, ip_b, port_a, port_b, proto


# ---------------------------------------------------------------------------
# Flow-identity hash (shard assignment + sketch partitioning)
# ---------------------------------------------------------------------------
# One splitmix64 value per canonical key is the repo's entire flow-identity
# hash surface.  The sharded detector takes it mod n_shards so every worker
# owns a disjoint slice of the flow space; the sketch layer takes the SAME
# value mod its partition count so flows that can ever share a sketch cell
# co-locate on one worker whenever n_shards divides the partition count
# (see repro.sketch.cms).  The hash runs on the *canonical* key, so both
# packet directions of a conversation land on the same shard by
# construction — the property the shard-stability suite checks.
# splitmix64's finalizer gives the avalanche a plain modulo over the packed
# tuple lacks (sequential IPs from one subnet would otherwise pile onto few
# shards).

_MASK64 = (1 << 64) - 1


def key_hash_of_key(key: Tuple[int, int, int, int, int]) -> int:
    """splitmix64 flow-identity hash of one canonical five-tuple.

    This is the pre-modulo value behind both :func:`shard_of_key` and
    the sketch layer's partition/cell placement.
    """
    ip_a, ip_b, port_a, port_b, proto = key
    x = ((ip_a << 32) | ip_b) & _MASK64
    x ^= ((port_a << 24) | (port_b << 8) | proto) * 0x9E3779B97F4A7C15 & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def key_hash_packed(k1: np.ndarray, k2: np.ndarray) -> np.ndarray:
    """Vectorized :func:`key_hash_of_key` over pre-packed sort keys.

    ``k1``/``k2`` are the uint64 packings the batch grouper already
    builds (64 bits of IPs, 40 bits of ports+protocol) — the hash is
    bit-for-bit the scalar version (uint64 wraparound arithmetic), so
    the coordinator's batch partitioning, the sketch's cell placement,
    and any scalar re-check agree on every record.
    """
    x = k1.astype(np.uint64) ^ k2.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def key_hash_arrays(ip_a, ip_b, port_a, port_b, proto) -> np.ndarray:
    """Vectorized :func:`key_hash_of_key` over canonical key columns."""
    k1 = ip_a.astype(np.uint64) << np.uint64(32) | ip_b.astype(np.uint64)
    k2 = (
        port_a.astype(np.uint64) << np.uint64(24)
        | port_b.astype(np.uint64) << np.uint64(8)
        | proto.astype(np.uint64)
    )
    return key_hash_packed(k1, k2)


def shard_of_key(key: Tuple[int, int, int, int, int], n_shards: int) -> int:
    """Shard index of one canonical five-tuple (splitmix64 finalizer)."""
    return int(key_hash_of_key(key) % n_shards)


def shard_arrays(ip_a, ip_b, port_a, port_b, proto, n_shards: int) -> np.ndarray:
    """Vectorized :func:`shard_of_key` over canonical key columns."""
    x = key_hash_arrays(ip_a, ip_b, port_a, port_b, proto)
    return (x % np.uint64(n_shards)).astype(np.int64)
