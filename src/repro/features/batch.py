"""Batch grouping of telemetry records by canonical five-tuple.

The batched hot path replaces per-packet Python calls with one grouping
pass per polled slice: the key columns are canonicalized vectorized
(:func:`~repro.features.keys.canonical_key_arrays`), packed into two
integer sort keys, and a single stable ``np.lexsort`` clusters every
packet of the same flow while preserving arrival order *within* each
flow.  Everything downstream — the flow-table fold, update registration,
LRU reordering — consumes the resulting :class:`FlowBatch` view instead
of re-deriving keys per packet.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .keys import key_hash_packed

__all__ = ["FlowBatch", "group_by_flow"]


class FlowBatch:
    """Grouped view of one telemetry batch.

    Attributes
    ----------
    n : int
        Total records in the batch.
    order : ndarray
        Permutation putting records in (flow, arrival) order; within a
        group the original indices are ascending (stable sort), so a
        group's rows replay in exactly the order the scalar path would
        have consumed them.
    starts, counts : ndarray
        Per-group offsets/lengths into the permuted arrays.
    keys : list of tuple
        One canonical five-tuple per group, equal (as Python tuples) to
        what :func:`~repro.features.keys.canonical_flow_key` returns for
        any packet of the group.
    first_pos, last_pos : ndarray
        Original index of each group's first/last record — the handles
        used to replay the scalar path's dict-insertion and LRU orders.
    key_hash : ndarray (uint64)
        Per-group splitmix64 flow-identity hash
        (:func:`~repro.features.keys.key_hash_packed`) — the value
        behind shard assignment and sketch partition/cell placement.
    group_ip_a : ndarray (int64)
        Per-group canonical endpoint-A IP (the lexicographically
        smaller endpoint); the sketch gate keys residual aggregation by
        its prefix.
    """

    __slots__ = (
        "n",
        "order",
        "starts",
        "counts",
        "keys",
        "first_pos",
        "last_pos",
        "key_hash",
        "group_ip_a",
    )

    def __init__(
        self,
        n: int,
        order: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        keys: List[tuple],
        first_pos: np.ndarray,
        last_pos: np.ndarray,
        key_hash: np.ndarray,
        group_ip_a: np.ndarray,
    ) -> None:
        self.n = n
        self.order = order
        self.starts = starts
        self.counts = counts
        self.keys = keys
        self.first_pos = first_pos
        self.last_pos = last_pos
        self.key_hash = key_hash
        self.group_ip_a = group_ip_a

    @property
    def n_groups(self) -> int:
        return len(self.keys)

    def group_rows(self, g: int) -> np.ndarray:
        """Original record indices of group ``g``, in arrival order."""
        s = self.starts[g]
        return self.order[s : s + self.counts[g]]

    def subset(self, keep: np.ndarray) -> Tuple["FlowBatch", np.ndarray]:
        """Compress the batch down to the groups flagged by ``keep``.

        Returns ``(sub_batch, rec_mask)`` where ``rec_mask`` flags the
        *original record indices* belonging to kept groups.  The
        sub-batch's ``order``/``starts``/``first_pos``/``last_pos``
        index into the **compressed** record space (original arrays
        sliced by ``rec_mask``), so it composes with
        ``FlowTable.update_batch`` and update registration exactly like
        a batch that never contained the dropped records — kept groups
        preserve their relative record order, hence the scalar
        equivalences PR 2 established still hold group-wise.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.all():
            return self, np.ones(self.n, dtype=bool)
        rec_mask_sorted = np.repeat(keep, self.counts)
        rec_mask = np.empty(self.n, dtype=bool)
        rec_mask[self.order] = rec_mask_sorted
        # Original index -> compressed index (valid only where kept).
        new_of_orig = np.cumsum(rec_mask, dtype=np.int64) - 1
        order_new = new_of_orig[self.order[rec_mask_sorted]]
        counts_new = self.counts[keep]
        starts_new = np.concatenate(
            ([0], np.cumsum(counts_new))
        ).astype(np.int64)[:-1]
        keys_new = [k for k, f in zip(self.keys, keep.tolist()) if f]
        sub = FlowBatch(
            int(counts_new.sum()),
            order_new,
            starts_new,
            counts_new,
            keys_new,
            new_of_orig[self.first_pos[keep]],
            new_of_orig[self.last_pos[keep]],
            self.key_hash[keep],
            self.group_ip_a[keep],
        )
        return sub, rec_mask


def group_by_flow(ip_a, ip_b, port_a, port_b, proto) -> FlowBatch:
    """Group records by canonical five-tuple.

    Arguments are the column arrays returned by
    :func:`~repro.features.keys.canonical_key_arrays` (already
    direction-normalized).  One stable lexsort replaces ``n`` per-packet
    key constructions + dict probes; tuple keys are built once per
    *group*.
    """
    n = int(ip_a.shape[0])
    if n == 0:
        return FlowBatch(
            0,
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            [],
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.uint64),
            np.empty(0, np.int64),
        )
    # Pack the five columns into two sortable integers: 64 bits of IPs,
    # 40 bits of ports+protocol.
    k1 = ip_a.astype(np.uint64) << np.uint64(32) | ip_b.astype(np.uint64)
    k2 = (
        port_a.astype(np.uint64) << np.uint64(24)
        | port_b.astype(np.uint64) << np.uint64(8)
        | proto.astype(np.uint64)
    )
    order = np.lexsort((k2, k1))  # stable: ties keep original order
    k1s, k2s = k1[order], k2[order]
    boundary = np.flatnonzero((k1s[1:] != k1s[:-1]) | (k2s[1:] != k2s[:-1])) + 1
    starts = np.concatenate(([0], boundary)).astype(np.int64)
    ends = np.concatenate((boundary, [n])).astype(np.int64)
    counts = ends - starts
    first_pos = order[starts]
    last_pos = order[ends - 1]

    reps = first_pos  # one representative record per group
    ka, kb = ip_a[reps].tolist(), ip_b[reps].tolist()
    pa, pb = port_a[reps].tolist(), port_b[reps].tolist()
    pr = proto[reps].tolist()
    keys = list(zip(ka, kb, pa, pb, pr))
    key_hash = key_hash_packed(k1s[starts], k2s[starts])
    group_ip_a = (k1s[starts] >> np.uint64(32)).astype(np.int64)
    return FlowBatch(
        n, order, starts, counts, keys, first_pos, last_pos, key_hash, group_ip_a
    )
