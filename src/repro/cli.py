"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``     regenerate any/all of the paper's tables (I-VI)
``figures``    regenerate any/all of the paper's figures (1-7)
``dataset``    build a campaign profile and print its composition
``schedule``   print the Table I episode schedule and its sim mapping
``mitigation`` run the closed-loop worker-kill scenario and report
               whether the mitigation action log survived byte-identically

Examples
--------
    python -m repro tables 3 4            # Tables III and IV
    python -m repro figures               # all figures
    python -m repro dataset --profile tiny
    python -m repro mitigation --shards 2 --kill-seed 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the AmLight INT DDoS-detection paper's "
        "tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t = sub.add_parser("tables", help="regenerate paper tables")
    t.add_argument("numbers", nargs="*", type=int,
                   help="table numbers 1-6 (default: all)")
    t.add_argument("--profile", default="small",
                   choices=("tiny", "small", "full"))
    t.add_argument("--seed", type=int, default=0)

    f = sub.add_parser("figures", help="regenerate paper figures")
    f.add_argument("numbers", nargs="*", type=int,
                   help="figure numbers 1-7 (default: all)")
    f.add_argument("--profile", default="small",
                   choices=("tiny", "small", "full"))
    f.add_argument("--seed", type=int, default=0)

    d = sub.add_parser("dataset", help="build a campaign and summarize it")
    d.add_argument("--profile", default="tiny",
                   choices=("tiny", "small", "full"))

    sub.add_parser("schedule", help="print the Table I schedule")

    m = sub.add_parser(
        "mitigation",
        help="closed-loop mitigation under worker-kill: verify the "
        "action-log digest survives a mid-episode crash",
    )
    m.add_argument("--profile", default="tiny",
                   choices=("tiny", "small", "full"))
    m.add_argument("--seed", type=int, default=0, help="study seed")
    m.add_argument("--shards", type=int, default=2)
    m.add_argument("--kill-seed", type=int, default=0,
                   help="seed for the victim/cycle kill plan")
    m.add_argument("--mode", default="sigkill",
                   choices=("sigkill", "raise", "hang"))
    m.add_argument("--flow-type", default="SYN Flood")

    r = sub.add_parser(
        "report", help="write every table and figure to a directory"
    )
    r.add_argument("--out", default="results", help="output directory")
    r.add_argument("--profile", default="small",
                   choices=("tiny", "small", "full"))
    r.add_argument("--seed", type=int, default=0)
    return parser


def _run_tables(args) -> int:
    from repro.analysis import report

    table_fns = {
        1: lambda: report.exp_table1(args.profile),
        2: report.exp_table2,
        3: lambda: report.exp_table3(args.profile, args.seed),
        4: lambda: report.exp_table4(args.profile, args.seed),
        5: lambda: report.exp_table5(args.profile, args.seed),
        6: lambda: report.exp_table6(args.profile, args.seed),
    }
    numbers = args.numbers or sorted(table_fns)
    for n in numbers:
        if n not in table_fns:
            print(f"error: no Table {n} (valid: 1-6)", file=sys.stderr)
            return 2
        print(table_fns[n]())
        print()
    return 0


def _run_figures(args) -> int:
    from repro.analysis import report

    figure_fns = {
        1: report.exp_fig1,
        2: lambda: report.exp_fig2(args.profile),
        3: lambda: report.exp_fig3(args.profile, args.seed),
        4: lambda: report.exp_fig4(args.profile, args.seed),
        5: lambda: report.exp_fig5(args.profile, args.seed),
        6: report.exp_fig6,
        7: lambda: report.exp_fig7(args.profile, args.seed),
    }
    numbers = args.numbers or sorted(figure_fns)
    for n in numbers:
        if n not in figure_fns:
            print(f"error: no Fig {n} (valid: 1-7)", file=sys.stderr)
            return 2
        print(figure_fns[n]())
        print()
    return 0


def _run_dataset(args) -> int:
    from repro.datasets import cached_dataset
    from repro.traffic import AttackType

    ds = cached_dataset(args.profile)
    print(f"profile '{args.profile}': {len(ds.trace)} packets, "
          f"{ds.trace.duration_ns / 1e9:.1f} s simulated")
    for atype, count in sorted(ds.trace.counts_by_type().items()):
        print(f"  {atype.display:>10s}: {count}")
    print(f"INT reports: {len(ds.int_records)}; "
          f"sFlow samples: {len(ds.sflow_records)} "
          f"(1:{ds.config.sflow_rate})")
    return 0


def _run_schedule(_args) -> int:
    from repro.analysis.report import exp_table1

    print(exp_table1())
    return 0


def _run_mitigation(args) -> int:
    from repro.resilience.harness import ResilienceHarness

    harness = ResilienceHarness(profile=args.profile, seed=args.seed)
    report = harness.run_mitigation_kill(
        shards=args.shards,
        kill_seed=args.kill_seed,
        mode=args.mode,
        flow_type=args.flow_type,
    )
    print(report.render())
    counters = report.mitigation_stats.get("counters", {})
    print(f"counters: installed={counters.get('rules_installed', 0)} "
          f"refreshed={counters.get('rules_refreshed', 0)} "
          f"expired={counters.get('rules_expired', 0)} "
          f"dropped={counters.get('packets_dropped', 0)} "
          f"rate-shed={counters.get('packets_rate_shed', 0)} "
          f"escalations={counters.get('episode_escalations', 0)}")
    if not report.loop_survived:
        print("FAIL: closed loop did not survive the worker kill",
              file=sys.stderr)
        return 1
    print("OK: mitigation state survived the kill byte-identically")
    return 0


def _run_report(args) -> int:
    from pathlib import Path

    from repro.analysis import report

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "table1.txt": lambda: report.exp_table1(args.profile),
        "table2.txt": report.exp_table2,
        "table3.txt": lambda: report.exp_table3(args.profile, args.seed),
        "table4.txt": lambda: report.exp_table4(args.profile, args.seed),
        "table5.txt": lambda: report.exp_table5(args.profile, args.seed),
        "table6.txt": lambda: report.exp_table6(args.profile, args.seed),
        "fig1.txt": report.exp_fig1,
        "fig2.txt": lambda: report.exp_fig2(args.profile),
        "fig3.txt": lambda: report.exp_fig3(args.profile, args.seed),
        "fig4.txt": lambda: report.exp_fig4(args.profile, args.seed),
        "fig5.txt": lambda: report.exp_fig5(args.profile, args.seed),
        "fig6.txt": report.exp_fig6,
        "fig7.txt": lambda: report.exp_fig7(args.profile, args.seed),
    }
    for name, fn in artifacts.items():
        text = fn()
        (out / name).write_text(text + "\n")
        print(f"wrote {out / name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _run_tables,
        "figures": _run_figures,
        "dataset": _run_dataset,
        "schedule": _run_schedule,
        "mitigation": _run_mitigation,
        "report": _run_report,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `python -m repro tables | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
