"""``python -m repro`` — see :mod:`repro.cli`."""

from repro.cli import main

raise SystemExit(main())
