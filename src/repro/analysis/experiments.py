"""Experiment runners: one entry point per table and figure.

Two cached studies feed everything:

* :func:`run_offline_study` — §IV-B: builds the campaign dataset,
  extracts features from the INT and sFlow captures, trains the four
  models under both split protocols (random 90:10 for Table III;
  June 11 held out for Table IV), and collects confusion matrices
  (Figs 3/4), the timeline comparison (Fig 5), and feature importances
  (Table V).
* :func:`run_testbed_study` — §IV-C: pre-trains the MLP/RF/GNB panel on
  a testbed replay (SlowLoris excluded — the zero-day protocol), then
  replays ~2500 packets of each flow type through the Fig 6 testbed and
  the live mechanism, producing Table VI and Fig 7.

Protocol notes mirroring the paper:
 * Table III INT data comes from the two focus windows (June 10
   13:00–15:00, June 11 19:00–21:00); sFlow uses the whole campaign
   (§IV-B3).
 * KNN trains on a subsample (the paper used 1/1000 of ~17 M rows; our
   capture is already ~100× smaller, so we default to 1/4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.mechanism import AutomatedDDoSDetector, score_by_type
from repro.core.training import pretrain_from_records
from repro.datasets.amlight import (
    AmLightDataset,
    CampaignConfig,
    cached_dataset,
    capture_testbed,
    label_records,
    testbed_flow_traces,
)
from repro.features.extract import FeatureMatrix, extract_features
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import permutation_importance, top_k_features
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import classification_report, confusion_matrix
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.scaler import StandardScaler
from repro.traffic.trace import AttackType
from repro.traffic.schedule import table1_schedule
from repro.traffic.trace import merge_traces

__all__ = [
    "model_zoo",
    "OfflineStudy",
    "run_offline_study",
    "TestbedStudy",
    "run_testbed_study",
]

MODEL_ORDER = ("RF", "GNB", "KNN", "NN")


def model_zoo(seed: int = 0) -> Dict[str, Callable[[], object]]:
    """The §IV-B model set with our standard hyper-parameters."""
    return {
        "RF": lambda: RandomForestClassifier(
            n_estimators=25, max_depth=14, max_samples=30000, seed=seed
        ),
        "GNB": lambda: GaussianNB(),
        "KNN": lambda: KNeighborsClassifier(5),
        "NN": lambda: MLPClassifier((32, 16, 8), max_epochs=60, seed=seed),
    }


@dataclass
class SourceResults:
    """Per-telemetry-source artifacts of the offline study."""

    fm: FeatureMatrix
    labels: np.ndarray
    types: np.ndarray
    ts: np.ndarray  # record timestamps (ns)
    table3: Dict[str, dict] = field(default_factory=dict)
    table4: Dict[str, dict] = field(default_factory=dict)
    cm_rf_split: Optional[np.ndarray] = None  # Fig 3 / Fig 4
    rf_full_predictions: Optional[np.ndarray] = None  # Fig 5
    importances: Dict[str, np.ndarray] = field(default_factory=dict)
    slowloris_recall_zero_day: Dict[str, float] = field(default_factory=dict)


@dataclass
class OfflineStudy:
    dataset: AmLightDataset
    int_res: SourceResults
    sflow_res: SourceResults
    seed: int

    def by_source(self, source: str) -> SourceResults:
        if source == "int":
            return self.int_res
        if source == "sflow":
            return self.sflow_res
        raise ValueError(f"unknown source: {source!r}")


_OFFLINE_CACHE: Dict[tuple, OfflineStudy] = {}
_TESTBED_CACHE: Dict[tuple, "TestbedStudy"] = {}


def _knn_subsample(X, y, fraction: float, seed: int):
    """Paper footnote: KNN trains on a subsample for tractability."""
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    k = max(100, int(n * fraction))
    if k >= n:
        return X, y
    idx = rng.choice(n, size=k, replace=False)
    if np.unique(y[idx]).size < 2:  # ensure both classes survive
        extra = np.flatnonzero(y != y[idx][0])[:50]
        idx = np.concatenate([idx, extra])
    return X[idx], y[idx]


def _fit_and_score(
    factories, Xtr, ytr, Xte, yte, knn_fraction: float, seed: int
) -> Tuple[Dict[str, dict], Dict[str, object], StandardScaler]:
    """Standardize, fit every model, report §IV-A metrics on the test set."""
    scaler = StandardScaler().fit(Xtr)
    Xtr_s = scaler.transform(Xtr)
    Xte_s = scaler.transform(Xte)
    results: Dict[str, dict] = {}
    fitted: Dict[str, object] = {}
    for name in MODEL_ORDER:
        model = factories[name]()
        if name == "KNN" and Xtr_s.shape[0] > 50_000:
            # The paper subsamples KNN's training set "to facilitate easy
            # convergence"; only worthwhile above ~50k rows (sFlow's small
            # capture trains on everything).
            Xk, yk = _knn_subsample(Xtr_s, ytr, knn_fraction, seed)
            model.fit(Xk, yk)
        else:
            model.fit(Xtr_s, ytr)
        pred = model.predict(Xte_s)
        results[name] = classification_report(yte, pred)
        fitted[name] = model
    return results, fitted, scaler


def _run_source(
    dataset: AmLightDataset,
    source: str,
    seed: int,
    knn_fraction: float,
) -> SourceResults:
    if source == "int":
        records, labels, types = (
            dataset.int_records,
            dataset.int_labels,
            dataset.int_types,
        )
        ts = records["ts_report"]
    else:
        records, labels, types = (
            dataset.sflow_records,
            dataset.sflow_labels,
            dataset.sflow_types,
        )
        ts = records["ts_sample"]

    fm = extract_features(records, source=source)
    res = SourceResults(fm=fm, labels=labels, types=types, ts=np.asarray(ts))
    factories = model_zoo(seed)

    # ------------------------------------------------------------------
    # Table III protocol: random 90:10 split.  INT restricted to the
    # §IV-B3 focus windows; sFlow uses all six days.
    # ------------------------------------------------------------------
    if source == "int":
        win_mask = dataset.int_time_mask(dataset.focus_windows_ns())
        # Guard: tiny profiles may have few windowed rows.
        if win_mask.sum() < 1000:
            win_mask = np.ones(len(fm), dtype=bool)
    else:
        win_mask = np.ones(len(fm), dtype=bool)
    Xw, yw = fm.X[win_mask], labels[win_mask]
    Xtr, Xte, ytr, yte = train_test_split(Xw, yw, test_size=0.1, seed=seed)
    res.table3, fitted3, scaler3 = _fit_and_score(
        factories, Xtr, ytr, Xte, yte, knn_fraction, seed
    )
    # Figs 3/4: RF confusion matrix on the 90:10 test set.
    rf_pred = fitted3["RF"].predict(scaler3.transform(Xte))
    res.cm_rf_split = confusion_matrix(yte, rf_pred)

    # Fig 5: the split-protocol RF applied to the whole campaign.
    res.rf_full_predictions = fitted3["RF"].predict(scaler3.transform(fm.X))

    # Table V: feature importances (impurity for RF, permutation else).
    res.importances["RF"] = fitted3["RF"].feature_importances_
    imp_X, imp_y = Xte, yte
    if imp_X.shape[0] > 20000:  # keep permutation importance tractable
        sel = np.random.default_rng(seed).choice(
            imp_X.shape[0], size=20000, replace=False
        )
        imp_X, imp_y = imp_X[sel], imp_y[sel]
    imp_Xs = scaler3.transform(imp_X)
    for name in ("GNB", "KNN", "NN"):
        res.importances[name] = permutation_importance(
            fitted3[name], imp_Xs, imp_y, n_repeats=3, seed=seed
        )

    # ------------------------------------------------------------------
    # Table IV protocol: June 11 is the test set (SlowLoris unseen).
    # ------------------------------------------------------------------
    boundary = dataset.day_start_ns(11)
    test_mask = np.asarray(ts) >= boundary
    if test_mask.any() and (~test_mask).any():
        Xtr4, ytr4 = fm.X[~test_mask], labels[~test_mask]
        Xte4, yte4 = fm.X[test_mask], labels[test_mask]
        if np.unique(ytr4).size == 2 and np.unique(yte4).size == 2:
            res.table4, fitted4, scaler4 = _fit_and_score(
                factories, Xtr4, ytr4, Xte4, yte4, knn_fraction, seed
            )
            sl_mask = types[test_mask] == int(AttackType.SLOWLORIS)
            if sl_mask.any():
                Xsl = scaler4.transform(Xte4[sl_mask])
                for name, model in fitted4.items():
                    res.slowloris_recall_zero_day[name] = float(
                        model.predict(Xsl).mean()
                    )
    return res


def run_offline_study(
    profile: str = "small", seed: int = 0, knn_fraction: float = 0.25
) -> OfflineStudy:
    """Run (or fetch the cached) §IV-B offline comparison study."""
    key = (profile, seed, knn_fraction)
    if key in _OFFLINE_CACHE:
        return _OFFLINE_CACHE[key]
    dataset = cached_dataset(profile)
    study = OfflineStudy(
        dataset=dataset,
        int_res=_run_source(dataset, "int", seed, knn_fraction),
        sflow_res=_run_source(dataset, "sflow", seed, knn_fraction),
        seed=seed,
    )
    _OFFLINE_CACHE[key] = study
    return study


# ----------------------------------------------------------------------
# Testbed study (§IV-C)
# ----------------------------------------------------------------------


@dataclass
class TestbedStudy:
    """Everything the Table VI / Fig 7 benches consume.

    Also carries what the resilience harness needs to re-run the same
    replay under fault injection without paying the build twice: the
    trained bundle, the captured per-type test records with their
    ground-truth maps, and each detector's stats scorecard.
    """

    table6: Dict[str, dict]
    decisions: Dict[str, np.ndarray]  # per type, replay order
    true_labels: Dict[str, int]
    train_packets: int
    bundle_models: List[str]
    bundle: Optional[object] = None  # TrainedBundle
    test_records: Dict[str, np.ndarray] = field(default_factory=dict)
    truth_maps: Dict[str, dict] = field(default_factory=dict)
    mech_stats: Dict[str, dict] = field(default_factory=dict)


def run_testbed_study(
    profile: str = "small",
    seed: int = 0,
    n_packets: int = 2500,
    decision_window: int = 3,
    emit_partial: bool = True,
    skip_new_flows: bool = False,
    wrap_aware: bool = True,
    fast_poll: bool = False,
    chaos=None,
    chaos_seed=None,
) -> TestbedStudy:
    """Run (or fetch the cached) §IV-C automated-mechanism study.

    ``chaos`` (a :class:`~repro.resilience.chaos.ChaosSchedule`) runs
    the same replay with fault injection on the telemetry feed — the
    resilience harness compares such a run against the clean one.
    """
    key = (
        profile, seed, n_packets, decision_window, emit_partial,
        skip_new_flows, wrap_aware, fast_poll, chaos, chaos_seed,
    )
    if key in _TESTBED_CACHE:
        return _TESTBED_CACHE[key]
    cfg = getattr(CampaignConfig, profile)()

    # Pre-training replay: benign + the three non-SlowLoris attacks.
    train_traces = testbed_flow_traces(cfg, n_packets=n_packets, seed=seed + 11)
    train_trace = merge_traces(
        [train_traces[k] for k in ("Benign", "SYN Scan", "UDP Scan", "SYN Flood")]
    )
    train_records, train_truth = capture_testbed(train_trace, cfg)
    ytr, _ = label_records(train_records, train_truth)
    bundle = pretrain_from_records(train_records, ytr, source="int", seed=seed)

    # Live replays, one fresh mechanism per flow type (paper protocol).
    test_traces = testbed_flow_traces(cfg, n_packets=n_packets, seed=seed + 23)
    table6: Dict[str, dict] = {}
    decisions: Dict[str, np.ndarray] = {}
    true_labels: Dict[str, int] = {}
    test_records: Dict[str, np.ndarray] = {}
    truth_maps: Dict[str, dict] = {}
    mech_stats: Dict[str, dict] = {}
    for name, trace in test_traces.items():
        records, truth_map = capture_testbed(trace, cfg)
        test_records[name] = records
        truth_maps[name] = truth_map
        detector = AutomatedDDoSDetector(
            bundle,
            decision_window=decision_window,
            emit_partial=emit_partial,
            skip_new_flows=skip_new_flows,
            wrap_aware=wrap_aware,
            fast_poll=fast_poll,
            chaos=chaos,
            chaos_seed=chaos_seed,
        )
        db = detector.run_stream(records, poll_every=64, cycle_budget=128)
        rows = score_by_type(
            db,
            lambda k: truth_map.get(k, (0, int(AttackType.BENIGN))),
            percentile_for={"Benign": 99.0},
        )
        if name in rows:
            table6[name] = rows[name]
        decided = [
            e.final_decision for e in db.predictions if e.final_decision is not None
        ]
        decisions[name] = np.asarray(decided, dtype=np.int64)
        true_labels[name] = 0 if name == "Benign" else 1
        mech_stats[name] = detector.stats()
    study = TestbedStudy(
        table6=table6,
        decisions=decisions,
        true_labels=true_labels,
        train_packets=len(train_records),
        bundle_models=list(bundle.models.keys()),
        bundle=bundle,
        test_records=test_records,
        truth_maps=truth_maps,
        mech_stats=mech_stats,
    )
    _TESTBED_CACHE[key] = study
    return study
