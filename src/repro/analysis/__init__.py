"""Experiment runners, table rendering, and figure reproduction."""

from .experiments import (
    OfflineStudy,
    TestbedStudy,
    model_zoo,
    run_offline_study,
    run_testbed_study,
)
from .microburst import Microburst, detect_microbursts, occupancy_series
from .figures import (
    confusion_matrix_figure,
    prediction_scatter_figure,
    timeline_figure,
)
from .report import (
    exp_fig1,
    exp_fig2,
    exp_fig3,
    exp_fig4,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_table1,
    exp_table2,
    exp_table3,
    exp_table4,
    exp_table5,
    exp_table6,
)
from .tables import render_table

__all__ = [
    "OfflineStudy",
    "TestbedStudy",
    "model_zoo",
    "run_offline_study",
    "run_testbed_study",
    "confusion_matrix_figure",
    "prediction_scatter_figure",
    "timeline_figure",
    "render_table",
    "Microburst",
    "detect_microbursts",
    "occupancy_series",
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "exp_table4",
    "exp_table5",
    "exp_table6",
    "exp_fig1",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
]
