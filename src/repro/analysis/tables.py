"""Plain-text table rendering in the paper's layouts."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "fmt"]


def fmt(value, digits: int = 4) -> str:
    """Format a cell: floats to fixed digits, everything else via str."""
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str = "",
) -> str:
    """Monospace table with a title bar, suitable for bench output."""
    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        out.append(f"Note: {note}")
    return "\n".join(out)
