"""Microburst detection from per-packet telemetry.

Before turning INT on DDoS, AmLight used it to detect *microbursts* —
sub-second queue-buildup events invisible to SNMP-rate counters (the
paper's reference [8], NOMS'23).  Since our telemetry reports carry the
same queue-occupancy signal, the detector ports directly:

1. bucket the capture into fixed windows,
2. take each window's peak occupancy,
3. a microburst is a maximal run of windows whose peak exceeds the
   threshold, lasting no longer than ``max_duration_ns`` (longer events
   are sustained congestion, not bursts).

Everything is vectorized over the structured record array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["Microburst", "detect_microbursts", "occupancy_series"]


@dataclass(frozen=True)
class Microburst:
    """One detected burst event."""

    start_ns: int
    end_ns: int
    peak_occupancy: int
    packets: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


def occupancy_series(records: np.ndarray, window_ns: int):
    """Per-window peak queue occupancy and packet counts.

    Returns ``(window_starts, peaks, counts)`` covering the capture span.
    """
    if window_ns <= 0:
        raise ValueError(f"window must be positive: {window_ns}")
    if records.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    ts = records["ts_report"].astype(np.int64)
    occ = records["queue_occupancy"].astype(np.int64)
    t0 = int(ts.min())
    idx = (ts - t0) // window_ns
    n_bins = int(idx.max()) + 1
    peaks = np.zeros(n_bins, dtype=np.int64)
    np.maximum.at(peaks, idx, occ)
    counts = np.bincount(idx, minlength=n_bins).astype(np.int64)
    starts = t0 + np.arange(n_bins, dtype=np.int64) * window_ns
    return starts, peaks, counts


def detect_microbursts(
    records: np.ndarray,
    threshold: int = 8,
    window_ns: int = 1_000_000,
    max_duration_ns: int = 100_000_000,
) -> List[Microburst]:
    """Find microburst events in an INT capture.

    Parameters
    ----------
    records : REPORT_DTYPE array
        Telemetry capture (needs ``ts_report`` and ``queue_occupancy``).
    threshold : int
        Queue depth (packets) that counts as bursting.
    window_ns : int
        Aggregation window (default 1 ms — the sub-second granularity
        SNMP cannot see).
    max_duration_ns : int
        Runs longer than this are sustained congestion and are excluded.

    Returns
    -------
    list of Microburst, in time order.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1: {threshold}")
    starts, peaks, counts = occupancy_series(records, window_ns)
    if starts.size == 0:
        return []
    hot = peaks >= threshold
    if not hot.any():
        return []
    # maximal runs of hot windows
    edges = np.diff(hot.astype(np.int8))
    run_starts = np.flatnonzero(edges == 1) + 1
    run_ends = np.flatnonzero(edges == -1) + 1
    if hot[0]:
        run_starts = np.r_[0, run_starts]
    if hot[-1]:
        run_ends = np.r_[run_ends, hot.size]
    out: List[Microburst] = []
    for a, b in zip(run_starts, run_ends):
        duration = int((b - a) * window_ns)
        if duration > max_duration_ns:
            continue  # sustained congestion, not a microburst
        out.append(
            Microburst(
                start_ns=int(starts[a]),
                end_ns=int(starts[a]) + duration,
                peak_occupancy=int(peaks[a:b].max()),
                packets=int(counts[a:b].sum()),
            )
        )
    return out
