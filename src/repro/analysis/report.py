"""Rendered reproductions: one function per paper table/figure.

Every ``exp_*`` function returns the text a reader compares against the
paper; the benchmark harness prints these, and EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.dataplane.packet import Packet, Protocol, TCPFlags
from repro.dataplane.topology import int_path_topology, testbed_topology
from repro.features.schema import FEATURES, feature_names
from repro.int_telemetry.collector import IntCollector
from repro.int_telemetry.roles import attach_int_path
from repro.traffic.schedule import CampaignSchedule, table1_schedule
from repro.traffic.trace import AttackType

from .experiments import MODEL_ORDER, run_offline_study, run_testbed_study
from .figures import (
    confusion_matrix_figure,
    prediction_scatter_figure,
    timeline_figure,
)
from .tables import render_table

__all__ = [
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "exp_table4",
    "exp_table5",
    "exp_table6",
    "exp_fig1",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
]


def exp_table1(profile: str = "small") -> str:
    """Table I: the simulated attack-flow schedule."""
    sched = CampaignSchedule()
    rows = []
    for ep, (attack_type, s_ns, e_ns) in zip(sched.episodes, sched.sim_windows()):
        rows.append(
            (
                ep.attack_type.display,
                ep.start.strftime("%m.%d.%Y"),
                f"{ep.start.strftime('%H:%M:%S')} - {ep.end.strftime('%H:%M:%S')}",
                f"{s_ns / 1e9:.2f}-{e_ns / 1e9:.2f}",
            )
        )
    return render_table(
        "Table I: Simulated Attack Flows",
        ("Attack Type", "Date", "Attack Episode", "Sim window (s)"),
        rows,
        note="real schedule reproduced verbatim; last column is the 600x-"
        "compressed simulation mapping",
    )


def exp_table2() -> str:
    """Table II: features available from INT vs sFlow."""
    rows = [
        (f.name, "yes" if f.int_available else "no",
         "yes" if f.sflow_available else "no",
         "" if f.default_enabled else "collected, dropped by the paper")
        for f in FEATURES
    ]
    return render_table(
        "Table II: Features used to detect DDoS attacks",
        ("Feature", "INT", "sFlow", "Notes"),
        rows,
        note=f"{len(feature_names('int'))} INT features (the paper's 15), "
        f"{len(feature_names('sflow'))} sFlow features; identifiers (the "
        "five-tuple) key flows but are not model inputs",
    )


def _metric_rows(study_table: Dict[str, dict], source_label: str) -> List[tuple]:
    rows = []
    for model in MODEL_ORDER:
        rep = study_table.get(model)
        if rep is None:
            continue
        rows.append(
            (source_label, model, rep["accuracy"], rep["recall"],
             rep["precision"], rep["f1"])
        )
    return rows


def exp_table3(profile: str = "small", seed: int = 0) -> str:
    """Table III: INT vs sFlow across the four models (90:10 split)."""
    study = run_offline_study(profile, seed)
    rows = _metric_rows(study.int_res.table3, "INT") + _metric_rows(
        study.sflow_res.table3, "sFlow"
    )
    rows.sort(key=lambda r: (MODEL_ORDER.index(r[1]), r[0] != "INT"))
    return render_table(
        "Table III: ML performance for DDoS detection, INT vs sFlow (90:10 split)",
        ("Data", "Model", "Accuracy", "Recall", "Precision", "F1-score"),
        rows,
        note="KNN trained on a subsample (paper footnote); INT restricted "
        "to the Jun 10 13-15h / Jun 11 19-21h focus windows per the paper",
    )


def exp_table4(profile: str = "small", seed: int = 0) -> str:
    """Table IV: zero-day protocol — June 11 (with SlowLoris) held out."""
    study = run_offline_study(profile, seed)
    rows = _metric_rows(study.int_res.table4, "INT") + _metric_rows(
        study.sflow_res.table4, "sFlow"
    )
    rows.sort(key=lambda r: (MODEL_ORDER.index(r[1]), r[0] != "INT"))
    sl = study.int_res.slowloris_recall_zero_day
    note = "SlowLoris never appears in training; INT per-model recall on " \
        "SlowLoris rows: " + ", ".join(
            f"{m}={sl.get(m, float('nan')):.2f}" for m in MODEL_ORDER if m in sl
        )
    return render_table(
        "Table IV: ML performance with zero-day (unseen) attacks",
        ("Data", "Model", "Accuracy", "Recall", "Precision", "F1-score"),
        rows,
        note=note,
    )


def exp_table5(profile: str = "small", seed: int = 0, k: int = 5) -> str:
    """Table V: top-5 most important features per model (INT data)."""
    study = run_offline_study(profile, seed)
    res = study.int_res
    names = res.fm.names
    cols = {}
    union: List[str] = []
    for model in MODEL_ORDER:
        top = top_k(res.importances[model], names, k)
        cols[model] = {name for name, _ in top}
        for name, _ in top:
            if name not in union:
                union.append(name)
    rows = [
        tuple([feat] + ["x" if feat in cols[m] else "-" for m in MODEL_ORDER])
        for feat in union
    ]
    return render_table(
        "Table V: Five most important features per model (INT data)",
        ("Feature", *MODEL_ORDER),
        rows,
        note="RF uses impurity importances; GNB/KNN/NN use permutation "
        "importance on the held-out split",
    )


def top_k(importances: np.ndarray, names, k: int):
    order = np.argsort(importances)[::-1][:k]
    return [(names[i], float(importances[i])) for i in order]


def exp_table6(profile: str = "small", seed: int = 0) -> str:
    """Table VI: automated mechanism performance per flow type."""
    study = run_testbed_study(profile, seed)
    order = ("UDP Scan", "SYN Scan", "SYN Flood", "SlowLoris", "Benign")
    rows = []
    for name in order:
        r = study.table6.get(name)
        if r is None:
            continue
        rows.append(
            (
                name,
                r["accuracy"],
                f"{r['misclassified']}/{r['predicted']}",
                round(r["avg_time_s"], 4),
                round(r["max_time_s"], 4),
            )
        )
    return render_table(
        "Table VI: Automated DDoS detection per attack type",
        ("Attack Type", "Accuracy", "Misclassified/Predicted",
         "Avg Prediction Time (s)", "Max Prediction Time (s)"),
        rows,
        note="SlowLoris is zero-day (absent from the pre-training replay); "
        "benign 'max' is the 99th percentile, as in the paper; absolute "
        "latencies reflect this pipeline on this machine",
    )


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------


def exp_fig1() -> str:
    """Fig 1: INT source/transit/sink collection walkthrough."""
    topo = int_path_topology()
    collector = IntCollector(keep_stacks=True)
    attach_int_path(
        topo.switches["source_sw"], [topo.switches["transit_sw"]],
        topo.switches["sink_sw"], collector,
    )
    client, server = topo.hosts["client"], topo.hosts["server"]
    pkt = Packet(
        src_ip=client.ip, dst_ip=server.ip, src_port=40000, dst_port=80,
        protocol=int(Protocol.TCP), length=1200, tcp_flags=int(TCPFlags.PSHACK),
    )
    client.send_at(0, pkt)
    topo.run()
    lines = ["Fig 1: INT data collection (one monitored packet)",
             "=" * 50, topo.describe(), ""]
    stack = collector.stacks[0]
    lines.append("per-hop INT metadata accumulated in flight:")
    for hop in stack:
        lines.append(
            f"  switch {hop.switch_id}: ingress={hop.ingress_ts} ns  "
            f"egress={hop.egress_ts} ns  queue_occupancy={hop.queue_occupancy}"
        )
    rec = collector.to_records()[0]
    lines.append(
        f"sink report -> collector: flow "
        f"{rec['src_ip']}->{rec['dst_ip']}:{rec['dst_port']} "
        f"len={rec['length']} hops={rec['hops']} "
        f"total_hop_latency={rec['hop_latency']} ns"
    )
    return "\n".join(lines)


def exp_fig2(profile: str = "small") -> str:
    """Fig 2: the four-module mechanism, numbered data-flow trace."""
    study = run_testbed_study(profile)
    lines = [
        "Fig 2: Automated DDoS detection mechanism (module data flow)",
        "=" * 60,
        "(1) INT collector -> INT Data Collection module",
        "(2) Data Collection -> Data Processor (packet + INT fields)",
        "(3) Data Processor -> database (flow record update)",
        "(4) CentralServer polls database for updated records",
        "(5) CentralServer -> Prediction module (feature vector)",
        f"(6) Prediction -> CentralServer (votes from {study.bundle_models})",
        "(7) CentralServer -> Data Processor (per-model predictions)",
        "(8) Data Processor -> database (aggregated label + latency)",
        "",
        f"pre-trained on {study.train_packets} replayed packets; live panel "
        f"majority vote + last-3 sliding decision window",
    ]
    return "\n".join(lines)


def exp_fig3(profile: str = "small", seed: int = 0) -> str:
    """Fig 3: confusion matrix, RF on INT data (90:10 split)."""
    study = run_offline_study(profile, seed)
    return confusion_matrix_figure(
        study.int_res.cm_rf_split,
        "Fig 3: Confusion matrix - Random Forest on INT data",
    )


def exp_fig4(profile: str = "small", seed: int = 0) -> str:
    """Fig 4: confusion matrix, RF on sFlow data (90:10 split)."""
    study = run_offline_study(profile, seed)
    return confusion_matrix_figure(
        study.sflow_res.cm_rf_split,
        "Fig 4: Confusion matrix - Random Forest on sFlow data",
    )


def exp_fig5(profile: str = "small", seed: int = 0) -> str:
    """Fig 5: true labels vs RF predictions over the campaign timeline."""
    study = run_offline_study(profile, seed)
    ds = study.dataset
    # Focus on June 10-11 where all episodes live (as the paper's x-axis).
    t0 = ds.day_start_ns(10)
    t1 = ds.schedule.campaign_end_ns()
    episodes = [
        (t.display if hasattr(t, "display") else str(t), s, e)
        for t, s, e in ds.schedule.sim_windows()
    ]
    series = [
        ("INT true", study.int_res.ts, study.int_res.labels),
        ("INT RF pred", study.int_res.ts, study.int_res.rf_full_predictions),
        ("sFlow true", study.sflow_res.ts, study.sflow_res.labels),
        ("sFlow RF pred", study.sflow_res.ts, study.sflow_res.rf_full_predictions),
    ]
    sl_windows = [
        (s, e) for t, s, e in ds.schedule.sim_windows()
        if t == AttackType.SLOWLORIS
    ]
    sl_mask = np.zeros(study.sflow_res.ts.shape, dtype=bool)
    for s, e in sl_windows:
        sl_mask |= (study.sflow_res.ts >= s) & (study.sflow_res.ts < e)
    caption = (
        f"sFlow samples inside the two SlowLoris episodes: {int(sl_mask.sum())} "
        "(sampling blindness, cf. paper Fig 5)"
    )
    fig = timeline_figure(
        "Fig 5: Real data vs RF predictions, INT and sFlow",
        t0, t1, series, episodes=episodes,
    )
    return fig + "\n" + caption


def exp_fig6() -> str:
    """Fig 6: the INT testbed topology."""
    topo = testbed_topology()
    lines = [
        "Fig 6: INT testbed topology",
        "=" * 30,
        topo.describe(),
        "",
        "source/target agents on ports 1/2; external loopback on ports 3/4",
        "forces two pipeline passes (INT source pass + INT sink pass);",
        "telemetry reports exported via the port-5 collector tap",
    ]
    return "\n".join(lines)


def exp_fig7(profile: str = "small", seed: int = 0) -> str:
    """Fig 7: where the live mechanism's misclassifications cluster."""
    study = run_testbed_study(profile, seed)
    parts = []
    for name in ("Benign", "SlowLoris"):
        parts.append(
            prediction_scatter_figure(
                f"Fig 7 ({'a' if name == 'Benign' else 'b'}): {name} decisions "
                "over the replay",
                study.decisions[name],
                study.true_labels[name],
            )
        )
    return "\n\n".join(parts)
