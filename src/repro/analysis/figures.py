"""ASCII renderings of the paper's figures.

Each helper turns experiment output into a terminal-friendly plot:

* :func:`confusion_matrix_figure` — Figs 3 and 4 (2×2 confusion matrices
  with counts and percentages).
* :func:`timeline_figure` — Fig 5 (true labels vs predictions over the
  campaign timeline for INT and sFlow, with episode markers).
* :func:`prediction_scatter_figure` — Figs 7a/7b (per-update decisions
  along the replay, showing where misclassifications cluster).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "confusion_matrix_figure",
    "timeline_figure",
    "prediction_scatter_figure",
]


def confusion_matrix_figure(cm: np.ndarray, title: str) -> str:
    """Render a 2×2 confusion matrix (rows true, columns predicted)."""
    cm = np.asarray(cm)
    if cm.shape != (2, 2):
        raise ValueError(f"expected a 2x2 matrix, got {cm.shape}")
    total = cm.sum()
    lines = [title, "=" * len(title)]
    lines.append(f"{'':12s}  {'pred Normal':>14s}  {'pred Attack':>14s}")
    for i, name in enumerate(("true Normal", "true Attack")):
        cells = []
        for j in range(2):
            pct = 100.0 * cm[i, j] / total if total else 0.0
            cells.append(f"{cm[i, j]:>8d} ({pct:4.1f}%)")
        lines.append(f"{name:12s}  {cells[0]:>14s}  {cells[1]:>14s}")
    return "\n".join(lines)


def _bucketize(
    ts: np.ndarray,
    values: np.ndarray,
    t0: int,
    t1: int,
    bins: int,
    threshold: float = 0.05,
):
    """Pool 0/1 values into time bins.

    A bin reads 1 when more than ``threshold`` of its rows are 1 — a
    plain any() would light every bin from a handful of scattered false
    positives once bins hold thousands of packets.
    """
    out = np.full(bins, -1, dtype=np.int64)  # -1 = no data
    if ts.size == 0:
        return out
    idx = ((ts - t0) * bins // max(t1 - t0, 1)).astype(np.int64)
    idx = np.clip(idx, 0, bins - 1)
    ones = np.bincount(idx, weights=np.asarray(values, dtype=np.float64), minlength=bins)
    counts = np.bincount(idx, minlength=bins)
    has = counts > 0
    out[has] = (ones[has] / counts[has] > threshold).astype(np.int64)
    return out


def _strip(buckets: np.ndarray, one: str = "#", zero: str = ".", gap: str = " ") -> str:
    return "".join(one if b == 1 else zero if b == 0 else gap for b in buckets)


def timeline_figure(
    title: str,
    t0: int,
    t1: int,
    series: Sequence[Tuple[str, np.ndarray, np.ndarray]],
    episodes: Sequence[Tuple[str, int, int]] = (),
    width: int = 100,
) -> str:
    """Fig 5-style strip chart.

    Parameters
    ----------
    t0, t1 : int
        Time axis bounds (ns).
    series : sequence of (label, ts, values)
        Each series is max-pooled into ``width`` bins; ``#`` marks bins
        containing a 1 (attack), ``.`` bins containing only 0s, and
        spaces bins with no data (e.g. sFlow silence).
    episodes : sequence of (name, start_ns, end_ns)
        Ground-truth attack windows, drawn as a header strip of ``|``.
    """
    lines = [title, "=" * len(title)]
    if episodes:
        ep = np.full(width, -1, dtype=np.int64)
        for _name, s, e in episodes:
            lo = int((s - t0) * width // max(t1 - t0, 1))
            hi = int((e - t0) * width // max(t1 - t0, 1))
            ep[max(lo, 0) : min(hi + 1, width)] = 1
        lines.append(f"{'episodes':>18s} |" + _strip(ep, one="|", zero=" ") + "|")
    for label, ts, values in series:
        buckets = _bucketize(np.asarray(ts), np.asarray(values), t0, t1, width)
        lines.append(f"{label:>18s} |" + _strip(buckets) + "|")
    lines.append(
        f"{'':>18s}  '#' attack, '.' normal, ' ' no data; span "
        f"{(t1 - t0) / 1e9:.1f} s of simulated campaign time"
    )
    return "\n".join(lines)


def prediction_scatter_figure(
    title: str,
    decisions: np.ndarray,
    true_label: int,
    width: int = 100,
    rows: int = 4,
) -> str:
    """Fig 7-style view: decisions in replay order, misclassifications
    marked ``x``, correct decisions ``·`` — banded over several rows so
    clustering at the start is visible."""
    decisions = np.asarray(decisions)
    n = decisions.size
    lines = [title, "=" * len(title)]
    if n == 0:
        lines.append("(no decisions)")
        return "\n".join(lines)
    wrong = decisions != true_label
    per_row = max(1, int(np.ceil(n / rows)))
    for r in range(0, n, per_row):
        chunk = wrong[r : r + per_row]
        # compress each row to `width` columns by max-pooling errors
        cols = np.array_split(chunk, min(width, chunk.size))
        strip = "".join("x" if c.any() else "·" for c in cols)
        lines.append(f"  [{r:>6d}..] {strip}")
    mis = int(wrong.sum())
    lines.append(f"  misclassified {mis}/{n} ({100.0 * mis / n:.2f}%); 'x' = error")
    return "\n".join(lines)
