"""Programmable switch model.

A :class:`Switch` is a minimal abstraction of a P4 pipeline: packets enter
through :meth:`receive`, run a chain of *ingress hooks* (where sFlow
sampling and INT source/sink decisions live), are matched against a
forwarding table, queued on the egress port, and finally run a chain of
*egress hooks* at dequeue time (where INT hop metadata — which needs the
egress timestamp and the queue occupancy observed at dequeue — is
assembled).

Hooks are plain callables, so the telemetry stacks in
:mod:`repro.int_telemetry` and :mod:`repro.sflow` attach to a switch
without the switch knowing anything about them — the same separation a P4
program enjoys from the fixed-function forwarding logic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .events import EventQueue
from .link import Link
from .packet import Packet
from .queueing import EgressQueue

__all__ = ["Switch", "Port", "IngressHook", "EgressHook"]

#: Ingress hook signature: ``hook(switch, pkt, in_port) -> bool``.
#: Returning ``False`` drops the packet (e.g. an ACL); telemetry hooks
#: always return ``True``.
IngressHook = Callable[["Switch", Packet, int], bool]

#: Egress hook signature:
#: ``hook(switch, pkt, out_port, egress_ns, queue_depth) -> None``.
EgressHook = Callable[["Switch", Packet, int, int, int], None]


class Port:
    """An egress port: a rate-limited queue feeding a link."""

    __slots__ = ("number", "queue", "link")

    def __init__(self, number: int, queue: EgressQueue, link: Link) -> None:
        self.number = number
        self.queue = queue
        self.link = link


class Switch:
    """An INT-capable forwarding element.

    Parameters
    ----------
    name : str
        Label used in topology dumps and telemetry reports.
    switch_id : int
        Numeric identifier embedded in INT hop metadata.
    events : EventQueue
        Shared discrete-event scheduler.
    """

    def __init__(self, name: str, switch_id: int, events: EventQueue) -> None:
        from .routing import LpmTable

        self.name = name
        self.switch_id = int(switch_id)
        self.events = events
        self.ports: Dict[int, Port] = {}
        self.forwarding: Dict[int, int] = {}  # dst_ip -> out_port (exact)
        self.lpm = LpmTable()  # prefix routes (consulted after exact)
        self.default_port: Optional[int] = None
        self.ingress_hooks: List[IngressHook] = []
        self.egress_hooks: List[EgressHook] = []
        self.received = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_acl = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_port(
        self,
        number: int,
        rate_bps: float,
        delay_ns: int,
        deliver: Callable[[Packet], None],
        capacity_pkts: int = 1024,
        link_name: Optional[str] = None,
    ) -> Port:
        """Attach an egress port with its queue and outgoing link."""
        if number in self.ports:
            raise ValueError(f"{self.name}: port {number} already exists")
        link = Link(
            self.events,
            delay_ns,
            deliver,
            name=link_name or f"{self.name}:p{number}",
        )
        queue = EgressQueue(
            self.events,
            rate_bps,
            capacity_pkts=capacity_pkts,
            on_transmit=lambda pkt, t, depth, _n=number: self._on_transmit(
                pkt, _n, t, depth
            ),
        )
        port = Port(number, queue, link)
        self.ports[number] = port
        return port

    def add_route(self, dst_ip: int, out_port: int) -> None:
        """Install an exact-match forwarding entry."""
        if out_port not in self.ports:
            raise ValueError(f"{self.name}: unknown port {out_port}")
        self.forwarding[dst_ip] = out_port

    def add_prefix_route(self, base_ip: int, prefix_len: int, out_port: int) -> None:
        """Install a longest-prefix-match entry (checked after exact)."""
        if out_port not in self.ports:
            raise ValueError(f"{self.name}: unknown port {out_port}")
        self.lpm.add(base_ip, prefix_len, out_port)

    def set_default_route(self, out_port: int) -> None:
        """Install the table-miss action (send to ``out_port``)."""
        if out_port not in self.ports:
            raise ValueError(f"{self.name}: unknown port {out_port}")
        self.default_port = out_port

    def add_ingress_hook(self, hook: IngressHook) -> None:
        self.ingress_hooks.append(hook)

    def add_egress_hook(self, hook: EgressHook) -> None:
        self.egress_hooks.append(hook)

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, in_port: int = 0) -> None:
        """Ingress pipeline: hooks → route lookup → egress queue."""
        self.received += 1
        pkt.ts_ingress = self.events.clock.now
        pkt.hops += 1
        for hook in self.ingress_hooks:
            if not hook(self, pkt, in_port):
                self.dropped_acl += 1
                return
        out_port = self.forwarding.get(pkt.dst_ip)
        if out_port is None and len(self.lpm):
            out_port = self.lpm.lookup(pkt.dst_ip)
        if out_port is None:
            out_port = self.default_port
        if out_port is None:
            self.dropped_no_route += 1
            return
        self.ports[out_port].queue.enqueue(pkt)

    def _on_transmit(self, pkt: Packet, out_port: int, egress_ns: int, depth: int) -> None:
        """Egress pipeline at dequeue: hooks (INT metadata) → wire."""
        for hook in self.egress_hooks:
            hook(self, pkt, out_port, egress_ns, depth)
        self.forwarded += 1
        self.ports[out_port].link.send(pkt)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate per-switch counters for reporting and tests."""
        return {
            "name": self.name,
            "received": self.received,
            "forwarded": self.forwarded,
            "dropped_no_route": self.dropped_no_route,
            "dropped_acl": self.dropped_acl,
            "ports": {n: p.queue.stats.as_dict() for n, p in self.ports.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Switch({self.name}, id={self.switch_id}, ports={sorted(self.ports)})"
