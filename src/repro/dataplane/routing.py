"""Longest-prefix-match routing table.

The paper's testbed needs only exact host routes, but a production
AmLight-style deployment forwards on prefixes.  :class:`LpmTable` is a
mask-bucketed LPM implementation: one hash table per prefix length,
probed from /32 down — at most 33 dictionary lookups per miss, O(1)
memory per route, and no trie bookkeeping.  It plugs into
:class:`~repro.dataplane.switch.Switch` beside the exact-match table
(exact wins, then LPM, then the default route).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["LpmTable"]


def _mask(bits: int) -> int:
    if not 0 <= bits <= 32:
        raise ValueError(f"prefix length out of range: {bits}")
    return 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF


class LpmTable:
    """IPv4 longest-prefix-match table mapping prefixes to values."""

    def __init__(self) -> None:
        # prefix length -> {masked_base: value}
        self._buckets: Dict[int, Dict[int, object]] = {}
        self._lengths_desc: List[int] = []
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def add(self, base_ip: int, prefix_len: int, value) -> None:
        """Insert (or replace) a route for ``base_ip/prefix_len``."""
        m = _mask(prefix_len)
        bucket = self._buckets.get(prefix_len)
        if bucket is None:
            bucket = {}
            self._buckets[prefix_len] = bucket
            self._lengths_desc = sorted(self._buckets, reverse=True)
        key = base_ip & m
        if key not in bucket:
            self._n += 1
        bucket[key] = value

    def remove(self, base_ip: int, prefix_len: int) -> bool:
        """Delete a route; returns whether it existed."""
        m = _mask(prefix_len)
        bucket = self._buckets.get(prefix_len)
        if bucket is None:
            return False
        removed = bucket.pop(base_ip & m, None) is not None
        if removed:
            self._n -= 1
            if not bucket:
                del self._buckets[prefix_len]
                self._lengths_desc = sorted(self._buckets, reverse=True)
        return removed

    def lookup(self, ip: int) -> Optional[object]:
        """Value of the longest matching prefix, or None."""
        for bits in self._lengths_desc:
            hit = self._buckets[bits].get(ip & _mask(bits))
            if hit is not None:
                return hit
        return None

    def lookup_prefix(self, ip: int) -> Optional[Tuple[int, int, object]]:
        """As :meth:`lookup` but returns ``(base, prefix_len, value)``."""
        for bits in self._lengths_desc:
            m = _mask(bits)
            key = ip & m
            hit = self._buckets[bits].get(key)
            if hit is not None:
                return (key, bits, hit)
        return None
