"""Discrete-event engine for the data-plane simulator.

A minimal, fast binary-heap scheduler.  Events are ``(time, seq, callback,
payload)`` tuples; ``seq`` is a monotonically increasing tiebreaker so
events scheduled at the same instant fire in FIFO order and the heap never
has to compare callbacks (which are not orderable).

The engine is deliberately free of any networking knowledge — switches,
links and hosts schedule plain callables.  This keeps the hot loop tight:
one ``heappop``, one clock advance, one call.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .simclock import SimClock

__all__ = ["EventQueue", "Event"]


class Event:
    """Handle to a scheduled event; supports O(1) cancellation.

    Cancellation marks the entry dead instead of removing it from the heap
    (lazy deletion); the run loop skips dead entries when popped.
    """

    __slots__ = ("time", "seq", "callback", "payload", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable, payload: Any):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """Binary-heap discrete event scheduler bound to a :class:`SimClock`.

    Parameters
    ----------
    clock : SimClock, optional
        Shared simulation clock.  A fresh one is created if omitted.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Event] = []
        self._seq = 0
        self._processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far (cancelled pops excluded)."""
        return self._processed

    def schedule(self, t_ns: int, callback: Callable, payload: Any = None) -> Event:
        """Schedule ``callback(payload)`` at absolute time ``t_ns``.

        Raises
        ------
        ValueError
            If ``t_ns`` lies in the simulated past.
        """
        if t_ns < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: now={self.clock.now}, t={t_ns}"
            )
        ev = Event(int(t_ns), self._seq, callback, payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay_ns: int, callback: Callable, payload: Any = None) -> Event:
        """Schedule relative to the current time (``delay_ns >= 0``)."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        return self.schedule(self.clock.now + int(delay_ns), callback, payload)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next live event.  Returns ``False`` when drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock.advance_to(ev.time)
            ev.callback(ev.payload)
            self._processed += 1
            return True
        return False

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, the horizon, or an event cap.

        Parameters
        ----------
        until_ns : int, optional
            Stop *before* executing any event scheduled after this time.
            The clock is left at the last executed event (or unchanged).
        max_events : int, optional
            Execute at most this many events (guards runaway models).

        Returns
        -------
        int
            Number of events executed by this call.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            t = self.peek_time()
            if t is None:
                break
            if until_ns is not None and t > until_ns:
                break
            self.step()
            executed += 1
        return executed
