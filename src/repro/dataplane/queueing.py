"""Egress queue model with occupancy tracking.

The INT feature the paper leans on (Table II, Table V) is *queue
occupancy*: "queue depth when the packet is removed from the queue".  We
model each switch egress port as a single FIFO drained at the port line
rate.  Serialization time is ``wire_length * 8 / rate_bps``, so a SYN
flood of small packets at high rate builds depth while ordinary web
traffic keeps the queue nearly empty — exactly the qualitative contrast
the detector's queue features rely on.

The queue is event-driven: it schedules its own service-completion events
on the shared :class:`~repro.dataplane.events.EventQueue` and reports each
departing packet to a downstream callback together with the residual queue
depth observed at dequeue time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .events import EventQueue
from .packet import Packet

__all__ = ["EgressQueue", "QueueStats"]


class QueueStats:
    """Counters maintained by an :class:`EgressQueue`.

    Attributes
    ----------
    enqueued, transmitted, dropped : int
        Packet counters.
    bytes_transmitted : int
        Wire bytes sent (includes INT overhead).
    max_depth : int
        High-water mark of queue depth (packets), sampled at enqueue.
    """

    __slots__ = ("enqueued", "transmitted", "dropped", "bytes_transmitted", "max_depth")

    def __init__(self) -> None:
        self.enqueued = 0
        self.transmitted = 0
        self.dropped = 0
        self.bytes_transmitted = 0
        self.max_depth = 0

    def as_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "transmitted": self.transmitted,
            "dropped": self.dropped,
            "bytes_transmitted": self.bytes_transmitted,
            "max_depth": self.max_depth,
        }


class EgressQueue:
    """Tail-drop FIFO drained at a fixed line rate.

    Parameters
    ----------
    events : EventQueue
        Shared scheduler; service completions are posted here.
    rate_bps : float
        Port line rate in bits per second.
    capacity_pkts : int
        Maximum packets held (including the one in service).  Arrivals
        beyond capacity are tail-dropped.
    on_transmit : callable(Packet, int, int)
        Invoked as ``on_transmit(pkt, depart_ns, depth_after)`` when a
        packet finishes serialization.  ``depth_after`` is the number of
        packets still queued at that instant — the INT "queue occupancy"
        value.
    """

    def __init__(
        self,
        events: EventQueue,
        rate_bps: float,
        capacity_pkts: int = 1024,
        on_transmit: Optional[Callable[[Packet, int, int], None]] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive: {rate_bps}")
        if capacity_pkts < 1:
            raise ValueError(f"capacity_pkts must be >= 1: {capacity_pkts}")
        self.events = events
        self.rate_bps = float(rate_bps)
        self.capacity_pkts = int(capacity_pkts)
        self.on_transmit = on_transmit
        self.stats = QueueStats()
        self._fifo: deque[Packet] = deque()
        self._busy = False

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def depth(self) -> int:
        """Current queue depth in packets (including packet in service)."""
        return len(self._fifo)

    def serialization_ns(self, pkt: Packet) -> int:
        """Time to push ``pkt`` onto the wire at the port rate."""
        return max(1, int(round(pkt.wire_length * 8 * 1e9 / self.rate_bps)))

    def enqueue(self, pkt: Packet) -> bool:
        """Offer a packet to the queue.

        Returns
        -------
        bool
            ``True`` if accepted, ``False`` if tail-dropped.
        """
        if len(self._fifo) >= self.capacity_pkts:
            self.stats.dropped += 1
            return False
        self._fifo.append(pkt)
        self.stats.enqueued += 1
        if len(self._fifo) > self.stats.max_depth:
            self.stats.max_depth = len(self._fifo)
        if not self._busy:
            self._start_service()
        return True

    def _start_service(self) -> None:
        pkt = self._fifo[0]
        self._busy = True
        self.events.schedule_in(self.serialization_ns(pkt), self._complete_service)

    def _complete_service(self, _payload=None) -> None:
        pkt = self._fifo.popleft()
        depth_after = len(self._fifo)
        self.stats.transmitted += 1
        self.stats.bytes_transmitted += pkt.wire_length
        if self.on_transmit is not None:
            self.on_transmit(pkt, self.events.clock.now, depth_after)
        if self._fifo:
            self._start_service()
        else:
            self._busy = False
