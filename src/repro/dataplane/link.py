"""Point-to-point links with propagation delay, loss, and jitter.

A :class:`Link` connects an egress port of one node to an ingress handler
of another.  Serialization is already accounted for by the egress queue,
so a link adds propagation delay — optionally jittered — and can drop a
configured fraction of packets (failure injection for robustness tests:
what happens to the detector when telemetry-bearing packets vanish or
arrive reordered is a deployment question the paper's §V raises).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.rng import as_generator

from .events import EventQueue
from .packet import Packet

__all__ = ["Link"]


class Link:
    """Unidirectional link.

    Parameters
    ----------
    events : EventQueue
        Shared scheduler.
    delay_ns : int
        One-way propagation delay.
    deliver : callable(Packet)
        Invoked at the far end after the (possibly jittered) delay.
    name : str
        Human-readable label used in topology dumps.
    loss_rate : float
        Probability a packet is silently dropped in flight.
    jitter_ns : int
        Uniform extra delay in ``[0, jitter_ns]`` per packet.  Jitter can
        reorder packets (a later send may overtake an earlier one) —
        intentional, as real paths do this too.
    seed : int | numpy.random.Generator | None
        Randomness for loss/jitter; unused when both are disabled.
    """

    def __init__(
        self,
        events: EventQueue,
        delay_ns: int,
        deliver: Callable[[Packet], None],
        name: str = "link",
        loss_rate: float = 0.0,
        jitter_ns: int = 0,
        seed=None,
    ) -> None:
        if delay_ns < 0:
            raise ValueError(f"propagation delay cannot be negative: {delay_ns}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        if jitter_ns < 0:
            raise ValueError(f"jitter cannot be negative: {jitter_ns}")
        self.events = events
        self.delay_ns = int(delay_ns)
        self.deliver = deliver
        self.name = name
        self.loss_rate = float(loss_rate)
        self.jitter_ns = int(jitter_ns)
        self._rng = as_generator(seed) if (loss_rate or jitter_ns) else None
        self.packets_carried = 0
        self.packets_lost = 0

    def send(self, pkt: Packet) -> None:
        """Launch a packet down the wire."""
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.packets_lost += 1
            return
        self.packets_carried += 1
        delay = self.delay_ns
        if self.jitter_ns:
            delay += int(self._rng.integers(0, self.jitter_ns + 1))
        self.events.schedule_in(delay, self._arrive, pkt)

    def _arrive(self, pkt: Packet) -> None:
        self.deliver(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name}, delay={self.delay_ns} ns)"
