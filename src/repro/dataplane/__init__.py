"""Programmable data-plane simulator.

Discrete-event model of P4-style switches: event engine
(:mod:`~repro.dataplane.events`), packets (:mod:`~repro.dataplane.packet`),
rate-limited egress queues with occupancy tracking
(:mod:`~repro.dataplane.queueing`), links, switches with pluggable
ingress/egress hooks, and the paper's topologies
(:mod:`~repro.dataplane.topology`).
"""

from .events import Event, EventQueue
from .link import Link
from .packet import FiveTuple, Packet, Protocol, TCPFlags, ip, ip_str
from .queueing import EgressQueue, QueueStats
from .routing import LpmTable
from .simclock import SimClock, ms, ns, seconds, us
from .switch import Switch
from .topology import Host, Topology, int_path_topology, testbed_topology

__all__ = [
    "Event",
    "EventQueue",
    "Link",
    "FiveTuple",
    "Packet",
    "Protocol",
    "TCPFlags",
    "ip",
    "ip_str",
    "EgressQueue",
    "QueueStats",
    "LpmTable",
    "SimClock",
    "ns",
    "us",
    "ms",
    "seconds",
    "Switch",
    "Host",
    "Topology",
    "int_path_topology",
    "testbed_topology",
]
