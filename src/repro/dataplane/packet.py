"""Packet model for the data-plane simulator.

A :class:`Packet` carries exactly the header fields the AmLight detection
pipeline consumes — the IPv4 five-tuple, protocol, total length, and TCP
flags — plus mutable in-flight state (current INT stack, hop count).  IP
addresses are stored as ``uint32`` integers and ports as ``uint16`` ints,
which keeps flow-key hashing cheap and lets collectors export traffic as
structured NumPy arrays without string parsing.

The module also provides :func:`ip` / :func:`ip_str` conversions and the
:data:`TCPFlags` bit constants used by the attack generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Tuple

__all__ = [
    "Protocol",
    "TCPFlags",
    "Packet",
    "FiveTuple",
    "ip",
    "ip_str",
]


class Protocol(IntEnum):
    """IP protocol numbers used by the traffic models."""

    TCP = 6
    UDP = 17
    ICMP = 1


class TCPFlags(IntEnum):
    """TCP flag bits (subset relevant to handshake and attack traffic)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    SYNACK = 0x12  # SYN | ACK — server handshake response
    PSHACK = 0x18  # PSH | ACK — data segment


FiveTuple = Tuple[int, int, int, int, int]
"""Flow key: (src_ip, dst_ip, src_port, dst_port, protocol)."""


def ip(dotted: str) -> int:
    """Parse dotted-quad notation into a uint32 integer address.

    >>> ip("10.0.0.1")
    167772161
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad address: {dotted!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def ip_str(addr: int) -> str:
    """Render a uint32 address as dotted-quad notation.

    >>> ip_str(167772161)
    '10.0.0.1'
    """
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ValueError(f"address out of uint32 range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


# Minimum Ethernet frame; headers below this are padded on the wire.
MIN_FRAME_BYTES = 64
# What a capture reports for a minimal frame: 60 bytes (the 64-byte
# minimum minus the 4-byte FCS, which taps and telemetry never see).
MIN_CAPTURED_BYTES = 60
# IPv4 + TCP header bytes without options (used as default SYN size).
TCP_HEADER_BYTES = 40
UDP_HEADER_BYTES = 28


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    src_ip, dst_ip : int
        IPv4 addresses as uint32 integers (see :func:`ip`).
    src_port, dst_port : int
        L4 ports.
    protocol : int
        IP protocol number (:class:`Protocol`).
    length : int
        Total packet length in bytes (headers + payload); this is the
        "Packet length" feature of Table II and drives serialization time
        in the queue model.
    tcp_flags : int
        OR of :class:`TCPFlags` bits; 0 for non-TCP packets.
    ts_send : int
        Nanosecond time the source host emitted the packet.
    flow_seq : int
        Index of this packet within its flow (0-based), set by generators.
    int_stack : list
        Per-hop INT metadata accumulated in flight (managed by
        :mod:`repro.int_telemetry.roles`); ``None`` until an INT source
        switch initiates telemetry.
    int_instruction : int
        INT instruction bitmap inserted by the source switch; 0 when the
        packet carries no INT header.
    hops : int
        Number of switches traversed so far.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    length: int
    tcp_flags: int = 0
    ts_send: int = 0
    flow_seq: int = 0
    int_stack: Optional[List] = field(default=None, repr=False)
    int_instruction: int = 0
    hops: int = 0
    # Transient per-hop state: ingress timestamp at the switch currently
    # holding the packet.  Written by Switch.receive, read at egress when
    # the INT hop metadata is assembled.
    ts_ingress: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"packet length must be positive: {self.length}")
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("port out of uint16 range")

    @property
    def five_tuple(self) -> FiveTuple:
        """Flow key used by the Data Processor module (paper §III-2)."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    @property
    def captured_length(self) -> int:
        """Length as telemetry observes it: wire-padded to the Ethernet
        minimum (sans FCS).  A 40-byte crafted SYN and a 54-byte pure
        ACK both report 60 here — the measurement reality that keeps
        packet size from being an artificially clean attack separator.
        """
        return max(self.length, MIN_CAPTURED_BYTES)

    @property
    def carries_int(self) -> bool:
        """Whether an INT header is currently embedded in the packet."""
        return self.int_stack is not None

    @property
    def wire_length(self) -> int:
        """Bytes actually serialized on the wire, including INT overhead.

        Each hop metadata record is 16 bytes in our INT-MD layout (see
        :mod:`repro.int_telemetry.metadata`); the shim+header add 12 more.
        This is the payload-ratio cost of INT the paper's Section II-A2
        mentions.
        """
        if self.int_stack is None:
            return max(self.length, MIN_FRAME_BYTES)
        overhead = 12 + 16 * len(self.int_stack)
        return max(self.length + overhead, MIN_FRAME_BYTES)

    def clone_headers(self) -> "Packet":
        """Copy header fields into a fresh packet (no INT state carried)."""
        return Packet(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=self.protocol,
            length=self.length,
            tcp_flags=self.tcp_flags,
            ts_send=self.ts_send,
            flow_seq=self.flow_seq,
        )
