"""Simulation clock for the discrete-event data-plane model.

The simulator keeps one global clock in integer nanoseconds.  Integer time
avoids the floating-point drift that plagues long simulations (a six-day
capture at nanosecond resolution spans ~5.2e14 ns, well inside ``int64``
but far outside exact ``float64`` integers), and it matches the unit the
INT metadata carries on the wire.
"""

from __future__ import annotations

__all__ = ["SimClock", "ns", "us", "ms", "seconds"]


def ns(v: float) -> int:
    """Nanoseconds → integer simulation ticks (identity, rounded)."""
    return int(round(v))


def us(v: float) -> int:
    """Microseconds → integer nanosecond ticks."""
    return int(round(v * 1e3))


def ms(v: float) -> int:
    """Milliseconds → integer nanosecond ticks."""
    return int(round(v * 1e6))


def seconds(v: float) -> int:
    """Seconds → integer nanosecond ticks."""
    return int(round(v * 1e9))


class SimClock:
    """Monotone simulation clock in integer nanoseconds.

    The clock only ever moves forward; :meth:`advance_to` enforces this so
    an out-of-order event is caught at the source rather than corrupting
    queue statistics downstream.
    """

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start before zero: {start_ns}")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def advance_to(self, t_ns: int) -> None:
        """Move the clock forward to ``t_ns``.

        Raises
        ------
        ValueError
            If ``t_ns`` is earlier than the current time (time travel
            indicates a scheduling bug in the caller).
        """
        if t_ns < self._now:
            raise ValueError(
                f"clock moved backwards: now={self._now} requested={t_ns}"
            )
        self._now = int(t_ns)

    def reset(self, start_ns: int = 0) -> None:
        """Rewind the clock for a fresh simulation run."""
        if start_ns < 0:
            raise ValueError(f"clock cannot start before zero: {start_ns}")
        self._now = int(start_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now} ns)"
