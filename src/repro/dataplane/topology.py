"""Hosts and topology builders.

Two canonical topologies mirror the paper's figures:

* :func:`int_path_topology` — Fig 1: a line of three switches acting as
  INT source, transit and sink between two hosts, with the sink exporting
  telemetry reports to a collector.
* :func:`testbed_topology` — Fig 6: the physical testbed, one
  Edgecore-style switch with the source and target agents on ports 1/2, a
  loop through ports 3/4 (one end acting as INT source, the other as
  sink), and the collector tap on port 5.

A :class:`Topology` owns the shared event queue and exposes the pieces
(telemetry stacks attach to switches afterwards).  The underlying graph is
mirrored into :mod:`networkx` for introspection and rendering.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from .events import EventQueue
from .link import Link
from .packet import Packet, ip
from .simclock import SimClock, us
from .switch import Switch

__all__ = ["Host", "Topology", "int_path_topology", "testbed_topology"]

# Default port rate used by topologies: 100 Gbps, matching the AmLight
# testbed NICs/switch; override per-port if an experiment needs a
# constrained bottleneck.
DEFAULT_RATE_BPS = 100e9
DEFAULT_LINK_DELAY_NS = us(1)


class Host:
    """An end host: sends scheduled packets, counts what it receives."""

    def __init__(self, name: str, ip_addr: int, events: EventQueue) -> None:
        self.name = name
        self.ip = ip_addr
        self.events = events
        self.uplink: Optional[Link] = None
        self.received: int = 0
        self.rx_callback: Optional[Callable[[Packet, int], None]] = None

    def attach(self, uplink: Link) -> None:
        """Connect the host NIC to its access link toward the switch."""
        self.uplink = uplink

    def send_at(self, t_ns: int, pkt: Packet) -> None:
        """Schedule ``pkt`` to leave this host at absolute time ``t_ns``."""
        if self.uplink is None:
            raise RuntimeError(f"host {self.name} has no uplink")
        pkt.ts_send = int(t_ns)
        self.events.schedule(t_ns, self._emit, pkt)

    def _emit(self, pkt: Packet) -> None:
        self.uplink.send(pkt)

    def receive(self, pkt: Packet) -> None:
        """Terminal delivery; invoked by the access link from the switch."""
        self.received += 1
        if self.rx_callback is not None:
            self.rx_callback(pkt, self.events.clock.now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Host({self.name})"


class Topology:
    """Container wiring hosts, switches and links over one event queue."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.graph = nx.DiGraph(name=name)
        self._next_switch_id = 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_host(self, name: str, ip_addr: str | int) -> Host:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name: {name}")
        addr = ip(ip_addr) if isinstance(ip_addr, str) else int(ip_addr)
        host = Host(name, addr, self.events)
        self.hosts[name] = host
        self.graph.add_node(name, kind="host", ip=addr)
        return host

    def add_switch(self, name: str, switch_id: Optional[int] = None) -> Switch:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name: {name}")
        if switch_id is None:
            switch_id = self._next_switch_id
        self._next_switch_id = max(self._next_switch_id, switch_id) + 1
        sw = Switch(name, switch_id, self.events)
        self.switches[name] = sw
        self.graph.add_node(name, kind="switch", switch_id=switch_id)
        return sw

    def connect_host_to_switch(
        self,
        host: Host,
        switch: Switch,
        switch_port: int,
        rate_bps: float = DEFAULT_RATE_BPS,
        delay_ns: int = DEFAULT_LINK_DELAY_NS,
        capacity_pkts: int = 1024,
    ) -> None:
        """Create the host↔switch link pair (host NIC has no queue)."""
        uplink = Link(
            self.events,
            delay_ns,
            lambda pkt, _sw=switch, _p=switch_port: _sw.receive(pkt, _p),
            name=f"{host.name}->{switch.name}",
        )
        host.attach(uplink)
        switch.add_port(
            switch_port,
            rate_bps,
            delay_ns,
            host.receive,
            capacity_pkts=capacity_pkts,
            link_name=f"{switch.name}->{host.name}",
        )
        self.graph.add_edge(host.name, switch.name, port=switch_port)
        self.graph.add_edge(switch.name, host.name, port=switch_port)

    def connect_switches(
        self,
        a: Switch,
        b: Switch,
        port_a: int,
        port_b: int,
        rate_bps: float = DEFAULT_RATE_BPS,
        delay_ns: int = DEFAULT_LINK_DELAY_NS,
        capacity_pkts: int = 1024,
    ) -> None:
        """Create a bidirectional switch-to-switch connection."""
        a.add_port(
            port_a,
            rate_bps,
            delay_ns,
            lambda pkt, _sw=b, _p=port_b: _sw.receive(pkt, _p),
            capacity_pkts=capacity_pkts,
            link_name=f"{a.name}->{b.name}",
        )
        b.add_port(
            port_b,
            rate_bps,
            delay_ns,
            lambda pkt, _sw=a, _p=port_a: _sw.receive(pkt, _p),
            capacity_pkts=capacity_pkts,
            link_name=f"{b.name}->{a.name}",
        )
        self.graph.add_edge(a.name, b.name, port=port_a)
        self.graph.add_edge(b.name, a.name, port=port_b)

    # ------------------------------------------------------------------
    # execution / introspection
    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; returns the number of events executed."""
        return self.events.run(until_ns=until_ns, max_events=max_events)

    def describe(self) -> str:
        """ASCII rendering of nodes and edges (used by figure benches)."""
        lines = [f"topology: {self.name}"]
        for name, sw in sorted(self.switches.items()):
            lines.append(f"  switch {name} (id={sw.switch_id})")
            for pn in sorted(sw.ports):
                lines.append(f"    port {pn} -> {sw.ports[pn].link.name.split('->')[-1]}")
        for name, h in sorted(self.hosts.items()):
            peer = h.uplink.name.split("->")[-1] if h.uplink else "(detached)"
            lines.append(f"  host {name} -> {peer}")
        return "\n".join(lines)


def int_path_topology(
    rate_bps: float = DEFAULT_RATE_BPS,
    delay_ns: int = DEFAULT_LINK_DELAY_NS,
    capacity_pkts: int = 1024,
) -> Topology:
    """Fig 1 topology: host — source — transit — sink — host.

    INT roles are *not* attached here; callers wire
    :class:`repro.int_telemetry.roles.IntSource` etc. onto the returned
    switches so tests can exercise role combinations independently.
    """
    topo = Topology(name="int-path")
    client = topo.add_host("client", "10.0.0.1")
    server = topo.add_host("server", "10.0.0.2")
    s1 = topo.add_switch("source_sw", 1)
    s2 = topo.add_switch("transit_sw", 2)
    s3 = topo.add_switch("sink_sw", 3)

    topo.connect_host_to_switch(client, s1, 1, rate_bps, delay_ns, capacity_pkts)
    topo.connect_switches(s1, s2, 2, 1, rate_bps, delay_ns, capacity_pkts)
    topo.connect_switches(s2, s3, 2, 1, rate_bps, delay_ns, capacity_pkts)
    topo.connect_host_to_switch(server, s3, 2, rate_bps, delay_ns, capacity_pkts)

    # client -> server rides ports (1->2, 1->2, 1->2); reverse path mirrors.
    s1.add_route(server.ip, 2)
    s1.add_route(client.ip, 1)
    s2.add_route(server.ip, 2)
    s2.add_route(client.ip, 1)
    s3.add_route(server.ip, 2)
    s3.add_route(client.ip, 1)
    return topo


def testbed_topology(
    rate_bps: float = DEFAULT_RATE_BPS,
    delay_ns: int = DEFAULT_LINK_DELAY_NS,
    capacity_pkts: int = 1024,
) -> Topology:
    """Fig 6 topology: source/target agents on one INT-enabled switch.

    Ports 1 and 2 face the source and target agents.  Ports 3 and 4 are
    looped back externally so every packet traverses the switch pipeline
    twice (once as INT source, once as INT sink), exactly as the paper's
    testbed forces packets "from ports 1 and 2, but also traverse ports 3
    and 4".  Port 5 is the collector tap.

    To keep the model single-switch (as the physical testbed is), the
    loopback is represented by two logical switch instances sharing
    switch_id — "wedge_a" (first pass: ports 1/2/3) and "wedge_b" (second
    pass: ports 4/5 + host-facing delivery).  Together they are one
    Wedge DCS800 with ports 1-5.
    """
    topo = Topology(name="int-testbed")
    source = topo.add_host("source_agent", "192.168.1.1")
    target = topo.add_host("target_agent", "192.168.1.2")
    collector_host = topo.add_host("collector", "192.168.1.5")

    pass1 = topo.add_switch("wedge_a", 100)
    pass2 = topo.add_switch("wedge_b", 100)

    # Agent-facing ports on the first pass.
    topo.connect_host_to_switch(source, pass1, 1, rate_bps, delay_ns, capacity_pkts)
    topo.connect_host_to_switch(target, pass2, 2, rate_bps, delay_ns, capacity_pkts)
    # External loopback: pass1 port 3 -> pass2 port 4 (and back).
    topo.connect_switches(pass1, pass2, 3, 4, rate_bps, delay_ns, capacity_pkts)
    # Collector tap on port 5 of the second pass.
    topo.connect_host_to_switch(collector_host, pass2, 5, rate_bps, delay_ns, capacity_pkts)

    # Everything entering pass1 loops out port 3; pass2 delivers locally.
    pass1.set_default_route(3)
    pass1.add_route(source.ip, 1)
    pass2.add_route(target.ip, 2)
    pass2.add_route(collector_host.ip, 5)
    pass2.add_route(source.ip, 4)
    return topo
