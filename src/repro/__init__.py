"""repro — INT-based automated DDoS detection (AmLight, SC'24), reproduced.

A self-contained implementation of the paper's system and every
substrate it depends on:

* :mod:`repro.dataplane` — discrete-event programmable switches
* :mod:`repro.int_telemetry` — the INT stack (incl. PINT-style sampling)
* :mod:`repro.sflow` — the sFlow comparison stack
* :mod:`repro.traffic` — benign + attack workloads, schedules, pcap I/O
* :mod:`repro.ml` — from-scratch models, metrics, curves, CV
* :mod:`repro.features` — the Data Processor's feature engineering
* :mod:`repro.core` — the paper's four-module detection mechanism
* :mod:`repro.mitigation` — the detect→mitigate loop (paper future work)
* :mod:`repro.controlplane` — episode-level operator alerts
* :mod:`repro.baselines` — classic entropy detector for comparison
* :mod:`repro.datasets` — synthetic campaign + testbed captures
* :mod:`repro.analysis` — every paper table/figure, microburst detection

Command line: ``python -m repro tables|figures|dataset|schedule|report``.
"""

__version__ = "1.0.0"

__all__ = [
    "dataplane",
    "int_telemetry",
    "sflow",
    "traffic",
    "ml",
    "features",
    "core",
    "mitigation",
    "controlplane",
    "baselines",
    "datasets",
    "analysis",
]
