"""Optional stdlib HTTP driver for the mitigation command API.

The deterministic core speaks only the in-process JSON command API
(:meth:`MitigationController.command`); this module is a thin,
*optional* transport over it for operators who want curl access:

* ``POST /command`` with a JSON body → ``controller.command(body)``;
* ``GET /stats``, ``GET /config``, ``GET /blocked``, ``GET /activity``
  — read-only conveniences mapped onto the same command ops.

Nothing here is imported by the detection/mitigation pipeline, no state
lives here, and the server thread never touches controller internals
beyond :meth:`command` — keeping sockets, threads, and wall-clock I/O
out of the deterministic core.  Serialize external access if multiple
operators may write concurrently; the reference deployment is a single
operator against a paused or finished run.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

__all__ = ["MitigationHTTPServer"]

#: GET path → zero-argument command op.
_GET_OPS = {
    "/stats": "stats",
    "/config": "get_config",
    "/blocked": "blocked_list",
    "/activity": "activity_feed",
}


def _make_handler(controller: Any) -> type:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-mitigation/1"

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # quiet: operator tooling, not an access log

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            op = _GET_OPS.get(self.path)
            if op is None:
                self._reply(404, {"ok": False, "error": f"no route {self.path}"})
                return
            self._reply(200, controller.command({"op": op}))

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/command":
                self._reply(404, {"ok": False, "error": f"no route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                request = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(request, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as exc:
                self._reply(400, {"ok": False, "error": str(exc)})
                return
            result = controller.command(request)
            self._reply(200 if result.get("ok") else 400, result)

    return Handler


class MitigationHTTPServer:
    """Serve one controller's command API over loopback HTTP.

    Usage::

        api = MitigationHTTPServer(controller)   # port 0 = ephemeral
        api.start()
        ... curl http://127.0.0.1:{api.port}/stats ...
        api.close()
    """

    def __init__(
        self, controller: Any, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.controller = controller
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(controller)
        )
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[0], self._server.server_address[1]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "MitigationHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="mitigation-httpapi",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
