"""Episode → action bridge: AlertManager drives the mitigation tier.

:class:`~repro.controlplane.alerts.AlertManager` turns per-flow
decisions into per-service episodes; this module closes the remaining
gap to enforcement by escalating each *opened* episode into a
mitigation response exactly once:

* a service-flood alert → rate-limit the victim service (spoofed
  sources make per-source blocks useless);
* a port-sweep alert (wildcard port 0) → block the probing host.

Determinism contract: the bridge consumes the **merged,
(seq, key)-sorted prediction log** handed to it by
:meth:`MitigationController.finish_run` — the identical sequence for
every worker count — and escalates a service at most once
(``escalated`` set), so the episode tier contributes the same canonical
actions to the action-log digest regardless of sharding, chaos, or
worker-kill recovery.

For live discrete-event demos :meth:`EpisodeBridge.attach_inline` taps
the store stream directly; inline episode order is storage order, which
is documented as non-canonical (demo ergonomics, not the digest path).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from repro.core.database import PredictionEntry

from .alerts import Alert, AlertManager

__all__ = ["EpisodeBridge"]


class EpisodeBridge:
    """Feeds detector decisions through alerting into the controller.

    Parameters
    ----------
    controller :
        The :class:`~repro.mitigation.controller.MitigationController`
        receiving :meth:`escalate` calls.  The bridge registers itself
        as the controller's episode sink.
    alerts : AlertManager, optional
        Episode aggregation; a default-config manager is created if
        omitted.
    min_severity : int
        Alerts below this severity (distinct-flow ladder) are tracked
        but not escalated into enforcement.
    """

    def __init__(
        self,
        controller: Any,
        alerts: Optional[AlertManager] = None,
        min_severity: int = 1,
    ) -> None:
        self.controller = controller
        self.alerts = alerts if alerts is not None else AlertManager()
        self.min_severity = int(min_severity)
        self.escalated: Set[Tuple[int, int, int]] = set()
        self.inline = False
        controller.set_episode_sink(self.consume)

    # ------------------------------------------------------------------
    def consume(self, entries: List[PredictionEntry]) -> None:
        """Process a batch of decisions in canonical order.

        Called by ``MitigationController.finish_run`` with the merged
        ``(seq, key)``-sorted log (or per entry when attached inline).
        """
        last_ts = 0
        for entry in entries:
            last_ts = max(last_ts, int(entry.ts_registered_ns))
            alert = self.alerts.on_decision(entry)
            if alert is None or not alert.is_open:
                continue
            if int(alert.severity) < self.min_severity:
                continue
            if alert.service in self.escalated:
                continue
            self.escalated.add(alert.service)
            self.controller.escalate(alert, entry)
        if entries:
            self.alerts.expire(last_ts)

    def close_episodes(self, now_ns: int) -> None:
        """End-of-run flush: close every open alert."""
        self.alerts.close_all(int(now_ns))

    # ------------------------------------------------------------------
    def attach_inline(self, detector: Any) -> "EpisodeBridge":
        """Live-DES mode: escalate as predictions are stored.

        Storage order is flow-grouped rather than seq-sorted, so inline
        escalation order is *not* the canonical episode order — use the
        default finish-time path when the action-log digest matters.
        """
        self.inline = True
        self.controller.set_episode_sink(self.consume, inline=True)
        db = detector.db
        original = db.store_prediction

        def wrapped(entry: PredictionEntry) -> None:
            original(entry)
            self.consume([entry])

        db.store_prediction = wrapped
        return self

    # ------------------------------------------------------------------
    @property
    def open_alerts(self) -> List[Alert]:
        return self.alerts.open_alerts

    def stats(self) -> dict:
        return {
            "alerts_total": len(self.alerts.alerts),
            "alerts_open": len(self.alerts.open_alerts),
            "services_escalated": len(self.escalated),
            "inline": self.inline,
        }
