"""Episode-level alerting from per-flow detector decisions.

Per-packet decisions are far too granular for an operator; the control
plane wants *one* ticket per attack: which service, since when, how big,
is it still going.  :class:`AlertManager` performs that aggregation:

* flagged flows are grouped by victim service ``(dst_ip, dst_port,
  protocol)`` using the raw directional view of the canonical key (the
  service is whichever endpoint holds the monitored server);
* an alert OPENs when ``open_threshold`` distinct flows are flagged
  within ``window_ns``;
* while open, new evidence UPDATEs the alert (flow count, rate, and a
  severity ladder);
* ``quiet_ns`` without new evidence CLOSEs it, stamping the episode's
  observed duration — which an operator can compare against Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.database import PredictionEntry

# Pipeline-health alert types are defined in repro.resilience.degradation
# (they must not depend on repro.core, which this module imports) and
# re-exported here: the control plane is where operators consume both
# attack-episode alerts and module-health alerts.
from repro.resilience.degradation import (  # noqa: E402  (re-export)
    HealthAlert,
    HealthLogSink,
    HealthSink,
    ModuleHealth,
)

# Lifecycle decisions (drift WARN/ALARM, swap, rollback) are the third
# alert family an operator consumes here; the events themselves are
# produced by repro.lifecycle (a lower layer) and re-exported.
from repro.lifecycle import LifecycleEvent  # noqa: E402  (re-export)

__all__ = [
    "AlertSeverity",
    "Alert",
    "AlertSink",
    "AlertManager",
    "LogSink",
    "ModuleHealth",
    "HealthAlert",
    "HealthSink",
    "HealthLogSink",
    "LifecycleEvent",
]


class AlertSeverity(IntEnum):
    """Severity ladder by distinct flagged flows."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


@dataclass
class Alert:
    """One attack episode against one service."""

    service: Tuple[int, int, int]  # (victim_ip, port, protocol)
    opened_ns: int
    last_evidence_ns: int
    flows: Set[tuple] = field(default_factory=set)
    closed_ns: Optional[int] = None

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    @property
    def is_open(self) -> bool:
        return self.closed_ns is None

    @property
    def duration_ns(self) -> int:
        end = self.closed_ns if self.closed_ns is not None else self.last_evidence_ns
        return end - self.opened_ns

    @property
    def severity(self) -> AlertSeverity:
        n = self.n_flows
        if n >= 1000:
            return AlertSeverity.CRITICAL
        if n >= 100:
            return AlertSeverity.HIGH
        if n >= 10:
            return AlertSeverity.MEDIUM
        return AlertSeverity.LOW


AlertSink = Callable[[str, Alert], None]
"""Sink signature: ``sink(event, alert)`` with event in
{"open", "update", "close"}.  "update" fires only on severity change."""


class LogSink:
    """Collects alert events in memory (and optionally prints them)."""

    def __init__(self, echo: bool = False) -> None:
        self.events: List[Tuple[str, Alert]] = []
        self.echo = bool(echo)

    def __call__(self, event: str, alert: Alert) -> None:
        self.events.append((event, alert))
        if self.echo:  # pragma: no cover - console side effect
            ip = alert.service[0]
            print(
                f"[{event.upper():6s}] service {ip:#010x}:{alert.service[1]} "
                f"severity={alert.severity.name} flows={alert.n_flows} "
                f"duration={alert.duration_ns / 1e9:.3f}s"
            )


class AlertManager:
    """Aggregates flagged decisions into per-service alerts.

    Parameters
    ----------
    server_ips : set of int, optional
        Known monitored-server addresses; used to orient the canonical
        (bidirectional) flow key so the victim side is identified.  If
        omitted, the endpoint with the lower port number is assumed to
        be the service (ports < 1024 or the minimum of the two).
    open_threshold : int
        Distinct flagged flows within ``window_ns`` required to open.
    window_ns : int
        Evidence window for the open decision.
    quiet_ns : int
        Idle time after which an open alert closes.
    sweep_threshold : int
        Distinct destination ports of one host flagged within the window
        before a *port-sweep* alert opens (service port 0 = wildcard).
        A scan never concentrates on one service, so per-service
        aggregation alone would miss it.
    sinks : list of AlertSink
    """

    def __init__(
        self,
        server_ips: Optional[Set[int]] = None,
        open_threshold: int = 3,
        window_ns: int = 1_000_000_000,
        quiet_ns: int = 2_000_000_000,
        sweep_threshold: int = 20,
        sinks: Optional[List[AlertSink]] = None,
    ) -> None:
        if open_threshold < 1:
            raise ValueError(f"open_threshold must be >= 1: {open_threshold}")
        if window_ns <= 0 or quiet_ns <= 0:
            raise ValueError("window/quiet must be positive")
        if sweep_threshold < 2:
            raise ValueError(f"sweep_threshold must be >= 2: {sweep_threshold}")
        self.server_ips = set(server_ips) if server_ips else None
        self.open_threshold = int(open_threshold)
        self.window_ns = int(window_ns)
        self.quiet_ns = int(quiet_ns)
        self.sweep_threshold = int(sweep_threshold)
        self.sinks = list(sinks) if sinks else []
        self.alerts: List[Alert] = []
        self._open: Dict[Tuple[int, int, int], Alert] = {}
        # pre-open evidence: service -> [(ts, key)]
        self._evidence: Dict[Tuple[int, int, int], List[Tuple[int, tuple]]] = {}
        # sweep evidence: (victim_ip, proto) -> [(ts, port, key)]
        self._sweep_evidence: Dict[Tuple[int, int], List[Tuple[int, int, tuple]]] = {}

    # ------------------------------------------------------------------
    def _service_of(self, key: tuple) -> Tuple[int, int, int]:
        ip_a, ip_b, port_a, port_b, proto = key
        if self.server_ips is not None:
            if ip_a in self.server_ips:
                return (ip_a, port_a, proto)
            if ip_b in self.server_ips:
                return (ip_b, port_b, proto)
        # fall back: the lower port is the service side
        if port_a <= port_b:
            return (ip_a, port_a, proto)
        return (ip_b, port_b, proto)

    def _emit(self, event: str, alert: Alert) -> None:
        for sink in self.sinks:
            sink(event, alert)

    # ------------------------------------------------------------------
    def on_decision(self, entry: PredictionEntry) -> Optional[Alert]:
        """Consume one detector output; returns the affected open alert."""
        now = entry.ts_registered_ns
        self.expire(now)
        if entry.final_decision != 1:
            return None
        service = self._service_of(entry.key)

        alert = self._open.get(service)
        if alert is not None:
            prev_sev = alert.severity
            alert.flows.add(entry.key)
            alert.last_evidence_ns = now
            if alert.severity != prev_sev:
                self._emit("update", alert)
            return alert

        evidence = self._evidence.setdefault(service, [])
        evidence.append((now, entry.key))
        cutoff = now - self.window_ns
        evidence[:] = [(t, k) for t, k in evidence if t >= cutoff]
        if len({k for _, k in evidence}) >= self.open_threshold:
            alert = Alert(
                service=service,
                opened_ns=evidence[0][0],
                last_evidence_ns=now,
                flows={k for _, k in evidence},
            )
            self._open[service] = alert
            self.alerts.append(alert)
            del self._evidence[service]
            self._emit("open", alert)
            return alert
        return self._sweep_decision(service, entry.key, now)

    def _sweep_decision(
        self, service: Tuple[int, int, int], key: tuple, now: int
    ) -> Optional[Alert]:
        """Host-level aggregation: many flagged ports on one host."""
        victim_ip, port, proto = service
        host = (victim_ip, proto)
        sweep_service = (victim_ip, 0, proto)  # port 0 = wildcard alert

        alert = self._open.get(sweep_service)
        if alert is not None:
            prev_sev = alert.severity
            alert.flows.add(key)
            alert.last_evidence_ns = now
            if alert.severity != prev_sev:
                self._emit("update", alert)
            return alert

        evidence = self._sweep_evidence.setdefault(host, [])
        evidence.append((now, port, key))
        cutoff = now - self.window_ns
        evidence[:] = [(t, p, k) for t, p, k in evidence if t >= cutoff]
        if len({p for _, p, _ in evidence}) >= self.sweep_threshold:
            alert = Alert(
                service=sweep_service,
                opened_ns=evidence[0][0],
                last_evidence_ns=now,
                flows={k for _, _, k in evidence},
            )
            self._open[sweep_service] = alert
            self.alerts.append(alert)
            del self._sweep_evidence[host]
            self._emit("open", alert)
            return alert
        return None

    def expire(self, now_ns: int) -> List[Alert]:
        """Close alerts whose evidence went quiet; returns those closed."""
        closed = []
        for service, alert in list(self._open.items()):
            if now_ns - alert.last_evidence_ns >= self.quiet_ns:
                alert.closed_ns = alert.last_evidence_ns
                del self._open[service]
                self._emit("close", alert)
                closed.append(alert)
        return closed

    def close_all(self, now_ns: int) -> None:
        """End-of-run flush: close every open alert."""
        for service, alert in list(self._open.items()):
            alert.closed_ns = now_ns
            del self._open[service]
            self._emit("close", alert)

    def attach_to(self, detector) -> None:
        """Tap an AutomatedDDoSDetector's prediction stream."""
        db = detector.db
        original = db.store_prediction

        def wrapped(entry: PredictionEntry) -> None:
            original(entry)
            self.on_decision(entry)

        db.store_prediction = wrapped

    @property
    def open_alerts(self) -> List[Alert]:
        return list(self._open.values())
