"""Control-plane integration: alerts for operators.

The paper's mechanism "will retrieve INT data ... analyze it ... and
send the information to the control plane" (abstract).  This package is
that last hop: per-flow detector decisions are aggregated into
episode-level :class:`~repro.controlplane.alerts.Alert` objects — one
alert per attacked service, opened when evidence crosses a threshold,
updated while the attack persists, closed after quiet time — and fanned
out to notification sinks.

The control plane also closes the response loop:
:class:`~repro.controlplane.bridge.EpisodeBridge` escalates opened
episodes into the mitigation controller's action tier, and
:class:`~repro.controlplane.httpapi.MitigationHTTPServer` exposes the
operator command API over loopback HTTP (optional; the deterministic
core speaks only the in-process JSON API).
"""

from .alerts import (
    Alert,
    AlertManager,
    AlertSeverity,
    AlertSink,
    HealthAlert,
    HealthLogSink,
    HealthSink,
    LogSink,
    ModuleHealth,
)
from .bridge import EpisodeBridge
from .httpapi import MitigationHTTPServer

__all__ = [
    "Alert",
    "AlertManager",
    "AlertSeverity",
    "AlertSink",
    "EpisodeBridge",
    "HealthAlert",
    "HealthLogSink",
    "HealthSink",
    "LogSink",
    "MitigationHTTPServer",
    "ModuleHealth",
]
