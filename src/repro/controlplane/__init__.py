"""Control-plane integration: alerts for operators.

The paper's mechanism "will retrieve INT data ... analyze it ... and
send the information to the control plane" (abstract).  This package is
that last hop: per-flow detector decisions are aggregated into
episode-level :class:`~repro.controlplane.alerts.Alert` objects — one
alert per attacked service, opened when evidence crosses a threshold,
updated while the attack persists, closed after quiet time — and fanned
out to notification sinks.
"""

from .alerts import (
    Alert,
    AlertManager,
    AlertSeverity,
    AlertSink,
    HealthAlert,
    HealthLogSink,
    HealthSink,
    LogSink,
    ModuleHealth,
)

__all__ = [
    "Alert",
    "AlertManager",
    "AlertSeverity",
    "AlertSink",
    "HealthAlert",
    "HealthLogSink",
    "HealthSink",
    "LogSink",
    "ModuleHealth",
]
