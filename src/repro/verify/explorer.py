"""Exhaustive bounded-interleaving explorer for the protocol model.

Enumerates every schedule of :class:`repro.verify.model.ProtocolModel`
transitions within the configured bounds, deduplicating on exact state
(states are hashable NamedTuple trees, so deduplication is collision
free) and optionally pruning with sleep-set partial-order reduction.

Soundness notes:

* The transition system is finite and acyclic in every component that
  matters for progress (cursors, program indices and pump counts only
  grow; recovery consumes kill budget), so depth-first search
  terminates without a depth bound.
* Sleep sets follow Godefroid's state-caching variant: ``visited``
  maps each state to the smallest sleep set it was explored with; a
  revisit is pruned only when its sleep set is a superset (everything
  it would skip was already skipped-or-explored before), otherwise the
  state is re-expanded with the intersection.  A test cross-validates
  ``por=True`` against the plain exhaustive mode on every seeded bug.
* Two transitions are independent iff they act on different shards and
  neither consumes the global kill budget; everything else commutes
  only through per-shard state the dependence relation keeps ordered.

Every terminal state additionally runs the model's end-to-end check
(exactly-once delivery of the merged log).  Non-terminal states with
no enabled transition are reported as deadlocks — this is how a
backpressure cycle in the on_wait/pop_exact paths would surface.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from .model import (
    InvariantViolation,
    Label,
    ModelConfig,
    ProtocolModel,
    SysState,
)

__all__ = ["Violation", "ExploreResult", "explore", "render_trace"]


class Violation(NamedTuple):
    """One invariant failure plus the schedule that reaches it."""

    invariant: str
    message: str
    trace: Tuple[Label, ...]


class ExploreResult(NamedTuple):
    states: int             # distinct states reached
    transitions: int        # transitions applied (incl. revisits)
    completed_runs: int     # terminal states checked
    max_depth: int          # longest schedule explored
    violations: Tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def _independent(a: Label, b: Label) -> bool:
    """Sleep-set dependence relation (conservative)."""
    if a[1] == b[1]:
        return False            # same shard: shared ring/pipe/stores
    if a[0] == "kill" and b[0] == "kill":
        return False            # both decrement the global kill budget
    return True


class _Node(NamedTuple):
    state: SysState
    sleep: frozenset
    path: Tuple[Label, ...]


def explore(
    config: ModelConfig,
    por: bool = True,
    max_states: Optional[int] = None,
    first_violation: bool = True,
) -> ExploreResult:
    """Explore every schedule of ``config`` and check the invariants.

    ``por=False`` disables sleep sets for a ground-truth exhaustive
    run; ``max_states`` bounds the visited-set size as a safety valve
    (``None`` = fully exhaustive); ``first_violation=False`` keeps
    exploring after a violation to collect several distinct ones.
    """
    model = ProtocolModel(config)
    # state -> smallest sleep set it has been expanded with
    visited: Dict[SysState, frozenset] = {}
    violations: List[Violation] = []
    seen_invariants: set = set()
    transitions = 0
    completed = 0
    max_depth = 0

    empty: frozenset = frozenset()
    stack: List[_Node] = [_Node(model.initial(), empty, ())]
    while stack:
        state, sleep, path = stack.pop()
        if not por:
            sleep = empty
        prev = visited.get(state)
        if prev is not None:
            if prev >= sleep:
                continue
            sleep = prev & sleep
        visited[state] = sleep
        if max_states is not None and len(visited) > max_states:
            break
        if len(path) > max_depth:
            max_depth = len(path)

        enabled = model.enabled(state)
        if not enabled:
            if model.is_terminal(state):
                completed += 1
                try:
                    model.check_terminal(state)
                except InvariantViolation as exc:
                    if exc.invariant not in seen_invariants:
                        seen_invariants.add(exc.invariant)
                        violations.append(
                            Violation(exc.invariant, exc.message, path)
                        )
                    if first_violation:
                        break
            else:
                if "deadlock-freedom" not in seen_invariants:
                    seen_invariants.add("deadlock-freedom")
                    violations.append(Violation(
                        "deadlock-freedom",
                        "no transition enabled in a non-terminal state "
                        "(backpressure cycle)",
                        path,
                    ))
                if first_violation:
                    break
            continue

        done: List[Label] = []
        for label in enabled:
            if label in sleep:
                continue
            transitions += 1
            try:
                child = model.apply(state, label)
            except InvariantViolation as exc:
                if first_violation:
                    violations.append(Violation(
                        exc.invariant, exc.message, path + (label,)
                    ))
                    stack.clear()
                    break
                # keep exploring, but report each invariant once
                if exc.invariant not in seen_invariants:
                    seen_invariants.add(exc.invariant)
                    violations.append(Violation(
                        exc.invariant, exc.message, path + (label,)
                    ))
                done.append(label)
                continue
            child_sleep = frozenset(
                t for t in list(sleep) + done if _independent(label, t)
            ) if por else empty
            stack.append(_Node(child, child_sleep, path + (label,)))
            done.append(label)

    return ExploreResult(
        states=len(visited),
        transitions=transitions,
        completed_runs=completed,
        max_depth=max_depth,
        violations=tuple(violations),
    )


def render_trace(config: ModelConfig, trace: Tuple[Label, ...],
                 tail: int = 0) -> str:
    """Render a violation schedule as a numbered, human-readable list.

    ``tail`` > 0 keeps only the last ``tail`` steps (long schedules
    front-load uninteresting clean cycles).
    """
    model = ProtocolModel(config)
    state = model.initial()
    lines: List[str] = []
    for step, label in enumerate(trace, 1):
        lines.append(f"  {step:3d}. {model.describe(state, label)}")
        if step < len(trace):
            state = model.apply(state, label)
        else:
            # the final step may itself be the violating one
            try:
                model.apply(state, label)
            except InvariantViolation:
                lines[-1] += "   <-- violation fires here"
    if tail and len(lines) > tail:
        hidden = len(lines) - tail
        lines = [f"  ... ({hidden} earlier steps elided)"] + lines[-tail:]
    return "\n".join(lines)
