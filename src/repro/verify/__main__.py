"""``python -m repro.verify`` — run the protocol model checker.

Default mode explores the acceptance bounds (shards {1,2}, 3 cycles,
kill budget 1) exhaustively and exits non-zero on any invariant
violation, printing the violating schedule as a numbered trace.
``--quick`` is the CI-sized run; ``--selftest`` proves the checker
still catches every seeded bug variant; ``--bug NAME`` explores one
deliberately broken protocol and shows its violation trace.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .explorer import ExploreResult, explore, render_trace
from .model import BUGS, ModelConfig

QUICK_CONFIGS = (
    ModelConfig(n_shards=1, n_cycles=3, kill_budget=1),
    ModelConfig(n_shards=2, n_cycles=2, kill_budget=1),
)
FULL_CONFIGS = (
    ModelConfig(n_shards=1, n_cycles=3, kill_budget=1),
    ModelConfig(n_shards=2, n_cycles=3, kill_budget=1),
)
#: tiny bounds that still trip every seeded bug (kept small so the
#: selftest stays sub-second)
SELFTEST_CONFIG = ModelConfig(n_shards=1, n_cycles=2, kill_budget=1)


def _cfg_str(cfg: ModelConfig) -> str:
    tag = f", bug={cfg.bug}" if cfg.bug else ""
    return (
        f"shards={cfg.n_shards} cycles={cfg.n_cycles} "
        f"kills={cfg.kill_budget} ring={cfg.ring_frames}f "
        f"replay={cfg.replay_frames}f{tag}"
    )


def _run_one(cfg: ModelConfig, por: bool, max_states: Optional[int],
             tail: int, verbose: bool) -> ExploreResult:
    t0 = time.perf_counter()
    result = explore(cfg, por=por, max_states=max_states)
    dt = time.perf_counter() - t0
    status = "ok" if result.ok else "VIOLATION"
    print(
        f"[{status}] {_cfg_str(cfg)}: {result.states} distinct states, "
        f"{result.transitions} transitions, {result.completed_runs} "
        f"complete runs, max depth {result.max_depth} ({dt:.1f}s)"
    )
    for violation in result.violations:
        print(
            f"\ninvariant violated: {violation.invariant}\n"
            f"  {violation.message}\nschedule "
            f"({len(violation.trace)} steps):"
        )
        print(render_trace(cfg, violation.trace,
                           tail=0 if verbose else tail))
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized bounds plus the bug selftest")
    parser.add_argument("--selftest", action="store_true",
                        help="assert every seeded bug is caught")
    parser.add_argument("--bug", choices=sorted(BUGS),
                        help="explore one seeded bug variant")
    parser.add_argument("--shards", type=int, default=None,
                        help="explore a single custom config: shard count")
    parser.add_argument("--cycles", type=int, default=3)
    parser.add_argument("--kills", type=int, default=1)
    parser.add_argument("--ring-frames", type=int, default=1)
    parser.add_argument("--replay-frames", type=int, default=64)
    parser.add_argument("--no-por", action="store_true",
                        help="disable sleep-set partial-order reduction")
    parser.add_argument("--max-states", type=int, default=None,
                        help="safety valve on the visited-set size")
    parser.add_argument("--tail", type=int, default=25,
                        help="trace steps to show (0 = all)")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    por = not args.no_por

    if args.selftest or args.quick:
        missed = []
        for bug in sorted(BUGS):
            cfg = SELFTEST_CONFIG._replace(bug=bug)
            result = explore(cfg, por=por)
            caught = "caught" if result.violations else "MISSED"
            print(f"[selftest] {bug}: {caught} "
                  f"({result.states} states)")
            if not result.violations:
                missed.append(bug)
        if missed:
            print(f"selftest FAILED: undetected bugs: {missed}",
                  file=sys.stderr)
            return 1
        if args.selftest and not args.quick:
            return 0

    if args.bug:
        cfg = ModelConfig(
            n_shards=args.shards or 1, n_cycles=args.cycles,
            ring_frames=args.ring_frames,
            replay_frames=args.replay_frames,
            kill_budget=args.kills, bug=args.bug,
        )
        result = _run_one(cfg, por, args.max_states, args.tail,
                          args.verbose)
        # exploring a seeded bug: finding the violation is the point
        if result.ok:
            print(f"bug {args.bug!r} produced no violation — the "
                  "checker has lost coverage", file=sys.stderr)
            return 1
        return 0

    if args.shards is not None:
        configs = (ModelConfig(
            n_shards=args.shards, n_cycles=args.cycles,
            ring_frames=args.ring_frames,
            replay_frames=args.replay_frames,
            kill_budget=args.kills,
        ),)
    else:
        configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS

    ok = True
    for cfg in configs:
        result = _run_one(cfg, por, args.max_states, args.tail,
                          args.verbose)
        ok = ok and result.ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
