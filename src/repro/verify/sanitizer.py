"""Runtime sanitizers: the model's invariants, asserted live.

Opt-in via ``REPRO_SANITIZE=1`` (checked once per object construction;
the environment is inherited by forked/spawned shard workers, so
enabling it on the test process instruments every side of every ring).
With the variable unset the hooks are never created and the
instrumented code paths reduce to one ``is not None`` branch — zero
measurable overhead (the perf-quick gates run sanitizer-off).

What is checked where:

* :class:`RingObserver` — one per ``SharedRing`` view (per process).
  ``on_publish`` asserts producer-cursor monotonicity, the capacity
  bound, and that the consumer cursor it read never regresses or
  overtakes the published tail; ``on_release`` asserts consumer-cursor
  monotonicity and publish-before-read (a release may never move the
  head past the tail the consumer observed — reading unpublished slots
  is exactly the torn-frame bug the model calls
  ``commit_before_write``); ``on_reset`` asserts only the owning side
  rewinds, and re-arms the mirrors for the post-recovery epoch.
* :class:`FrameSeqChecker` — one per shard worker.  Asserts the
  sequence numbers delivered by DATA frames are strictly increasing
  across the whole worker lifetime *including* checkpoint restores
  (the replayed suffix must start strictly after the checkpoint's
  ``last_seq``) — the live form of the model's exactly-once invariant.
* :class:`CheckpointObserver` — one per process.  Asserts snapshot
  cycles are strictly increasing and a restore never goes backwards
  past a snapshot the same process already produced.
* :func:`assert_recover` — called by ``Supervisor.recover``.  Asserts
  the result-block truncation and replay-suffix selection match the
  model's ``recover`` transition (kept blocks ``tag <= ckpt``, replay
  tags ``>= ckpt``) and that the ring is only reset once the worker
  process is dead.

All failures raise :class:`SanitizerError` (an ``AssertionError``
subclass) with enough context to map the failure back onto a model
transition.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

__all__ = [
    "ENV_VAR",
    "SanitizerError",
    "sanitize_enabled",
    "RingObserver",
    "FrameSeqChecker",
    "CheckpointObserver",
    "checkpoint_observer",
    "assert_recover",
]

ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """True when the runtime sanitizers are switched on."""
    return os.environ.get(ENV_VAR, "") == "1"


class SanitizerError(AssertionError):
    """A live protocol invariant failed under ``REPRO_SANITIZE=1``."""


class RingObserver:
    """Happens-before recorder for one process's view of a SharedRing.

    The SPSC contract makes per-side mirrors sound: only the producer
    process publishes and only the consumer process releases, so each
    side sees every one of its own cursor stores and a monotone sample
    of the peer's.
    """

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = int(capacity)
        self._last_tail: Optional[int] = None   # producer mirror
        self._last_head: Optional[int] = None   # consumer mirror
        self._peer_head_seen = 0                # producer's view of head
        self._peer_tail_seen = 0                # consumer's view of tail
        self.publishes = 0
        self.releases = 0
        self.resets = 0

    # -- producer side -------------------------------------------------
    def on_publish(self, old_tail: int, take: int, head_seen: int) -> None:
        self.publishes += 1
        if take <= 0:
            raise SanitizerError(
                f"ring {self.name}: published {take} records"
            )
        if self._last_tail is not None and old_tail != self._last_tail:
            raise SanitizerError(
                f"ring {self.name}: tail cursor moved outside push "
                f"({self._last_tail} -> {old_tail}); ring mutations "
                "must go through SharedRing methods (CONC006)"
            )
        new_tail = old_tail + take
        if head_seen < self._peer_head_seen:
            raise SanitizerError(
                f"ring {self.name}: consumer cursor regressed "
                f"{self._peer_head_seen} -> {head_seen} under a live "
                "producer (reset with attached peer?)"
            )
        if head_seen > new_tail:
            raise SanitizerError(
                f"ring {self.name}: consumer cursor {head_seen} is past "
                f"the published tail {new_tail} — slots were read "
                "before they were published"
            )
        if new_tail - head_seen > self.capacity:
            raise SanitizerError(
                f"ring {self.name}: publish overruns capacity "
                f"(tail {new_tail}, head {head_seen}, "
                f"capacity {self.capacity})"
            )
        self._last_tail = new_tail
        self._peer_head_seen = head_seen

    # -- consumer side -------------------------------------------------
    def on_release(self, old_head: int, take: int, tail_seen: int) -> None:
        self.releases += 1
        if take <= 0:
            raise SanitizerError(
                f"ring {self.name}: released {take} records"
            )
        if self._last_head is not None and old_head != self._last_head:
            raise SanitizerError(
                f"ring {self.name}: head cursor moved outside pop "
                f"({self._last_head} -> {old_head}); ring mutations "
                "must go through SharedRing methods (CONC006)"
            )
        if tail_seen < self._peer_tail_seen:
            raise SanitizerError(
                f"ring {self.name}: producer cursor regressed "
                f"{self._peer_tail_seen} -> {tail_seen} under a live "
                "consumer (reset with attached peer?)"
            )
        new_head = old_head + take
        if new_head > tail_seen:
            raise SanitizerError(
                f"ring {self.name}: release moved head to {new_head} "
                f"past the observed tail {tail_seen} — the consumer "
                "read slots the producer never published "
                "(publish-before-read violated)"
            )
        self._last_head = new_head
        self._peer_tail_seen = tail_seen

    # -- owner side ----------------------------------------------------
    def on_reset(self, owner: bool) -> None:
        self.resets += 1
        if not owner:
            raise SanitizerError(
                f"ring {self.name}: reset from the non-owning side"
            )
        # New epoch: both cursors restart at zero.
        self._last_tail = 0
        self._last_head = 0
        self._peer_head_seen = 0
        self._peer_tail_seen = 0


class FrameSeqChecker:
    """Strictly-increasing sequence delivery inside one shard worker."""

    def __init__(self, shard: int, floor: int = -1) -> None:
        self.shard = shard
        self.floor = int(floor)
        self.checked = 0

    def on_restore(self, last_seq: int) -> None:
        """Re-arm after a checkpoint restore: the replayed suffix must
        start strictly after the checkpoint's last folded seq."""
        self.floor = int(last_seq)

    def on_frame(self, seqs: Iterable[int]) -> None:
        for seq in seqs:
            s = int(seq)
            self.checked += 1
            if s <= self.floor:
                raise SanitizerError(
                    f"shard {self.shard}: frame delivered seq {s} but "
                    f"{self.floor} was already folded — duplicate or "
                    "reordered delivery (exactly-once violated)"
                )
            self.floor = s


class CheckpointObserver:
    """Per-process snapshot/restore monotonicity."""

    def __init__(self) -> None:
        self.last_packed_cycle = -1
        self.packs = 0
        self.restores = 0

    def on_pack(self, cycles_done: int) -> None:
        self.packs += 1
        if cycles_done <= self.last_packed_cycle:
            raise SanitizerError(
                f"checkpoint cycle regressed: packed cycle "
                f"{cycles_done} after {self.last_packed_cycle}"
            )
        self.last_packed_cycle = int(cycles_done)

    def on_restore(self, cycles_done: int) -> None:
        self.restores += 1
        if self.last_packed_cycle >= 0 \
                and cycles_done < self.last_packed_cycle:
            raise SanitizerError(
                f"restore to cycle {cycles_done} behind a snapshot "
                f"this process already packed "
                f"({self.last_packed_cycle})"
            )


_CKPT_OBSERVER: Optional[CheckpointObserver] = None


def checkpoint_observer() -> CheckpointObserver:
    """Per-process singleton (fresh in each forked worker)."""
    global _CKPT_OBSERVER
    if _CKPT_OBSERVER is None:
        _CKPT_OBSERVER = CheckpointObserver()
    return _CKPT_OBSERVER


def assert_recover(
    shard: int,
    ckpt_cycle: int,
    kept_block_tags: Iterable[int],
    replay_tags: Iterable[int],
    worker_alive: bool,
) -> None:
    """Supervisor-side recovery checks, mirroring the model's
    ``recover`` transition."""
    if worker_alive:
        raise SanitizerError(
            f"shard {shard}: recovery reset the ring while the worker "
            "process is still alive (SharedRing.reset contract)"
        )
    bad_blocks = [t for t in kept_block_tags if t > ckpt_cycle]
    if bad_blocks:
        raise SanitizerError(
            f"shard {shard}: result blocks {bad_blocks} survived "
            f"recovery past checkpoint cycle {ckpt_cycle} — the "
            "replayed suffix will double-count them"
        )
    bad_replay = [t for t in replay_tags if t < ckpt_cycle]
    if bad_replay:
        raise SanitizerError(
            f"shard {shard}: replaying frames with tags {bad_replay} "
            f"behind checkpoint cycle {ckpt_cycle} — the restored "
            "worker already folded them"
        )
