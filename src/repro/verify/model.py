"""Explicit state-machine model of the sharded detector's concurrency
protocol (reprocheck).

The model mirrors the coordinator/worker/supervisor protocol that
``repro.common.buffers`` (SPSC SharedRing + FRM1 frames) and
``repro.core.sharding`` (Supervisor: replay buffer, RPRCKPT1
checkpoints, recovery) implement, at *frame* granularity.  Every
interesting implementation step is an atomic model transition; the
bounded-interleaving explorer (:mod:`repro.verify.explorer`) then
enumerates every schedule of those transitions and checks the protocol
invariants on each one.

Correspondence with the implementation (full table in DESIGN.md §16):

====================  ==============================================
model transition      implementation step
====================  ==============================================
``send``              ``Supervisor.send``: append the frame to the
                      replay buffer (bound enforced, drops counted),
                      then write the slot data (``SharedRing.push``
                      body, *before* the cursor store)
``publish``           the ``self._tail[0] = tail + take`` cursor
                      store that makes the frame visible
``read``              worker ``pop_exact``: copy the frame out and
                      release the slots (``self._head[0] = ...``)
``process``           ``_shard_worker_main`` frame handling: DATA
                      feeds records; CYCLE runs the cycle then sends
                      ``("res", cycles_done, block)`` and
                      ``("checkpoint", cycles_done, ...)``; EOF exits
``pump``              ``Supervisor._pump``/``_handle``: one pipe
                      message — ``res`` appends a result block,
                      ``checkpoint`` stores the snapshot and prunes
                      replay entries with ``tag < cycle``
``kill``              chaos kill / crash / supervisor ``_kill`` of a
                      hung worker (heartbeat staleness is abstracted
                      into this transition)
``recover``           ``Supervisor.recover``: close the pipe (drop
                      unpumped messages), truncate result blocks with
                      ``tag > ckpt``, ``SharedRing.reset``, respawn
                      from the checkpoint, queue the replay suffix
                      (frames with ``tag >= ckpt``)
====================  ==============================================

Deliberate abstractions (why the model is sound at this granularity):

* One ring slot holds one whole frame.  The implementation streams a
  frame through byte slots, but the per-piece loop preserves the same
  publish-after-write / release-after-copy cursor discipline the model
  checks, and ``pop_exact`` reassembles exactly one frame.
* One record per shard per cycle, ``seq = cycle * n_shards + shard``.
  Sequence numbers are opaque tokens to the protocol; one per frame is
  enough to detect every loss/duplication/reorder.
* ``checkpoint_every=1``: the worker checkpoints after every cycle.
* Heartbeats carry no data; staleness detection only decides *when* a
  kill happens, which the ``kill`` transition already schedules at
  every reachable point.

Seeded bug variants (``ModelConfig(bug=...)``) flip one ordering or
drop one recovery step each, so the explorer's violation traces can be
validated against known-bad protocols — see :data:`BUGS`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "DATA",
    "CYCLE",
    "EOF",
    "KIND_NAMES",
    "BUGS",
    "Frame",
    "Label",
    "ShardState",
    "SysState",
    "ModelConfig",
    "InvariantViolation",
    "ProtocolModel",
]

# Mirrors FRAME_DATA / FRAME_CYCLE / FRAME_EOF in repro.common.buffers.
DATA, CYCLE, EOF = 0, 1, 2
KIND_NAMES = {DATA: "DATA", CYCLE: "CYCLE", EOF: "EOF"}

#: bug name -> one-line description of the seeded protocol defect.
BUGS: Dict[str, str] = {
    "commit_before_write": (
        "push publishes the tail cursor before writing the slot data "
        "(torn frame visible to the consumer)"
    ),
    "release_before_copy": (
        "pop releases the head cursor before copying the slot out "
        "(producer may overwrite the slot mid-read)"
    ),
    "no_result_truncation": (
        "recover keeps result blocks past the checkpoint cycle "
        "(replayed cycles double-count)"
    ),
    "no_replay": (
        "recover respawns from the checkpoint but replays nothing "
        "(frames after the checkpoint are lost)"
    ),
    "reset_with_live_peer": (
        "supervisor resets the ring while the worker is still attached "
        "(SPSC cursor contract broken)"
    ),
}


class Frame(NamedTuple):
    """One FRM1 frame in the per-shard program.

    ``tag`` is the replay-buffer tag: the number of CYCLE frames sent
    before this frame (its 0-based cycle index; ``n_cycles`` for EOF).
    """

    kind: int
    tag: int
    seqs: Tuple[int, ...]


#: (transition kind, shard index) — the schedule alphabet.
Label = Tuple[str, int]


class ShardState(NamedTuple):
    """Immutable per-shard slice of the global state."""

    # --- coordinator side -------------------------------------------
    prog_idx: int                    # next program frame to send
    replay_q: Tuple[int, ...]        # frame indices queued for replay
    staged: int                      # frame written, tail not yet published (-1 none)
    # --- ring (frame-granular) --------------------------------------
    head: int
    tail: int
    slots: Tuple[int, ...]           # frame index per slot, -1 unwritten
    # --- supervisor stores ------------------------------------------
    pipe: Tuple[Tuple[object, ...], ...]   # FIFO of unpumped messages
    ckpt: int                        # checkpointed cycles_done (0 = genesis)
    results: Tuple[Tuple[int, Tuple[int, ...]], ...]  # (cycles_done tag, seqs)
    replay_buf: Tuple[Tuple[int, int], ...]           # (tag, frame index)
    dropped_max_tag: int             # max tag evicted from replay_buf (-1 none)
    lossy: bool                      # recovery declared lossy (loud degradation)
    # --- worker side ------------------------------------------------
    alive: bool
    finished: bool                   # EOF processed (clean exit)
    w_cycle: int                     # cycles_done inside the worker
    w_pending: Tuple[int, ...]       # seqs fed this cycle, not yet shipped
    reading: Tuple[object, ...]      # (), ("f", frame_idx) or ("s", slot_idx)
    respawns: int


class SysState(NamedTuple):
    kill_budget: int
    shards: Tuple[ShardState, ...]


class ModelConfig(NamedTuple):
    """Exploration bounds + optional seeded bug."""

    n_shards: int = 2
    n_cycles: int = 3
    ring_frames: int = 1             # ring capacity, in frames
    replay_frames: int = 64          # replay-buffer bound, in frames
    kill_budget: int = 1
    bug: Optional[str] = None


class InvariantViolation(Exception):
    """A protocol invariant failed on some schedule."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.message = message


def _initial_shard(cap: int) -> ShardState:
    return ShardState(
        prog_idx=0, replay_q=(), staged=-1,
        head=0, tail=0, slots=(-1,) * cap,
        pipe=(), ckpt=0, results=(), replay_buf=(),
        dropped_max_tag=-1, lossy=False,
        alive=True, finished=False,
        w_cycle=0, w_pending=(), reading=(), respawns=0,
    )


class ProtocolModel:
    """Transition system over :class:`SysState`.

    ``enabled(state)`` lists the schedulable labels; ``apply(state,
    label)`` returns the successor state, raising
    :class:`InvariantViolation` when the step (or a terminal state
    check via :meth:`check_terminal`) breaks the protocol contract.
    """

    def __init__(self, config: ModelConfig) -> None:
        if config.bug is not None and config.bug not in BUGS:
            raise ValueError(
                f"unknown bug {config.bug!r}; known: {sorted(BUGS)}"
            )
        self.config = config
        self.programs: Tuple[Tuple[Frame, ...], ...] = tuple(
            self._program(shard) for shard in range(config.n_shards)
        )

    def _program(self, shard: int) -> Tuple[Frame, ...]:
        """The deterministic frame sequence the coordinator sends to
        one shard: DATA then CYCLE per cycle, then EOF."""
        cfg = self.config
        frames: List[Frame] = []
        for cycle in range(cfg.n_cycles):
            seq = cycle * cfg.n_shards + shard
            frames.append(Frame(DATA, cycle, (seq,)))
            frames.append(Frame(CYCLE, cycle, ()))
        frames.append(Frame(EOF, cfg.n_cycles, ()))
        return tuple(frames)

    def expected_seqs(self) -> Tuple[int, ...]:
        cfg = self.config
        return tuple(range(cfg.n_cycles * cfg.n_shards))

    def initial(self) -> SysState:
        cfg = self.config
        return SysState(
            kill_budget=cfg.kill_budget,
            shards=tuple(
                _initial_shard(cfg.ring_frames)
                for _ in range(cfg.n_shards)
            ),
        )

    # ------------------------------------------------------------------
    # schedulable transitions
    # ------------------------------------------------------------------
    def enabled(self, state: SysState) -> List[Label]:
        bug = self.config.bug
        cap = self.config.ring_frames
        labels: List[Label] = []
        for i, sh in enumerate(state.shards):
            program = self.programs[i]
            # coordinator: two-phase frame send
            if sh.staged >= 0:
                labels.append(("publish", i))
            elif (sh.replay_q or sh.prog_idx < len(program)) \
                    and sh.tail - sh.head < cap:
                labels.append(("send", i))
            # supervisor: pipe pump
            if sh.pipe:
                labels.append(("pump", i))
            if sh.alive:
                # worker: frame read / process
                if not sh.reading and sh.tail > sh.head:
                    labels.append(("read", i))
                if sh.reading:
                    labels.append(("process", i))
                if state.kill_budget > 0 and not sh.finished:
                    labels.append(("kill", i))
                if bug == "reset_with_live_peer" \
                        and state.kill_budget > 0 and not sh.finished:
                    # the buggy supervisor declares a live worker dead
                    labels.append(("recover", i))
            elif not sh.finished:
                labels.append(("recover", i))
        return labels

    def is_terminal(self, state: SysState) -> bool:
        for i, sh in enumerate(state.shards):
            if not sh.finished or sh.pipe or sh.replay_q \
                    or sh.prog_idx < len(self.programs[i]) \
                    or sh.staged >= 0 or sh.tail != sh.head or sh.reading:
                return False
        return True

    # ------------------------------------------------------------------
    def apply(self, state: SysState, label: Label) -> SysState:
        kind, i = label
        sh = state.shards[i]
        if kind == "send":
            sh = self._send(i, sh)
        elif kind == "publish":
            sh = self._publish(i, sh)
        elif kind == "read":
            sh = self._read(i, sh)
        elif kind == "process":
            sh = self._process(i, sh)
        elif kind == "pump":
            sh = self._pump(i, sh)
        elif kind == "kill":
            sh = sh._replace(
                alive=False,
                # dead process memory is unobservable; normalize it so
                # states differing only in lost worker state merge
                w_cycle=0, w_pending=(), reading=(),
            )
            state = state._replace(kill_budget=state.kill_budget - 1)
        elif kind == "recover":
            sh = self._recover(i, sh)
        else:  # pragma: no cover - defended by enabled()
            raise ValueError(f"unknown transition kind {kind!r}")
        shards = list(state.shards)
        shards[i] = sh
        return state._replace(shards=tuple(shards))

    # -- coordinator ---------------------------------------------------
    def _buffer(self, frame_idx: int, frame: Frame,
                sh: ShardState) -> ShardState:
        """Mirror of ``Supervisor._buffer``: append, enforce the bound
        by evicting oldest entries, count the max dropped tag."""
        buf = list(sh.replay_buf) + [(frame.tag, frame_idx)]
        dropped = sh.dropped_max_tag
        while len(buf) > self.config.replay_frames and len(buf) > 1:
            old_tag, _old_idx = buf.pop(0)
            dropped = max(dropped, old_tag)
        return sh._replace(replay_buf=tuple(buf), dropped_max_tag=dropped)

    def _send(self, i: int, sh: ShardState) -> ShardState:
        cap = self.config.ring_frames
        if sh.replay_q:
            # recovery replay: already buffered, do not re-buffer
            frame_idx = sh.replay_q[0]
            sh = sh._replace(replay_q=sh.replay_q[1:])
        else:
            frame_idx = sh.prog_idx
            sh = self._buffer(frame_idx, self.programs[i][frame_idx], sh)
            sh = sh._replace(prog_idx=sh.prog_idx + 1)
        slot = sh.tail % cap
        if self.config.bug == "commit_before_write":
            # publish the cursor with the slot still unwritten
            return sh._replace(staged=frame_idx, tail=sh.tail + 1)
        slots = list(sh.slots)
        slots[slot] = frame_idx
        return sh._replace(staged=frame_idx, slots=tuple(slots))

    def _publish(self, i: int, sh: ShardState) -> ShardState:
        cap = self.config.ring_frames
        if self.config.bug == "commit_before_write":
            # late slot write (the reordered half of the bug)
            slot = (sh.tail - 1) % cap
            slots = list(sh.slots)
            slots[slot] = sh.staged
            return sh._replace(staged=-1, slots=tuple(slots))
        return sh._replace(staged=-1, tail=sh.tail + 1)

    # -- worker --------------------------------------------------------
    def _read(self, i: int, sh: ShardState) -> ShardState:
        cap = self.config.ring_frames
        slot = sh.head % cap
        if self.config.bug == "release_before_copy":
            # release first, copy later (in process) from the live slot
            return sh._replace(head=sh.head + 1, reading=("s", slot))
        frame_idx = sh.slots[slot]
        if frame_idx < 0:
            raise InvariantViolation(
                "publish-before-read",
                f"shard {i}: worker read slot {slot} before the "
                "producer wrote it (torn frame)",
            )
        # copy-out then release, one atomic step (pop_exact does both
        # before the frame is handled)
        slots = list(sh.slots)
        slots[slot] = -1
        return sh._replace(
            head=sh.head + 1, slots=tuple(slots),
            reading=("f", frame_idx),
        )

    def _process(self, i: int, sh: ShardState) -> ShardState:
        mode = sh.reading[0]
        payload = int(sh.reading[1])  # type: ignore[call-overload]
        if mode == "s":
            frame_idx = sh.slots[payload]
            if frame_idx < 0:
                raise InvariantViolation(
                    "publish-before-read",
                    f"shard {i}: worker copied slot after releasing it "
                    "and found it unwritten (use-after-release)",
                )
        else:
            frame_idx = payload
        frame = self.programs[i][frame_idx]
        sh = sh._replace(reading=())
        if frame.kind == DATA:
            return sh._replace(w_pending=sh.w_pending + frame.seqs)
        if frame.kind == CYCLE:
            cycles_done = sh.w_cycle + 1
            pipe = sh.pipe + (
                ("res", cycles_done, sh.w_pending),
                ("checkpoint", cycles_done),
            )
            return sh._replace(pipe=pipe, w_cycle=cycles_done, w_pending=())
        # EOF: clean exit (the implementation's final "res" block is
        # empty here because every DATA frame precedes its CYCLE frame)
        return sh._replace(alive=False, finished=True,
                           w_cycle=0, w_pending=())

    # -- supervisor ----------------------------------------------------
    def _pump(self, i: int, sh: ShardState) -> ShardState:
        msg, pipe = sh.pipe[0], sh.pipe[1:]
        sh = sh._replace(pipe=pipe)
        if msg[0] == "res":
            tag = int(msg[1])  # type: ignore[arg-type]
            seqs = tuple(msg[2])  # type: ignore[arg-type]
            for seq in seqs:
                if seq % self.config.n_shards != i:
                    raise InvariantViolation(
                        "shard-routing",
                        f"shard {i}: result block carries seq {seq} "
                        f"assigned to shard {seq % self.config.n_shards}",
                    )
            for prev_tag, _prev in sh.results:
                if prev_tag == tag:
                    raise InvariantViolation(
                        "exactly-once",
                        f"shard {i}: two result blocks for cycle {tag} "
                        "coexist (stale blocks not truncated before "
                        "replay)",
                    )
            return sh._replace(results=sh.results + ((tag, seqs),))
        # "checkpoint": store it and prune replay entries it covers
        cycle = int(msg[1])  # type: ignore[arg-type]
        if cycle < sh.ckpt:
            raise InvariantViolation(
                "checkpoint-monotonic",
                f"shard {i}: checkpoint regressed {sh.ckpt} -> {cycle}",
            )
        buf = tuple(e for e in sh.replay_buf if e[0] >= cycle)
        return sh._replace(ckpt=cycle, replay_buf=buf)

    def _recover(self, i: int, sh: ShardState) -> ShardState:
        if sh.alive:
            raise InvariantViolation(
                "reset-liveness",
                f"shard {i}: ring reset while the worker is still "
                "attached — SharedRing.reset() is only safe once the "
                "consumer process is dead",
            )
        cap = self.config.ring_frames
        cycle = sh.ckpt
        lossy = sh.lossy or sh.dropped_max_tag >= cycle
        results = sh.results
        if self.config.bug != "no_result_truncation":
            results = tuple(b for b in results if b[0] <= cycle)
        replay_q: Tuple[int, ...] = tuple(
            idx for tag, idx in sh.replay_buf if tag >= cycle
        )
        if self.config.bug == "no_replay":
            replay_q = ()
        return sh._replace(
            # pipe closed: unpumped messages are dropped
            pipe=(),
            results=results,
            lossy=lossy,
            # ring reset: the one legal cursor rewind (peer is dead)
            head=0, tail=0, slots=(-1,) * cap, staged=-1,
            replay_q=replay_q,
            alive=True, w_cycle=cycle, w_pending=(), reading=(),
            respawns=sh.respawns + 1,
        )

    # ------------------------------------------------------------------
    # terminal-state invariants
    # ------------------------------------------------------------------
    def check_terminal(self, state: SysState) -> None:
        """Exactly-once delivery of every seq to the merged log, unless
        a recovery was (loudly) lossy."""
        delivered: List[int] = []
        any_lossy = False
        for sh in state.shards:
            any_lossy = any_lossy or sh.lossy
            for _tag, seqs in sh.results:
                delivered.extend(seqs)
        expected = sorted(self.expected_seqs())
        got = sorted(delivered)
        if got == expected:
            return
        if any_lossy:
            # loud degradation: loss is allowed only because the
            # supervisor flagged the recovery as lossy (watchdog FAILED)
            dup = [s for s in set(got) if got.count(s) > 1]
            if dup:
                raise InvariantViolation(
                    "exactly-once",
                    f"lossy recovery may lose seqs but produced "
                    f"duplicates: {sorted(dup)}",
                )
            return
        missing = sorted(set(expected) - set(got))
        dup = sorted(s for s in set(got) if got.count(s) > 1)
        raise InvariantViolation(
            "exactly-once",
            "merged log differs from the input stream with no lossy "
            f"flag raised: missing={missing} duplicated={dup}",
        )

    # ------------------------------------------------------------------
    # trace rendering
    # ------------------------------------------------------------------
    def describe(self, state: SysState, label: Label) -> str:
        """Human-readable rendering of ``label`` fired from ``state``."""
        kind, i = label
        sh = state.shards[i]
        if kind == "send":
            if sh.replay_q:
                frame = self.programs[i][sh.replay_q[0]]
                src = "replay"
            else:
                frame = self.programs[i][sh.prog_idx]
                src = "stream"
            return (
                f"shard{i} coordinator: write {self._frame_str(frame)} "
                f"into slot {sh.tail % self.config.ring_frames} "
                f"({src}, replay tag {frame.tag})"
            )
        if kind == "publish":
            return (
                f"shard{i} coordinator: publish tail "
                f"{sh.tail} -> {sh.tail + 1}"
                if self.config.bug != "commit_before_write"
                else f"shard{i} coordinator: late slot write for "
                     f"already-published tail {sh.tail}"
            )
        if kind == "read":
            return (
                f"shard{i} worker: pop slot "
                f"{sh.head % self.config.ring_frames} "
                f"(head {sh.head} -> {sh.head + 1})"
            )
        if kind == "process":
            if sh.reading and sh.reading[0] == "f":
                frame = self.programs[i][int(sh.reading[1])]  # type: ignore[arg-type]
                return f"shard{i} worker: process {self._frame_str(frame)}"
            return f"shard{i} worker: late copy + process of a released slot"
        if kind == "pump":
            msg = sh.pipe[0]
            return f"shard{i} supervisor: pump pipe message {msg!r}"
        if kind == "kill":
            return f"shard{i}: worker killed (chaos/crash/hung)"
        if kind == "recover":
            return (
                f"shard{i} supervisor: recover — reset ring, restore "
                f"checkpoint cycle {sh.ckpt}, replay tags >= {sh.ckpt}"
            )
        return f"shard{i}: {kind}"

    @staticmethod
    def _frame_str(frame: Frame) -> str:
        if frame.kind == DATA:
            return f"DATA frame (cycle {frame.tag}, seqs {frame.seqs})"
        return f"{KIND_NAMES[frame.kind]} frame (cycle {frame.tag})"
