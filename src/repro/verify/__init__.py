"""reprocheck: model checking + runtime sanitizers for the sharded
detector's concurrency protocol.

Three layers, one set of invariants:

* :mod:`repro.verify.model` — an explicit state machine mirroring the
  SharedRing/checkpoint/replay protocol (frame-granular, atomic
  transitions, seeded bug variants);
* :mod:`repro.verify.explorer` — exhaustive bounded-interleaving
  exploration with state deduplication and sleep-set partial-order
  reduction, checking cursor monotonicity, publish-before-read,
  exactly-once merged-log delivery, replay-bound sufficiency and
  deadlock freedom on every schedule;
* :mod:`repro.verify.sanitizer` — opt-in (``REPRO_SANITIZE=1``)
  instrumentation shims asserting the same invariants live inside the
  real implementation while the tier-1/chaos suites run.

CLI: ``python -m repro.verify`` (see ``--help``).
"""

from .model import (
    BUGS,
    InvariantViolation,
    ModelConfig,
    ProtocolModel,
)
from .explorer import ExploreResult, Violation, explore, render_trace
from .sanitizer import (
    SanitizerError,
    sanitize_enabled,
)

__all__ = [
    "BUGS",
    "InvariantViolation",
    "ModelConfig",
    "ProtocolModel",
    "ExploreResult",
    "Violation",
    "explore",
    "render_trace",
    "SanitizerError",
    "sanitize_enabled",
]
