"""Dataset synthesis: the AmLight campaign and testbed replays."""

from .amlight import (
    SERVER_IP,
    SERVER_PORT,
    AmLightDataset,
    CampaignConfig,
    build_campaign_trace,
    build_dataset,
    cached_dataset,
    capture_testbed,
    label_records,
    monitored_topology,
    testbed_flow_traces,
)

__all__ = [
    "SERVER_IP",
    "SERVER_PORT",
    "AmLightDataset",
    "CampaignConfig",
    "build_campaign_trace",
    "build_dataset",
    "cached_dataset",
    "capture_testbed",
    "label_records",
    "monitored_topology",
    "testbed_flow_traces",
]
