"""End-to-end synthesis of the AmLight capture campaign.

The paper's data is a production capture we cannot have (traffic to an
AmLight web server, June 6–11 2024, with eleven injected attack
episodes).  This module builds the closest synthetic equivalent:

1. a benign web-server workload spanning the whole campaign window,
2. the Table I attack episodes injected at their scheduled times,
3. replay through a monitored three-switch path (INT on both directions,
   an sFlow agent at the edge), producing the two telemetry captures the
   paper compares.

Real time is compressed (default 600×: ten real minutes per simulated
second) so the six-day campaign stays tractable; every episode keeps its
relative position and duty cycle.  The sFlow sampling rate is scaled the
same way — production 1:4096 against ~80 M packets/minute becomes 1:1024
against our ~10⁵-packet campaign — preserving the samples-per-episode
ratios that drive the paper's qualitative sFlow findings (floods yield
plenty of samples, SlowLoris yields none).

Ground truth travels by five-tuple: every generated packet knows its
label, and :class:`AmLightDataset` exposes an oracle that maps any flow
key (and hence any telemetry record) back to (label, attack type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.rng import as_generator
from repro.dataplane.packet import ip
from repro.features.keys import canonical_flow_key, canonical_key_arrays
from repro.dataplane.topology import Topology
from repro.int_telemetry.collector import IntCollector
from repro.int_telemetry.roles import IntSink, IntSource, IntTransit
from repro.sflow.agent import SFlowAgent
from repro.sflow.collector import SFlowCollector
from repro.sflow.sampling import PacketCountSampler
from repro.traffic.attacks import slowloris, syn_flood, syn_scan, udp_scan
from repro.traffic.benign import BenignConfig, generate_benign
from repro.traffic.flows import AddressPool
from repro.traffic.replay import Replayer
from repro.traffic.schedule import CampaignSchedule
from repro.traffic.trace import AttackType, Trace, merge_traces

__all__ = [
    "CampaignConfig",
    "AmLightDataset",
    "build_campaign_trace",
    "monitored_topology",
    "build_dataset",
    "label_records",
    "testbed_flow_traces",
    "capture_testbed",
]

SERVER_IP = ip("10.10.0.80")
SERVER_PORT = 80
SCAN_ATTACKER_IP = ip("203.0.113.7")
SLOWLORIS_ATTACKER_IP = ip("198.51.100.9")


@dataclass
class CampaignConfig:
    """Scaling knobs of the synthetic campaign.

    The named constructors are the supported profiles:

    * :meth:`tiny` — seconds-scale build for unit tests,
    * :meth:`small` — the default benchmark profile (~10⁵ packets),
    * :meth:`full` — closer to paper volumes; minutes to build.
    """

    # Default seed chosen so the production sFlow sampler draws zero
    # samples during both SlowLoris episodes — the representative
    # realization matching the paper's Fig 5 observation (expected
    # samples per episode ≈ 0.3 at this rate, so "zero" is the typical
    # outcome, not a contrivance).
    time_scale: float = 1.0 / 600.0
    seed: int = 2028
    # benign workload
    benign_sessions_per_s: float = 8.0
    # attack intensities (simulated pps during episodes)
    syn_scan_pps: float = 2500.0
    udp_scan_pps: float = 2000.0
    syn_flood_pps: float = 50000.0
    slowloris_connections: int = 8
    slowloris_keepalive_real_s: float = 12.0
    # telemetry
    sflow_rate: int = 512
    # network
    link_rate_bps: float = 1e9
    queue_capacity_pkts: int = 4096

    @classmethod
    def tiny(cls) -> "CampaignConfig":
        return cls(
            benign_sessions_per_s=0.6,
            syn_scan_pps=250.0,
            udp_scan_pps=200.0,
            syn_flood_pps=5000.0,
            slowloris_connections=4,
            sflow_rate=128,
        )

    @classmethod
    def small(cls) -> "CampaignConfig":
        return cls()

    @classmethod
    def full(cls) -> "CampaignConfig":
        return cls(
            benign_sessions_per_s=12.0,
            syn_scan_pps=6000.0,
            udp_scan_pps=5000.0,
            syn_flood_pps=120000.0,
            sflow_rate=2048,
        )

    @property
    def slowloris_keepalive_ns(self) -> int:
        return int(self.slowloris_keepalive_real_s * self.time_scale * 1e9)


def build_campaign_trace(
    config: Optional[CampaignConfig] = None,
) -> Tuple[Trace, CampaignSchedule]:
    """Benign + Table I attacks, merged and time-sorted."""
    cfg = config if config is not None else CampaignConfig()
    rng = as_generator(cfg.seed)
    schedule = CampaignSchedule(time_scale=cfg.time_scale)
    end_ns = schedule.campaign_end_ns()

    # Real web-session timing, compressed with the campaign: ~40 ms RTT
    # and ~3 s client think time.  Keeping these realistic is load-
    # bearing: SlowLoris keepalives (10 s real) must remain *slower*
    # than any benign in-flow gap, and SlowLoris connections must
    # *outlive* every benign session — the flow-duration signature that
    # Table V's top-ranked inter-arrival-cum feature encodes.
    benign_cfg = BenignConfig(
        sessions_per_s=cfg.benign_sessions_per_s,
        diurnal_period_ns=int(86400e9 * cfg.time_scale),
        rtt_ns=max(50_000, int(40e6 * cfg.time_scale)),
        mean_think_ns=max(500_000, int(2e9 * cfg.time_scale)),
    )
    pool = AddressPool(base_ip=ip("172.16.0.0"), seed=rng)
    parts: List[Trace] = [
        generate_benign(
            SERVER_IP, SERVER_PORT, 0, end_ns, benign_cfg, pool=pool, seed=rng
        )
    ]

    for attack_type, start, end in schedule.sim_windows():
        retx_gap = max(500_000, int(3.5e9 * cfg.time_scale))  # scanner RTO ~3.5 s
        if attack_type == AttackType.SYN_SCAN:
            parts.append(
                syn_scan(
                    SCAN_ATTACKER_IP, SERVER_IP, start, end,
                    rate_pps=cfg.syn_scan_pps, retx_gap_ns=retx_gap, seed=rng,
                )
            )
        elif attack_type == AttackType.UDP_SCAN:
            parts.append(
                udp_scan(
                    SCAN_ATTACKER_IP, SERVER_IP, start, end,
                    rate_pps=cfg.udp_scan_pps, retx_gap_ns=retx_gap, seed=rng,
                )
            )
        elif attack_type == AttackType.SYN_FLOOD:
            parts.append(
                syn_flood(
                    SERVER_IP, SERVER_PORT, start, end,
                    rate_pps=cfg.syn_flood_pps, seed=rng,
                )
            )
        elif attack_type == AttackType.SLOWLORIS:
            parts.append(
                slowloris(
                    SLOWLORIS_ATTACKER_IP, SERVER_IP, SERVER_PORT, start, end,
                    connections=cfg.slowloris_connections,
                    keepalive_ns=cfg.slowloris_keepalive_ns,
                    seed=rng,
                )
            )
    return merge_traces(parts), schedule


def monitored_topology(
    config: Optional[CampaignConfig] = None,
) -> Tuple[Topology, IntCollector, SFlowCollector, SFlowAgent]:
    """Three-switch monitored path with INT (both directions) + sFlow.

    The client side aggregates at ``edge_client`` (INT source for
    traffic toward the server, INT sink for the reverse), ``core``
    transits, and ``edge_server`` faces the web server.  An sFlow agent
    with the configured sampling rate sits on ``edge_client``, which
    both directions traverse.
    """
    cfg = config if config is not None else CampaignConfig()
    topo = Topology(name="amlight-subnet")
    client_agg = topo.add_host("client_side", "172.16.0.1")
    server = topo.add_host("webserver", SERVER_IP)
    e_client = topo.add_switch("edge_client", 1)
    core = topo.add_switch("core", 2)
    e_server = topo.add_switch("edge_server", 3)

    rate, cap = cfg.link_rate_bps, cfg.queue_capacity_pkts
    topo.connect_host_to_switch(client_agg, e_client, 1, rate, capacity_pkts=cap)
    topo.connect_switches(e_client, core, 2, 1, rate, capacity_pkts=cap)
    topo.connect_switches(core, e_server, 2, 1, rate, capacity_pkts=cap)
    topo.connect_host_to_switch(server, e_server, 2, rate, capacity_pkts=cap)

    for sw in (e_client, core, e_server):
        sw.add_route(SERVER_IP, 2)
        sw.set_default_route(1)

    int_col = IntCollector()
    IntSource().attach(e_client)  # forward direction
    IntSource().attach(e_server)  # reverse direction
    for sw in (e_client, core, e_server):
        IntTransit().attach(sw)
    IntSink(int_col, sink_ports={2}).attach(e_server)  # forward extraction
    IntSink(int_col, sink_ports={1}).attach(e_client)  # reverse extraction

    sflow_col = SFlowCollector()
    agent = SFlowAgent(
        1,
        sflow_col,
        sampler=PacketCountSampler(cfg.sflow_rate, seed=cfg.seed),
        samples_per_datagram=8,
    )
    agent.attach(e_client)
    return topo, int_col, sflow_col, agent


def label_records(
    records: np.ndarray, truth_map: Dict[tuple, Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Ground-truth (label, attack_type) arrays for telemetry records."""
    n = records.shape[0]
    labels = np.zeros(n, dtype=np.uint8)
    types = np.zeros(n, dtype=np.uint8)
    ip_a, ip_b, port_a, port_b, proto = canonical_key_arrays(records)
    for i in range(n):
        key = (int(ip_a[i]), int(ip_b[i]), int(port_a[i]), int(port_b[i]), int(proto[i]))
        hit = truth_map.get(key)
        if hit is not None:
            labels[i], types[i] = hit
    return labels, types


def _build_truth_map(trace: Trace) -> Dict[tuple, Tuple[int, int]]:
    """Canonical flow key → (label, attack_type); attack wins collisions."""
    truth: Dict[tuple, Tuple[int, int]] = {}
    rec = trace.records
    ip_a, ip_b, port_a, port_b, proto = canonical_key_arrays(rec)
    labels = rec["label"]
    types = rec["attack_type"]
    for i in range(rec.shape[0]):
        key = (int(ip_a[i]), int(ip_b[i]), int(port_a[i]), int(port_b[i]), int(proto[i]))
        if key not in truth or labels[i]:
            truth[key] = (int(labels[i]), int(types[i]))
    return truth


@dataclass
class AmLightDataset:
    """The full synthetic campaign: traces, captures, and ground truth."""

    config: CampaignConfig
    schedule: CampaignSchedule
    trace: Trace
    int_records: np.ndarray
    int_labels: np.ndarray
    int_types: np.ndarray
    sflow_records: np.ndarray
    sflow_labels: np.ndarray
    sflow_types: np.ndarray
    truth_map: Dict[tuple, Tuple[int, int]] = field(repr=False, default_factory=dict)

    def truth(self, key: tuple) -> Tuple[int, int]:
        """(label, attack_type) for a flow key; benign if unknown."""
        return self.truth_map.get(key, (0, int(AttackType.BENIGN)))

    # ------------------------------------------------------------------
    # the paper's analysis windows
    # ------------------------------------------------------------------
    def focus_windows_ns(self) -> List[Tuple[int, int]]:
        """June 10 13:00–15:00 and June 11 19:00–21:00 in sim time —
        the INT training windows of §IV-B3."""
        s = self.schedule
        return [
            (s.to_sim_ns(datetime(2024, 6, 10, 13, 0)), s.to_sim_ns(datetime(2024, 6, 10, 15, 0))),
            (s.to_sim_ns(datetime(2024, 6, 11, 19, 0)), s.to_sim_ns(datetime(2024, 6, 11, 21, 0))),
        ]

    def day_start_ns(self, day: int) -> int:
        """Sim time of June ``day`` 2024, 00:00 (zero-day split boundary)."""
        return self.schedule.to_sim_ns(datetime(2024, 6, day, 0, 0))

    def int_time_mask(self, windows: List[Tuple[int, int]]) -> np.ndarray:
        """Boolean mask of INT records inside any of the windows."""
        ts = self.int_records["ts_report"]
        mask = np.zeros(ts.shape, dtype=bool)
        for a, b in windows:
            mask |= (ts >= a) & (ts < b)
        return mask

    def sflow_time_mask(self, windows: List[Tuple[int, int]]) -> np.ndarray:
        ts = self.sflow_records["ts_sample"]
        mask = np.zeros(ts.shape, dtype=bool)
        for a, b in windows:
            mask |= (ts >= a) & (ts < b)
        return mask

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist the dataset (trace + captures + labels) to a directory.

        The truth map is not stored — it is rebuilt from the trace on
        load, which is cheaper than serializing a dict of tuples and
        guarantees consistency.
        """
        import dataclasses
        import json
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            directory / "dataset.npz",
            trace=self.trace.records,
            int_records=self.int_records,
            int_labels=self.int_labels,
            int_types=self.int_types,
            sflow_records=self.sflow_records,
            sflow_labels=self.sflow_labels,
            sflow_types=self.sflow_types,
        )
        with open(directory / "config.json", "w") as fh:
            json.dump(dataclasses.asdict(self.config), fh, indent=2)

    @classmethod
    def load(cls, directory) -> "AmLightDataset":
        """Rebuild a dataset persisted by :meth:`save`."""
        import json
        from pathlib import Path

        directory = Path(directory)
        with open(directory / "config.json") as fh:
            cfg = CampaignConfig(**json.load(fh))
        with np.load(directory / "dataset.npz") as blob:
            trace = Trace(blob["trace"], sort=False)
            return cls(
                config=cfg,
                schedule=CampaignSchedule(time_scale=cfg.time_scale),
                trace=trace,
                int_records=blob["int_records"],
                int_labels=blob["int_labels"],
                int_types=blob["int_types"],
                sflow_records=blob["sflow_records"],
                sflow_labels=blob["sflow_labels"],
                sflow_types=blob["sflow_types"],
                truth_map=_build_truth_map(trace),
            )


_DATASET_CACHE: Dict[str, AmLightDataset] = {}


def cached_dataset(profile: str = "small") -> AmLightDataset:
    """Process-wide cached :func:`build_dataset` by profile name.

    Experiment and benchmark entry points all consume the same campaign;
    building it once per process keeps a full table/figure regeneration
    run at one ~20 s build instead of a dozen.
    """
    if profile not in ("tiny", "small", "full"):
        raise ValueError(f"unknown profile: {profile!r}")
    ds = _DATASET_CACHE.get(profile)
    if ds is None:
        cfg = getattr(CampaignConfig, profile)()
        ds = build_dataset(cfg)
        _DATASET_CACHE[profile] = ds
    return ds


def build_dataset(config: Optional[CampaignConfig] = None) -> AmLightDataset:
    """Generate, replay, capture, and label the whole campaign."""
    cfg = config if config is not None else CampaignConfig()
    trace, schedule = build_campaign_trace(cfg)
    topo, int_col, sflow_col, agent = monitored_topology(cfg)

    replayer = Replayer(
        topo,
        {
            "fwd": (topo.switches["edge_client"], 1),
            "rev": (topo.switches["edge_server"], 2),
        },
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    )
    replayer.replay(trace)
    agent.flush(topo.clock.now)

    truth_map = _build_truth_map(trace)
    int_records = int_col.to_records()
    sflow_records = sflow_col.to_records()
    int_labels, int_types = label_records(int_records, truth_map)
    sflow_labels, sflow_types = label_records(sflow_records, truth_map)
    return AmLightDataset(
        config=cfg,
        schedule=schedule,
        trace=trace,
        int_records=int_records,
        int_labels=int_labels,
        int_types=int_types,
        sflow_records=sflow_records,
        sflow_labels=sflow_labels,
        sflow_types=sflow_types,
        truth_map=truth_map,
    )


# ----------------------------------------------------------------------
# Testbed experiment inputs (§IV-C)
# ----------------------------------------------------------------------

def testbed_flow_traces(
    config: Optional[CampaignConfig] = None,
    n_packets: int = 2500,
    seed: int = 7,
) -> Dict[str, Trace]:
    """Per-flow-type replay segments (~``n_packets`` each, §IV-C2).

    Returns one trace per Table VI row: Benign, SYN Scan, UDP Scan,
    SYN Flood, SlowLoris.  Durations are chosen so each segment carries
    roughly ``n_packets`` packets at its natural rate.
    """
    cfg = config if config is not None else CampaignConfig()
    rng = as_generator(seed)
    out: Dict[str, Trace] = {}

    # Benign: size the window from the session rate (≈30 pkts/session).
    span = int(n_packets / max(cfg.benign_sessions_per_s * 30.0, 1e-9) * 1e9)
    benign_cfg = BenignConfig(
        sessions_per_s=cfg.benign_sessions_per_s,
        diurnal_amplitude=0.0,
        rtt_ns=max(50_000, int(40e6 * cfg.time_scale)),
        mean_think_ns=max(500_000, int(2e9 * cfg.time_scale)),
    )
    t = generate_benign(SERVER_IP, SERVER_PORT, 0, max(span, 10_000_000),
                        benign_cfg, seed=rng)
    out["Benign"] = t[: min(len(t), n_packets)]

    retx_gap = max(500_000, int(3.5e9 * cfg.time_scale))  # scanner RTO ~3.5 s
    dur = int(n_packets / cfg.syn_scan_pps / 2 * 1e9)  # probes + responses
    out["SYN Scan"] = syn_scan(
        SCAN_ATTACKER_IP, SERVER_IP, 0, max(dur, 1_000_000),
        rate_pps=cfg.syn_scan_pps, retx_gap_ns=retx_gap, seed=rng,
    )[: n_packets]

    dur = int(n_packets / cfg.udp_scan_pps / 1.3 * 1e9)
    out["UDP Scan"] = udp_scan(
        SCAN_ATTACKER_IP, SERVER_IP, 0, max(dur, 1_000_000),
        rate_pps=cfg.udp_scan_pps, retx_gap_ns=retx_gap, seed=rng,
    )[: n_packets]

    dur = int(n_packets / cfg.syn_flood_pps / 1.15 * 1e9)
    out["SYN Flood"] = syn_flood(
        SERVER_IP, SERVER_PORT, 0, max(dur, 1_000_000),
        rate_pps=cfg.syn_flood_pps, seed=rng,
    )[: n_packets]

    # SlowLoris is naturally sparse; run it long enough for a few
    # hundred packets (the paper predicted 779).
    keep = cfg.slowloris_keepalive_ns
    per_conn_rate = 2.0 / keep * 1e9  # fragment + ACK per keepalive
    dur = int(n_packets / max(cfg.slowloris_connections * per_conn_rate, 1e-9) * 1e9)
    out["SlowLoris"] = slowloris(
        SLOWLORIS_ATTACKER_IP, SERVER_IP, SERVER_PORT, 0, max(dur, keep * 4),
        connections=cfg.slowloris_connections, keepalive_ns=keep, seed=rng,
    )[: n_packets]
    return out


def capture_testbed(
    trace: Trace, config: Optional[CampaignConfig] = None
) -> Tuple[np.ndarray, Dict[tuple, Tuple[int, int]]]:
    """Replay a trace through the Fig 6 testbed topology.

    Returns the INT records captured at the collector tap and the
    ground-truth map keyed by the *as-replayed* five-tuples (destinations
    are rewritten onto the target agent, so the original trace's keys no
    longer apply)."""
    from repro.dataplane.topology import testbed_topology

    cfg = config if config is not None else CampaignConfig()
    topo = testbed_topology(
        rate_bps=cfg.link_rate_bps, capacity_pkts=cfg.queue_capacity_pkts
    )
    col = IntCollector()
    wedge_a, wedge_b = topo.switches["wedge_a"], topo.switches["wedge_b"]
    IntSource().attach(wedge_a)
    IntTransit().attach(wedge_a)
    IntTransit().attach(wedge_b)
    IntSink(col, sink_ports={2}).attach(wedge_b)

    # The testbed replays the whole capture from the source agent
    # (tcpreplay on one NIC); the monitored server's role is played by
    # the target agent.  Substitute the server's address with the target
    # agent's on both header sides so request/response pairs keep
    # belonging to one bidirectional flow, and let the switch deliver
    # everything out of the target-facing port (where the INT sink
    # extracts), as the physical loopback wiring does.
    target_ip = topo.hosts["target_agent"].ip
    rec = trace.records.copy()
    rec["src_ip"] = np.where(rec["src_ip"] == SERVER_IP, target_ip, rec["src_ip"])
    rec["dst_ip"] = np.where(rec["dst_ip"] == SERVER_IP, target_ip, rec["dst_ip"])
    wedge_b.set_default_route(2)
    bent = Trace(rec, sort=False)
    replayer = Replayer(topo, {"in": (wedge_a, 1)})
    replayer.replay(bent)
    return col.to_records(), _build_truth_map(bent)
