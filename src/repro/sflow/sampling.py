"""sFlow sampling disciplines.

sFlow (RFC 3176) defines statistical packet sampling at the agent.  The
paper's production deployment uses packet-count sampling at 1:4096; the
sFlow spec also allows time-based sampling, and the paper's background
section (§II-A1) describes both, so both are implemented.

Count-based sampling draws the gap to the next sampled packet from a
geometric-like distribution around the configured rate (as real agents
do, to avoid phase-locking with periodic traffic); a ``deterministic``
mode samples exactly every N-th packet for reproducible unit tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.rng import as_generator

__all__ = ["PacketCountSampler", "TimeBasedSampler"]


class PacketCountSampler:
    """Sample on average 1 of every ``rate`` packets.

    Parameters
    ----------
    rate : int
        Mean sampling interval in packets (AmLight production: 4096).
    deterministic : bool
        If True, sample exactly every ``rate``-th packet (counter mode);
        otherwise draw random skip gaps with mean ``rate`` (spec
        behaviour, avoids aliasing against periodic flows).
    seed : int | numpy.random.Generator | None
        Randomness source for the skip gaps.
    """

    def __init__(
        self,
        rate: int = 4096,
        deterministic: bool = False,
        seed=None,
    ) -> None:
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1: {rate}")
        self.rate = int(rate)
        self.deterministic = bool(deterministic)
        self._rng = as_generator(seed)
        self.observed = 0
        self.sampled = 0
        self._skip = self._draw_skip()

    def _draw_skip(self) -> int:
        if self.deterministic:
            return self.rate
        if self.rate == 1:
            return 1
        # Uniform over [1, 2*rate-1] keeps the mean at `rate` and bounds
        # worst-case gaps, matching common agent implementations.
        return int(self._rng.integers(1, 2 * self.rate))

    def offer(self, _pkt=None) -> bool:
        """Observe one packet; return True if it is selected for sampling."""
        self.observed += 1
        self._skip -= 1
        if self._skip <= 0:
            self.sampled += 1
            self._skip = self._draw_skip()
            return True
        return False

    @property
    def sample_pool(self) -> int:
        """Total packets observed since start (sFlow ``sample_pool``)."""
        return self.observed


class TimeBasedSampler:
    """Sample the first packet seen after each fixed time interval.

    Parameters
    ----------
    interval_ns : int
        Sampling period in nanoseconds.
    """

    def __init__(self, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive: {interval_ns}")
        self.interval_ns = int(interval_ns)
        self._next_sample_at: Optional[int] = None
        self.observed = 0
        self.sampled = 0

    def offer(self, now_ns: int) -> bool:
        """Observe one packet at time ``now_ns``; True if sampled."""
        self.observed += 1
        if self._next_sample_at is None:
            self._next_sample_at = now_ns  # sample the very first packet
        if now_ns >= self._next_sample_at:
            self.sampled += 1
            # Advance in whole intervals so a burst after an idle gap
            # yields one sample, not a backlog of them.
            periods = (now_ns - self._next_sample_at) // self.interval_ns + 1
            self._next_sample_at += periods * self.interval_ns
            return True
        return False

    @property
    def sample_pool(self) -> int:
        return self.observed
