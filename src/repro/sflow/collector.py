"""sFlow collector.

Receives datagrams from agents, unpacks the flow samples into a
structured-array buffer, and exposes the data the same way the INT
collector does so the feature extractor can treat both sources uniformly
(the paper's comparison hinges on feeding the same pipeline from either
source).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.common.buffers import GrowableRecordBuffer

from .datagram import SAMPLE_DTYPE, FlowSample, SFlowDatagram

__all__ = ["SFlowCollector"]


class SFlowCollector:
    """Accumulates sampled packet records.

    Parameters
    ----------
    subscriber : callable(FlowSample, int), optional
        Live tap invoked as ``subscriber(sample, ts_collector)`` for each
        unpacked sample (used when driving detection from sFlow live).
    """

    def __init__(
        self, subscriber: Optional[Callable[[FlowSample, int], None]] = None
    ) -> None:
        self._buffer = GrowableRecordBuffer(SAMPLE_DTYPE, initial_capacity=1024)
        self.subscriber = subscriber
        self.datagrams_received = 0
        self.samples_received = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def ingest_datagram(self, dgram: SFlowDatagram, ts_collector: int) -> None:
        """Unpack one datagram arriving at ``ts_collector``."""
        self.datagrams_received += 1
        for sample in dgram.samples:
            self._buffer.append_row(sample.to_row(ts_collector))
            self.samples_received += 1
            if self.subscriber is not None:
                self.subscriber(sample, ts_collector)

    def to_records(self) -> np.ndarray:
        """Owning structured array of all samples collected so far."""
        return self._buffer.compact()

    def view(self) -> np.ndarray:
        """Zero-copy view (invalidated by the next buffer growth)."""
        return self._buffer.view()

    def clear(self) -> None:
        self._buffer.clear()
        self.datagrams_received = 0
        self.samples_received = 0
