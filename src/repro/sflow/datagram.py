"""sFlow flow samples and datagrams.

An agent wraps each selected packet's headers in a
:class:`FlowSample` and batches samples into :class:`SFlowDatagram`
messages toward the collector (real agents pack several samples per UDP
datagram; we keep the batching because it shapes collector arrival times
and therefore the inter-arrival features the paper derives from sFlow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["FlowSample", "SFlowDatagram", "SAMPLE_DTYPE"]

#: Flat per-sample record layout used by the sFlow collector.
SAMPLE_DTYPE = np.dtype(
    [
        ("ts_sample", np.int64),  # agent-side sampling time (ns)
        ("ts_collector", np.int64),  # collector arrival time (ns)
        ("src_ip", np.uint32),
        ("dst_ip", np.uint32),
        ("src_port", np.uint16),
        ("dst_port", np.uint16),
        ("protocol", np.uint8),
        ("tcp_flags", np.uint8),
        ("length", np.uint32),
        ("sampling_rate", np.uint32),
        ("sample_pool", np.uint64),
        ("agent_id", np.uint32),
    ]
)


@dataclass(frozen=True)
class FlowSample:
    """One sampled packet's header snapshot plus sampling metadata."""

    ts_sample: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    tcp_flags: int
    length: int
    sampling_rate: int
    sample_pool: int
    agent_id: int

    def to_row(self, ts_collector: int) -> tuple:
        """Flatten to a :data:`SAMPLE_DTYPE` row at collector arrival."""
        return (
            self.ts_sample,
            ts_collector,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.protocol,
            self.tcp_flags,
            self.length,
            self.sampling_rate,
            self.sample_pool,
            self.agent_id,
        )


@dataclass
class SFlowDatagram:
    """A batch of flow samples from one agent."""

    agent_id: int
    sequence: int
    samples: List[FlowSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)
