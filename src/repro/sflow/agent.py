"""sFlow agent.

Attaches to a switch as an ingress hook.  Every packet is offered to the
sampler; selected packets become :class:`~repro.sflow.datagram.FlowSample`
records, batched into datagrams and shipped to the collector after a
configurable export delay (the UDP trip the real agent makes).

A datagram is flushed when it reaches ``samples_per_datagram`` or when
``flush_interval_ns`` elapses since the first queued sample, whichever
comes first — matching how production agents bound both datagram size and
staleness.
"""

from __future__ import annotations

from typing import Optional

from repro.dataplane.packet import Packet
from repro.dataplane.switch import Switch

from .collector import SFlowCollector
from .datagram import FlowSample, SFlowDatagram
from .sampling import PacketCountSampler, TimeBasedSampler

__all__ = ["SFlowAgent"]


class SFlowAgent:
    """Per-switch sFlow agent.

    Parameters
    ----------
    agent_id : int
        Identifier embedded in every sample.
    collector : SFlowCollector
        Destination for exported datagrams.
    sampler : PacketCountSampler | TimeBasedSampler
        Sampling discipline; defaults to packet-count 1:4096 (the
        AmLight production rate).
    samples_per_datagram : int
        Flush threshold in samples.
    flush_interval_ns : int
        Maximum staleness of a queued sample before a forced flush.
    export_delay_ns : int
        Modeled network delay from agent to collector.
    """

    def __init__(
        self,
        agent_id: int,
        collector: SFlowCollector,
        sampler: Optional[PacketCountSampler | TimeBasedSampler] = None,
        samples_per_datagram: int = 8,
        flush_interval_ns: int = 1_000_000_000,
        export_delay_ns: int = 0,
    ) -> None:
        self.agent_id = int(agent_id)
        self.collector = collector
        self.sampler = sampler if sampler is not None else PacketCountSampler(4096)
        self.samples_per_datagram = int(samples_per_datagram)
        self.flush_interval_ns = int(flush_interval_ns)
        self.export_delay_ns = int(export_delay_ns)
        self._pending: list[FlowSample] = []
        self._pending_since: Optional[int] = None
        self._sequence = 0
        self.datagrams_sent = 0
        self._events = None  # bound at attach time

    def attach(self, switch: Switch) -> None:
        """Install the sampling hook on ``switch``'s ingress pipeline."""
        self._events = switch.events
        switch.add_ingress_hook(self.on_ingress)

    def on_ingress(self, switch: Switch, pkt: Packet, in_port: int) -> bool:
        now = switch.events.clock.now
        if isinstance(self.sampler, TimeBasedSampler):
            selected = self.sampler.offer(now)
        else:
            selected = self.sampler.offer(pkt)
        if selected:
            self._pending.append(
                FlowSample(
                    ts_sample=now,
                    src_ip=pkt.src_ip,
                    dst_ip=pkt.dst_ip,
                    src_port=pkt.src_port,
                    dst_port=pkt.dst_port,
                    protocol=pkt.protocol,
                    tcp_flags=pkt.tcp_flags,
                    length=pkt.length,
                    sampling_rate=getattr(self.sampler, "rate", 0)
                    or getattr(self.sampler, "interval_ns", 0),
                    sample_pool=self.sampler.sample_pool,
                    agent_id=self.agent_id,
                )
            )
            if self._pending_since is None:
                self._pending_since = now
            if len(self._pending) >= self.samples_per_datagram:
                self.flush(now)
        # Staleness flush: piggybacked on traffic (agents also flush on
        # timers; checking here avoids idle timer events in the heap).
        if (
            self._pending
            and self._pending_since is not None
            and now - self._pending_since >= self.flush_interval_ns
        ):
            self.flush(now)
        return True

    def flush(self, now_ns: int) -> None:
        """Export all pending samples as one datagram."""
        if not self._pending:
            return
        dgram = SFlowDatagram(self.agent_id, self._sequence, self._pending)
        self._sequence += 1
        self._pending = []
        self._pending_since = None
        self.datagrams_sent += 1
        arrive = now_ns + self.export_delay_ns
        # The collector is passive storage; stamping the arrival time on
        # ingest is equivalent to scheduling a delivery event and keeps
        # the heap free of telemetry chatter.
        self.collector.ingest_datagram(dgram, arrive)
