"""sFlow counter samples (the other half of RFC 3176).

Besides packet flow samples, a real sFlow agent periodically exports
*interface counters* — the octet/packet/drop totals SNMP would poll,
piggybacked on the sFlow channel.  Our switch ports already maintain the
relevant counters (:class:`~repro.dataplane.queueing.QueueStats`), so
the counter poller just snapshots them on a timer driven by the shared
event queue.

Counter samples give operators the coarse utilization/drop picture that
contextualizes the packet samples — e.g. confirming that a flood that
the flow samples hint at is also visible as a drop-counter surge.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.buffers import GrowableRecordBuffer
from repro.dataplane.switch import Switch

__all__ = ["COUNTER_DTYPE", "CounterPoller"]

#: One interface-counter snapshot.
COUNTER_DTYPE = np.dtype(
    [
        ("ts", np.int64),
        ("agent_id", np.uint32),
        ("port", np.uint16),
        ("out_packets", np.uint64),
        ("out_bytes", np.uint64),
        ("drops", np.uint64),
        ("queue_depth", np.uint32),
    ]
)


class CounterPoller:
    """Periodic interface-counter export for one switch.

    Parameters
    ----------
    agent_id : int
    switch : Switch
        Ports are discovered at start time.
    interval_ns : int
        Polling period (sFlow default is 20-30 s; scale to taste).
    """

    def __init__(self, agent_id: int, switch: Switch, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive: {interval_ns}")
        self.agent_id = int(agent_id)
        self.switch = switch
        self.interval_ns = int(interval_ns)
        self._buffer = GrowableRecordBuffer(COUNTER_DTYPE, initial_capacity=256)
        self.polls = 0
        self._stop_at: Optional[int] = None

    def start(self, until_ns: Optional[int] = None) -> None:
        """Begin polling on the switch's event queue.

        Parameters
        ----------
        until_ns : int, optional
            Stop rescheduling past this time (otherwise the poller keeps
            the event queue alive forever — callers using
            ``topology.run()`` without a horizon must set this).
        """
        self._stop_at = until_ns
        self.switch.events.schedule_in(self.interval_ns, self._poll)

    def _poll(self, _payload=None) -> None:
        now = self.switch.events.clock.now
        for number, port in sorted(self.switch.ports.items()):
            s = port.queue.stats
            self._buffer.append_row(
                (now, self.agent_id, number, s.transmitted,
                 s.bytes_transmitted, s.dropped, port.queue.depth)
            )
        self.polls += 1
        next_at = now + self.interval_ns
        if self._stop_at is None or next_at <= self._stop_at:
            self.switch.events.schedule(next_at, self._poll)

    def to_records(self) -> np.ndarray:
        """All counter snapshots so far (owning copy)."""
        return self._buffer.compact()

    def rates(self, port: int) -> np.ndarray:
        """Per-interval deltas for one port: structured array with
        ``ts``, ``pps``, ``bps``, ``dps`` (drops/s)."""
        rec = self._buffer.view()
        mine = rec[rec["port"] == port]
        if mine.shape[0] < 2:
            return np.empty(0, dtype=[("ts", np.int64), ("pps", np.float64),
                                      ("bps", np.float64), ("dps", np.float64)])
        dt = np.diff(mine["ts"]).astype(np.float64) * 1e-9
        out = np.empty(mine.shape[0] - 1,
                       dtype=[("ts", np.int64), ("pps", np.float64),
                              ("bps", np.float64), ("dps", np.float64)])
        out["ts"] = mine["ts"][1:]
        out["pps"] = np.diff(mine["out_packets"].astype(np.int64)) / dt
        out["bps"] = np.diff(mine["out_bytes"].astype(np.int64)) * 8 / dt
        out["dps"] = np.diff(mine["drops"].astype(np.int64)) / dt
        return out
