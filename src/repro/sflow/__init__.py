"""sFlow measurement stack: samplers, agent, datagrams, collector.

Mirrors the paper's industry-standard comparison point: device-level
statistical sampling (production rate 1:4096) with proxy reporting to a
central collector (§II-A1).
"""

from .agent import SFlowAgent
from .collector import SFlowCollector
from .counters import COUNTER_DTYPE, CounterPoller
from .datagram import SAMPLE_DTYPE, FlowSample, SFlowDatagram
from .sampling import PacketCountSampler, TimeBasedSampler

__all__ = [
    "SFlowAgent",
    "SFlowCollector",
    "CounterPoller",
    "COUNTER_DTYPE",
    "FlowSample",
    "SFlowDatagram",
    "SAMPLE_DTYPE",
    "PacketCountSampler",
    "TimeBasedSampler",
]
