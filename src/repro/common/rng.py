"""Deterministic randomness plumbing.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
Funneling through :func:`as_generator` keeps experiment scripts exactly
reproducible while letting tests share one generator across components.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["as_generator"]

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged (shared stream);
    an ``int`` builds a fresh PCG64 stream; ``None`` draws OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
