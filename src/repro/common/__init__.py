"""Shared low-level utilities (buffers, RNG helpers)."""

from .buffers import GrowableRecordBuffer
from .rng import as_generator

__all__ = ["GrowableRecordBuffer", "as_generator"]
