"""Growable structured-array record buffers and shared-memory rings.

Telemetry collectors ingest one record per packet.  Appending dicts to a
Python list and converting at the end costs ~100 bytes of object overhead
per field per record; at AmLight rates (the paper quotes 80 M packets and
30 GB of INT data per minute) that is untenable.  Instead we append into a
preallocated NumPy structured array that doubles capacity when full —
amortized O(1) appends, contiguous storage, and a zero-copy view on
export.

:class:`SharedRing` is the cross-process sibling: a fixed-capacity
single-producer/single-consumer ring over POSIX shared memory.  The
sharded detector uses one ring per worker to fan telemetry slices out of
the coordinator — records move as raw structured-array bytes, so the hot
path never pickles.

On top of the raw byte ring sits the **batch-frame codec**
(:func:`pack_frame` / :func:`read_frame_header` /
:func:`unpack_frame_payload`): one contiguous frame per shard per poll
cycle, header-tagged with kind/count/seq-base, so control markers ride
the header instead of consuming slots and the consumer reconstructs the
payload with zero-copy structured views.
"""

from __future__ import annotations

import os
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Optional, Tuple

import numpy as np

__all__ = [
    "GrowableRecordBuffer",
    "PeerDead",
    "SharedRing",
    "FrameError",
    "FRAME_DATA",
    "FRAME_CYCLE",
    "FRAME_EOF",
    "FRAME_SWAP",
    "FRAME_MAGIC",
    "FRAME_HEADER_DTYPE",
    "FRAME_HEADER_BYTES",
    "pack_frame",
    "pack_blob_frame",
    "read_frame_header",
    "unpack_frame_payload",
]


class PeerDead(RuntimeError):
    """The process on the other side of a :class:`SharedRing` is gone.

    Raised by :meth:`SharedRing.push` / :meth:`SharedRing.pop` when a
    ``peer_alive`` probe reports the peer dead while the call is blocked
    waiting on it.  Distinct from ``TimeoutError`` (peer alive but slow)
    so supervisors can respond with a respawn instead of a retry.
    """


class FrameError(RuntimeError):
    """A ring frame failed validation (bad magic / malformed layout).

    Frames are length-prefixed, so a corrupt header desynchronizes the
    byte stream permanently — consumers treat this as fatal and die so
    the supervisor can reset the ring and replay from a checkpoint.
    """


class GrowableRecordBuffer:
    """Amortized-O(1) append buffer over a NumPy structured dtype.

    Parameters
    ----------
    dtype : numpy.dtype
        Structured dtype of one record.
    initial_capacity : int
        Starting allocation in records.

    Examples
    --------
    >>> import numpy as np
    >>> buf = GrowableRecordBuffer(np.dtype([("a", "i8"), ("b", "f8")]))
    >>> buf.append(a=1, b=2.5)
    >>> buf.view()["a"].tolist()
    [1]
    """

    def __init__(self, dtype: np.dtype, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1: {initial_capacity}")
        self.dtype = np.dtype(dtype)
        self._data = np.zeros(initial_capacity, dtype=self.dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    def _grow(self, minimum: int) -> None:
        new_cap = max(self.capacity * 2, minimum)
        new = np.zeros(new_cap, dtype=self.dtype)
        new[: self._size] = self._data[: self._size]
        self._data = new

    def append(self, **fields: object) -> None:
        """Append one record given as keyword arguments (one per field)."""
        if self._size >= self.capacity:
            self._grow(self._size + 1)
        row = self._data[self._size]
        for name, value in fields.items():
            row[name] = value
        self._size += 1

    def append_row(self, values: tuple) -> None:
        """Append one record given as a tuple in dtype field order.

        Faster than :meth:`append` in hot paths — no keyword dict is
        built and NumPy assigns the whole row at once.
        """
        if self._size >= self.capacity:
            self._grow(self._size + 1)
        self._data[self._size] = values
        self._size += 1

    def extend(self, records: np.ndarray) -> None:
        """Append a block of records of the same dtype."""
        records = np.asarray(records, dtype=self.dtype)
        need = self._size + records.shape[0]
        if need > self.capacity:
            self._grow(need)
        self._data[self._size : need] = records
        self._size = need

    def view(self) -> np.ndarray:
        """Zero-copy view of the filled region.

        The view aliases internal storage: it is invalidated by the next
        append that triggers a reallocation.  Call :meth:`compact` for an
        owning copy.
        """
        return self._data[: self._size]

    def compact(self) -> np.ndarray:
        """Owning copy of the filled region (safe to keep)."""
        return self._data[: self._size].copy()

    def clear(self) -> None:
        """Reset to empty without releasing storage."""
        self._size = 0


class _WaitState:
    """Per-blocked-call adaptive-backoff state for :class:`SharedRing`.

    Tracks the remaining spin budget, the current (escalating) sleep
    duration, and the wall-clock sleep accumulated since the last
    liveness probe.  One instance lives for the duration of one blocked
    ``push``/``pop``/``pop_exact`` call; progress resets nothing — a
    fresh call starts a fresh backoff, so a busy ring always waits at
    the cheap end of the schedule.
    """

    __slots__ = ("spins_left", "sleep_s", "slept_since_probe_s")

    def __init__(self) -> None:
        self.spins_left = SharedRing.SPIN_YIELDS
        self.sleep_s = SharedRing.WAIT_SLEEP_S
        # Start at the probe threshold so the first tick of a blocked
        # call probes immediately — a wait against an already-dead peer
        # fails fast instead of sleeping through a probe interval.
        self.slept_since_probe_s = SharedRing.PROBE_INTERVAL_S


class SharedRing:
    """Fixed-capacity SPSC ring buffer over POSIX shared memory.

    One producer process pushes blocks of structured records, one
    consumer pops them; records cross the process boundary as raw bytes
    (no pickling).  The layout is::

        [ head: int64 @ 0 | tail: int64 @ 64 | slots: capacity * dtype ]

    ``head`` (consumer cursor) and ``tail`` (producer cursor) are
    *monotonic* counters — ``tail - head`` is the fill level and
    ``counter % capacity`` the slot index — kept 64 bytes apart so the
    two sides never share a cache line.  Each cursor is written by
    exactly one process and only after its data transfer completes,
    which on CPython (aligned 8-byte stores, no compiler reordering
    across the interpreter) is sufficient ordering for an SPSC
    protocol.

    A full ring applies **backpressure**: :meth:`push` spins with short
    sleeps until space frees up, raising ``TimeoutError`` after
    ``timeout`` seconds so a dead consumer cannot hang the producer
    forever.  Both waits are **peer-liveness aware**: pass
    ``peer_alive`` (e.g. ``proc.is_alive``) and a blocked call probes it
    periodically, raising :class:`PeerDead` the moment the other side is
    gone instead of burning the whole timeout on a corpse.  ``on_wait``
    is probed at the same cadence so a supervising producer can keep
    draining control channels (and detect hung peers) while blocked.

    Parameters
    ----------
    dtype : numpy.dtype
        Structured dtype of one slot.
    capacity : int
        Number of slots (fixed; the ring never grows).
    name : str, optional
        Existing segment to attach to (use :meth:`attach`); ``None``
        creates a new segment.
    """

    HEADER_BYTES = 128
    #: First-sleep duration of the adaptive backoff (after the spin
    #: phase).  Short, so a momentarily-stalled peer costs little
    #: latency; doubles per tick up to :data:`MAX_WAIT_SLEEP_S`.
    WAIT_SLEEP_S = 50e-6
    #: Backoff ceiling.  An *idle* ring settles at ~1 ms wakeups
    #: (~1 k/s) instead of the ~20 k/s a fixed 50 µs sleep would burn —
    #: on a shared core those wakeups steal cycles from the very peer
    #: being waited on.
    MAX_WAIT_SLEEP_S = 1e-3
    #: Free ``sched_yield``-style re-checks before the first real sleep:
    #: if the peer frees space within a scheduler quantum, the wait
    #: costs microseconds instead of a 50 µs timer round-trip.
    SPIN_YIELDS = 8
    #: Accumulated *wall-clock* sleep between ``peer_alive``/``on_wait``
    #: probes.  Probes cost a syscall (and on_wait may pump pipes), so
    #: they run every ~3 ms of waiting regardless of how far the sleep
    #: escalation has progressed — the same cadence the old fixed
    #: 50 µs × 64-tick schedule produced.
    PROBE_INTERVAL_S = 3.2e-3

    def __init__(
        self,
        dtype: np.dtype,
        capacity: int,
        name: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.dtype = np.dtype(dtype)
        self.capacity = int(capacity)
        nbytes = self.HEADER_BYTES + self.capacity * self.dtype.itemsize
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            # CPython < 3.13 registers attached segments with the
            # resource tracker as if this process owned them, so a
            # worker's exit would unlink a ring the coordinator still
            # reads.  Undo the spurious registration.
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass
        buf = self._shm.buf
        self._head: np.ndarray = np.ndarray(
            (1,), dtype=np.int64, buffer=buf, offset=0
        )
        self._tail: np.ndarray = np.ndarray(
            (1,), dtype=np.int64, buffer=buf, offset=64
        )
        self._slots: np.ndarray = np.ndarray(
            (self.capacity,), dtype=self.dtype, buffer=buf,
            offset=self.HEADER_BYTES,
        )
        if self._owner:
            self._head[0] = 0
            self._tail[0] = 0
        # Opt-in runtime sanitizer (REPRO_SANITIZE=1, see
        # repro.verify.sanitizer): mirrors every cursor store this
        # process performs and asserts the SPSC protocol invariants
        # live.  None in normal runs — the only cost with the sanitizer
        # off is one attribute test per ring operation.
        self._observer: Optional[Any] = None
        if os.environ.get("REPRO_SANITIZE") == "1":
            # repro: allow[LAY001] env-gated diagnostic shim: the import only runs under REPRO_SANITIZE=1, so normal runs never couple common to the verify layer
            from repro.verify.sanitizer import RingObserver
            self._observer = RingObserver(self._shm.name, self.capacity)

    @classmethod
    def attach(cls, name: str, dtype: np.dtype, capacity: int) -> "SharedRing":
        """Map an existing ring created by another process."""
        return cls(dtype, capacity, name=name)

    @property
    def name(self) -> str:
        """Segment name; pass to :meth:`attach` in the other process."""
        return self._shm.name

    def __len__(self) -> int:
        return int(self._tail[0] - self._head[0])

    @property
    def free(self) -> int:
        return self.capacity - len(self)

    # ------------------------------------------------------------------
    def _wait_tick(
        self,
        state: _WaitState,
        peer_alive: Optional[Callable[[], bool]],
        on_wait: Optional[Callable[[], None]],
    ) -> None:
        """One blocked-wait iteration of the adaptive backoff.

        Spin (``sleep(0)`` yield) for the first :data:`SPIN_YIELDS`
        ticks, then sleep with per-tick doubling from
        :data:`WAIT_SLEEP_S` up to :data:`MAX_WAIT_SLEEP_S`.  Liveness
        and the wait hook are probed on the first tick and then every
        :data:`PROBE_INTERVAL_S` of accumulated sleep — a wall-clock
        cadence, so escalating the sleep does not starve the probes.

        Raises :class:`PeerDead` when ``peer_alive`` reports the other
        side gone.  ``on_wait`` may itself raise to abort the wait (a
        supervisor uses that to declare an alive-but-hung peer dead).
        """
        if state.slept_since_probe_s >= self.PROBE_INTERVAL_S:
            state.slept_since_probe_s = 0.0
            if peer_alive is not None and not peer_alive():
                raise PeerDead(
                    f"ring {self.name}: peer process died while this side "
                    "was blocked waiting on it"
                )
            if on_wait is not None:
                on_wait()
        if state.spins_left > 0:
            state.spins_left -= 1
            time.sleep(0)  # yield the core to the peer, ~free
            return
        time.sleep(state.sleep_s)
        state.slept_since_probe_s += state.sleep_s
        state.sleep_s = min(state.sleep_s * 2.0, self.MAX_WAIT_SLEEP_S)

    def push(
        self,
        records: np.ndarray,
        timeout: float = 30.0,
        peer_alive: Optional[Callable[[], bool]] = None,
        on_wait: Optional[Callable[[], None]] = None,
    ) -> int:
        """Copy a block of records into the ring (producer side).

        Blocks while the ring is full — that backpressure is what bounds
        coordinator memory when a worker falls behind.  Blocks larger
        than the whole ring are streamed through in capacity-sized
        pieces.  Returns the record count; raises ``TimeoutError`` if
        the consumer frees no space for ``timeout`` seconds, or
        :class:`PeerDead` as soon as ``peer_alive`` (probed periodically
        during the wait) reports the consumer process gone.

        Either error can leave a **partial write** behind (earlier
        pieces of a large block already published).  Callers that
        recover by respawning the consumer must :meth:`reset` the ring
        and replay from a checkpoint rather than re-pushing the same
        block.
        """
        records = np.ascontiguousarray(records, dtype=self.dtype)
        n = records.shape[0]
        written = 0
        wait = _WaitState()
        deadline = time.monotonic() + timeout
        while written < n:
            tail = int(self._tail[0])
            head_seen = int(self._head[0])
            space = self.capacity - (tail - head_seen)
            if space == 0:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"ring {self.name} full for {timeout:.1f}s "
                        f"({written}/{n} records written)"
                    )
                self._wait_tick(wait, peer_alive, on_wait)
                continue
            take = min(space, n - written)
            start = tail % self.capacity
            end = start + take
            if end <= self.capacity:
                self._slots[start:end] = records[written : written + take]
            else:
                first = self.capacity - start
                self._slots[start:] = records[written : written + first]
                self._slots[: take - first] = records[
                    written + first : written + take
                ]
            # Publish only after the slot data is in place.
            self._tail[0] = tail + take
            if self._observer is not None:
                self._observer.on_publish(tail, take, head_seen)
            written += take
        return written

    def pop(
        self,
        max_records: Optional[int] = None,
        timeout: float = 0.0,
        peer_alive: Optional[Callable[[], bool]] = None,
        on_wait: Optional[Callable[[], None]] = None,
    ) -> np.ndarray:
        """Copy out and release up to ``max_records`` records (consumer
        side).

        With the default ``timeout=0`` the call is non-blocking and an
        empty ring returns an empty array; a positive timeout waits that
        long for at least one record before giving up.  ``peer_alive``
        is probed periodically during the wait and raises
        :class:`PeerDead` when the producer is gone (a worker uses this
        to notice its coordinator dying instead of spinning forever).
        The returned array owns its data — slots are reusable by the
        producer the moment this method returns.
        """
        wait = _WaitState()
        deadline = time.monotonic() + timeout
        while True:
            head = int(self._head[0])
            used = int(self._tail[0]) - head
            if used > 0:
                break
            if time.monotonic() >= deadline:
                return np.empty(0, dtype=self.dtype)
            self._wait_tick(wait, peer_alive, on_wait)
        take = used if max_records is None else min(used, int(max_records))
        start = head % self.capacity
        end = start + take
        out = np.empty(take, dtype=self.dtype)
        if end <= self.capacity:
            out[:] = self._slots[start:end]
        else:
            first = self.capacity - start
            out[:first] = self._slots[start:]
            out[first:] = self._slots[: take - first]
        # Release only after the copy-out completes.
        self._head[0] = head + take
        if self._observer is not None:
            self._observer.on_release(head, take, head + used)
        return out

    def pop_exact(
        self,
        n_records: int,
        timeout: float = 30.0,
        peer_alive: Optional[Callable[[], bool]] = None,
        on_wait: Optional[Callable[[], None]] = None,
    ) -> np.ndarray:
        """Copy out and release *exactly* ``n_records`` records,
        blocking until all of them have arrived (consumer side).

        The frame protocol is length-prefixed — the consumer reads a
        fixed-size header, then exactly the payload length it names —
        so the consumer must be able to wait for a known byte count
        even when it exceeds the momentary fill level (or the whole
        ring capacity: like :meth:`push`, oversized reads stream
        through in pieces, releasing slots as they drain so the
        producer can keep writing).

        Raises ``TimeoutError`` if no progress completes within
        ``timeout`` seconds, or :class:`PeerDead` when ``peer_alive``
        reports the producer gone.  Either error can leave a **partial
        read** behind (earlier pieces already consumed), which
        desynchronizes the frame stream — callers treat both as fatal
        and let the supervisor reset the ring.
        """
        n = int(n_records)
        if n < 0:
            raise ValueError(f"n_records must be >= 0: {n_records}")
        out = np.empty(n, dtype=self.dtype)
        filled = 0
        wait = _WaitState()
        deadline = time.monotonic() + timeout
        while filled < n:
            head = int(self._head[0])
            used = int(self._tail[0]) - head
            if used == 0:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"ring {self.name} empty for {timeout:.1f}s "
                        f"({filled}/{n} records read)"
                    )
                self._wait_tick(wait, peer_alive, on_wait)
                continue
            take = min(used, n - filled)
            start = head % self.capacity
            end = start + take
            if end <= self.capacity:
                out[filled : filled + take] = self._slots[start:end]
            else:
                first = self.capacity - start
                out[filled : filled + first] = self._slots[start:]
                out[filled + first : filled + take] = self._slots[
                    : take - first
                ]
            # Release only after the copy-out completes.
            self._head[0] = head + take
            if self._observer is not None:
                self._observer.on_release(head, take, head + used)
            filled += take
        return out

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind both cursors to zero (owner-side rebind path).

        Only safe once the consumer process is **dead** — the supervisor
        calls this before respawning a worker so the fresh process sees
        an empty ring and the checkpoint replay starts from a clean
        slate (discarding any partial write a failed :meth:`push` left
        behind).  Calling it with a live peer attached corrupts the SPSC
        protocol.
        """
        if not self._owner:
            raise RuntimeError(
                f"ring {self.name}: only the owning side may reset"
            )
        self._head[0] = 0
        self._tail[0] = 0
        if self._observer is not None:
            self._observer.on_reset(self._owner)

    def close(self) -> None:
        """Unmap this process's view (does not destroy the segment)."""
        # ndarray views pin the exported buffer; drop them first or
        # SharedMemory.close() raises BufferError.
        self._head = self._tail = self._slots = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only, after all views close)."""
        if self._owner:
            # A *forked* worker shares this process's resource tracker,
            # so its attach-time unregister (above) also dropped the
            # owner's registration; re-register first so the unregister
            # inside SharedMemory.unlink() is balanced and the tracker
            # doesn't log a KeyError.
            try:
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:
                pass
            self._shm.unlink()

    def __enter__(self) -> "SharedRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self._owner:
            self.unlink()


# ---------------------------------------------------------------------------
# batch-frame codec (the sharded detector's ring wire format)
# ---------------------------------------------------------------------------
#: Frame kinds.  DATA carries records with no cycle boundary (trailing
#: partial chunk, chaos flush); CYCLE carries a poll slice *and* the
#: cycle barrier folded into the header; EOF ends the stream (payload
#: always empty).
FRAME_DATA = 0
FRAME_CYCLE = 1
FRAME_EOF = 2
#: Control frame carrying an opaque byte blob instead of records —
#: the model-lifecycle hot-swap barrier: ``seq_base`` is repurposed as
#: the swap epoch, ``count`` is always 0, and the payload is the packed
#: panel blob.  Because it rides the same ordered SPSC byte stream as
#: the data frames, every consumer installs the new panel at exactly
#: the same CYCLE boundary the coordinator broadcast it at.
FRAME_SWAP = 3

#: ``"FRM1"`` little-endian — catches desynchronized reads immediately.
FRAME_MAGIC = 0x314D5246

#: Fixed 32-byte frame header.  ``count`` is the number of records in
#: the payload, ``seq_base`` the first record's global sequence number
#: (-1 when empty), ``payload_bytes`` the exact byte length that
#: follows the header on the ring.
FRAME_HEADER_DTYPE = np.dtype([
    ("magic", "<u4"),
    ("kind", "<u4"),
    ("count", "<i8"),
    ("seq_base", "<i8"),
    ("payload_bytes", "<i8"),
])
FRAME_HEADER_BYTES = FRAME_HEADER_DTYPE.itemsize  # 32

_SEQ_DTYPE = np.dtype("<i8")


def _view_bytes(buf: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Reinterpret a contiguous uint8 slice as ``dtype`` records.

    Zero-copy (``ndarray.view``) in the common case; falls back to one
    copy when the view is rejected (non-contiguous slice or a layout
    NumPy refuses to reinterpret in place).
    """
    try:
        return buf.view(dtype)
    except ValueError:
        return np.frombuffer(buf.tobytes(), dtype=dtype)


def pack_frame(kind: int, seqs: np.ndarray, records: np.ndarray) -> np.ndarray:
    """Pack one batch frame into a contiguous uint8 array.

    Wire layout (all little-endian, no padding)::

        [ header: FRAME_HEADER_DTYPE (32 B)
        | seqs:    count * int64
        | records: count * records.dtype ]

    The seq block precedes the record block so the record block's
    offset stays 8-byte aligned for any record itemsize.  ``records``
    must be the *delivered* record dtype — the consumer reconstructs it
    from the same dtype by exact layout, so producer and consumer must
    agree on ``records.dtype`` out of band (the worker spec carries
    it).
    """
    records = np.ascontiguousarray(records)
    n = int(records.shape[0])
    seqs = np.ascontiguousarray(seqs, dtype=_SEQ_DTYPE)
    if int(seqs.shape[0]) != n:
        raise ValueError(
            f"seqs/records length mismatch: {seqs.shape[0]} != {n}"
        )
    payload_bytes = n * _SEQ_DTYPE.itemsize + n * records.dtype.itemsize
    frame = np.empty(FRAME_HEADER_BYTES + payload_bytes, dtype=np.uint8)
    header = np.empty(1, dtype=FRAME_HEADER_DTYPE)
    header["magic"] = FRAME_MAGIC
    header["kind"] = int(kind)
    header["count"] = n
    header["seq_base"] = int(seqs[0]) if n else -1
    header["payload_bytes"] = payload_bytes
    # Writes go through uint8 views of the *sources* (always legal for
    # contiguous arrays) — a read-side fallback copy would silently
    # discard them.
    frame[:FRAME_HEADER_BYTES] = header.view(np.uint8)
    if n:
        seq_end = FRAME_HEADER_BYTES + n * _SEQ_DTYPE.itemsize
        frame[FRAME_HEADER_BYTES:seq_end] = seqs.view(np.uint8)
        frame[seq_end:] = records.view(np.uint8)
    return frame


def pack_blob_frame(kind: int, tag: int, blob: bytes) -> np.ndarray:
    """Pack a control frame whose payload is an opaque byte blob.

    ``tag`` travels in the header's ``seq_base`` field (for
    :data:`FRAME_SWAP` it is the swap epoch); ``count`` is 0, so the
    generic seq/record unpack never touches the payload — consumers
    branch on ``kind`` first and interpret the blob themselves.
    """
    payload = np.frombuffer(blob, dtype=np.uint8)
    frame = np.empty(FRAME_HEADER_BYTES + payload.shape[0], dtype=np.uint8)
    header = np.empty(1, dtype=FRAME_HEADER_DTYPE)
    header["magic"] = FRAME_MAGIC
    header["kind"] = int(kind)
    header["count"] = 0
    header["seq_base"] = int(tag)
    header["payload_bytes"] = payload.shape[0]
    frame[:FRAME_HEADER_BYTES] = header.view(np.uint8)
    frame[FRAME_HEADER_BYTES:] = payload
    return frame


def read_frame_header(header_bytes: np.ndarray) -> Tuple[int, int, int, int]:
    """Validate and decode a 32-byte header popped off the ring.

    Returns ``(kind, count, seq_base, payload_bytes)``.  Raises
    :class:`FrameError` on bad magic, unknown kind, or an inconsistent
    count/payload pair — any of which means the consumer lost frame
    sync and must not keep reading.
    """
    if header_bytes.shape[0] != FRAME_HEADER_BYTES:
        raise FrameError(
            f"frame header must be {FRAME_HEADER_BYTES} bytes, "
            f"got {header_bytes.shape[0]}"
        )
    header = _view_bytes(header_bytes, FRAME_HEADER_DTYPE)
    if int(header["magic"][0]) != FRAME_MAGIC:
        raise FrameError(
            f"bad frame magic 0x{int(header['magic'][0]):08x} "
            "(stream desynchronized)"
        )
    kind = int(header["kind"][0])
    if kind not in (FRAME_DATA, FRAME_CYCLE, FRAME_EOF, FRAME_SWAP):
        raise FrameError(f"unknown frame kind {kind}")
    count = int(header["count"][0])
    payload_bytes = int(header["payload_bytes"][0])
    if count < 0 or payload_bytes < count * _SEQ_DTYPE.itemsize:
        raise FrameError(
            f"inconsistent frame header: count={count} "
            f"payload_bytes={payload_bytes}"
        )
    return kind, count, int(header["seq_base"][0]), payload_bytes


def unpack_frame_payload(
    payload: np.ndarray, count: int, record_dtype: np.dtype
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a popped payload into ``(seqs, records)``.

    ALIASING CONTRACT: both returned arrays are zero-copy *views* of
    ``payload`` whenever NumPy permits the reinterpretation (the
    payload came out of :meth:`SharedRing.pop_exact`, which returns an
    owning copy, so the views alias pipeline-private memory — never the
    live ring slab; the producer can overwrite its slots immediately).
    Callers may keep the views only as long as they keep ``payload``
    alive, which NumPy's base-chaining guarantees automatically.  A
    layout NumPy refuses to view (never the case for the packed wire
    format, which is byte-exact by construction) falls back to one
    field-preserving copy.
    """
    record_dtype = np.dtype(record_dtype)
    n = int(count)
    seq_bytes = n * _SEQ_DTYPE.itemsize
    expect = seq_bytes + n * record_dtype.itemsize
    if int(payload.shape[0]) != expect:
        raise FrameError(
            f"payload is {payload.shape[0]} bytes, expected {expect} "
            f"for {n} records of {record_dtype.itemsize} bytes"
        )
    seqs = _view_bytes(payload[:seq_bytes], _SEQ_DTYPE)
    records = _view_bytes(payload[seq_bytes:], record_dtype)
    return seqs, records
