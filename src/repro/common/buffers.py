"""Growable structured-array record buffers.

Telemetry collectors ingest one record per packet.  Appending dicts to a
Python list and converting at the end costs ~100 bytes of object overhead
per field per record; at AmLight rates (the paper quotes 80 M packets and
30 GB of INT data per minute) that is untenable.  Instead we append into a
preallocated NumPy structured array that doubles capacity when full —
amortized O(1) appends, contiguous storage, and a zero-copy view on
export.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GrowableRecordBuffer"]


class GrowableRecordBuffer:
    """Amortized-O(1) append buffer over a NumPy structured dtype.

    Parameters
    ----------
    dtype : numpy.dtype
        Structured dtype of one record.
    initial_capacity : int
        Starting allocation in records.

    Examples
    --------
    >>> import numpy as np
    >>> buf = GrowableRecordBuffer(np.dtype([("a", "i8"), ("b", "f8")]))
    >>> buf.append(a=1, b=2.5)
    >>> buf.view()["a"].tolist()
    [1]
    """

    def __init__(self, dtype: np.dtype, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1: {initial_capacity}")
        self.dtype = np.dtype(dtype)
        self._data = np.zeros(initial_capacity, dtype=self.dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    def _grow(self, minimum: int) -> None:
        new_cap = max(self.capacity * 2, minimum)
        new = np.zeros(new_cap, dtype=self.dtype)
        new[: self._size] = self._data[: self._size]
        self._data = new

    def append(self, **fields) -> None:
        """Append one record given as keyword arguments (one per field)."""
        if self._size >= self.capacity:
            self._grow(self._size + 1)
        row = self._data[self._size]
        for name, value in fields.items():
            row[name] = value
        self._size += 1

    def append_row(self, values: tuple) -> None:
        """Append one record given as a tuple in dtype field order.

        Faster than :meth:`append` in hot paths — no keyword dict is
        built and NumPy assigns the whole row at once.
        """
        if self._size >= self.capacity:
            self._grow(self._size + 1)
        self._data[self._size] = values
        self._size += 1

    def extend(self, records: np.ndarray) -> None:
        """Append a block of records of the same dtype."""
        records = np.asarray(records, dtype=self.dtype)
        need = self._size + records.shape[0]
        if need > self.capacity:
            self._grow(need)
        self._data[self._size : need] = records
        self._size = need

    def view(self) -> np.ndarray:
        """Zero-copy view of the filled region.

        The view aliases internal storage: it is invalidated by the next
        append that triggers a reallocation.  Call :meth:`compact` for an
        owning copy.
        """
        return self._data[: self._size]

    def compact(self) -> np.ndarray:
        """Owning copy of the filled region (safe to keep)."""
        return self._data[: self._size].copy()

    def clear(self) -> None:
        """Reset to empty without releasing storage."""
        self._size = 0
