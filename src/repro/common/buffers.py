"""Growable structured-array record buffers and shared-memory rings.

Telemetry collectors ingest one record per packet.  Appending dicts to a
Python list and converting at the end costs ~100 bytes of object overhead
per field per record; at AmLight rates (the paper quotes 80 M packets and
30 GB of INT data per minute) that is untenable.  Instead we append into a
preallocated NumPy structured array that doubles capacity when full —
amortized O(1) appends, contiguous storage, and a zero-copy view on
export.

:class:`SharedRing` is the cross-process sibling: a fixed-capacity
single-producer/single-consumer ring over POSIX shared memory.  The
sharded detector uses one ring per worker to fan telemetry slices out of
the coordinator — records move as raw structured-array bytes, so the hot
path never pickles.
"""

from __future__ import annotations

import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Optional

import numpy as np

__all__ = ["GrowableRecordBuffer", "PeerDead", "SharedRing"]


class PeerDead(RuntimeError):
    """The process on the other side of a :class:`SharedRing` is gone.

    Raised by :meth:`SharedRing.push` / :meth:`SharedRing.pop` when a
    ``peer_alive`` probe reports the peer dead while the call is blocked
    waiting on it.  Distinct from ``TimeoutError`` (peer alive but slow)
    so supervisors can respond with a respawn instead of a retry.
    """


class GrowableRecordBuffer:
    """Amortized-O(1) append buffer over a NumPy structured dtype.

    Parameters
    ----------
    dtype : numpy.dtype
        Structured dtype of one record.
    initial_capacity : int
        Starting allocation in records.

    Examples
    --------
    >>> import numpy as np
    >>> buf = GrowableRecordBuffer(np.dtype([("a", "i8"), ("b", "f8")]))
    >>> buf.append(a=1, b=2.5)
    >>> buf.view()["a"].tolist()
    [1]
    """

    def __init__(self, dtype: np.dtype, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1: {initial_capacity}")
        self.dtype = np.dtype(dtype)
        self._data = np.zeros(initial_capacity, dtype=self.dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    def _grow(self, minimum: int) -> None:
        new_cap = max(self.capacity * 2, minimum)
        new = np.zeros(new_cap, dtype=self.dtype)
        new[: self._size] = self._data[: self._size]
        self._data = new

    def append(self, **fields: object) -> None:
        """Append one record given as keyword arguments (one per field)."""
        if self._size >= self.capacity:
            self._grow(self._size + 1)
        row = self._data[self._size]
        for name, value in fields.items():
            row[name] = value
        self._size += 1

    def append_row(self, values: tuple) -> None:
        """Append one record given as a tuple in dtype field order.

        Faster than :meth:`append` in hot paths — no keyword dict is
        built and NumPy assigns the whole row at once.
        """
        if self._size >= self.capacity:
            self._grow(self._size + 1)
        self._data[self._size] = values
        self._size += 1

    def extend(self, records: np.ndarray) -> None:
        """Append a block of records of the same dtype."""
        records = np.asarray(records, dtype=self.dtype)
        need = self._size + records.shape[0]
        if need > self.capacity:
            self._grow(need)
        self._data[self._size : need] = records
        self._size = need

    def view(self) -> np.ndarray:
        """Zero-copy view of the filled region.

        The view aliases internal storage: it is invalidated by the next
        append that triggers a reallocation.  Call :meth:`compact` for an
        owning copy.
        """
        return self._data[: self._size]

    def compact(self) -> np.ndarray:
        """Owning copy of the filled region (safe to keep)."""
        return self._data[: self._size].copy()

    def clear(self) -> None:
        """Reset to empty without releasing storage."""
        self._size = 0


class SharedRing:
    """Fixed-capacity SPSC ring buffer over POSIX shared memory.

    One producer process pushes blocks of structured records, one
    consumer pops them; records cross the process boundary as raw bytes
    (no pickling).  The layout is::

        [ head: int64 @ 0 | tail: int64 @ 64 | slots: capacity * dtype ]

    ``head`` (consumer cursor) and ``tail`` (producer cursor) are
    *monotonic* counters — ``tail - head`` is the fill level and
    ``counter % capacity`` the slot index — kept 64 bytes apart so the
    two sides never share a cache line.  Each cursor is written by
    exactly one process and only after its data transfer completes,
    which on CPython (aligned 8-byte stores, no compiler reordering
    across the interpreter) is sufficient ordering for an SPSC
    protocol.

    A full ring applies **backpressure**: :meth:`push` spins with short
    sleeps until space frees up, raising ``TimeoutError`` after
    ``timeout`` seconds so a dead consumer cannot hang the producer
    forever.  Both waits are **peer-liveness aware**: pass
    ``peer_alive`` (e.g. ``proc.is_alive``) and a blocked call probes it
    periodically, raising :class:`PeerDead` the moment the other side is
    gone instead of burning the whole timeout on a corpse.  ``on_wait``
    is probed at the same cadence so a supervising producer can keep
    draining control channels (and detect hung peers) while blocked.

    Parameters
    ----------
    dtype : numpy.dtype
        Structured dtype of one slot.
    capacity : int
        Number of slots (fixed; the ring never grows).
    name : str, optional
        Existing segment to attach to (use :meth:`attach`); ``None``
        creates a new segment.
    """

    HEADER_BYTES = 128
    #: Sleep between occupancy re-checks while waiting (spin would peg
    #: a core; 50 µs keeps wakeup latency far below a cycle's work).
    WAIT_SLEEP_S = 50e-6
    #: Occupancy re-checks between ``peer_alive``/``on_wait`` probes —
    #: liveness probes cost a syscall, so they run every ~3 ms of wait,
    #: not every 50 µs.
    PROBE_EVERY = 64

    def __init__(
        self,
        dtype: np.dtype,
        capacity: int,
        name: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.dtype = np.dtype(dtype)
        self.capacity = int(capacity)
        nbytes = self.HEADER_BYTES + self.capacity * self.dtype.itemsize
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            # CPython < 3.13 registers attached segments with the
            # resource tracker as if this process owned them, so a
            # worker's exit would unlink a ring the coordinator still
            # reads.  Undo the spurious registration.
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass
        buf = self._shm.buf
        self._head: np.ndarray = np.ndarray(
            (1,), dtype=np.int64, buffer=buf, offset=0
        )
        self._tail: np.ndarray = np.ndarray(
            (1,), dtype=np.int64, buffer=buf, offset=64
        )
        self._slots: np.ndarray = np.ndarray(
            (self.capacity,), dtype=self.dtype, buffer=buf,
            offset=self.HEADER_BYTES,
        )
        if self._owner:
            self._head[0] = 0
            self._tail[0] = 0

    @classmethod
    def attach(cls, name: str, dtype: np.dtype, capacity: int) -> "SharedRing":
        """Map an existing ring created by another process."""
        return cls(dtype, capacity, name=name)

    @property
    def name(self) -> str:
        """Segment name; pass to :meth:`attach` in the other process."""
        return self._shm.name

    def __len__(self) -> int:
        return int(self._tail[0] - self._head[0])

    @property
    def free(self) -> int:
        return self.capacity - len(self)

    # ------------------------------------------------------------------
    def _wait_tick(
        self,
        ticks: int,
        peer_alive: Optional[Callable[[], bool]],
        on_wait: Optional[Callable[[], None]],
    ) -> int:
        """One blocked-wait iteration: sleep, and every
        :data:`PROBE_EVERY` ticks probe liveness and the wait hook.

        Raises :class:`PeerDead` when ``peer_alive`` reports the other
        side gone.  ``on_wait`` may itself raise to abort the wait (a
        supervisor uses that to declare an alive-but-hung peer dead).
        """
        if ticks % self.PROBE_EVERY == 0:
            if peer_alive is not None and not peer_alive():
                raise PeerDead(
                    f"ring {self.name}: peer process died while this side "
                    "was blocked waiting on it"
                )
            if on_wait is not None:
                on_wait()
        time.sleep(self.WAIT_SLEEP_S)
        return ticks + 1

    def push(
        self,
        records: np.ndarray,
        timeout: float = 30.0,
        peer_alive: Optional[Callable[[], bool]] = None,
        on_wait: Optional[Callable[[], None]] = None,
    ) -> int:
        """Copy a block of records into the ring (producer side).

        Blocks while the ring is full — that backpressure is what bounds
        coordinator memory when a worker falls behind.  Blocks larger
        than the whole ring are streamed through in capacity-sized
        pieces.  Returns the record count; raises ``TimeoutError`` if
        the consumer frees no space for ``timeout`` seconds, or
        :class:`PeerDead` as soon as ``peer_alive`` (probed periodically
        during the wait) reports the consumer process gone.

        Either error can leave a **partial write** behind (earlier
        pieces of a large block already published).  Callers that
        recover by respawning the consumer must :meth:`reset` the ring
        and replay from a checkpoint rather than re-pushing the same
        block.
        """
        records = np.ascontiguousarray(records, dtype=self.dtype)
        n = records.shape[0]
        written = 0
        ticks = 0
        deadline = time.monotonic() + timeout
        while written < n:
            tail = int(self._tail[0])
            space = self.capacity - (tail - int(self._head[0]))
            if space == 0:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"ring {self.name} full for {timeout:.1f}s "
                        f"({written}/{n} records written)"
                    )
                ticks = self._wait_tick(ticks, peer_alive, on_wait)
                continue
            take = min(space, n - written)
            start = tail % self.capacity
            end = start + take
            if end <= self.capacity:
                self._slots[start:end] = records[written : written + take]
            else:
                first = self.capacity - start
                self._slots[start:] = records[written : written + first]
                self._slots[: take - first] = records[
                    written + first : written + take
                ]
            # Publish only after the slot data is in place.
            self._tail[0] = tail + take
            written += take
        return written

    def pop(
        self,
        max_records: Optional[int] = None,
        timeout: float = 0.0,
        peer_alive: Optional[Callable[[], bool]] = None,
        on_wait: Optional[Callable[[], None]] = None,
    ) -> np.ndarray:
        """Copy out and release up to ``max_records`` records (consumer
        side).

        With the default ``timeout=0`` the call is non-blocking and an
        empty ring returns an empty array; a positive timeout waits that
        long for at least one record before giving up.  ``peer_alive``
        is probed periodically during the wait and raises
        :class:`PeerDead` when the producer is gone (a worker uses this
        to notice its coordinator dying instead of spinning forever).
        The returned array owns its data — slots are reusable by the
        producer the moment this method returns.
        """
        ticks = 0
        deadline = time.monotonic() + timeout
        while True:
            head = int(self._head[0])
            used = int(self._tail[0]) - head
            if used > 0:
                break
            if time.monotonic() >= deadline:
                return np.empty(0, dtype=self.dtype)
            ticks = self._wait_tick(ticks, peer_alive, on_wait)
        take = used if max_records is None else min(used, int(max_records))
        start = head % self.capacity
        end = start + take
        out = np.empty(take, dtype=self.dtype)
        if end <= self.capacity:
            out[:] = self._slots[start:end]
        else:
            first = self.capacity - start
            out[:first] = self._slots[start:]
            out[first:] = self._slots[: take - first]
        # Release only after the copy-out completes.
        self._head[0] = head + take
        return out

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind both cursors to zero (owner-side rebind path).

        Only safe once the consumer process is **dead** — the supervisor
        calls this before respawning a worker so the fresh process sees
        an empty ring and the checkpoint replay starts from a clean
        slate (discarding any partial write a failed :meth:`push` left
        behind).  Calling it with a live peer attached corrupts the SPSC
        protocol.
        """
        if not self._owner:
            raise RuntimeError(
                f"ring {self.name}: only the owning side may reset"
            )
        self._head[0] = 0
        self._tail[0] = 0

    def close(self) -> None:
        """Unmap this process's view (does not destroy the segment)."""
        # ndarray views pin the exported buffer; drop them first or
        # SharedMemory.close() raises BufferError.
        self._head = self._tail = self._slots = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only, after all views close)."""
        if self._owner:
            # A *forked* worker shares this process's resource tracker,
            # so its attach-time unregister (above) also dropped the
            # owner's registration; re-register first so the unregister
            # inside SharedMemory.unlink() is balanced and the tracker
            # doesn't log a KeyError.
            try:
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:
                pass
            self._shm.unlink()

    def __enter__(self) -> "SharedRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self._owner:
            self.unlink()
