"""Sketch-gated flow admission.

:class:`SketchGate` decides, per telemetry poll slice, which flows earn
exact :class:`~repro.features.flow_table.FlowRecord` state and which
stay summarized.  The contract:

* **Every** packet updates the count-min sketch (O(1) memory, O(depth)
  work) — nothing is dropped from the volumetric signal.
* A flow is **promoted** once its sketch estimate crosses the
  configured heavy-hitter threshold (``promote_packets`` and/or
  ``promote_bytes``); from then on it is *resident* and keeps exact
  per-flow state for as long as the FlowTable retains it.
* Non-promoted traffic folds into :class:`ResidualAggregator` —
  per-source-prefix packet/byte totals — so the volume the exact table
  never sees remains observable and feature windows stay well-defined.

Admission is defined at **slice granularity**: the sketch folds the
whole slice first, then the admit mask is computed from post-slice
estimates.  That makes the decision a pure function of (sketch state at
the slice boundary, the slice's per-flow aggregates, current
residency) — independent of record order within the slice and, via the
virtual-partition construction (see :mod:`repro.sketch.cms`),
independent of how many shard workers split the slice.

Windows: :meth:`SketchGate.end_window` ticks once per *full* poll
slice, immediately before the central-server cycle, in every execution
mode (batched, scalar, live, sharded worker).  Every ``decay_every``
windows the counters halve; ``decay_every=0`` disables aging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .cms import CountMinSketch

__all__ = ["SketchConfig", "ResidualAggregator", "SketchGate"]


@dataclass(frozen=True)
class SketchConfig:
    """Picklable recipe for a :class:`SketchGate`.

    Rides ``AutomatedDDoSDetector._worker_config`` into shard workers,
    so equality of config ⇒ bit-identical gate behaviour everywhere.
    """

    #: Cells per sketch row per partition.
    width: int = 1024
    #: Independent hash rows.
    depth: int = 4
    #: Virtual sub-sketches; every shard count used with this gate must
    #: divide it (enforced by ``run_sharded``).
    partitions: int = 64
    #: Hash-family seed.
    seed: int = 2024
    #: Update discipline: "cu" (conservative update) or "cms".
    kind: str = "cu"
    #: Promote when the packet estimate reaches this (0 disables).
    promote_packets: int = 8
    #: Promote when the byte estimate reaches this (0 disables).
    promote_bytes: int = 0
    #: Halve counters every N windows (0 = never decay).
    decay_every: int = 0
    #: Source-prefix length for residual aggregation.
    prefix_bits: int = 16

    def __post_init__(self) -> None:
        if self.promote_packets <= 0 and self.promote_bytes <= 0:
            raise ValueError(
                "at least one of promote_packets/promote_bytes must be > 0"
            )
        if not 0 <= self.prefix_bits <= 32:
            raise ValueError(f"prefix_bits must be in [0, 32]: {self.prefix_bits}")
        if self.decay_every < 0:
            raise ValueError(f"decay_every must be >= 0: {self.decay_every}")

    def build(self) -> "SketchGate":
        return SketchGate(self)


class ResidualAggregator:
    """Per-source-prefix totals for traffic the exact table never sees.

    Keyed by ``src_ip >> (32 - prefix_bits)``; a bounded dict in
    practice (at /16 there are at most 65536 prefixes).  Purely
    additive, so worker-local residuals merge by summation.
    """

    def __init__(self, prefix_bits: int = 16) -> None:
        self.prefix_bits = int(prefix_bits)
        self._shift = 32 - self.prefix_bits
        self.packets: Dict[int, int] = {}
        self.bytes: Dict[int, int] = {}
        self.total_packets = 0
        self.total_bytes = 0

    def add_groups(
        self, src_ip: np.ndarray, packets: np.ndarray, bytes_: np.ndarray
    ) -> None:
        """Fold per-flow residual aggregates (vectorized reduce first,
        then one dict update per distinct prefix)."""
        if src_ip.shape[0] == 0:
            return
        prefixes = (src_ip.astype(np.int64) >> self._shift) if self._shift else (
            src_ip.astype(np.int64)
        )
        uniq, inv = np.unique(prefixes, return_inverse=True)
        pkt_sum = np.bincount(inv, weights=packets.astype(np.float64)).astype(
            np.int64
        )
        byt_sum = np.bincount(inv, weights=bytes_.astype(np.float64)).astype(
            np.int64
        )
        for p, pk, by in zip(uniq.tolist(), pkt_sum.tolist(), byt_sum.tolist()):
            self.packets[p] = self.packets.get(p, 0) + pk
            self.bytes[p] = self.bytes.get(p, 0) + by
        self.total_packets += int(pkt_sum.sum())
        self.total_bytes += int(byt_sum.sum())

    def add_one(self, src_ip: int, packets: int, bytes_: int) -> None:
        p = (src_ip >> self._shift) if self._shift else src_ip
        self.packets[p] = self.packets.get(p, 0) + packets
        self.bytes[p] = self.bytes.get(p, 0) + bytes_
        self.total_packets += packets
        self.total_bytes += bytes_

    def top_prefixes(self, k: int = 8) -> Tuple[Tuple[str, int, int], ...]:
        """Heaviest residual prefixes as ``(cidr, packets, bytes)``."""
        ranked = sorted(
            self.packets, key=lambda p: (-self.packets[p], p)
        )[: max(0, k)]
        out = []
        for p in ranked:
            ip = p << self._shift
            cidr = (
                f"{(ip >> 24) & 0xFF}.{(ip >> 16) & 0xFF}."
                f"{(ip >> 8) & 0xFF}.{ip & 0xFF}/{self.prefix_bits}"
            )
            out.append((cidr, self.packets[p], self.bytes.get(p, 0)))
        return tuple(out)

    def state_snapshot(self) -> Dict[str, object]:
        return {
            "packets": dict(self.packets),
            "bytes": dict(self.bytes),
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
        }

    def state_restore(self, state: Dict[str, object]) -> None:
        self.packets = dict(state["packets"])  # type: ignore[arg-type]
        self.bytes = dict(state["bytes"])  # type: ignore[arg-type]
        self.total_packets = int(state["total_packets"])  # type: ignore[call-overload]
        self.total_bytes = int(state["total_bytes"])  # type: ignore[call-overload]


class SketchGate:
    """Admission gate: count-min front end + promotion + residuals."""

    def __init__(self, config: Optional[SketchConfig] = None) -> None:
        self.config = config if config is not None else SketchConfig()
        self.sketch = CountMinSketch(
            width=self.config.width,
            depth=self.config.depth,
            partitions=self.config.partitions,
            seed=self.config.seed,
            kind=self.config.kind,
        )
        self.residual = ResidualAggregator(self.config.prefix_bits)
        self.promotions = 0
        self.rejected_packets = 0
        self.windows = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _promoted(
        self, pkt_est: np.ndarray, byt_est: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        mask = np.zeros(pkt_est.shape[0], dtype=bool)
        if cfg.promote_packets > 0:
            mask |= pkt_est >= cfg.promote_packets
        if cfg.promote_bytes > 0:
            mask |= byt_est >= cfg.promote_bytes
        return mask

    def admit_slice(
        self,
        key_hash: np.ndarray,
        packets: np.ndarray,
        bytes_: np.ndarray,
        resident: np.ndarray,
        src_ip: np.ndarray,
    ) -> np.ndarray:
        """Fold one slice's per-flow aggregates and return the admit
        mask (True ⇒ exact FlowRecord updates this slice).

        ``resident`` marks flows that already hold FlowTable state —
        they are always admitted, so exact windows never lose packets
        mid-flow.  Rejected flows' volume folds into the residual
        aggregator keyed by ``src_ip`` prefix.
        """
        pkt_est, byt_est = self.sketch.update_groups(key_hash, packets, bytes_)
        admit = resident | self._promoted(pkt_est, byt_est)
        fresh = admit & ~resident
        self.promotions += int(np.count_nonzero(fresh))
        rej = ~admit
        if rej.any():
            self.rejected_packets += int(packets[rej].sum())
            self.residual.add_groups(src_ip[rej], packets[rej], bytes_[rej])
        return admit

    def admit_one(
        self, key_hash: int, length: int, resident: bool, src_ip: int
    ) -> bool:
        """Scalar admission (singleton-slice semantics).

        Used by the scalar ingest path; because each packet is its own
        slice, scalar gating is *not* record-for-record identical to
        batched gating — see DESIGN.md §15.
        """
        one = np.array([key_hash], dtype=np.uint64)
        pkt_est, byt_est = self.sketch.update_groups(
            one,
            np.array([1], dtype=np.int64),
            np.array([length], dtype=np.int64),
        )
        if resident or bool(self._promoted(pkt_est, byt_est)[0]):
            if not resident:
                self.promotions += 1
            return True
        self.rejected_packets += 1
        self.residual.add_one(int(src_ip), 1, int(length))
        return False

    # ------------------------------------------------------------------
    # windows + queries
    # ------------------------------------------------------------------
    def end_window(self) -> None:
        """Tick one poll-slice window; decay on the configured cadence."""
        self.windows += 1
        if self.config.decay_every > 0 and (
            self.windows % self.config.decay_every == 0
        ):
            self.sketch.decay()

    def estimate_key(self, key_hash: int) -> Tuple[int, int]:
        """Point-query ``(packets, bytes)`` estimate for one flow."""
        return self.sketch.estimate(key_hash)

    # ------------------------------------------------------------------
    # observability + checkpointing
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "kind": self.sketch.kind,
            "width": self.sketch.width,
            "depth": self.sketch.depth,
            "partitions": self.sketch.partitions,
            "memory_bytes": self.sketch.memory_bytes,
            "updates": self.sketch.updates,
            "decays": self.sketch.decays,
            "windows": self.windows,
            "promotions": self.promotions,
            "rejected_packets": self.rejected_packets,
            "residual_packets": self.residual.total_packets,
            "residual_bytes": self.residual.total_bytes,
            "residual_prefixes": len(self.residual.packets),
        }

    def state_snapshot(self) -> Dict[str, object]:
        """Bit-exact picklable state for RPRCKPT1 checkpoints."""
        return {
            "sketch": self.sketch.state_snapshot(),
            "residual": self.residual.state_snapshot(),
            "promotions": self.promotions,
            "rejected_packets": self.rejected_packets,
            "windows": self.windows,
        }

    def state_restore(self, state: Dict[str, object]) -> None:
        self.sketch.state_restore(state["sketch"])  # type: ignore[arg-type]
        self.residual.state_restore(state["residual"])  # type: ignore[arg-type]
        self.promotions = int(state["promotions"])  # type: ignore[call-overload]
        self.rejected_packets = int(state["rejected_packets"])  # type: ignore[call-overload]
        self.windows = int(state["windows"])  # type: ignore[call-overload]
