"""Seeded hash family for the sketch layer.

Everything here is a pure function of its inputs and an explicit integer
seed — never stdlib ``hash()``, whose per-process randomization would
make sketch cell placement (and therefore every admission decision)
unreproducible.  The scalar and vectorized variants are bit-for-bit
identical: both run the splitmix64 finalizer over the same 64-bit
wraparound arithmetic, so a single key probed by the observability path
lands in exactly the cells the batched hot path updated.

Row seeds are drawn from the splitmix64 *sequence* (gamma increments of
the golden-ratio constant, each finalized), the construction from the
original splitmix64 PRNG — ``depth`` independent-enough hash functions
from one user seed, with no RNG object to carry around.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64", "mix64_arrays", "row_seeds", "cell_columns", "cell_column"]

_MASK64 = (1 << 64) - 1
#: splitmix64 gamma (golden-ratio) increment.
_GAMMA = 0x9E3779B97F4A7C15
_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """splitmix64 finalizer (scalar, 64-bit wraparound)."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * _M1) & _MASK64
    x = ((x ^ (x >> 27)) * _M2) & _MASK64
    return x ^ (x >> 31)


def mix64_arrays(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a ``uint64`` array; bit-identical to
    :func:`mix64` per element (numpy uint64 arithmetic wraps mod 2^64)."""
    x = x.astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_M1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_M2)
    return x ^ (x >> np.uint64(31))


def row_seeds(seed: int, depth: int) -> np.ndarray:
    """``depth`` per-row hash seeds derived from one sketch seed.

    The splitmix64 stream: state walks by gamma, each output is the
    finalized state.  Deterministic in ``seed`` alone.
    """
    out = np.empty(depth, dtype=np.uint64)
    state = seed & _MASK64
    for r in range(depth):
        state = (state + _GAMMA) & _MASK64
        out[r] = mix64(state)
    return out


def cell_columns(
    key_hash: np.ndarray, row_seed: int, width: int
) -> np.ndarray:
    """Column index of every key in one sketch row (vectorized).

    ``key_hash`` is the canonical-key splitmix64 value
    (:func:`repro.features.keys.key_hash_arrays` upstream — this module
    stays below the features layer and never sees raw five-tuples).
    """
    h = mix64_arrays(key_hash.astype(np.uint64) ^ np.uint64(row_seed))
    return (h % np.uint64(width)).astype(np.int64)


def cell_column(key_hash: int, row_seed: int, width: int) -> int:
    """Scalar :func:`cell_columns`; bit-identical by construction."""
    return mix64((key_hash & _MASK64) ^ (row_seed & _MASK64)) % width
