"""Partitioned count-min sketch with packet and byte counters.

The sketch is the O(1)-memory summary in front of the exact
:class:`~repro.features.flow_table.FlowTable`: every delivered packet
lands in ``depth`` counter cells selected by a seeded hash family
(:mod:`repro.sketch.hashing`), and a flow's *estimate* — the minimum
over its cells — never undercounts it.  Two update disciplines:

* ``"cms"`` — classic count-min: every cell of the key gets the full
  increment (``np.add.at``);
* ``"cu"``  — *parallel* conservative update, the batched form of
  Estan/Varghese CU: per slice, each key's target is its pre-slice
  estimate plus its slice increment, and cells take the **max** of the
  targets hashed onto them (``np.maximum.at``).  Tighter estimates than
  plain CMS, and — unlike sequential CU — order-independent within a
  slice, because ``max`` over precomputed targets commutes.

Both disciplines fold a telemetry slice with *commutative* scatter
operations over state frozen at the slice boundary, which is the
property the sharded runtime leans on: a worker folding only its
partition of a slice produces the same counters as the unified fold
restricted to those partitions.

Virtual partitions
------------------
Counters are segmented into ``partitions`` independent sub-sketches; a
key's cells live entirely inside partition ``key_hash % partitions``.
Because the shard assignment is ``key_hash % n_shards`` over the *same*
splitmix64 value (:func:`repro.features.keys.shard_of_key`), any
``n_shards`` dividing ``partitions`` maps every partition wholly onto
one worker — two flows that could ever share a cell always co-locate,
so per-worker sketches agree bit-for-bit with the single-process
sketch and admission decisions are independent of the worker count.

Per-window decay halves every counter (arithmetic shift), aging out
heavy hitters that went quiet; it runs at explicit window boundaries
(:meth:`CountMinSketch.decay`) so all execution modes tick it on the
same cadence.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .hashing import cell_column, cell_columns, row_seeds

__all__ = ["CountMinSketch", "UPDATE_KINDS"]

#: Supported update disciplines.
UPDATE_KINDS = ("cms", "cu")


class CountMinSketch:
    """Seeded, partitioned count-min sketch (packets + bytes).

    Parameters
    ----------
    width : int
        Cells per row *per partition*.
    depth : int
        Hash rows (independent seeded hash functions).
    partitions : int
        Virtual sub-sketches; see the module docstring.  Must be a
        multiple of every worker count the sharded runtime will use for
        admission decisions to be worker-count-independent.
    seed : int
        Root seed of the hash family.
    kind : {"cu", "cms"}
        Update discipline.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        partitions: int = 64,
        seed: int = 2024,
        kind: str = "cu",
    ) -> None:
        if width < 1 or depth < 1 or partitions < 1:
            raise ValueError(
                f"width/depth/partitions must be >= 1: "
                f"{width}/{depth}/{partitions}"
            )
        if kind not in UPDATE_KINDS:
            raise ValueError(f"unknown update kind {kind!r}; one of {UPDATE_KINDS}")
        self.width = int(width)
        self.depth = int(depth)
        self.partitions = int(partitions)
        self.seed = int(seed)
        self.kind = kind
        self._row_seeds = row_seeds(self.seed, self.depth)
        cells = self.partitions * self.depth * self.width
        # int64 everywhere: exact integer arithmetic, arithmetic-shift
        # decay, and no silent wraparound at realistic volumes.
        self.packets = np.zeros(cells, dtype=np.int64)
        self.bytes = np.zeros(cells, dtype=np.int64)
        self.updates = 0
        self.decays = 0

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _flat_rows(self, key_hash: np.ndarray) -> np.ndarray:
        """(depth, n) flat cell indices for a batch of key hashes."""
        part = (key_hash % np.uint64(self.partitions)).astype(np.int64)
        base = part * (self.depth * self.width)
        idx = np.empty((self.depth, key_hash.shape[0]), dtype=np.int64)
        for r in range(self.depth):
            cols = cell_columns(key_hash, int(self._row_seeds[r]), self.width)
            idx[r] = base + r * self.width + cols
        return idx

    def _flat_rows_one(self, key_hash: int) -> list:
        """Scalar :meth:`_flat_rows`; bit-identical cells."""
        part = key_hash % self.partitions
        base = part * (self.depth * self.width)
        return [
            base + r * self.width
            + cell_column(key_hash, int(self._row_seeds[r]), self.width)
            for r in range(self.depth)
        ]

    # ------------------------------------------------------------------
    # update + query
    # ------------------------------------------------------------------
    def update_groups(
        self, key_hash: np.ndarray, packets: np.ndarray, bytes_: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold one slice's per-flow aggregates; returns post-slice
        ``(packet_estimates, byte_estimates)`` for the same keys.

        ``key_hash`` must hold one entry per *distinct* flow in the
        slice (the grouped batch guarantees this); ``packets``/``bytes_``
        are that flow's totals within the slice.  The fold is
        order-independent — see the module docstring — so any
        flow-disjoint partitioning of a slice folds to the same
        counters.
        """
        n = int(key_hash.shape[0])
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        idx = self._flat_rows(key_hash)
        packets = packets.astype(np.int64)
        bytes_ = bytes_.astype(np.int64)
        if self.kind == "cms":
            for r in range(self.depth):
                np.add.at(self.packets, idx[r], packets)
                np.add.at(self.bytes, idx[r], bytes_)
        else:  # parallel conservative update
            pkt_target = self.packets[idx].min(axis=0) + packets
            byt_target = self.bytes[idx].min(axis=0) + bytes_
            for r in range(self.depth):
                np.maximum.at(self.packets, idx[r], pkt_target)
                np.maximum.at(self.bytes, idx[r], byt_target)
        self.updates += n
        return self.packets[idx].min(axis=0), self.bytes[idx].min(axis=0)

    def estimate_batch(
        self, key_hash: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(packet, byte)`` estimates without updating."""
        if key_hash.shape[0] == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        idx = self._flat_rows(key_hash)
        return self.packets[idx].min(axis=0), self.bytes[idx].min(axis=0)

    def estimate(self, key_hash: int) -> Tuple[int, int]:
        """Scalar point query (observability path); bit-identical to
        :meth:`estimate_batch` on a one-element array."""
        cells = self._flat_rows_one(int(key_hash))
        return (
            int(min(self.packets[c] for c in cells)),
            int(min(self.bytes[c] for c in cells)),
        )

    def decay(self) -> None:
        """Halve every counter (integer floor) — one aging window."""
        self.packets >>= 1
        self.bytes >>= 1
        self.decays += 1

    # ------------------------------------------------------------------
    # observability + checkpointing
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Resident counter memory (the O(1) budget being bought)."""
        return int(self.packets.nbytes + self.bytes.nbytes)

    def state_snapshot(self) -> Dict[str, object]:
        """Picklable bit-exact state (counters + fold counters).

        Configuration is not captured — the restoring side constructs
        the sketch with the same recipe, mirroring the FlowTable
        checkpoint contract.
        """
        return {
            "packets": self.packets.copy(),
            "bytes": self.bytes.copy(),
            "updates": self.updates,
            "decays": self.decays,
        }

    def state_restore(self, state: Dict[str, object]) -> None:
        packets = np.asarray(state["packets"], dtype=np.int64)
        if packets.shape != self.packets.shape:
            raise ValueError(
                f"sketch snapshot has {packets.shape[0]} cells, this sketch "
                f"has {self.packets.shape[0]} — construction recipes differ"
            )
        self.packets[:] = packets
        self.bytes[:] = np.asarray(state["bytes"], dtype=np.int64)
        self.updates = int(state["updates"])  # type: ignore[call-overload]
        self.decays = int(state["decays"])  # type: ignore[call-overload]
