"""Sketch layer: O(1)-memory heavy-hitter front end for flow admission.

Layering: sits between ``repro.common`` and ``repro.features`` — it
consumes only pre-hashed flow identities (splitmix64 ``key_hash``
values) and never imports the feature or core layers.
"""

from .cms import CountMinSketch, UPDATE_KINDS
from .gate import ResidualAggregator, SketchConfig, SketchGate
from .hashing import cell_column, cell_columns, mix64, mix64_arrays, row_seeds

__all__ = [
    "CountMinSketch",
    "UPDATE_KINDS",
    "ResidualAggregator",
    "SketchConfig",
    "SketchGate",
    "mix64",
    "mix64_arrays",
    "row_seeds",
    "cell_columns",
    "cell_column",
]
