"""Entropy-based DDoS detection (the classic pre-ML baseline).

Volumetric attacks disturb the *distribution* of header fields: a
spoofed SYN flood explodes source-address entropy, a port scan explodes
destination-port entropy, while benign traffic keeps both in a stable
band.  The canonical detector (rooted in Lakhina et al.'s entropy
anomaly work and countless IDS products) is:

1. bucket packets into fixed windows,
2. compute normalized Shannon entropy of selected header fields per
   window,
3. track a running mean/std per field (exponentially weighted, so the
   baseline adapts) and alarm when the z-score exceeds a threshold.

Strengths and weaknesses both matter for the comparison benchmark: it
needs no training and no flow state, catches floods and scans from pure
distribution shifts — and is structurally blind to low-and-slow attacks
like SlowLoris, which never move a distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["shannon_entropy", "entropy_series", "EntropyDetector"]


def shannon_entropy(values: np.ndarray, normalize: bool = True) -> float:
    """Shannon entropy of a sample of categorical values.

    With ``normalize`` the result is divided by ``log2(n_distinct)``
    (0 when fewer than two distinct values), mapping to [0, 1] so
    windows of different sizes are comparable.
    """
    values = np.asarray(values).ravel()
    if values.size == 0:
        return 0.0
    _, counts = np.unique(values, return_counts=True)
    if counts.size < 2:
        return 0.0
    p = counts / counts.sum()
    h = float(-(p * np.log2(p)).sum())
    if normalize:
        h /= np.log2(counts.size)
    return h


def entropy_series(
    ts_ns: np.ndarray,
    fields: Dict[str, np.ndarray],
    window_ns: int,
) -> Tuple[np.ndarray, Dict[str, np.ndarray], np.ndarray]:
    """Per-window normalized entropies of several header fields.

    Returns ``(window_starts, {field: entropies}, packet_counts)``.
    """
    if window_ns <= 0:
        raise ValueError(f"window must be positive: {window_ns}")
    ts_ns = np.asarray(ts_ns, dtype=np.int64)
    n = ts_ns.size
    if n == 0:
        empty = np.empty(0)
        return empty.astype(np.int64), {k: empty for k in fields}, empty.astype(np.int64)
    order = np.argsort(ts_ns, kind="stable")
    ts_sorted = ts_ns[order]
    t0 = int(ts_sorted[0])
    idx = (ts_sorted - t0) // window_ns
    n_bins = int(idx[-1]) + 1
    starts = t0 + np.arange(n_bins, dtype=np.int64) * window_ns
    counts = np.bincount(idx, minlength=n_bins).astype(np.int64)
    bounds = np.r_[0, np.cumsum(counts)]
    out: Dict[str, np.ndarray] = {}
    for name, col in fields.items():
        col_sorted = np.asarray(col).ravel()[order]
        h = np.zeros(n_bins)
        for b in range(n_bins):
            h[b] = shannon_entropy(col_sorted[bounds[b] : bounds[b + 1]])
        out[name] = h
    return starts, out, counts


@dataclass
class _Ewma:
    mean: float = 0.0
    var: float = 0.0
    n: int = 0


class EntropyDetector:
    """Adaptive-threshold entropy anomaly detector.

    Parameters
    ----------
    window_ns : int
        Analysis window.
    fields : sequence of str
        Record fields to monitor (defaults to the canonical pair:
        source address and destination port).
    z_threshold : float
        Alarm when any field's |z-score| against the adaptive baseline
        exceeds this.
    alpha : float
        EWMA weight for the baseline update (only windows *not* alarmed
        update the baseline, so an ongoing attack cannot normalize
        itself).
    warmup_windows : int
        Windows used purely for baseline estimation before alarms fire.
    min_packets : int
        Windows thinner than this are skipped (entropy of 3 packets is
        noise).
    monitor_volume : bool
        Also z-score ``log1p`` of the per-window packet count.
        Reflection/amplification attacks keep header *distributions*
        high-entropy (many reflectors, random ports) and are visible
        only as a volume surge — entropy alone is structurally blind to
        them (see ``tests/test_amplification.py``).
    """

    DEFAULT_FIELDS = ("src_ip", "dst_port")
    VOLUME = "__volume__"

    def __init__(
        self,
        window_ns: int = 100_000_000,
        fields: Sequence[str] = DEFAULT_FIELDS,
        z_threshold: float = 4.0,
        alpha: float = 0.05,
        warmup_windows: int = 10,
        min_packets: int = 20,
        monitor_volume: bool = False,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.window_ns = int(window_ns)
        self.fields = tuple(fields)
        self.z_threshold = float(z_threshold)
        self.alpha = float(alpha)
        self.warmup_windows = int(warmup_windows)
        self.min_packets = int(min_packets)
        self.monitor_volume = bool(monitor_volume)

    def detect(self, records: np.ndarray, ts_field: str = "ts") -> dict:
        """Run over a capture; returns the per-window verdicts.

        Parameters
        ----------
        records : structured array with ``ts_field`` plus the monitored
            fields (trace records and telemetry records both qualify;
            pass ``ts_field="ts_report"`` for INT captures).

        Returns
        -------
        dict with ``window_starts``, ``alarms`` (bool per window),
        ``z`` ({field: z-scores}), ``entropies`` and ``counts``.
        """
        cols = {f: records[f] for f in self.fields}
        starts, entropies, counts = entropy_series(
            records[ts_field], cols, self.window_ns
        )
        monitored = list(self.fields)
        if self.monitor_volume:
            entropies = dict(entropies)
            entropies[self.VOLUME] = np.log1p(counts.astype(np.float64))
            monitored.append(self.VOLUME)
        n_bins = starts.size
        alarms = np.zeros(n_bins, dtype=bool)
        zscores = {f: np.zeros(n_bins) for f in monitored}
        state = {f: _Ewma() for f in monitored}

        for b in range(n_bins):
            if counts[b] < self.min_packets:
                continue
            fired = False
            for f in monitored:
                st = state[f]
                h = entropies[f][b]
                if st.n >= self.warmup_windows and st.var > 0:
                    z = (h - st.mean) / np.sqrt(st.var)
                    zscores[f][b] = z
                    if abs(z) > self.z_threshold:
                        fired = True
            alarms[b] = fired
            if not fired:
                for f in monitored:
                    st = state[f]
                    h = entropies[f][b]
                    if st.n == 0:
                        st.mean, st.var = h, 1e-4
                    else:
                        delta = h - st.mean
                        st.mean += self.alpha * delta
                        st.var = (1 - self.alpha) * (st.var + self.alpha * delta * delta)
                    st.n += 1
        return {
            "window_starts": starts,
            "alarms": alarms,
            "z": zscores,
            "entropies": entropies,
            "counts": counts,
        }

    def episode_coverage(
        self, result: dict, windows: List[Tuple[int, int]]
    ) -> List[bool]:
        """For each ground-truth episode, did any window inside it alarm?"""
        starts = result["window_starts"]
        alarms = result["alarms"]
        out = []
        for s, e in windows:
            mask = (starts >= s - self.window_ns) & (starts < e)
            out.append(bool(alarms[mask].any()))
        return out
