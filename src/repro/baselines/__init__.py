"""Classical non-ML baselines to compare the paper's approach against.

The paper compares data sources (INT vs sFlow) but keeps the detector
family fixed (supervised ML).  A reproduction worth adopting should also
show what the classic alternative does on the same telemetry:
:mod:`~repro.baselines.entropy` implements the standard volumetric
detector — windowed Shannon-entropy anomaly scoring over header fields —
which needs no training data at all.
"""

from .entropy import EntropyDetector, entropy_series, shannon_entropy

__all__ = ["EntropyDetector", "entropy_series", "shannon_entropy"]
