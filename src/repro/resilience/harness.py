"""Resilience harness: the Table VI experiment under injected faults.

The acceptance question for a production rollout is not "does the
detector work on a clean testbed" (Table VI answers that) but "how much
detection quality does telemetry chaos cost, and does a partial failure
degrade or crash".  :class:`ResilienceHarness` answers both:

* :meth:`ResilienceHarness.run` replays the §IV-C testbed experiment
  twice — clean and under a :class:`~repro.resilience.chaos.ChaosSchedule`
  — and reports per-attack-type accuracy and latency deltas plus the
  injector's fault accounting;
* :meth:`ResilienceHarness.run_model_failure` poisons one ensemble
  member mid-replay and verifies the mechanism quarantines it (watchdog
  alert, adjusted quorum) instead of crashing;
* :meth:`ResilienceHarness.run_worker_kill` murders a seeded-random
  shard worker mid-replay (:class:`~repro.resilience.process_chaos.
  ProcessChaos`) and verifies the supervised sharded runtime restores
  it from checkpoint with a merged prediction log byte-identical to the
  unfaulted single-process run;
* :meth:`ResilienceHarness.run_mitigation_kill` repeats the worker-kill
  scenario with the closed-loop mitigation controller attached and
  additionally requires the canonical **mitigation action-log digest**
  (blocks installed, rate limits, episode escalations) to survive the
  kill byte-identically — the detect→mitigate loop, not just detection,
  is fault-tolerant;
* :meth:`ResilienceHarness.run_lifecycle_kill` repeats it again with
  the online model lifecycle attached and a panel hot swap forced
  mid-replay: the merged log, the lifecycle event sequence, and the
  seq-monotone epoch column (swap atomicity) must all survive the kill
  — even one landing around the swap broadcast itself.

Both lean on the cached :func:`~repro.analysis.experiments.run_testbed_study`
artifacts, so the expensive parts (campaign build, pre-training, DES
replay capture) are paid once per session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.experiments import run_testbed_study
from repro.analysis.tables import render_table
from repro.core.mechanism import AutomatedDDoSDetector, score_by_type
from repro.core.training import TrainedBundle
from repro.traffic.trace import AttackType

from .chaos import ChaosSchedule
from .degradation import HealthAlert, ModuleHealth
from .process_chaos import ProcessChaos

__all__ = [
    "ResilienceHarness",
    "ResilienceReport",
    "ModelFailureReport",
    "WorkerKillReport",
    "MitigationKillReport",
    "LifecycleKillReport",
]


@dataclass
class ResilienceReport:
    """Clean-vs-chaos comparison of one testbed replay."""

    schedule: ChaosSchedule
    #: per flow type: clean/chaos accuracy + latency and their deltas
    rows: Dict[str, dict]
    #: aggregate FaultStats counters across all five replays
    faults: Dict[str, object]
    #: per flow type: watchdog snapshot at end of the chaos run
    health: Dict[str, dict] = field(default_factory=dict)

    @property
    def max_accuracy_drop(self) -> float:
        """Worst accuracy loss across flow types (positive = worse)."""
        drops = [-r["accuracy_delta"] for r in self.rows.values()]
        return max(drops) if drops else 0.0

    def render(self) -> str:
        """Terminal table of the comparison."""
        body = []
        for name, r in sorted(self.rows.items()):
            body.append((
                name,
                f"{r['clean_accuracy']:.4f}",
                f"{r['chaos_accuracy']:.4f}" if r["chaos_accuracy"] is not None
                else "n/a",
                f"{r['accuracy_delta']:+.4f}",
                r["clean_predicted"],
                r["chaos_predicted"],
                f"{r['avg_time_delta_s']:+.2e}",
            ))
        return render_table(
            f"Resilience: Table VI replay under chaos ({self.schedule.describe()})",
            ("Flow type", "clean acc", "chaos acc", "Δacc",
             "clean pred", "chaos pred", "Δavg time (s)"),
            body,
            note=(
                f"faults: {self.faults.get('dropped', 0)} dropped / "
                f"{self.faults.get('duplicated', 0)} duplicated / "
                f"{self.faults.get('reordered', 0)} reordered / "
                f"{self.faults.get('corrupted', 0)} corrupted of "
                f"{self.faults.get('offered', 0)} offered reports"
            ),
        )


@dataclass
class ModelFailureReport:
    """Outcome of a forced single-member failure during a replay."""

    model: str
    quarantined: bool
    alerts: List[HealthAlert]
    stats: dict
    accuracy: Optional[float]
    predictions: int

    @property
    def degraded_not_crashed(self) -> bool:
        """The acceptance property: the member is out, the mechanism is
        up, health is DEGRADED (not FAILED), and predictions flowed."""
        health = self.stats.get("health", {})
        return (
            self.quarantined
            and self.predictions > 0
            and health.get("prediction") == ModuleHealth.DEGRADED.name
        )


@dataclass
class WorkerKillReport:
    """Outcome of a worker-kill chaos run against the sharded runtime."""

    plan: ProcessChaos
    shards: int
    digest_reference: str
    digest_recovered: str
    supervision: dict
    alerts: List[HealthAlert]
    predictions: int

    @property
    def recovered_identically(self) -> bool:
        """The acceptance property: at least one worker died and was
        respawned, the recovery was not lossy, and the merged prediction
        log is byte-identical to the unfaulted single-process run."""
        return (
            self.digest_recovered == self.digest_reference
            and int(self.supervision.get("workers_died", 0)) >= 1
            and int(self.supervision.get("workers_respawned", 0)) >= 1
            and int(self.supervision.get("lossy_recoveries", 0)) == 0
        )


@dataclass
class MitigationKillReport:
    """Outcome of a worker-kill run with the closed loop attached."""

    plan: ProcessChaos
    shards: int
    prediction_digest_reference: str
    prediction_digest_recovered: str
    action_digest_reference: str
    action_digest_recovered: str
    supervision: dict
    mitigation_stats: dict
    actions: int
    blocked: int

    @property
    def loop_survived(self) -> bool:
        """The acceptance property: a worker died and was respawned
        without data loss, *and* both the prediction log and the
        mitigation action log match the unfaulted single-process run
        byte for byte."""
        return (
            self.prediction_digest_recovered == self.prediction_digest_reference
            and self.action_digest_recovered == self.action_digest_reference
            and int(self.supervision.get("workers_died", 0)) >= 1
            and int(self.supervision.get("workers_respawned", 0)) >= 1
            and int(self.supervision.get("lossy_recoveries", 0)) == 0
        )

    def render(self) -> str:
        """Terminal table of the comparison."""
        sup = self.supervision
        body = [
            ("prediction digest",
             self.prediction_digest_reference[:16],
             self.prediction_digest_recovered[:16],
             "match" if self.prediction_digest_recovered
             == self.prediction_digest_reference else "DIVERGED"),
            ("action-log digest",
             self.action_digest_reference[:16],
             self.action_digest_recovered[:16],
             "match" if self.action_digest_recovered
             == self.action_digest_reference else "DIVERGED"),
        ]
        return render_table(
            f"Closed-loop mitigation under worker-kill "
            f"(shards={self.shards}, plan={self.plan.describe()})",
            ("invariant", "reference", "recovered", "verdict"),
            body,
            note=(
                f"{self.actions} actions logged, {self.blocked} active "
                f"blocks; workers died={sup.get('workers_died', 0)} "
                f"respawned={sup.get('workers_respawned', 0)} "
                f"lossy={sup.get('lossy_recoveries', 0)}"
            ),
        )


@dataclass
class LifecycleKillReport:
    """Outcome of a worker-kill run with a hot swap forced mid-stream."""

    plan: ProcessChaos
    shards: int
    digest_reference: str
    digest_recovered: str
    epoch_final: int
    epochs_monotone: bool
    swap_mid_run: bool
    swaps_reference: int
    swaps_recovered: int
    events_reference: List[str]
    events_recovered: List[str]
    supervision: dict
    alerts: List[HealthAlert]
    predictions: int

    @property
    def swapped_identically(self) -> bool:
        """The acceptance property: a worker died and was respawned
        without data loss while a panel hot swap landed mid-run, the
        swap was atomic (seq-ordered epochs never decrease — no cycle
        served by a mixed old/new panel on any shard), and the merged
        prediction log is byte-identical to the unfaulted
        single-process run with the same lifecycle."""
        return (
            self.digest_recovered == self.digest_reference
            and self.epoch_final >= 1
            and self.epochs_monotone
            and self.swap_mid_run
            and self.swaps_reference == self.swaps_recovered
            and self.events_reference == self.events_recovered
            and int(self.supervision.get("workers_died", 0)) >= 1
            and int(self.supervision.get("workers_respawned", 0)) >= 1
            and int(self.supervision.get("lossy_recoveries", 0)) == 0
        )

    def render(self) -> str:
        """Terminal table of the comparison."""
        sup = self.supervision
        body = [
            ("prediction digest",
             self.digest_reference[:16], self.digest_recovered[:16],
             "match" if self.digest_recovered == self.digest_reference
             else "DIVERGED"),
            ("swap events",
             "/".join(self.events_reference) or "-",
             "/".join(self.events_recovered) or "-",
             "match" if self.events_reference == self.events_recovered
             else "DIVERGED"),
            ("swap atomicity",
             "epochs monotone", "epochs monotone"
             if self.epochs_monotone else "MIXED-PANEL CYCLE",
             "ok" if self.epochs_monotone else "VIOLATED"),
        ]
        return render_table(
            f"Lifecycle hot swap under worker-kill "
            f"(shards={self.shards}, plan={self.plan.describe()})",
            ("invariant", "reference", "recovered", "verdict"),
            body,
            note=(
                f"final epoch={self.epoch_final}; workers "
                f"died={sup.get('workers_died', 0)} "
                f"respawned={sup.get('workers_respawned', 0)} "
                f"lossy={sup.get('lossy_recoveries', 0)} "
                f"swap_broadcasts={sup.get('swap_broadcasts', 0)}"
            ),
        )


def _parity_labels(records: np.ndarray) -> np.ndarray:
    """Deterministic, balanced two-class label oracle for lifecycle
    chaos runs: position parity.  The scenario tests swap *mechanics*
    (determinism, atomicity, recovery), not model quality, so the only
    requirements on the oracle are that both classes appear and that
    every execution mode computes identical labels from identical
    reservoir contents."""
    return np.arange(records.shape[0], dtype=np.int64) % 2


def _epoch_profile(db) -> tuple:
    """(epochs monotone by (seq, key), swap landed mid-run, final epoch)
    over a merged prediction log.  Monotonicity is the atomicity check
    in the no-backlog regime: every update registered in slice *k* is
    predicted at cycle *k*, so a swap at a cycle boundary partitions
    the seq axis cleanly — an epoch that *decreases* means some shard
    served a cycle with the outgoing panel after the barrier."""
    epochs = [
        e.epoch for e in sorted(db.predictions, key=lambda e: (e.seq, e.key))
    ]
    monotone = all(a <= b for a, b in zip(epochs, epochs[1:]))
    mid_run = bool(epochs) and epochs[0] == 0 and epochs[-1] >= 1
    final = epochs[-1] if epochs else 0
    return monotone, mid_run, final


class _PoisonedModel:
    """Wraps a fitted model; starts raising after ``fail_after`` calls."""

    def __init__(self, inner: object, fail_after: int) -> None:
        self.inner = inner
        self.fail_after = int(fail_after)
        self.calls = 0

    def predict(self, X):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("injected model fault (poisoned member)")
        return self.inner.predict(X)


class ResilienceHarness:
    """Replays the §IV-C testbed experiment under fault injection.

    Parameters
    ----------
    profile : str
        Campaign profile (``tiny``/``small``/``full``) forwarded to the
        testbed study.
    seed : int
        Study seed; the chaos RNG derives from it unless overridden.
    n_packets : int
        Replay length per flow type (paper: ~2500).
    """

    #: Flow types whose models saw the attack in training; the zero-day
    #: SlowLoris row is reported but not part of the within-5-points gate.
    TRAINED_TYPES = ("Benign", "SYN Scan", "UDP Scan", "SYN Flood")

    def __init__(
        self, profile: str = "small", seed: int = 0, n_packets: int = 2500
    ) -> None:
        self.profile = profile
        self.seed = int(seed)
        self.n_packets = int(n_packets)

    # ------------------------------------------------------------------
    def _study(self, chaos: Optional[ChaosSchedule] = None, chaos_seed=None):
        return run_testbed_study(
            self.profile,
            seed=self.seed,
            n_packets=self.n_packets,
            chaos=chaos,
            chaos_seed=chaos_seed,
        )

    def run(
        self, schedule: ChaosSchedule, chaos_seed: Optional[int] = None
    ) -> ResilienceReport:
        """Clean run vs chaos run; returns the delta report."""
        if chaos_seed is None:
            chaos_seed = self.seed + 1009
        clean = self._study()
        chaos = self._study(chaos=schedule, chaos_seed=chaos_seed)

        rows: Dict[str, dict] = {}
        for name, c in clean.table6.items():
            z = chaos.table6.get(name)
            rows[name] = {
                "clean_accuracy": c["accuracy"],
                "chaos_accuracy": z["accuracy"] if z else None,
                "accuracy_delta": (z["accuracy"] - c["accuracy"]) if z else -1.0,
                "clean_predicted": c["predicted"],
                "chaos_predicted": z["predicted"] if z else 0,
                "clean_avg_s": c["avg_time_s"],
                "chaos_avg_s": z["avg_time_s"] if z else float("nan"),
                "avg_time_delta_s": (
                    (z["avg_time_s"] - c["avg_time_s"]) if z else float("nan")
                ),
            }

        faults: Dict[str, float] = {}
        health: Dict[str, dict] = {}
        for name, stats in chaos.mech_stats.items():
            health[name] = stats.get("health", {})
            for k, v in stats.get("faults", {}).items():
                if isinstance(v, (int, np.integer)):
                    faults[k] = faults.get(k, 0) + int(v)
        if faults.get("offered"):
            faults["loss_fraction"] = (
                faults.get("dropped", 0) / faults["offered"]
            )
        return ResilienceReport(
            schedule=schedule, rows=rows, faults=faults, health=health
        )

    # ------------------------------------------------------------------
    def run_model_failure(
        self,
        model: str = "rf",
        flow_type: str = "SYN Flood",
        fail_after: int = 50,
    ) -> ModelFailureReport:
        """Replay one flow type with one panel member poisoned mid-run.

        The member starts raising after ``fail_after`` predictions; a
        resilient mechanism quarantines it, keeps voting with the rest,
        and surfaces a DEGRADED health alert — it does not crash.
        """
        clean = self._study()
        if clean.bundle is None or flow_type not in clean.test_records:
            raise RuntimeError("clean study lacks replay artifacts")
        base: TrainedBundle = clean.bundle
        if model not in base.models:
            raise KeyError(f"unknown panel member: {model!r}")
        models = dict(base.models)
        models[model] = _PoisonedModel(models[model], fail_after)
        bundle = TrainedBundle(
            scaler=base.scaler,
            models=models,
            feature_names=list(base.feature_names),
        )
        detector = AutomatedDDoSDetector(bundle, emit_partial=True)
        records = clean.test_records[flow_type]
        truth_map = clean.truth_maps[flow_type]
        db = detector.run_stream(records, poll_every=64, cycle_budget=128)
        rows = score_by_type(
            db, lambda k: truth_map.get(k, (0, int(AttackType.BENIGN)))
        )
        accuracy = rows[flow_type]["accuracy"] if flow_type in rows else None
        return ModelFailureReport(
            model=model,
            quarantined=model in detector.prediction.quarantined,
            alerts=list(detector.watchdog.alerts),
            stats=detector.stats(),
            accuracy=accuracy,
            predictions=len(db.predictions),
        )

    # ------------------------------------------------------------------
    def run_worker_kill(
        self,
        shards: int = 2,
        kill_seed: int = 0,
        mode: str = "sigkill",
        flow_type: str = "SYN Flood",
        poll_every: int = 64,
        cycle_budget: int = 256,
        checkpoint_every: int = 8,
        heartbeat_timeout_s: float = 30.0,
    ) -> WorkerKillReport:
        """Replay one flow type sharded, killing a seeded-random worker.

        The victim shard and kill cycle are drawn from ``kill_seed``
        (:meth:`ProcessChaos.seeded`), so a failing case replays
        exactly.  The reference digest comes from an unfaulted
        single-process batched run over the same records; a resilient
        runtime respawns the victim from its last checkpoint, replays
        the buffered suffix, and merges a byte-identical log.
        """
        from repro.core.sharding import prediction_log_digest

        clean = self._study()
        if clean.bundle is None or flow_type not in clean.test_records:
            raise RuntimeError("clean study lacks replay artifacts")
        records = clean.test_records[flow_type]
        n_cycles = max(1, records.shape[0] // poll_every)
        plan = ProcessChaos.seeded(
            kill_seed, n_cycles=n_cycles, n_shards=shards, modes=(mode,)
        )

        ref = AutomatedDDoSDetector(clean.bundle, batched=True)
        db_ref = ref.run_stream(
            records, poll_every=poll_every, cycle_budget=cycle_budget
        )

        det = AutomatedDDoSDetector(clean.bundle, batched=True)
        db = det.run_stream(
            records,
            poll_every=poll_every,
            cycle_budget=cycle_budget,
            shards=shards,
            checkpoint_every=checkpoint_every,
            heartbeat_timeout_s=heartbeat_timeout_s,
            process_chaos=plan,
        )
        return WorkerKillReport(
            plan=plan,
            shards=shards,
            digest_reference=prediction_log_digest(db_ref),
            digest_recovered=prediction_log_digest(db),
            supervision=dict(det.supervision_stats or {}),
            alerts=list(det.watchdog.alerts),
            predictions=len(db.predictions),
        )

    # ------------------------------------------------------------------
    def run_mitigation_kill(
        self,
        shards: int = 2,
        kill_seed: int = 0,
        mode: str = "sigkill",
        flow_type: str = "SYN Flood",
        poll_every: int = 64,
        cycle_budget: int = 256,
        checkpoint_every: int = 8,
        heartbeat_timeout_s: float = 30.0,
    ) -> MitigationKillReport:
        """Worker-kill scenario with the mitigation controller attached.

        Same seeded kill plan as :meth:`run_worker_kill`, but both the
        reference (unfaulted, single-process) and the victim (sharded,
        killed, restored) detectors carry a
        :class:`~repro.mitigation.MitigationController` wired through an
        :class:`~repro.controlplane.EpisodeBridge`.  The acceptance bar
        rises accordingly: beyond the prediction log, the canonical
        mitigation **action-log digest** — every block install, refresh
        and episode escalation — must come back byte-identical, proving
        the closed loop's durable state (block table, TTL deadlines,
        token buckets, per-flow emit history) rode the checkpoint and
        replay-buffer recovery intact.
        """
        from repro.controlplane import EpisodeBridge
        from repro.core.sharding import prediction_log_digest
        from repro.mitigation import MitigationController

        clean = self._study()
        if clean.bundle is None or flow_type not in clean.test_records:
            raise RuntimeError("clean study lacks replay artifacts")
        records = clean.test_records[flow_type]
        n_cycles = max(1, records.shape[0] // poll_every)
        plan = ProcessChaos.seeded(
            kill_seed, n_cycles=n_cycles, n_shards=shards, modes=(mode,)
        )

        def closed_loop() -> tuple:
            det = AutomatedDDoSDetector(clean.bundle, batched=True)
            ctrl = MitigationController().attach_to(det)
            EpisodeBridge(ctrl)
            return det, ctrl

        ref, ctrl_ref = closed_loop()
        db_ref = ref.run_stream(
            records, poll_every=poll_every, cycle_budget=cycle_budget
        )

        det, ctrl = closed_loop()
        db = det.run_stream(
            records,
            poll_every=poll_every,
            cycle_budget=cycle_budget,
            shards=shards,
            checkpoint_every=checkpoint_every,
            heartbeat_timeout_s=heartbeat_timeout_s,
            process_chaos=plan,
        )
        stats = ctrl.stats()
        return MitigationKillReport(
            plan=plan,
            shards=shards,
            prediction_digest_reference=prediction_log_digest(db_ref),
            prediction_digest_recovered=prediction_log_digest(db),
            action_digest_reference=ctrl_ref.action_log_digest(),
            action_digest_recovered=ctrl.action_log_digest(),
            supervision=dict(det.supervision_stats or {}),
            mitigation_stats=stats,
            actions=int(stats.get("actions_logged", 0)),
            blocked=int(stats.get("active_blocks", 0)),
        )

    # ------------------------------------------------------------------
    def run_lifecycle_kill(
        self,
        shards: int = 2,
        kill_seed: int = 0,
        mode: str = "sigkill",
        flow_type: str = "SYN Flood",
        poll_every: int = 64,
        cycle_budget: int = 256,
        checkpoint_every: int = 8,
        heartbeat_timeout_s: float = 30.0,
        force_swap_at_check: int = 3,
    ) -> LifecycleKillReport:
        """Worker-kill scenario with the model lifecycle attached and a
        hot swap forced mid-run.

        Both the reference (unfaulted, single-process) and the victim
        (sharded, killed, restored) detectors carry a
        :class:`~repro.lifecycle.LifecycleManager` configured to retrain
        and swap at check ``force_swap_at_check`` — the deterministic
        stand-in for a real drift alarm, so the swap barrier lands at a
        known cycle regardless of traffic content.  The acceptance bar:
        byte-identical merged prediction logs, identical lifecycle
        event sequences, seq-monotone panel epochs (swap atomicity) and
        a clean (non-lossy) recovery of the murdered worker — even when
        the kill lands around the swap broadcast itself.

        The holdout gate is disabled (``regression_tolerance=1.0``)
        because the parity label oracle makes candidate quality
        meaningless here; the rollback paths have their own dedicated
        tests on real labels.
        """
        from repro.core.sharding import prediction_log_digest
        from repro.lifecycle import LifecycleConfig, LifecycleManager

        clean = self._study()
        if clean.bundle is None or flow_type not in clean.test_records:
            raise RuntimeError("clean study lacks replay artifacts")
        records = clean.test_records[flow_type]
        n_cycles = max(1, records.shape[0] // poll_every)
        plan = ProcessChaos.seeded(
            kill_seed, n_cycles=n_cycles, n_shards=shards, modes=(mode,)
        )

        def lifecycle() -> LifecycleManager:
            return LifecycleManager(LifecycleConfig(
                check_every=2,
                min_window_records=32,
                min_retrain_records=64,
                reservoir_windows=6,
                holdout_every=4,
                cooldown_checks=1,
                regression_tolerance=1.0,
                retrain_seed=self.seed,
                label_fn=_parity_labels,
                force_swap_at_check=force_swap_at_check,
            ))

        ref = AutomatedDDoSDetector(clean.bundle, batched=True)
        mgr_ref = lifecycle().attach_to(ref)
        db_ref = ref.run_stream(
            records, poll_every=poll_every, cycle_budget=cycle_budget
        )

        det = AutomatedDDoSDetector(clean.bundle, batched=True)
        mgr = lifecycle().attach_to(det)
        db = det.run_stream(
            records,
            poll_every=poll_every,
            cycle_budget=cycle_budget,
            shards=shards,
            checkpoint_every=checkpoint_every,
            heartbeat_timeout_s=heartbeat_timeout_s,
            process_chaos=plan,
        )
        monotone, mid_run, final = _epoch_profile(db)
        return LifecycleKillReport(
            plan=plan,
            shards=shards,
            digest_reference=prediction_log_digest(db_ref),
            digest_recovered=prediction_log_digest(db),
            epoch_final=final,
            epochs_monotone=monotone,
            swap_mid_run=mid_run,
            swaps_reference=mgr_ref.swaps,
            swaps_recovered=mgr.swaps,
            events_reference=[e.kind for e in mgr_ref.events],
            events_recovered=[e.kind for e in mgr.events],
            supervision=dict(det.supervision_stats or {}),
            alerts=list(det.watchdog.alerts),
            predictions=len(db.predictions),
        )
