"""Graceful-degradation machinery: watchdog + retry policy.

The paper's mechanism assumes every module always answers.  Production
operation needs the opposite posture: any module can misbehave, and the
pipeline should *degrade* — quarantine the broken part, keep serving
with what remains, and tell the control plane — rather than crash.

Two pieces live here:

* :class:`Watchdog` — tracks per-module health
  (HEALTHY/DEGRADED/FAILED) and emits one
  :class:`~repro.controlplane.alerts.HealthAlert` per transition to the
  registered sinks.  Modules (or their callers) report state; repeated
  reports of the same state are coalesced.
* :func:`retry_with_backoff` — bounded exponential-backoff retry for
  transient failures (the CentralServer uses it around database polls).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "ModuleHealth",
    "HealthAlert",
    "HealthSink",
    "HealthLogSink",
    "Watchdog",
    "retry_with_backoff",
]


class ModuleHealth(IntEnum):
    """Health ladder for the mechanism's modules (worst wins).

    Defined here rather than in :mod:`repro.controlplane.alerts` (which
    re-exports it) so the core modules can report health without
    importing the control plane.
    """

    HEALTHY = 0
    DEGRADED = 1
    FAILED = 2


@dataclass(frozen=True)
class HealthAlert:
    """One module health transition, as reported by a watchdog.

    Unlike a control-plane :class:`~repro.controlplane.alerts.Alert`
    (an attack episode against a service), a health alert is about the
    detection pipeline itself: a quarantined ensemble member, a database
    poll that needed retries, a cycle that blew its deadline budget.
    """

    module: str
    previous: ModuleHealth
    state: ModuleHealth
    ts_ns: int
    reason: str = ""

    @property
    def is_recovery(self) -> bool:
        return self.state < self.previous


HealthSink = Callable[[HealthAlert], None]
"""Sink signature for health transitions: ``sink(alert)``."""


class HealthLogSink:
    """Collects health alerts in memory (and optionally prints them)."""

    def __init__(self, echo: bool = False) -> None:
        self.alerts: List[HealthAlert] = []
        self.echo = bool(echo)

    def __call__(self, alert: HealthAlert) -> None:
        self.alerts.append(alert)
        if self.echo:  # pragma: no cover - console side effect
            arrow = "recovered to" if alert.is_recovery else "->"
            print(
                f"[HEALTH] {alert.module}: {alert.previous.name} {arrow} "
                f"{alert.state.name}"
                + (f" ({alert.reason})" if alert.reason else "")
            )


class Watchdog:
    """Per-module health registry with transition alerts.

    Parameters
    ----------
    sinks : list of HealthSink, optional
        Called once per state *transition* (never for a repeated state).
    clock : callable() -> int, optional
        Wall-clock in ns for alert timestamps; defaults to
        :func:`time.perf_counter_ns` and is injectable for tests.
    """

    def __init__(
        self,
        sinks: Optional[List[HealthSink]] = None,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.sinks: List[HealthSink] = list(sinks) if sinks else []
        # repro: allow[DET002] injectable default; deterministic tests inject a fake clock
        self.clock = clock if clock is not None else time.perf_counter_ns
        self._state: Dict[str, ModuleHealth] = {}
        self.alerts: List[HealthAlert] = []
        self.transitions = 0

    # ------------------------------------------------------------------
    def state(self, module: str) -> ModuleHealth:
        """Current health of a module (unknown modules are HEALTHY)."""
        return self._state.get(module, ModuleHealth.HEALTHY)

    @property
    def worst(self) -> ModuleHealth:
        """The mechanism's overall health: its sickest module."""
        if not self._state:
            return ModuleHealth.HEALTHY
        return max(self._state.values())

    def snapshot(self) -> Dict[str, str]:
        """Module → state-name map (for stats surfaces)."""
        return {m: s.name for m, s in sorted(self._state.items())}

    # ------------------------------------------------------------------
    def report(
        self, module: str, state: ModuleHealth, reason: str = ""
    ) -> Optional[HealthAlert]:
        """Record a module's health; emits an alert only on transition."""
        previous = self.state(module)
        if state == previous:
            return None
        self._state[module] = state
        alert = HealthAlert(
            module=module,
            previous=previous,
            state=state,
            ts_ns=int(self.clock()),
            reason=reason,
        )
        self.alerts.append(alert)
        self.transitions += 1
        for sink in self.sinks:
            sink(alert)
        return alert

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Per-module health map + transition count.  Past alerts are
        *not* captured — they were already delivered to the sinks, and
        re-emitting them on restore would double-count transitions."""
        return {
            "state": {m: int(s) for m, s in self._state.items()},
            "transitions": self.transitions,
        }

    def state_restore(self, state: dict) -> None:
        self._state = {
            m: ModuleHealth(s) for m, s in state["state"].items()
        }
        self.transitions = int(state["transitions"])

    def healthy(self, module: str, reason: str = "") -> Optional[HealthAlert]:
        return self.report(module, ModuleHealth.HEALTHY, reason)

    def degraded(self, module: str, reason: str = "") -> Optional[HealthAlert]:
        return self.report(module, ModuleHealth.DEGRADED, reason)

    def failed(self, module: str, reason: str = "") -> Optional[HealthAlert]:
        return self.report(module, ModuleHealth.FAILED, reason)


def retry_with_backoff(
    fn: Callable[[], object],
    attempts: int = 4,
    base_delay_s: float = 0.005,
    factor: float = 2.0,
    max_delay_s: float = 0.25,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    # repro: allow[DET002] injectable default; retry tests inject a recording sleep
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn`` with bounded exponential-backoff retries.

    Parameters
    ----------
    fn : callable()
        The operation; its return value is passed through.
    attempts : int
        Total tries including the first (so ``attempts - 1`` retries).
    base_delay_s, factor, max_delay_s : float
        Backoff schedule: ``min(base * factor**k, max)`` before retry k.
    retry_on : tuple of exception types
        Anything else propagates immediately.
    sleep : callable(seconds)
        Injectable for deterministic tests.
    on_retry : callable(attempt_number, exception), optional
        Observer invoked before each backoff sleep.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1: {attempts}")
    delay = float(base_delay_s)
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(min(delay, max_delay_s))
            delay *= factor
